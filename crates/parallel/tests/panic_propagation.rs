//! A panicking worker closure must fail the whole call — never
//! deadlock the fork-join scope, never return partially-filled results
//! — and the caller must see a panic that names the failure: either
//! the crate's `worker thread panicked` join message or the worker's
//! own payload, depending on how the scope implementation propagates
//! child panics. These tests pin that contract for both entry points,
//! on both the parallel path and the sequential fallback.

use std::panic::{catch_unwind, AssertUnwindSafe};

use hfl_parallel::{par_chunks_mut, par_map_indexed};

/// Runs `f`, expecting it to panic; returns the payload as text.
fn payload_of<F: FnOnce()>(f: F) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("call must panic");
    if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string payload>")
    }
}

/// The payload must name a thread failure. Which wording arrives
/// depends on the scope backend: crossbeam's scope returns `Err`, so
/// the caller sees this crate's `worker thread panicked` expect
/// message; an std-scope backend re-raises at join time with either
/// the worker's own payload or its generic "scoped thread panicked".
fn names_the_failure(payload: &str, original: &str) -> bool {
    payload.contains("worker thread panicked")
        || payload.contains("scoped thread panicked")
        || payload.contains(original)
}

// The default hook prints every worker's backtrace before the scope
// rethrows, which buries real failures in noise; tests that provoke
// panics on purpose silence it first (this binary is its own process,
// so the global hook is ours to take).
fn silence_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

#[test]
fn par_map_indexed_propagates_a_worker_panic() {
    silence_panics();
    let payload = payload_of(|| {
        par_map_indexed(64, 4, |i| {
            if i == 37 {
                panic!("index 37 is cursed");
            }
            i
        });
    });
    assert!(
        names_the_failure(&payload, "index 37 is cursed"),
        "payload was: {payload}"
    );
}

#[test]
fn par_map_indexed_sequential_fallback_propagates_the_original_panic() {
    silence_panics();
    let payload = payload_of(|| {
        par_map_indexed(8, 1, |i| {
            if i == 3 {
                panic!("index 3 is cursed");
            }
            i
        });
    });
    // No worker threads on the fallback path: the caller sees the
    // closure's own panic, unwrapped.
    assert!(
        payload.contains("index 3 is cursed"),
        "payload was: {payload}"
    );
}

#[test]
fn par_chunks_mut_propagates_a_worker_panic() {
    silence_panics();
    let mut data = vec![0u32; 256];
    let payload = payload_of(|| {
        par_chunks_mut(&mut data, 16, 4, |base, _chunk| {
            if base == 64 {
                panic!("chunk at 64 is cursed");
            }
        });
    });
    assert!(
        names_the_failure(&payload, "chunk at 64 is cursed"),
        "payload was: {payload}"
    );
}

#[test]
fn par_chunks_mut_sequential_fallback_propagates_the_original_panic() {
    silence_panics();
    let mut data = vec![0u32; 8];
    let payload = payload_of(|| {
        par_chunks_mut(&mut data, 16, 4, |_base, _chunk| {
            panic!("lone chunk is cursed");
        });
    });
    assert!(
        payload.contains("lone chunk is cursed"),
        "payload was: {payload}"
    );
}
