//! A small persistent thread pool for `'static` background jobs.
//!
//! The scoped helpers in the crate root cover the data-parallel kernels;
//! this pool exists for long-lived experiment drivers (e.g. running the
//! five repetitions of a Table V cell concurrently) where spawning scoped
//! threads per repetition would tangle lifetimes through the harness.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    pending: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

/// Fixed-size worker pool. Jobs are executed FIFO per worker pickup order;
/// `wait_idle` blocks until every submitted job has finished.
///
/// Dropping the pool closes the queue and joins all workers (outstanding
/// jobs run to completion first).
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = unbounded::<Job>();
        let shared = Arc::new(Shared {
            pending: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hfl-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                            if shared.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                                let _g = shared.idle_lock.lock();
                                shared.idle_cv.notify_all();
                            }
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
            shared,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job for asynchronous execution.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.tx
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(f))
            .expect("pool workers gone");
    }

    /// Blocks until all jobs submitted so far have completed.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_lock.lock();
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            self.shared.idle_cv.wait(&mut guard);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 1..=100u64 {
            let sum = Arc::clone(&sum);
            pool.execute(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let pool = ThreadPool::new(2);
        pool.wait_idle();
    }

    #[test]
    fn drop_joins_outstanding_work() {
        let sum = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let sum = Arc::clone(&sum);
                pool.execute(move || {
                    sum.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop waits
        assert_eq!(sum.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn at_least_one_thread() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
    }
}
