//! # hfl-parallel
//!
//! Minimal, safe fork-join parallelism for the ABD-HFL reproduction.
//!
//! The workloads we parallelize are coarse and regular: train 64 clients'
//! local models, fill an O(n²) pairwise-distance matrix for Krum, run
//! Weiszfeld iterations over row chunks. Rayon-style work stealing would be
//! overkill; scoped threads with static chunking (à la `par_chunks`) give
//! the same data-race-freedom guarantee — if it compiles, the splits are
//! disjoint — with no dependency beyond `crossbeam`.
//!
//! All entry points degrade gracefully to sequential execution when the
//! requested thread count is 1 or the input is tiny, so unit tests and
//! single-core CI behave identically to parallel runs (the kernels are
//! deterministic; only scheduling order differs, and no entry point here
//! exposes scheduling order).

pub mod pool;

use std::num::NonZeroUsize;

/// Number of worker threads to use by default: the available parallelism,
/// capped at 16 (our largest fan-out, a 64-client round, saturates well
/// before that and oversubscription only adds noise to benchmarks).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(16)
}

/// Runs `f` on `0..n` in parallel, collecting results in index order.
///
/// `f` is called exactly once per index. Results arrive in input order
/// regardless of scheduling, so callers can rely on positional mapping
/// (client `i` → result `i`).
pub fn par_map_indexed<U, F>(n: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (t, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move |_| {
                let base = t * chunk;
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter()
        .map(|o| o.expect("par_map_indexed slot unfilled"))
        .collect()
}

/// Parallel map over a slice, preserving order.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), threads, |i| f(&items[i]))
}

/// Applies `f` to disjoint mutable chunks of `data` in parallel. Each call
/// receives the chunk and the index of its first element.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let threads = threads.max(1);
    if threads == 1 || data.len() <= chunk_len {
        for (i, c) in data.chunks_mut(chunk_len).enumerate() {
            f(i * chunk_len, c);
        }
        return;
    }
    // Hand chunks out over a shared atomic cursor so long chunks don't
    // serialize behind one worker. Declared outside the scope so borrows
    // outlive the spawned workers.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let chunk_list: Vec<Option<(usize, &mut [T])>> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(i, c)| Some((i * chunk_len, c)))
        .collect();
    let chunks = parking_lot::Mutex::new(chunk_list);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            let f = &f;
            let next = &next;
            let chunks = &chunks;
            s.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let job = {
                    let mut guard = chunks.lock();
                    if i >= guard.len() {
                        return;
                    }
                    guard[i].take()
                };
                let Some((base, chunk)) = job else { return };
                f(base, chunk);
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel fold-then-reduce: maps every index through `f`, then combines
/// results with `combine`. Returns `identity()` for `n == 0`.
///
/// `combine` must be associative and commute with the identity; the
/// reduction tree shape is unspecified.
pub fn par_reduce<U, F, C, I>(n: usize, threads: usize, identity: I, f: F, combine: C) -> U
where
    U: Send,
    F: Fn(usize) -> U + Sync,
    C: Fn(U, U) -> U + Sync,
    I: Fn() -> U,
{
    if n == 0 {
        return identity();
    }
    let partials = par_map_indexed(n, threads, f);
    partials.into_iter().fold(identity(), combine)
}

/// Fork-join: runs the two closures potentially in parallel and returns
/// both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    crossbeam::thread::scope(|s| {
        let hb = s.spawn(|_| b());
        let ra = a();
        let rb = hb.join().expect("join arm panicked");
        (ra, rb)
    })
    .expect("join scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<usize> = (0..100).collect();
        let ys = par_map(&xs, 4, |x| x * 2);
        assert_eq!(ys, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_sequential_fallback_matches() {
        let xs: Vec<usize> = (0..37).collect();
        let seq = par_map(&xs, 1, |x| x + 1);
        let par = par_map(&xs, 8, |x| x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_indexed_calls_each_once() {
        let count = AtomicUsize::new(0);
        let out = par_map_indexed(1000, 8, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<usize> = par_map_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn par_chunks_mut_touches_everything() {
        let mut data = vec![0u32; 1003];
        par_chunks_mut(&mut data, 64, 4, |base, chunk| {
            for (off, x) in chunk.iter_mut().enumerate() {
                *x = (base + off) as u32;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn par_reduce_sums() {
        let total = par_reduce(1000, 4, || 0usize, |i| i, |a, b| a + b);
        assert_eq!(total, 499_500);
    }

    #[test]
    fn par_reduce_empty_is_identity() {
        let total = par_reduce(0, 4, || 42usize, |i| i, |a, b| a + b);
        assert_eq!(total, 42);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
