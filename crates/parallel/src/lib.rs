//! # hfl-parallel
//!
//! Minimal, safe-to-call fork-join parallelism for the ABD-HFL
//! reproduction.
//!
//! The workloads we parallelize are coarse but *skewed*: train 64
//! clients' local models (shard sizes and iteration counts differ per
//! client under heterogeneity profiles), fill an O(n²) pairwise-distance
//! matrix for Krum (row `i` has `n − i − 1` pairs under symmetry
//! halving), run Weiszfeld iterations over row chunks. Static chunking
//! starves under that skew — one worker draws the heavy rows while the
//! rest idle — so every entry point here schedules **work-stealing
//! blocks**: workers claim fixed-size index blocks off a shared atomic
//! cursor and write results only into the output slots of the blocks
//! they claimed.
//!
//! ## Determinism contract (DESIGN.md §15)
//!
//! *Which worker* executes a block is scheduling-dependent and varies
//! run to run; *what gets written where* is not:
//!
//! * **Output-slot ownership** — block `b` covers a fixed index range
//!   `[b·B, min((b+1)·B, n))` determined by integer arithmetic alone.
//!   The worker that claims `b` (one `fetch_add` winner) writes exactly
//!   those output slots and no others, so the final output is a pure
//!   function of the per-index closure, independent of the claim order.
//! * **No wall-clock ordering** — nothing here reads time, and no entry
//!   point exposes claim order, worker identity, or completion order to
//!   the caller. Reductions combine partials in index order.
//!
//! All entry points degrade to sequential execution when the requested
//! thread count is 1 or the input is tiny, so unit tests and single-core
//! CI behave identically to parallel runs — and the sequential paths
//! perform no heap allocation beyond the output the caller asked for.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide override for `default_threads()`; 0 means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces `default_threads()` to return `n` process-wide; pass 0 to
/// restore autodetection. Intended for harnesses that must pin the
/// execution mode — e.g. the allocation-regression gate pins 1 thread
/// so every hot path takes its allocation-free sequential form (thread
/// spawning itself allocates). Results are byte-identical at any
/// thread count (see the determinism contract above); only the
/// execution strategy changes.
pub fn set_default_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Number of worker threads to use by default: the available parallelism,
/// capped at 16 (our largest fan-out, a 64-client round, saturates well
/// before that and oversubscription only adds noise to benchmarks), or
/// the value pinned via [`set_default_threads`].
pub fn default_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(16)
}

/// Blocks handed out per worker on average. More blocks per worker means
/// finer-grained stealing (better load balance under skew) at the price
/// of more cursor traffic; 4 is a comfortable middle for our fan-outs.
const STEAL_GRAIN: usize = 4;

/// Work-stealing block size for `n` items across `threads` workers.
fn block_size(n: usize, threads: usize) -> usize {
    n.div_ceil(threads * STEAL_GRAIN).max(1)
}

/// A raw pointer that may cross thread boundaries. Safety is argued at
/// each use site: workers write through it only at indices inside blocks
/// they claimed, and blocks partition the index range disjointly.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Runs `f` on `0..n` in parallel, collecting results in index order.
///
/// `f` is called exactly once per index. Scheduling is work-stealing
/// (workers claim blocks of indices off an atomic cursor), but results
/// land in input order regardless of which worker computed them, so
/// callers can rely on positional mapping (client `i` → result `i`).
pub fn par_map_indexed<U, F>(n: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let block = block_size(n, threads);
    let blocks = n.div_ceil(block);
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let cursor = AtomicUsize::new(0);
    let slots = SendPtr(out.as_mut_ptr());
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(blocks) {
            let f = &f;
            let cursor = &cursor;
            let slots = &slots;
            s.spawn(move |_| loop {
                let b = cursor.fetch_add(1, Ordering::Relaxed);
                if b >= blocks {
                    return;
                }
                let lo = b * block;
                let hi = (lo + block).min(n);
                for i in lo..hi {
                    let v = f(i);
                    // SAFETY: this worker won block `b` via the
                    // fetch_add above, blocks partition `0..n`
                    // disjointly, and `out` outlives the scope — so
                    // slot `i` is written exactly once, by this thread.
                    unsafe { *slots.0.add(i) = Some(v) };
                }
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter()
        .map(|o| o.expect("par_map_indexed slot unfilled"))
        .collect()
}

/// Parallel map over a slice, preserving order.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), threads, |i| f(&items[i]))
}

/// Applies `f` to disjoint mutable chunks of `data` in parallel. Each call
/// receives the chunk and the index of its first element.
///
/// Chunks are claimed off a shared atomic cursor (work stealing at chunk
/// granularity), so long chunks don't serialize behind one worker; each
/// chunk is still processed exactly once and writes stay inside it. The
/// sequential path (threads = 1, or a single chunk) allocates nothing.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let threads = threads.max(1);
    if threads == 1 || data.len() <= chunk_len {
        for (i, c) in data.chunks_mut(chunk_len).enumerate() {
            f(i * chunk_len, c);
        }
        return;
    }
    let n = data.len();
    let chunks = n.div_ceil(chunk_len);
    let cursor = AtomicUsize::new(0);
    let base_ptr = SendPtr(data.as_mut_ptr());
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(chunks) {
            let f = &f;
            let cursor = &cursor;
            let base_ptr = &base_ptr;
            s.spawn(move |_| loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    return;
                }
                let lo = c * chunk_len;
                let hi = (lo + chunk_len).min(n);
                // SAFETY: chunk `c` was claimed by exactly this worker,
                // chunk ranges partition `0..n` disjointly, and `data`
                // outlives the scope — the reborrow below aliases no
                // other worker's slice.
                let chunk =
                    unsafe { std::slice::from_raw_parts_mut(base_ptr.0.add(lo), hi - lo) };
                f(lo, chunk);
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel fold-then-reduce: maps every index through `f`, then combines
/// results with `combine`. Returns `identity()` for `n == 0`.
///
/// `combine` must be associative and commute with the identity; partials
/// are folded in index order, so the reduction value is independent of
/// scheduling even for non-commutative-in-floating-point combines.
pub fn par_reduce<U, F, C, I>(n: usize, threads: usize, identity: I, f: F, combine: C) -> U
where
    U: Send,
    F: Fn(usize) -> U + Sync,
    C: Fn(U, U) -> U + Sync,
    I: Fn() -> U,
{
    if n == 0 {
        return identity();
    }
    let partials = par_map_indexed(n, threads, f);
    partials.into_iter().fold(identity(), combine)
}

/// Fork-join: runs the two closures potentially in parallel and returns
/// both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    crossbeam::thread::scope(|s| {
        let hb = s.spawn(|_| b());
        let ra = a();
        let rb = hb.join().expect("join arm panicked");
        (ra, rb)
    })
    .expect("join scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<usize> = (0..100).collect();
        let ys = par_map(&xs, 4, |x| x * 2);
        assert_eq!(ys, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_sequential_fallback_matches() {
        let xs: Vec<usize> = (0..37).collect();
        let seq = par_map(&xs, 1, |x| x + 1);
        let par = par_map(&xs, 8, |x| x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_indexed_calls_each_once() {
        let count = AtomicUsize::new(0);
        let out = par_map_indexed(1000, 8, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<usize> = par_map_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn skewed_workloads_still_place_deterministically() {
        // A triangular workload (index i costs ~i work) is the Krum
        // upper-triangle shape that starves static chunking; under
        // work stealing the result must still be position-exact for
        // every thread count.
        let cost = |i: usize| -> u64 { (0..(i % 97) * 50).map(|k| k as u64).sum::<u64>() ^ i as u64 };
        let expected: Vec<u64> = (0..500).map(cost).collect();
        for threads in [1, 2, 4, 8] {
            let got = par_map_indexed(500, threads, cost);
            assert_eq!(got, expected, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn block_size_is_positive_and_covers() {
        for n in [1usize, 2, 7, 64, 1000] {
            for threads in [1usize, 2, 5, 16] {
                let b = block_size(n, threads);
                assert!(b >= 1);
                assert!(n.div_ceil(b) * b >= n, "blocks must cover 0..n");
            }
        }
    }

    #[test]
    fn par_chunks_mut_touches_everything() {
        let mut data = vec![0u32; 1003];
        par_chunks_mut(&mut data, 64, 4, |base, chunk| {
            for (off, x) in chunk.iter_mut().enumerate() {
                *x = (base + off) as u32;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn par_chunks_mut_ragged_tail_has_right_length() {
        let mut data = vec![0usize; 130];
        par_chunks_mut(&mut data, 32, 4, |base, chunk| {
            for x in chunk.iter_mut() {
                *x = base + 1;
            }
        });
        // The last chunk starts at 128 and has 2 elements.
        assert!(data[128..].iter().all(|&x| x == 129));
    }

    #[test]
    fn par_reduce_sums() {
        let total = par_reduce(1000, 4, || 0usize, |i| i, |a, b| a + b);
        assert_eq!(total, 499_500);
    }

    #[test]
    fn par_reduce_empty_is_identity() {
        let total = par_reduce(0, 4, || 42usize, |i| i, |a, b| a + b);
        assert_eq!(total, 42);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
