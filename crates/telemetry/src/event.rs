//! Structured, typed events for every observable action of the stack,
//! plus the [`Recorder`] sink trait (SNIPPETS doctrine: "emit structured
//! events for observable actions" — if a system mutates world state, an
//! event lets a replay log assert behavior).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One observable action. Times are simulated microseconds where
/// present; wall time never appears here (determinism contract).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A global training round began.
    RoundStarted {
        /// Round index (0-based).
        round: usize,
    },
    /// A global training round completed, with its cost deltas.
    RoundFinished {
        /// Round index (0-based).
        round: usize,
        /// Model-bearing messages exchanged this round.
        messages: u64,
        /// Payload bytes exchanged this round.
        bytes: u64,
        /// Proposals excluded by consensus this round.
        excluded: u64,
        /// Client absences caused by churn this round.
        absent: u64,
    },
    /// The global model was evaluated on the test set.
    Evaluated {
        /// Round index (0-based).
        round: usize,
        /// Test accuracy in `[0, 1]`.
        accuracy: f64,
    },
    /// One cluster formed its partial (or global) aggregate.
    ClusterAggregated {
        /// Round index (0-based).
        round: usize,
        /// Hierarchy level (0 = top).
        level: usize,
        /// Cluster index within the level.
        cluster: usize,
        /// Number of input models actually aggregated.
        inputs: usize,
        /// Quorum that was required (Algorithm 4's ⌈φ·present⌉).
        quorum: usize,
    },
    /// A consensus mechanism excluded a proposal as suspicious.
    ProposalExcluded {
        /// Round index (0-based).
        round: usize,
        /// Hierarchy level (0 = top).
        level: usize,
        /// Cluster index within the level.
        cluster: usize,
        /// Index of the excluded proposal within the cluster's inputs.
        proposal: usize,
    },
    /// A client was absent this round under churn (Assumption 3).
    ChurnAbsence {
        /// Round index (0-based).
        round: usize,
        /// The absent bottom-level client.
        client: usize,
    },
    /// Model-bearing messages were sent (aggregate accounting, matching
    /// the synchronous runner's bulk cost model).
    MessagesSent {
        /// Round index (0-based).
        round: usize,
        /// Hierarchy level the transfer belongs to (0 = top;
        /// `usize::MAX` is never used — dissemination is charged to the
        /// level it traverses).
        level: usize,
        /// Message count.
        count: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// A timeline event bridged from the discrete-event simulator's
    /// trace (`hfl-simnet`).
    Sim {
        /// Simulated time in microseconds.
        time_us: u64,
        /// Round index (0-based).
        round: usize,
        /// Hierarchy level (0 = top).
        level: usize,
        /// Cluster index within the level.
        cluster: usize,
        /// The trace label (e.g. `QuorumReached`).
        kind: String,
    },
    /// Something violated an internal invariant but was tolerated and
    /// counted instead of crashing (e.g. an out-of-order trace record).
    Anomaly {
        /// Anomaly class (e.g. `trace_out_of_order`).
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A scheduled fault (or its recovery) activated (`hfl-faults`).
    FaultInjected {
        /// Round index (0-based).
        round: usize,
        /// Stable fault label (`crash_stop`, `partition_heal`, ...).
        kind: String,
        /// Deterministic detail (which node, which groups, ...).
        detail: String,
    },
    /// A cluster's leader was down and a deputy collected in its place.
    LeaderFailover {
        /// Round index (0-based).
        round: usize,
        /// Hierarchy level (0 = top).
        level: usize,
        /// Cluster index within the level.
        cluster: usize,
        /// The crashed leader's device id.
        failed: usize,
        /// The promoted deputy's device id.
        promoted: usize,
    },
    /// A cluster aggregated with fewer inputs than the fault-free quorum
    /// because faults removed members (Algorithm 4's timeout branch).
    DegradedQuorum {
        /// Round index (0-based).
        round: usize,
        /// Hierarchy level (0 = top).
        level: usize,
        /// Cluster index within the level.
        cluster: usize,
        /// Members that actually contributed.
        alive: usize,
        /// Members a fault-free round would have drawn from.
        expected: usize,
    },
    /// The suspicion layer crossed a client's score over the quarantine
    /// threshold: its updates are excluded until released.
    ClientQuarantined {
        /// Round index (0-based).
        round: usize,
        /// The quarantined client.
        client: usize,
        /// The score at the transition.
        score: f64,
    },
    /// A quarantined client's score decayed below the release threshold
    /// (rehabilitation): its updates re-enter aggregation.
    ClientReleased {
        /// Round index (0-based).
        round: usize,
        /// The released client.
        client: usize,
        /// The score at the transition.
        score: f64,
    },
    /// The echo/audit digest check caught a cluster leader sending a
    /// different aggregate upward than it echoed to its members.
    EquivocationDetected {
        /// Round index (0-based).
        round: usize,
        /// Hierarchy level of the equivocating cluster (bottom).
        level: usize,
        /// Cluster index within the level.
        cluster: usize,
        /// The equivocating leader's device id.
        leader: usize,
    },
    /// The adaptive adversary moved its attack magnitude after observing
    /// one round of defense feedback.
    AttackAdapted {
        /// Round index (0-based) of the feedback consumed.
        round: usize,
        /// The magnitude that was used this round.
        magnitude: f64,
        /// Crafted updates the coalition submitted this round.
        submitted: u64,
        /// Of those, updates the defense accepted.
        accepted: u64,
    },
    /// A malicious member selectively withheld its update (the cluster
    /// could form its quorum without it).
    UpdateWithheld {
        /// Round index (0-based).
        round: usize,
        /// The withholding client.
        client: usize,
    },
    /// A deadline-driven collection buffer closed (async rounds,
    /// DESIGN.md §12): first-of `{quorum reached, deadline fired}`.
    BufferClosed {
        /// Round index (0-based).
        round: usize,
        /// Hierarchy level (0 = top).
        level: usize,
        /// Cluster index within the level.
        cluster: usize,
        /// `"quorum"` when the ⌈φ·n⌉-th arrival closed the buffer,
        /// `"deadline"` when the timer fired first.
        cause: String,
        /// Simulated close time, µs from buffer open.
        close_us: u64,
        /// Updates in the buffer at close (on-time arrivals).
        occupancy: usize,
        /// Members the buffer was waiting on.
        expected: usize,
    },
    /// A late update arrived within the staleness bound τ of a closed
    /// buffer and was admitted at a staleness-discounted weight.
    StaleUpdateAdmitted {
        /// Round index (0-based).
        round: usize,
        /// Hierarchy level (0 = top).
        level: usize,
        /// Cluster index within the level.
        cluster: usize,
        /// The late device.
        device: usize,
        /// How far past the buffer close it arrived, µs (≤ τ).
        lateness_us: u64,
        /// The discounted aggregation weight it was admitted with.
        weight: f64,
    },
    /// A late update arrived beyond the staleness bound τ of a closed
    /// buffer and was rejected.
    StaleUpdateDropped {
        /// Round index (0-based).
        round: usize,
        /// Hierarchy level (0 = top).
        level: usize,
        /// Cluster index within the level.
        cluster: usize,
        /// The too-late device.
        device: usize,
        /// How far past the buffer close it arrived, µs (> τ).
        lateness_us: u64,
    },
}

/// An event sink. Implementations must be cheap and thread-safe: events
/// may be recorded from `hfl-parallel` worker threads.
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);

    /// False when events are discarded — callers should skip building
    /// events (and their `String` payloads) on hot paths when disabled.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything; `enabled()` is false so instrumentation is free.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Keeps every event in memory, in record order — the assertion target
/// for tests and the source for post-run analyses.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Drains the recorded events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.record(&Event::RoundStarted { round: 0 });
    }

    #[test]
    fn memory_recorder_keeps_order() {
        let r = MemoryRecorder::new();
        for round in 0..3 {
            r.record(&Event::RoundStarted { round });
        }
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[2], Event::RoundStarted { round: 2 });
        assert_eq!(r.take().len(), 3);
        assert!(r.is_empty());
    }

    #[test]
    fn memory_recorder_is_shareable_across_threads() {
        let r = std::sync::Arc::new(MemoryRecorder::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        r.record(&Event::RoundStarted { round: i });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.len(), 400);
    }
}
