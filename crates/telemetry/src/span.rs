//! Scoped span timers.
//!
//! Two clocks exist in this stack and they must never be confused:
//!
//! * **Sim-time** ([`SimSpan`]) — measured in simulated microseconds
//!   supplied by the caller (the discrete-event engine's `SimTime`).
//!   Fully deterministic; this is the default and the only clock
//!   available in default builds.
//! * **Wall-time** (`WallSpan`) — measured with `std::time::Instant`,
//!   compiled in only under the `wall-clock` feature. Wall readings are
//!   inherently non-reproducible, so nothing that feeds a manifest in a
//!   default build may come from here.

use crate::metrics::Histogram;

/// A sim-time span: begin with the current simulated time, finish with a
/// later one; the duration (in the caller's time unit, conventionally
/// microseconds) is recorded into the histogram.
#[derive(Debug)]
#[must_use = "a span records nothing until finished"]
pub struct SimSpan {
    hist: Histogram,
    start: u64,
}

impl SimSpan {
    /// Opens a span at simulated time `now`.
    pub fn begin(hist: Histogram, now: u64) -> Self {
        Self { hist, start: now }
    }

    /// Closes the span at simulated time `now`, recording the saturating
    /// duration.
    pub fn finish(self, now: u64) {
        self.hist.observe(now.saturating_sub(self.start) as f64);
    }
}

/// A wall-clock span recording elapsed seconds on drop. Only exists with
/// the `wall-clock` feature; default builds cannot observe host time.
#[cfg(feature = "wall-clock")]
#[derive(Debug)]
pub struct WallSpan {
    hist: Histogram,
    start: std::time::Instant,
}

#[cfg(feature = "wall-clock")]
impl WallSpan {
    /// Opens a span now.
    pub fn begin(hist: Histogram) -> Self {
        Self {
            hist,
            start: std::time::Instant::now(),
        }
    }
}

#[cfg(feature = "wall-clock")]
impl Drop for WallSpan {
    fn drop(&mut self) {
        self.hist.observe(self.start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn sim_span_records_duration() {
        let r = Registry::new();
        let h = r.histogram("phase_us", &[]);
        let span = SimSpan::begin(h.clone(), 1_000);
        span.finish(1_250);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(50.0), Some(250.0));
    }

    #[test]
    fn sim_span_saturates_backwards_time() {
        let r = Registry::new();
        let h = r.histogram("phase_us", &[]);
        SimSpan::begin(h.clone(), 500).finish(100);
        assert_eq!(h.percentile(50.0), Some(0.0));
    }

    #[cfg(feature = "wall-clock")]
    #[test]
    fn wall_span_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("wall_s", &[]);
        drop(WallSpan::begin(h.clone()));
        assert_eq!(h.count(), 1);
    }
}
