//! # hfl-telemetry
//!
//! The observability backbone of the ABD-HFL stack: structured events,
//! a metrics registry, and run manifests — every measured quantity of
//! the paper's evaluation (accuracy trajectories, message/byte costs,
//! exclusion counts, the timing decomposition τℓ/τ′ℓ/σ/ν) flows through
//! this crate so that the runner, the pipeline driver, the simulator and
//! the bench harness all report through one layer.
//!
//! Design rules:
//!
//! * **Deterministic by default.** Nothing in the default feature set
//!   reads host time or any other ambient state: spans measure simulated
//!   time ([`SimSpan`]), manifests serialize in a fixed field order with
//!   sorted metric snapshots, and identical seeds therefore produce
//!   byte-identical manifests. Wall-clock timing exists but is gated
//!   behind the `wall-clock` feature so replay determinism is untouched
//!   unless explicitly requested.
//! * **Free when disabled.** The [`NullRecorder`] reports
//!   `enabled() == false`, letting instrumented code skip event
//!   construction entirely on hot paths.
//! * **Safe from worker threads.** The [`Registry`] is sharded behind
//!   cheap locks; [`Counter`]/[`Gauge`] handles are lock-free atomics and
//!   may be cloned into `hfl-parallel` workers.
//!
//! | Module | Contents |
//! |---|---|
//! | [`event`] | [`Event`], the [`Recorder`] trait, [`NullRecorder`], [`MemoryRecorder`] |
//! | [`metrics`] | [`Registry`], [`Counter`], [`Gauge`], [`Histogram`], snapshots |
//! | [`span`] | [`SimSpan`] (sim-time), `WallSpan` (feature `wall-clock`) |
//! | [`manifest`] | [`RunManifest`] and its JSON round-trip |
//! | [`json`] | the minimal self-contained JSON emitter/parser |
//! | [`export`] | JSONL/CSV writers shared by the `repro_*` binaries |

pub mod event;
pub mod export;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod span;

use std::sync::Arc;

pub use event::{Event, MemoryRecorder, NullRecorder, Recorder};
pub use json::{Json, JsonError};
pub use manifest::{
    fnv1a_hex, BuildInfo, ClientScore, FaultRecord, RoundRecord, RunManifest, RunTotals,
    SuspicionRecord, SuspicionSection,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramStats, MetricSample, MetricValue, Registry};
pub use span::SimSpan;
#[cfg(feature = "wall-clock")]
pub use span::WallSpan;

/// The bundle instrumented code threads around: one event recorder plus
/// one metrics registry. Cloning is cheap (two `Arc` bumps) and clones
/// share the same sinks.
#[derive(Clone)]
pub struct Telemetry {
    recorder: Arc<dyn Recorder>,
    registry: Arc<Registry>,
}

impl Telemetry {
    /// Telemetry with a custom recorder and a fresh registry.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Self {
            recorder,
            registry: Arc::new(Registry::new()),
        }
    }

    /// Disabled telemetry: events are dropped ([`NullRecorder`]) and
    /// `enabled()` is false, so instrumentation costs nothing beyond the
    /// branch. The registry still works (counters keep totals).
    pub fn disabled() -> Self {
        Self::new(Arc::new(NullRecorder))
    }

    /// Telemetry capturing every event in memory; returns the recorder
    /// handle for post-run inspection.
    pub fn recording() -> (Self, Arc<MemoryRecorder>) {
        let rec = Arc::new(MemoryRecorder::new());
        (Self::new(Arc::clone(&rec) as Arc<dyn Recorder>), rec)
    }

    /// True when the recorder consumes events — gate event construction
    /// on this in hot paths.
    pub fn enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// Records one event (no-op under [`NullRecorder`]).
    pub fn emit(&self, event: Event) {
        self.recorder.record(&event);
    }

    /// The shared recorder.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_drops_events() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.emit(Event::RoundStarted { round: 0 }); // must not panic
    }

    #[test]
    fn recording_captures_events() {
        let (t, rec) = Telemetry::recording();
        assert!(t.enabled());
        t.emit(Event::RoundStarted { round: 3 });
        t.emit(Event::RoundFinished {
            round: 3,
            messages: 1,
            bytes: 2,
            excluded: 0,
            absent: 0,
        });
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], Event::RoundStarted { round: 3 });
    }

    #[test]
    fn clones_share_sinks() {
        let (t, rec) = Telemetry::recording();
        let t2 = t.clone();
        t2.emit(Event::RoundStarted { round: 1 });
        t2.registry().counter("shared_total", &[]).inc(5);
        assert_eq!(rec.events().len(), 1);
        assert_eq!(t.registry().counter("shared_total", &[]).get(), 5);
    }
}
