//! Run manifests: the single self-describing record of one experiment
//! run — what was run (config hash, seed, build info), what happened
//! (per-round time series, cost totals) and what was measured (the final
//! registry snapshot).
//!
//! Determinism contract: `to_json` emits fields in a fixed order with
//! sorted metrics, contains no timestamps or host identifiers, and in
//! default (no `wall-clock`) builds every input is derived from the seed
//! — so identical seeds produce byte-identical manifests.

use crate::json::{Json, JsonError};
use crate::metrics::{HistogramStats, MetricSample, MetricValue};

/// Manifest schema version, bumped on any incompatible shape change.
/// v2 added the `faults` log (injected faults and recovery actions).
/// v3 added the optional `suspicion` section (quarantine events and
/// final per-client scores from the defense-side suspicion layer).
pub const SCHEMA_VERSION: u32 = 3;

/// FNV-1a 64-bit hash of `bytes`, rendered as 16 lowercase hex chars.
/// Used to fingerprint configs (hash of the config's `Debug` rendering)
/// without pulling in a crypto dependency — collision resistance is not
/// a goal, change detection is.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

/// Compile-time build identity. Deliberately contains nothing sampled at
/// run time: versions come from Cargo, the describe string from the
/// `ABD_HFL_GIT_DESCRIBE` env var at *compile* time (set by CI;
/// `"untracked"` otherwise), features from `cfg!`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildInfo {
    /// Package that produced the manifest.
    pub pkg: String,
    /// Its Cargo version.
    pub version: String,
    /// `git describe`-style string baked in at compile time, or
    /// `"untracked"`.
    pub describe: String,
    /// Compiled-in telemetry features.
    pub features: Vec<String>,
}

impl BuildInfo {
    /// The build info of this compilation.
    pub fn current() -> Self {
        let mut features = Vec::new();
        if cfg!(feature = "wall-clock") {
            features.push("wall-clock".to_string());
        }
        Self {
            pkg: env!("CARGO_PKG_NAME").to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            describe: option_env!("ABD_HFL_GIT_DESCRIBE")
                .unwrap_or("untracked")
                .to_string(),
            features,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("pkg".into(), Json::Str(self.pkg.clone())),
            ("version".into(), Json::Str(self.version.clone())),
            ("describe".into(), Json::Str(self.describe.clone())),
            (
                "features".into(),
                Json::Arr(self.features.iter().cloned().map(Json::Str).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            pkg: str_field(v, "pkg")?,
            version: str_field(v, "version")?,
            describe: str_field(v, "describe")?,
            features: v
                .get("features")
                .and_then(Json::as_arr)
                .ok_or("build.features")?
                .iter()
                .map(|f| f.as_str().map(String::from).ok_or("build.features[]"))
                .collect::<Result<_, _>>()
                .map_err(String::from)?,
        })
    }
}

/// One round of the per-round time series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundRecord {
    /// Round number, 1-based (matches the paper's figures).
    pub round: usize,
    /// Test accuracy, when this round was an evaluation point.
    pub accuracy: Option<f64>,
    /// Messages exchanged this round.
    pub messages: u64,
    /// Bytes exchanged this round.
    pub bytes: u64,
    /// Proposals excluded this round.
    pub excluded: u64,
    /// Client absences this round.
    pub absent: u64,
}

impl RoundRecord {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("round".into(), Json::UInt(self.round as u64)),
            (
                "accuracy".into(),
                match self.accuracy {
                    Some(a) => Json::Num(a),
                    None => Json::Null,
                },
            ),
            ("messages".into(), Json::UInt(self.messages)),
            ("bytes".into(), Json::UInt(self.bytes)),
            ("excluded".into(), Json::UInt(self.excluded)),
            ("absent".into(), Json::UInt(self.absent)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let accuracy = match v.get("accuracy").ok_or("round.accuracy")? {
            Json::Null => None,
            other => Some(other.as_f64().ok_or("round.accuracy")?),
        };
        Ok(Self {
            round: u64_field(v, "round")? as usize,
            accuracy,
            messages: u64_field(v, "messages")?,
            bytes: u64_field(v, "bytes")?,
            excluded: u64_field(v, "excluded")?,
            absent: u64_field(v, "absent")?,
        })
    }
}

/// Whole-run cost totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunTotals {
    /// Total model-bearing messages.
    pub messages: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Total proposals excluded by consensus.
    pub excluded: u64,
    /// Total client absences under churn.
    pub absent: u64,
}

impl RunTotals {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("messages".into(), Json::UInt(self.messages)),
            ("bytes".into(), Json::UInt(self.bytes)),
            ("excluded".into(), Json::UInt(self.excluded)),
            ("absent".into(), Json::UInt(self.absent)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            messages: u64_field(v, "messages")?,
            bytes: u64_field(v, "bytes")?,
            excluded: u64_field(v, "excluded")?,
            absent: u64_field(v, "absent")?,
        })
    }
}

/// One injected fault or recovery action, as recorded in the manifest's
/// fault log (schema v2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Round (0-based) the fault or recovery activated.
    pub round: usize,
    /// Stable kind label (`crash_stop`, `leader_failover`,
    /// `degraded_quorum`, `partition_heal`, ...).
    pub kind: String,
    /// Deterministic human-readable detail.
    pub detail: String,
}

impl FaultRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("round".into(), Json::UInt(self.round as u64)),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("detail".into(), Json::Str(self.detail.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            round: u64_field(v, "round")? as usize,
            kind: str_field(v, "kind")?,
            detail: str_field(v, "detail")?,
        })
    }
}

/// One suspicion-layer state transition (quarantine or release), as
/// recorded in the manifest's suspicion section (schema v3).
#[derive(Clone, Debug, PartialEq)]
pub struct SuspicionRecord {
    /// Round (0-based) the transition happened.
    pub round: usize,
    /// Stable kind label (`quarantined`, `released`, `equivocation`).
    pub kind: String,
    /// The client (or leader) the transition concerns.
    pub client: usize,
    /// Suspicion score at the transition.
    pub score: f64,
}

impl SuspicionRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("round".into(), Json::UInt(self.round as u64)),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("client".into(), Json::UInt(self.client as u64)),
            ("score".into(), Json::Num(self.score)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            round: u64_field(v, "round")? as usize,
            kind: str_field(v, "kind")?,
            client: u64_field(v, "client")? as usize,
            score: f64_field(v, "score")?,
        })
    }
}

/// End-of-run suspicion score of one client (schema v3). Only clients
/// with a nonzero score or an active quarantine appear.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClientScore {
    /// Client id.
    pub client: usize,
    /// Final suspicion score.
    pub score: f64,
    /// True when the client ended the run quarantined.
    pub quarantined: bool,
}

impl ClientScore {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("client".into(), Json::UInt(self.client as u64)),
            ("score".into(), Json::Num(self.score)),
            ("quarantined".into(), Json::Bool(self.quarantined)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            client: u64_field(v, "client")? as usize,
            score: f64_field(v, "score")?,
            quarantined: v
                .get("quarantined")
                .and_then(Json::as_bool)
                .ok_or("score.quarantined")?,
        })
    }
}

/// The manifest's suspicion section (schema v3): what the defense-side
/// suspicion layer did over the run. Present only for runs with the
/// layer enabled.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SuspicionSection {
    /// Quarantine/release/equivocation transitions, in occurrence order.
    pub events: Vec<SuspicionRecord>,
    /// End-of-run scores of implicated clients, ascending by client.
    pub final_scores: Vec<ClientScore>,
}

impl SuspicionSection {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "events".into(),
                Json::Arr(self.events.iter().map(SuspicionRecord::to_json).collect()),
            ),
            (
                "final_scores".into(),
                Json::Arr(self.final_scores.iter().map(|c| c.to_json()).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            events: v
                .get("events")
                .and_then(Json::as_arr)
                .ok_or("suspicion.events")?
                .iter()
                .map(SuspicionRecord::from_json)
                .collect::<Result<_, _>>()?,
            final_scores: v
                .get("final_scores")
                .and_then(Json::as_arr)
                .ok_or("suspicion.final_scores")?
                .iter()
                .map(ClientScore::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// The manifest of one run. Field order in the JSON output matches the
/// struct declaration order, always.
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// Human label, e.g. `"abd-hfl"` or `"table5/ABD-HFL (CBA)/p0.2/rep3"`.
    pub label: String,
    /// The run's master seed.
    pub seed: u64,
    /// [`fnv1a_hex`] of the config's `Debug` rendering.
    pub config_hash: String,
    /// Compile-time build identity.
    pub build: BuildInfo,
    /// Per-round time series (may be empty for drivers without a
    /// synchronous round loop, e.g. the async pipeline).
    pub rounds: Vec<RoundRecord>,
    /// Whole-run cost totals.
    pub totals: RunTotals,
    /// Injected faults and recovery actions, in occurrence order (empty
    /// for fault-free runs; absent in pre-v2 manifests).
    pub faults: Vec<FaultRecord>,
    /// Suspicion-layer record (`None` when the layer was disabled;
    /// absent in pre-v3 manifests). Emitted only when present.
    pub suspicion: Option<SuspicionSection>,
    /// Final test accuracy.
    pub final_accuracy: f64,
    /// Sorted registry snapshot at end of run.
    pub metrics: Vec<MetricSample>,
}

impl RunManifest {
    /// An empty manifest scaffold for `label`/`seed`/`config_hash` with
    /// the current build info.
    pub fn new(label: impl Into<String>, seed: u64, config_hash: String) -> Self {
        Self {
            schema: SCHEMA_VERSION,
            label: label.into(),
            seed,
            config_hash,
            build: BuildInfo::current(),
            rounds: Vec::new(),
            totals: RunTotals::default(),
            faults: Vec::new(),
            suspicion: None,
            final_accuracy: 0.0,
            metrics: Vec::new(),
        }
    }

    /// Serializes to one compact, deterministic JSON line.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("schema".into(), Json::UInt(u64::from(self.schema))),
            ("label".into(), Json::Str(self.label.clone())),
            ("seed".into(), Json::UInt(self.seed)),
            ("config_hash".into(), Json::Str(self.config_hash.clone())),
            ("build".into(), self.build.to_json()),
            (
                "rounds".into(),
                Json::Arr(self.rounds.iter().map(|r| r.to_json()).collect()),
            ),
            ("totals".into(), self.totals.to_json()),
            (
                "faults".into(),
                Json::Arr(self.faults.iter().map(FaultRecord::to_json).collect()),
            ),
        ];
        if let Some(s) = &self.suspicion {
            fields.push(("suspicion".into(), s.to_json()));
        }
        fields.push(("final_accuracy".into(), Json::Num(self.final_accuracy)));
        fields.push((
            "metrics".into(),
            Json::Arr(self.metrics.iter().map(sample_to_json).collect()),
        ));
        Json::Obj(fields).to_string()
    }

    /// Parses a manifest produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let v = Json::parse(text)?;
        Self::from_value(&v).map_err(|field| JsonError {
            pos: 0,
            msg: format!("manifest missing or malformed field: {field}"),
        })
    }

    fn from_value(v: &Json) -> Result<Self, String> {
        Ok(Self {
            schema: u64_field(v, "schema")? as u32,
            label: str_field(v, "label")?,
            seed: u64_field(v, "seed")?,
            config_hash: str_field(v, "config_hash")?,
            build: BuildInfo::from_json(v.get("build").ok_or("build")?)?,
            rounds: v
                .get("rounds")
                .and_then(Json::as_arr)
                .ok_or("rounds")?
                .iter()
                .map(RoundRecord::from_json)
                .collect::<Result<_, _>>()?,
            totals: RunTotals::from_json(v.get("totals").ok_or("totals")?)?,
            // Absent in pre-v2 manifests: default to an empty log.
            faults: match v.get("faults") {
                Some(f) => f
                    .as_arr()
                    .ok_or("faults")?
                    .iter()
                    .map(FaultRecord::from_json)
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            },
            // Absent in pre-v3 manifests and for runs without the layer.
            suspicion: match v.get("suspicion") {
                Some(s) => Some(SuspicionSection::from_json(s)?),
                None => None,
            },
            final_accuracy: v
                .get("final_accuracy")
                .and_then(Json::as_f64)
                .ok_or("final_accuracy")?,
            metrics: v
                .get("metrics")
                .and_then(Json::as_arr)
                .ok_or("metrics")?
                .iter()
                .map(sample_from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or_else(|| key.to_string())
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| key.to_string())
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| key.to_string())
}

fn sample_to_json(s: &MetricSample) -> Json {
    let value = match &s.value {
        MetricValue::Counter(c) => Json::Obj(vec![
            ("type".into(), Json::Str("counter".into())),
            ("value".into(), Json::UInt(*c)),
        ]),
        MetricValue::Gauge(g) => Json::Obj(vec![
            ("type".into(), Json::Str("gauge".into())),
            ("value".into(), Json::Num(*g)),
        ]),
        MetricValue::Histogram(h) => Json::Obj(vec![
            ("type".into(), Json::Str("histogram".into())),
            ("count".into(), Json::UInt(h.count)),
            ("sum".into(), Json::Num(h.sum)),
            ("min".into(), Json::Num(h.min)),
            ("max".into(), Json::Num(h.max)),
            ("p50".into(), Json::Num(h.p50)),
            ("p90".into(), Json::Num(h.p90)),
            ("p99".into(), Json::Num(h.p99)),
        ]),
    };
    Json::Obj(vec![
        ("name".into(), Json::Str(s.name.clone())),
        (
            "labels".into(),
            Json::Obj(
                s.labels
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ),
        ("value".into(), value),
    ])
}

fn sample_from_json(v: &Json) -> Result<MetricSample, String> {
    let labels = v
        .get("labels")
        .and_then(Json::as_obj)
        .ok_or("metric.labels")?
        .iter()
        .map(|(k, val)| {
            val.as_str()
                .map(|s| (k.clone(), s.to_string()))
                .ok_or_else(|| "metric.labels[]".to_string())
        })
        .collect::<Result<_, _>>()?;
    let vv = v.get("value").ok_or("metric.value")?;
    let value = match vv
        .get("type")
        .and_then(Json::as_str)
        .ok_or("metric.value.type")?
    {
        "counter" => MetricValue::Counter(u64_field(vv, "value")?),
        "gauge" => MetricValue::Gauge(f64_field(vv, "value")?),
        "histogram" => MetricValue::Histogram(HistogramStats {
            count: u64_field(vv, "count")?,
            sum: f64_field(vv, "sum")?,
            min: f64_field(vv, "min")?,
            max: f64_field(vv, "max")?,
            p50: f64_field(vv, "p50")?,
            p90: f64_field(vv, "p90")?,
            p99: f64_field(vv, "p99")?,
        }),
        other => return Err(format!("metric.value.type '{other}'")),
    };
    Ok(MetricSample {
        name: str_field(v, "name")?,
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_manifest(seed: u64) -> RunManifest {
        let registry = Registry::new();
        registry.counter("hfl_messages_total", &[]).inc(1234);
        registry
            .counter("consensus_excluded_total", &[("mechanism", "cba")])
            .inc(7);
        registry.gauge("hfl_accuracy", &[]).set(0.8125);
        let h = registry.histogram("round_span_us", &[]);
        for v in [10.0, 20.0, 30.0] {
            h.observe(v);
        }
        let mut m = RunManifest::new("unit", seed, fnv1a_hex(b"cfg-debug"));
        m.rounds = vec![
            RoundRecord {
                round: 1,
                accuracy: None,
                messages: 600,
                bytes: 2400,
                excluded: 3,
                absent: 1,
            },
            RoundRecord {
                round: 2,
                accuracy: Some(0.75),
                messages: 634,
                bytes: 2536,
                excluded: 4,
                absent: 0,
            },
        ];
        m.totals = RunTotals {
            messages: 1234,
            bytes: 4936,
            excluded: 7,
            absent: 1,
        };
        m.faults = vec![
            FaultRecord {
                round: 5,
                kind: "crash_stop".into(),
                detail: "node 3 crashes".into(),
            },
            FaultRecord {
                round: 6,
                kind: "leader_failover".into(),
                detail: "level 2 cluster 0: node 4 promoted over node 0".into(),
            },
        ];
        m.final_accuracy = 0.8125;
        m.metrics = registry.snapshot();
        m
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"a"), "af63dc4c8601ec8c");
        assert_eq!(fnv1a_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        // A seed above 2^53 exercises exact u64 round-tripping.
        let m = sample_manifest(0xFEED_FACE_DEAD_BEEF);
        let text = m.to_json();
        let back = RunManifest::from_json(&text).expect("parse back");
        assert_eq!(back, m);
    }

    #[test]
    fn identical_inputs_give_byte_identical_json() {
        let a = sample_manifest(42).to_json();
        let b = sample_manifest(42).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn json_field_order_is_fixed() {
        let text = sample_manifest(1).to_json();
        let schema_at = text.find("\"schema\"").unwrap();
        let label_at = text.find("\"label\"").unwrap();
        let metrics_at = text.find("\"metrics\"").unwrap();
        assert!(schema_at < label_at && label_at < metrics_at);
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(!text.contains('\n'), "manifest must be one line for JSONL");
    }

    #[test]
    fn malformed_manifest_is_rejected() {
        assert!(RunManifest::from_json("{}").is_err());
        assert!(RunManifest::from_json("not json").is_err());
        let mut m = sample_manifest(2);
        m.metrics.clear();
        let broken = m.to_json().replace("\"seed\"", "\"sneed\"");
        assert!(RunManifest::from_json(&broken).is_err());
    }

    #[test]
    fn fault_log_sits_between_totals_and_final_accuracy() {
        let text = sample_manifest(3).to_json();
        let totals_at = text.find("\"totals\"").unwrap();
        let faults_at = text.find("\"faults\"").unwrap();
        let acc_at = text.find("\"final_accuracy\"").unwrap();
        assert!(totals_at < faults_at && faults_at < acc_at);
        assert!(text.contains("\"crash_stop\""));
    }

    #[test]
    fn pre_v2_manifest_without_faults_still_parses() {
        let mut m = sample_manifest(4);
        m.faults.clear();
        let text = m.to_json().replace(",\"faults\":[]", "");
        assert!(!text.contains("faults"));
        let back = RunManifest::from_json(&text).expect("lenient parse");
        assert!(back.faults.is_empty());
        assert_eq!(back.seed, m.seed);
    }

    fn with_suspicion(seed: u64) -> RunManifest {
        let mut m = sample_manifest(seed);
        m.suspicion = Some(SuspicionSection {
            events: vec![
                SuspicionRecord {
                    round: 2,
                    kind: "quarantined".into(),
                    client: 3,
                    score: 2.44,
                },
                SuspicionRecord {
                    round: 4,
                    kind: "equivocation".into(),
                    client: 0,
                    score: 3.0,
                },
                SuspicionRecord {
                    round: 9,
                    kind: "released".into(),
                    client: 3,
                    score: 0.61,
                },
            ],
            final_scores: vec![
                ClientScore {
                    client: 0,
                    score: 1.2,
                    quarantined: true,
                },
                ClientScore {
                    client: 3,
                    score: 0.4,
                    quarantined: false,
                },
            ],
        });
        m
    }

    #[test]
    fn suspicion_section_roundtrips() {
        let m = with_suspicion(7);
        let back = RunManifest::from_json(&m.to_json()).expect("parse back");
        assert_eq!(back, m);
    }

    #[test]
    fn suspicion_sits_between_faults_and_final_accuracy() {
        let text = with_suspicion(8).to_json();
        let faults_at = text.find("\"faults\"").unwrap();
        let susp_at = text.find("\"suspicion\"").unwrap();
        let acc_at = text.find("\"final_accuracy\"").unwrap();
        assert!(faults_at < susp_at && susp_at < acc_at);
        assert!(text.contains("\"quarantined\""));
    }

    #[test]
    fn suspicion_key_is_absent_when_layer_disabled() {
        let m = sample_manifest(9);
        assert!(m.suspicion.is_none());
        let text = m.to_json();
        assert!(!text.contains("\"suspicion\""));
        // Pre-v3 manifests (no key at all) parse leniently to None.
        let back = RunManifest::from_json(&text).expect("lenient parse");
        assert!(back.suspicion.is_none());
    }

    #[test]
    fn build_info_has_no_runtime_inputs() {
        let b = BuildInfo::current();
        assert_eq!(b.pkg, "hfl-telemetry");
        assert!(!b.version.is_empty());
        // Either the compile-time env var or the fixed fallback — never a
        // value sampled at run time.
        assert!(b == BuildInfo::current());
    }
}
