//! Exporters shared by every `repro_*` binary: manifests as JSONL (one
//! [`RunManifest`] per line) and registry snapshots as CSV.
//!
//! All writers return `io::Result` — reproduction binaries decide how to
//! surface failures (they exit non-zero with the path); library code
//! must not panic on a full disk.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::manifest::RunManifest;
use crate::metrics::{MetricSample, MetricValue};

/// Writes `manifests` to `dir/name.manifests.jsonl`, one JSON document
/// per line, creating `dir` if needed. Returns the written path.
pub fn write_manifests_jsonl(
    dir: &Path,
    name: &str,
    manifests: &[RunManifest],
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.manifests.jsonl"));
    let mut out = String::new();
    for m in manifests {
        out.push_str(&m.to_json());
        out.push('\n');
    }
    fs::write(&path, out)?;
    Ok(path)
}

/// Reads a JSONL file written by [`write_manifests_jsonl`]. Parse
/// failures surface as [`io::ErrorKind::InvalidData`] with the offending
/// line number.
pub fn read_manifests_jsonl(path: &Path) -> io::Result<Vec<RunManifest>> {
    let text = fs::read_to_string(path)?;
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            RunManifest::from_json(line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", path.display(), i + 1),
                )
            })
        })
        .collect()
}

/// Writes a registry snapshot to `dir/name.metrics.csv` with the header
/// `name,labels,kind,value,count,sum,min,max,p50,p90,p99` (histogram
/// columns empty for counters/gauges). Returns the written path.
pub fn write_metrics_csv(dir: &Path, name: &str, samples: &[MetricSample]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.metrics.csv"));
    let file = fs::File::create(&path)?;
    let mut w = io::BufWriter::new(file);
    writeln!(w, "name,labels,kind,value,count,sum,min,max,p50,p90,p99")?;
    for s in samples {
        let labels = s
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(";");
        match &s.value {
            MetricValue::Counter(c) => {
                writeln!(w, "{},{labels},counter,{c},,,,,,,", s.name)?;
            }
            MetricValue::Gauge(g) => {
                writeln!(w, "{},{labels},gauge,{g},,,,,,,", s.name)?;
            }
            MetricValue::Histogram(h) => {
                writeln!(
                    w,
                    "{},{labels},histogram,,{},{},{},{},{},{},{}",
                    s.name, h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                )?;
            }
        }
    }
    w.flush()?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{fnv1a_hex, RoundRecord, RunTotals};
    use crate::metrics::Registry;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hfl-telemetry-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest(label: &str, seed: u64) -> RunManifest {
        let mut m = RunManifest::new(label, seed, fnv1a_hex(label.as_bytes()));
        m.rounds.push(RoundRecord {
            round: 1,
            accuracy: Some(0.5),
            messages: 10,
            bytes: 40,
            excluded: 0,
            absent: 0,
        });
        m.totals = RunTotals {
            messages: 10,
            bytes: 40,
            excluded: 0,
            absent: 0,
        };
        m.final_accuracy = 0.5;
        m
    }

    #[test]
    fn manifests_roundtrip_through_jsonl() {
        let dir = temp_dir("jsonl");
        let written = vec![manifest("a", 1), manifest("b", u64::MAX)];
        let path = write_manifests_jsonl(&dir, "run", &written).unwrap();
        assert!(path.ends_with("run.manifests.jsonl"));
        let read = read_manifests_jsonl(&path).unwrap();
        assert_eq!(read, written);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_jsonl_reports_line() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.manifests.jsonl");
        fs::write(&path, "{not json}\n").unwrap();
        let err = read_manifests_jsonl(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(":1:"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_csv_has_header_and_rows() {
        let dir = temp_dir("csv");
        let r = Registry::new();
        r.counter("c_total", &[("level", "1")]).inc(3);
        r.gauge("g", &[]).set(0.25);
        r.histogram("h", &[]).observe(2.0);
        let path = write_metrics_csv(&dir, "run", &r.snapshot()).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "name,labels,kind,value,count,sum,min,max,p50,p90,p99"
        );
        assert!(text.contains("c_total,level=1,counter,3,"));
        assert!(text.contains("g,,gauge,0.25,"));
        assert!(text.contains("h,,histogram,,1,2,2,2,2,2,2"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = read_manifests_jsonl(Path::new("/nonexistent/x.jsonl")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
