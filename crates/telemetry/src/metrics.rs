//! Metric instruments keyed by static name + label set, behind a
//! lock-cheap sharded registry.
//!
//! * [`Counter`] / [`Gauge`] are lock-free atomics once obtained — clone
//!   the handle into `hfl-parallel` workers and increment freely.
//! * [`Histogram`] stores exact samples behind a short mutex, so
//!   percentiles are exact and deterministic (no bucket approximation;
//!   the workloads observe thousands of samples per run, not millions).
//! * [`Registry::snapshot`] returns samples sorted by `(name, labels)`,
//!   making every export byte-deterministic regardless of registration
//!   or hashing order.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

/// Number of independently locked registry shards.
const SHARDS: usize = 16;

/// Identity of an instrument: a static name plus an ordered label set.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (static: instrumentation sites name metrics in code).
    pub name: &'static str,
    /// Label pairs, in the order given at registration.
    pub labels: Vec<(&'static str, String)>,
}

impl MetricKey {
    fn new(name: &'static str, labels: &[(&'static str, &str)]) -> Self {
        Self {
            name,
            labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
        }
    }

    /// Renders the label set as `k1=v1,k2=v2` (empty string when bare).
    pub fn labels_string(&self) -> String {
        self.labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// A monotone counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn inc(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins float gauge.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct HistogramInner {
    samples: Vec<f64>,
}

/// An exact-sample histogram.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<Mutex<HistogramInner>>);

impl Histogram {
    /// Records one observation (NaN is rejected: it would poison every
    /// percentile silently).
    pub fn observe(&self, v: f64) {
        assert!(!v.is_nan(), "histogram observation must not be NaN");
        self.0.lock().samples.push(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.lock().samples.len() as u64
    }

    /// Sum of observations (0 when empty).
    pub fn sum(&self) -> f64 {
        self.0.lock().samples.iter().sum()
    }

    /// The `p`-th percentile (nearest-rank over the sorted samples), or
    /// `None` when empty.
    ///
    /// # Panics
    /// If `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        let inner = self.0.lock();
        if inner.samples.is_empty() {
            return None;
        }
        let mut sorted = inner.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected at observe"));
        // Nearest-rank: the smallest sample with at least ⌈p/100·n⌉
        // samples at or below it.
        let n = sorted.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(sorted[rank.max(1) - 1])
    }

    /// `(count, sum, min, max, p50, p90, p99)` in one lock acquisition —
    /// the snapshot shape exported to manifests.
    pub fn stats(&self) -> HistogramStats {
        let inner = self.0.lock();
        if inner.samples.is_empty() {
            return HistogramStats::default();
        }
        let mut sorted = inner.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected at observe"));
        let n = sorted.len();
        let rank = |p: f64| sorted[(((p / 100.0) * n as f64).ceil() as usize).max(1) - 1];
        HistogramStats {
            count: n as u64,
            sum: sorted.iter().sum(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: rank(50.0),
            p90: rank(90.0),
            p99: rank(99.0),
        }
    }
}

/// Summary statistics of a histogram at snapshot time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramStats {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Minimum observation (0 when empty).
    pub min: f64,
    /// Maximum observation (0 when empty).
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

#[derive(Clone, Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// The value of one metric at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistogramStats),
}

/// One `(name, labels, value)` row of a registry snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSample {
    /// Metric name.
    pub name: String,
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The observed value.
    pub value: MetricValue,
}

/// The sharded instrument registry. Lookup takes one shard read-lock in
/// the common (already-registered) case; the returned handles are then
/// entirely lock-free (counters/gauges) or single-mutex (histograms).
#[derive(Debug, Default)]
pub struct Registry {
    shards: Vec<RwLock<HashMap<MetricKey, Slot>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &MetricKey) -> &RwLock<HashMap<MetricKey, Slot>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn get_or_insert(&self, key: MetricKey, make: impl FnOnce() -> Slot) -> Slot {
        let shard = self.shard(&key);
        if let Some(slot) = shard.read().get(&key) {
            return slot.clone();
        }
        let mut map = shard.write();
        map.entry(key).or_insert_with(make).clone()
    }

    /// The counter named `name` with `labels`, registering it on first
    /// use.
    ///
    /// # Panics
    /// If the key is already registered as a different instrument kind.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        match self.get_or_insert(key, || {
            Slot::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Slot::Counter(c) => c,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// The gauge named `name` with `labels`, registering it on first use.
    ///
    /// # Panics
    /// If the key is already registered as a different instrument kind.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        match self.get_or_insert(key, || {
            Slot::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        }) {
            Slot::Gauge(g) => g,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// The histogram named `name` with `labels`, registering it on first
    /// use.
    ///
    /// # Panics
    /// If the key is already registered as a different instrument kind.
    pub fn histogram(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        match self.get_or_insert(key, || {
            Slot::Histogram(Histogram(Arc::new(Mutex::new(HistogramInner::default()))))
        }) {
            Slot::Histogram(h) => h,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Every registered metric, sorted by `(name, labels)` — the
    /// deterministic export order.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let mut rows: Vec<(MetricKey, Slot)> = Vec::new();
        for shard in &self.shards {
            for (key, slot) in shard.read().iter() {
                rows.push((key.clone(), slot.clone()));
            }
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows.into_iter()
            .map(|(key, slot)| MetricSample {
                name: key.name.to_string(),
                labels: key
                    .labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                value: match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram(h.stats()),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let r = Registry::new();
        let a = r.counter("msgs_total", &[("level", "1")]);
        let b = r.counter("msgs_total", &[("level", "1")]);
        a.inc(3);
        b.inc(4);
        assert_eq!(a.get(), 7);
        // Different label set = different instrument.
        let c = r.counter("msgs_total", &[("level", "2")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_last_write_wins() {
        let r = Registry::new();
        let g = r.gauge("accuracy", &[]);
        g.set(0.5);
        g.set(0.9);
        assert_eq!(g.get(), 0.9);
    }

    #[test]
    fn histogram_percentiles_are_exact() {
        let r = Registry::new();
        let h = r.histogram("latency_us", &[]);
        // 1..=100 in scrambled order: percentiles are exactly the ranks.
        for i in (1..=100u32).rev() {
            h.observe(f64::from(i));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(50.0), Some(50.0));
        assert_eq!(h.percentile(90.0), Some(90.0));
        assert_eq!(h.percentile(99.0), Some(99.0));
        assert_eq!(h.percentile(100.0), Some(100.0));
        assert_eq!(h.percentile(0.0), Some(1.0));
        let s = h.stats();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 50.0);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let r = Registry::new();
        let h = r.histogram("empty", &[]);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.stats(), HistogramStats::default());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collision_panics() {
        let r = Registry::new();
        r.counter("x", &[]);
        r.gauge("x", &[]);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("z_total", &[]).inc(1);
        r.counter("a_total", &[("k", "v")]).inc(2);
        r.gauge("m_gauge", &[]).set(1.5);
        r.histogram("h_hist", &[]).observe(2.0);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a_total", "h_hist", "m_gauge", "z_total"]);
        assert_eq!(snap[0].value, MetricValue::Counter(2));
        assert_eq!(snap[0].labels, vec![("k".to_string(), "v".to_string())]);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let r = std::sync::Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("spin_total", &[]);
                    for _ in 0..10_000 {
                        c.inc(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("spin_total", &[]).get(), 80_000);
    }
}
