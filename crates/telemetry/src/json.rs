//! A minimal, dependency-free JSON value model with a deterministic
//! emitter and a strict recursive-descent parser.
//!
//! Exists because manifests must round-trip (serialize → deserialize →
//! equal) and serialize *byte-identically* across runs, and the sanctioned
//! dependency set has no JSON crate. Scope: exactly what [`crate::manifest`]
//! emits — objects with ordered keys, arrays, strings, bools, null, and
//! numbers split into unsigned/signed integers (exact `u64`/`i64`
//! round-trip; seeds are arbitrary 64-bit values) and floats.

use std::fmt;

/// A JSON value. Objects keep insertion order (determinism).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (exact; distinct from `Num` so 64-bit
    /// seeds and byte counters survive round-trips).
    UInt(u64),
    /// A negative integer (exact).
    Int(i64),
    /// A float. Emitted with a decimal point or exponent so it parses
    /// back as `Num`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value as `u64` (from `UInt`, or a non-negative `Int`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(u) => Some(u as f64),
            Json::Int(i) => Some(i as f64),
            Json::Num(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object's key/value list.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(f) => write_f64(*f, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing non-whitespace is an
    /// error).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

/// Compact deterministic serialization (no whitespace, fixed field
/// order); `to_string()` comes from this impl.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Emits a float so it always parses back into [`Json::Num`]: Rust's
/// shortest round-trip `Display`, with `.0` appended when it would
/// otherwise look like an integer.
fn write_f64(f: f64, out: &mut String) {
    assert!(f.is_finite(), "manifests must not contain NaN/inf: {f}");
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs (emitted only by foreign
                            // producers; we still accept them).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                // i64::from_str accepts the full range incl. i64::MIN,
                // whose magnitude a negate-after-parse would overflow.
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let s = v.to_string();
        let back = Json::parse(&s).unwrap_or_else(|e| panic!("parse of {s}: {e}"));
        assert_eq!(&back, v, "round-trip through {s}");
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::UInt(0),
            Json::UInt(u64::MAX),
            Json::Int(-42),
            Json::Int(i64::MIN),
            Json::Num(0.5),
            Json::Num(1.0),
            Json::Num(-3.25e-7),
            Json::Str("plain".into()),
            Json::Str("esc \"\\ \n\t\r \u{0001} ünïcode 🦀".into()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        // The classic f64-corruption case: > 2^53.
        let seed = 0xDEAD_BEEF_CAFE_F00Du64;
        let v = Json::UInt(seed);
        assert_eq!(Json::parse(&v.to_string()).unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn float_always_reparses_as_float() {
        let s = Json::Num(2.0).to_string();
        assert_eq!(s, "2.0");
        assert_eq!(Json::parse(&s).unwrap(), Json::Num(2.0));
    }

    #[test]
    fn containers_roundtrip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::UInt(1), Json::Null])),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::Str("v".into()))]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        roundtrip(&v);
        assert_eq!(
            v.get("nested").and_then(|n| n.get("k")).and_then(Json::as_str),
            Some("v")
        );
    }

    #[test]
    fn object_order_is_preserved() {
        let parsed = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = parsed
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn surrogate_pair_parses() {
        let v = Json::parse(r#""🦀""#).unwrap();
        assert_eq!(v.as_str(), Some("🦀"));
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\":}",
            "nulx",
            "01x",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad}");
        }
    }
}
