//! # hfl-robust
//!
//! Byzantine-robust aggregation (**BRA**) rules — the paper's Table II,
//! "Byzantine robust aggregation" rows:
//!
//! | Strategy | Rule | Module |
//! |---|---|---|
//! | Mean value | FedAvg (non-robust baseline) | [`mean`] |
//! | Euclidean distance | Krum / Multi-Krum | [`krum`] |
//! | Median | coordinate-wise Median | [`median`] |
//! | Mean value | Trimmed Mean | [`trimmed_mean`] |
//! | Median | geometric median (GeoMed, Weiszfeld) | [`geomed`] |
//! | Clipping | Centered Clipping (CC) | [`clipping`] |
//! | Cosine similarity | largest-cluster aggregation | [`clustering`] |
//!
//! All rules implement [`Aggregator`] over flat `f32` parameter vectors,
//! so any rule can be plugged into any level of the ABD-HFL hierarchy
//! (Algorithm 3's per-level `BRA` choice).
//!
//! # Example
//!
//! ```
//! use hfl_robust::{Aggregator, CoordMedian, FedAvg};
//!
//! let honest = [[1.0f32, 2.0], [1.1, 2.1], [0.9, 1.9]];
//! let poisoned = [1e9f32, -1e9];
//! let updates: Vec<&[f32]> = honest
//!     .iter()
//!     .map(|u| u.as_slice())
//!     .chain(std::iter::once(poisoned.as_slice()))
//!     .collect();
//!
//! let robust = CoordMedian.aggregate(&updates, None);
//! assert!((robust[0] - 1.0).abs() < 0.2); // median ignores the outlier
//!
//! let broken = FedAvg.aggregate(&updates, None);
//! assert!(broken[0] > 1e8); // plain averaging does not
//! ```

pub mod autogm;
pub mod clipping;
pub mod clustering;
pub mod evidence;
pub mod geomed;
pub mod krum;
pub mod mean;
pub mod median;
pub mod preagg;
pub mod streaming;
pub mod suspicion;
pub mod trimmed_mean;

use serde::{Deserialize, Serialize};

pub use autogm::AutoGm;
pub use clipping::CenteredClip;
pub use clustering::CosineClustering;
pub use evidence::Acceptance;
pub use geomed::GeoMed;
pub use krum::{Krum, MultiKrum};
pub use mean::FedAvg;
pub use median::CoordMedian;
pub use preagg::{PreAggregated, PreAggregation};
pub use streaming::{SampledKrum, StreamingMedian, StreamingTrimmedMean, DEFAULT_EXACT_THRESHOLD};
pub use suspicion::{SuspicionChange, SuspicionConfig, SuspicionTracker};
pub use trimmed_mean::TrimmedMean;

/// Reusable scratch buffers for allocation-free aggregation through
/// [`Aggregator::aggregate_into`].
///
/// One instance lives in the engine's round workspace; every buffer
/// grows to its high-water mark on first use and is reused afterwards,
/// so steady-state rounds perform no heap allocation. The fields are
/// deliberately rule-agnostic (a flat `f64` matrix, a few rows) so one
/// scratch serves every rule in the registry.
#[derive(Debug, Default)]
pub struct AggScratch {
    /// Flat n×n squared-distance matrix (Krum family).
    pub dists: Vec<f64>,
    /// Per-update `f64` row (Krum score rows, Weiszfeld distances).
    pub row: Vec<f64>,
    /// Per-update scores.
    pub scores: Vec<f64>,
    /// Selection index buffer (Multi-Krum).
    pub idx: Vec<usize>,
    /// Per-update `f32` buffer (Weiszfeld weights, coordinate columns).
    pub col: Vec<f32>,
    /// Dimension-sized `f32` temporary (Weiszfeld next estimate).
    pub tmp: Vec<f32>,
}

/// A Byzantine-robust aggregation rule over flat parameter vectors.
pub trait Aggregator: Send + Sync {
    /// Human-readable rule name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Aggregates `updates` (all the same length) into one vector.
    ///
    /// `weights`, when given, are relative dataset sizes; rules that have
    /// no weighted form (all the robust ones) may ignore them. Rules must
    /// panic on an empty input — aggregating nothing is a protocol bug
    /// upstream, not a recoverable condition.
    fn aggregate(&self, updates: &[&[f32]], weights: Option<&[f32]>) -> Vec<f32>;

    /// Aggregates into a caller-owned buffer, reusing `scratch` so that
    /// rules overriding this method perform no heap allocation once the
    /// buffers reach their high-water mark. Must produce bytes identical
    /// to [`Aggregator::aggregate`] — the differential kernel suite pins
    /// this. The default delegates to the allocating path.
    fn aggregate_into(
        &self,
        updates: &[&[f32]],
        weights: Option<&[f32]>,
        out: &mut Vec<f32>,
        scratch: &mut AggScratch,
    ) {
        let _ = scratch;
        let res = self.aggregate(updates, weights);
        out.clear();
        out.extend_from_slice(&res);
    }

    /// The largest number of Byzantine inputs among `n` this rule is
    /// designed to tolerate (`0` for plain averaging).
    fn max_byzantine(&self, n: usize) -> usize;
}

/// Serializable aggregator selector for experiment configuration files.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AggregatorKind {
    /// Plain (weighted) averaging — the FedAvg baseline.
    FedAvg,
    /// Krum with assumed Byzantine count `f`.
    Krum {
        /// Assumed number of Byzantine inputs.
        f: usize,
    },
    /// Multi-Krum: average the `m` best Krum-scored updates.
    MultiKrum {
        /// Assumed number of Byzantine inputs.
        f: usize,
        /// Number of selected updates to average.
        m: usize,
    },
    /// Coordinate-wise median.
    Median,
    /// Coordinate-wise trimmed mean removing a `ratio` fraction from each
    /// tail.
    TrimmedMean {
        /// Fraction trimmed from each tail, in `[0, 0.5)`.
        ratio: f64,
    },
    /// Geometric median via Weiszfeld iterations.
    GeoMed,
    /// Centered clipping with radius `tau` and `iters` refinement steps.
    CenteredClip {
        /// Clipping radius.
        tau: f64,
        /// Number of fixed-point iterations.
        iters: usize,
    },
    /// Cosine-similarity clustering; averages the largest mutually-similar
    /// component at the given similarity threshold.
    CosineClustering {
        /// Minimum cosine similarity for two updates to be linked.
        threshold: f64,
    },
    /// AutoGM: geometric median with data-driven outlier filtering.
    AutoGm {
        /// Outlier radius multiplier.
        kappa: f64,
    },
    /// Pre-aggregation composition: bucket the inputs (groups of `s`
    /// averaged) before running `inner` on the bucket means. See
    /// [`preagg::PreAggregation::Bucketing`].
    Bucketing {
        /// Bucket size, ≥ 1.
        s: usize,
        /// The base rule aggregating the bucket means. Must not itself
        /// be a pre-aggregation (composition is single-layer; config
        /// validation enforces this).
        inner: Box<AggregatorKind>,
    },
    /// Pre-aggregation composition: nearest-neighbour mixing (each input
    /// replaced by the mean of its `k` nearest, itself included) before
    /// running `inner`. See [`preagg::PreAggregation::Nnm`].
    Nnm {
        /// Neighbourhood size, ≥ 1.
        k: usize,
        /// The base rule aggregating the mixed updates. Must not itself
        /// be a pre-aggregation.
        inner: Box<AggregatorKind>,
    },
    /// One-pass coordinate-wise median: exact below `exact_threshold`
    /// inputs, P² quantile markers (O(d) state) above. See
    /// [`streaming::StreamingMedian`].
    StreamingMedian {
        /// Input count below which the exact batch kernel runs.
        exact_threshold: usize,
    },
    /// One-pass coordinate-wise trimmed mean: exact below
    /// `exact_threshold` inputs, deterministic row reservoir (capacity
    /// `exact_threshold`) plus exact trim above. See
    /// [`streaming::StreamingTrimmedMean`].
    StreamingTrimmedMean {
        /// Fraction trimmed from each tail, in `[0, 0.5)`.
        ratio: f64,
        /// Input count below which the exact batch kernel runs (also the
        /// reservoir capacity).
        exact_threshold: usize,
    },
    /// Krum over `m` arrival-order bucket means, bounding the distance
    /// matrix to O(m²·d); exact Krum at or below `m` inputs. See
    /// [`streaming::SampledKrum`].
    SampledKrum {
        /// Assumed number of Byzantine inputs.
        f: usize,
        /// Bucket budget (the effective Krum input count at scale).
        m: usize,
    },
}

impl AggregatorKind {
    /// Instantiates the rule.
    pub fn build(&self) -> Box<dyn Aggregator> {
        match self {
            AggregatorKind::FedAvg => Box::new(FedAvg),
            AggregatorKind::Krum { f } => Box::new(Krum::new(*f)),
            AggregatorKind::MultiKrum { f, m } => Box::new(MultiKrum::new(*f, *m)),
            AggregatorKind::Median => Box::new(CoordMedian),
            AggregatorKind::TrimmedMean { ratio } => Box::new(TrimmedMean::new(*ratio)),
            AggregatorKind::GeoMed => Box::new(GeoMed::default()),
            AggregatorKind::CenteredClip { tau, iters } => {
                Box::new(CenteredClip::new(*tau, *iters))
            }
            AggregatorKind::CosineClustering { threshold } => {
                Box::new(CosineClustering::new(*threshold))
            }
            AggregatorKind::AutoGm { kappa } => Box::new(AutoGm::new(*kappa)),
            AggregatorKind::Bucketing { s, inner } => Box::new(PreAggregated::new(
                PreAggregation::Bucketing { s: *s },
                inner.build(),
            )),
            AggregatorKind::Nnm { k, inner } => Box::new(PreAggregated::new(
                PreAggregation::Nnm { k: *k },
                inner.build(),
            )),
            AggregatorKind::StreamingMedian { exact_threshold } => {
                Box::new(StreamingMedian::new(*exact_threshold))
            }
            AggregatorKind::StreamingTrimmedMean {
                ratio,
                exact_threshold,
            } => Box::new(StreamingTrimmedMean::new(*ratio, *exact_threshold)),
            AggregatorKind::SampledKrum { f, m } => Box::new(SampledKrum::new(*f, *m)),
        }
    }

    /// The pre-aggregation transform and base rule, when this kind is a
    /// composition; `None` for plain rules.
    pub fn pre_aggregation(&self) -> Option<(PreAggregation, &AggregatorKind)> {
        match self {
            AggregatorKind::Bucketing { s, inner } => {
                Some((PreAggregation::Bucketing { s: *s }, inner))
            }
            AggregatorKind::Nnm { k, inner } => Some((PreAggregation::Nnm { k: *k }, inner)),
            _ => None,
        }
    }
}

/// Shared input validation: non-empty, equal lengths. Returns the common
/// dimension.
pub(crate) fn validate_updates(updates: &[&[f32]]) -> usize {
    assert!(!updates.is_empty(), "aggregation over zero updates");
    let d = updates[0].len();
    assert!(
        updates.iter().all(|u| u.len() == d),
        "update length mismatch"
    );
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Helper shared by rule tests: honest updates clustered at `center`
    /// plus `n_bad` adversarial updates at `bad`.
    pub(crate) fn cluster_with_outliers(
        center: &[f32],
        spread: f32,
        n_good: usize,
        bad: &[f32],
        n_bad: usize,
    ) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        for i in 0..n_good {
            let mut v = center.to_vec();
            // deterministic small perturbation
            for (j, x) in v.iter_mut().enumerate() {
                *x += spread * ((i * 7 + j * 13) % 11) as f32 / 11.0 - spread / 2.0;
            }
            out.push(v);
        }
        for _ in 0..n_bad {
            out.push(bad.to_vec());
        }
        out
    }

    #[test]
    fn kind_builds_every_rule() {
        let kinds = [
            AggregatorKind::FedAvg,
            AggregatorKind::Krum { f: 1 },
            AggregatorKind::MultiKrum { f: 1, m: 2 },
            AggregatorKind::Median,
            AggregatorKind::TrimmedMean { ratio: 0.2 },
            AggregatorKind::GeoMed,
            AggregatorKind::CenteredClip { tau: 1.0, iters: 3 },
            AggregatorKind::CosineClustering { threshold: 0.5 },
            AggregatorKind::AutoGm { kappa: 3.0 },
            AggregatorKind::StreamingMedian {
                exact_threshold: 256,
            },
            AggregatorKind::StreamingTrimmedMean {
                ratio: 0.2,
                exact_threshold: 256,
            },
            AggregatorKind::SampledKrum { f: 1, m: 4 },
        ];
        let updates = cluster_with_outliers(&[1.0, 1.0], 0.1, 6, &[-9.0, 9.0], 1);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        for k in kinds {
            let agg = k.build();
            let out = agg.aggregate(&refs, None);
            assert_eq!(out.len(), 2, "{} wrong dim", agg.name());
            assert!(
                out.iter().all(|x| x.is_finite()),
                "{} non-finite",
                agg.name()
            );
        }
    }
}
