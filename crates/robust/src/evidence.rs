//! Aggregator evidence: after a rule has run over a cluster's updates,
//! which inputs did it *accept* (actually use in the aggregate) and
//! which does it consider suspicious enough to strike?
//!
//! The two signals are deliberately decoupled:
//!
//! * **Acceptance** is the public feedback an adaptive adversary can
//!   observe (its update visibly moved, or failed to move, the
//!   aggregate). It answers "was I inside the acceptance region this
//!   round?".
//! * **Strikes** feed the suspicion tracker and are persistence-
//!   oriented: only the most extreme inputs of a round are struck, so a
//!   client must be the outlier *repeatedly* to cross the quarantine
//!   threshold. An adaptive attacker pinned at the edge of acceptance
//!   still ranks worst round after round and accrues strikes, while an
//!   honest client is only occasionally the worst — that asymmetry is
//!   what lets the defense win the arms race without a single-round
//!   oracle.
//!
//! Rank alone is relative, though: in a homogeneous cluster *somebody*
//! is always ranked worst, and with deterministic shards the same
//! honest client can be rank-worst every round. Every family therefore
//! gates its strikes on the worst input actually *separating* from the
//! cohort (the scenario fuzzer's honest-quarantine oracle,
//! `hfl-oracle`, is what caught the ungated Krum path quarantining
//! honest clients under the default suspicion config).
//!
//! Per rule family:
//!
//! | Rule | Acceptance | Strike evidence |
//! |---|---|---|
//! | Krum / Multi-Krum | selected set membership | worst score rank 1.0, runner-up 0.5 (when score > 4 × median score) |
//! | Trimmed mean | trimmed-coordinate fraction < 0.75 | most-trimmed input 1.0, runner-up 0.5 (when > 1.5 × expected clip fraction) |
//! | Median / GeoMed / others | residual ≤ 1.5 × median residual | worst residual 1.0, runner-up 0.5 (when > 2 × median) |
//! | FedAvg | everything | none (no robustness signal) |

use crate::krum::krum_scores;
use crate::trimmed_mean::TrimmedMean;
use crate::{AggregatorKind, MultiKrum};

/// Strike weight for the single most suspicious input of a round.
pub const STRIKE_WORST: f64 = 1.0;
/// Strike weight for the runner-up (only assigned when n ≥ 4, so small
/// clusters don't strike half their membership every round).
pub const STRIKE_RUNNER_UP: f64 = 0.5;
/// Krum-family strike gate: an input is struck only when its Krum
/// score exceeds this multiple of the cohort's median score. Scores
/// are summed *squared* distances, so 4 corresponds to a 2× separation
/// in distance units — the same margin `judge_by_residual` uses.
pub const KRUM_STRIKE_GATE: f64 = 4.0;

/// Per-input verdicts of one aggregation instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Acceptance {
    /// `accepted[i]`: input `i` was used by the rule.
    pub accepted: Vec<bool>,
    /// `strikes[i]`: suspicion evidence weight for input `i` (0 for
    /// unremarkable inputs).
    pub strikes: Vec<f64>,
}

impl Acceptance {
    fn all_accepted(n: usize) -> Self {
        Self {
            accepted: vec![true; n],
            strikes: vec![0.0; n],
        }
    }
}

/// Judges one cluster's `updates` under the given rule. With fewer than
/// three inputs there is no meaningful outlier structure: everything is
/// accepted and nothing is struck.
pub fn judge(kind: &AggregatorKind, updates: &[&[f32]]) -> Acceptance {
    let n = updates.len();
    if n < 3 {
        return Acceptance::all_accepted(n);
    }
    match kind {
        AggregatorKind::FedAvg => Acceptance::all_accepted(n),
        AggregatorKind::Krum { f } => {
            let scores = krum_scores(updates, *f);
            let mut acc = judge_by_scores(&scores, 1);
            gate_krum_strikes(&mut acc, &scores);
            acc
        }
        AggregatorKind::MultiKrum { f, m } => {
            let scores = krum_scores(updates, *f);
            let selected = MultiKrum::new(*f, (*m).max(1)).select(updates);
            let mut acc = judge_by_scores(&scores, selected.len());
            gate_krum_strikes(&mut acc, &scores);
            // Membership of the actual selection is the ground truth for
            // acceptance (scores only order; `m` decides the cut).
            acc.accepted = vec![false; n];
            for &i in &selected {
                acc.accepted[i] = true;
            }
            acc
        }
        AggregatorKind::TrimmedMean { ratio } => judge_trimmed(updates, *ratio),
        // NNM preserves index correspondence (mixed[i] derives from
        // input i), so the base rule's own evidence runs on the mixed
        // cohort and its verdicts map straight back to the inputs.
        AggregatorKind::Nnm { k, inner } => {
            let mixed = crate::PreAggregation::Nnm { k: *k }.transform(updates);
            let refs: Vec<&[f32]> = mixed.iter().map(|v| v.as_slice()).collect();
            let mut acc = judge(inner, &refs);
            // Mixing compresses the cohort, so the inner rule's
            // *relative* strike gates run on much smaller residuals and
            // can nominate an honest straggler in a non-IID cluster
            // (found by the honest-quarantine oracle). Keep a strike
            // only when the input also separates in the unmixed cohort:
            // a real outlier does, an honest client does not.
            let raw = judge_by_residual(kind, updates);
            for (s, r) in acc.strikes.iter_mut().zip(&raw.strikes) {
                if *r == 0.0 {
                    *s = 0.0;
                }
            }
            acc
        }
        // Bucketing destroys index correspondence (n inputs → ⌈n/s⌉
        // bucket means); fall back to residuals of the *original* inputs
        // against the composed aggregate.
        _ => judge_by_residual(kind, updates),
    }
}

/// Strike weight added per unit of staleness (lateness / τ): a
/// maximally-late admitted input (lateness = τ) collects half a
/// [`STRIKE_WORST`] each round it exploits the staleness window, so a
/// coalition camping just inside τ accrues suspicion round after round
/// even when its *values* pass the rule's outlier tests.
pub const STALE_STRIKE_SCALE: f64 = 0.5;

/// Staleness-aware admission evidence for deadline-driven buffers:
/// folds each input's lateness fraction (`lateness / τ`, 0 for on-time
/// arrivals, in `(0, 1]` for τ-late admissions) into an existing
/// verdict. Late inputs accrue `STALE_STRIKE_SCALE · fraction` strikes
/// on top of whatever the value-based evidence assigned — staleness is
/// orthogonal evidence, not a replacement. Acceptance is untouched:
/// a τ-late input *was* admitted (at discounted weight), and telling
/// the adversary otherwise would corrupt its feedback signal.
pub fn judge_staleness(acc: &mut Acceptance, lateness_frac: &[f64]) {
    assert_eq!(
        acc.strikes.len(),
        lateness_frac.len(),
        "one lateness per judged input"
    );
    for (s, &frac) in acc.strikes.iter_mut().zip(lateness_frac) {
        if frac > 0.0 {
            *s += STALE_STRIKE_SCALE * frac.min(1.0);
        }
    }
}

/// Shared rank logic: given per-input badness scores (higher = worse),
/// accept the `keep` best and strike the worst (+ runner-up when n ≥ 4).
fn judge_by_scores(scores: &[f64], keep: usize) -> Acceptance {
    let n = scores.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|a, b| scores[*a].total_cmp(&scores[*b]));
    let mut accepted = vec![false; n];
    for &i in idx.iter().take(keep.max(1).min(n)) {
        accepted[i] = true;
    }
    let mut strikes = vec![0.0; n];
    strikes[idx[n - 1]] = STRIKE_WORST;
    if n >= 4 {
        strikes[idx[n - 2]] = STRIKE_RUNNER_UP;
    }
    Acceptance { accepted, strikes }
}

/// Zeroes Krum-family strikes for inputs whose score does not clearly
/// separate from the cohort ([`KRUM_STRIKE_GATE`] × the median score):
/// homogeneous clusters — honest rounds — strike nobody even though
/// the rank logic always nominates a worst input. Below four inputs
/// strikes are dropped entirely: with n = 3 each score is a single
/// nearest-neighbour distance, so a large score says as much about
/// shard diversity as about the input (non-IID clusters of 3 were
/// quarantining honest clients through this path).
fn gate_krum_strikes(acc: &mut Acceptance, scores: &[f64]) {
    if scores.len() < 4 {
        acc.strikes.iter_mut().for_each(|s| *s = 0.0);
        return;
    }
    let mut sorted = scores.to_vec();
    sorted.sort_by(f64::total_cmp);
    let med = sorted[scores.len() / 2].max(1e-12);
    for (s, sc) in acc.strikes.iter_mut().zip(scores) {
        if *sc <= KRUM_STRIKE_GATE * med {
            *s = 0.0;
        }
    }
}

/// Trimmed mean: an input's badness is the fraction of coordinates on
/// which it landed in a trimmed tail. The expected fraction for an
/// inlier is `2t/n`; inputs clipped on ≥ 75 % of coordinates were
/// effectively excluded from the aggregate.
fn judge_trimmed(updates: &[&[f32]], ratio: f64) -> Acceptance {
    let n = updates.len();
    let d = updates[0].len();
    let t = TrimmedMean::new(ratio).trim_count(n);
    if t == 0 || d == 0 {
        return Acceptance::all_accepted(n);
    }
    let mut clipped = vec![0usize; n];
    let mut col: Vec<(f32, usize)> = Vec::with_capacity(n);
    for j in 0..d {
        col.clear();
        col.extend(updates.iter().enumerate().map(|(i, u)| (u[j], i)));
        col.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(_, i) in col.iter().take(t).chain(col.iter().rev().take(t)) {
            clipped[i] += 1;
        }
    }
    let frac: Vec<f64> = clipped.iter().map(|&c| c as f64 / d as f64).collect();
    let accepted: Vec<bool> = frac.iter().map(|&fr| fr < 0.75).collect();
    // Strike only above-random clipping: with everything i.i.d. each
    // input is clipped on ~2t/n of coordinates.
    let baseline = (2.0 * t as f64 / n as f64).min(0.99);
    let mut acc = judge_by_scores(&frac, n);
    acc.accepted = accepted;
    for (s, fr) in acc.strikes.iter_mut().zip(&frac) {
        if *fr <= 1.5 * baseline {
            *s = 0.0;
        }
    }
    acc
}

/// Distance-to-aggregate residuals: generic evidence for median, GeoMed,
/// clipping, clustering, AutoGM. Inputs far from the robust aggregate
/// relative to the cohort's median residual were effectively down-
/// weighted or ignored.
fn judge_by_residual(kind: &AggregatorKind, updates: &[&[f32]]) -> Acceptance {
    let n = updates.len();
    let agg = kind.build().aggregate(updates, None);
    let res: Vec<f64> = updates
        .iter()
        .map(|u| hfl_tensor::ops::dist(u, &agg))
        .collect();
    let mut sorted = res.clone();
    sorted.sort_by(f64::total_cmp);
    let med = sorted[n / 2].max(1e-12);
    let accepted: Vec<bool> = res.iter().map(|&r| r <= 1.5 * med + 1e-9).collect();
    let mut acc = judge_by_scores(&res, n);
    acc.accepted = accepted;
    for (s, r) in acc.strikes.iter_mut().zip(&res) {
        if *r <= 2.0 * med {
            *s = 0.0;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::cluster_with_outliers;

    fn refs(v: &[Vec<f32>]) -> Vec<&[f32]> {
        v.iter().map(|x| x.as_slice()).collect()
    }

    #[test]
    fn multikrum_strikes_the_outlier() {
        let updates = cluster_with_outliers(&[1.0, 1.0], 0.1, 6, &[50.0, 50.0], 1);
        let acc = judge(&AggregatorKind::MultiKrum { f: 1, m: 6 }, &refs(&updates));
        assert!(!acc.accepted[6], "outlier must not be selected");
        assert_eq!(acc.strikes[6], STRIKE_WORST);
        assert!(
            acc.strikes[..6].iter().all(|s| *s == 0.0),
            "inliers below the score gate collect no strikes"
        );
        assert!(acc.accepted[..6].iter().filter(|a| **a).count() >= 5);
    }

    #[test]
    fn trimmed_mean_strikes_the_clipped_input() {
        let updates = cluster_with_outliers(&[0.0, 0.0, 0.0], 0.2, 8, &[100.0, 100.0, 100.0], 1);
        let acc = judge(&AggregatorKind::TrimmedMean { ratio: 0.2 }, &refs(&updates));
        assert!(!acc.accepted[8], "fully-clipped input must be rejected");
        assert_eq!(acc.strikes[8], STRIKE_WORST);
        assert!(acc.accepted[..8].iter().all(|a| *a), "inliers accepted");
    }

    #[test]
    fn residual_evidence_flags_the_far_input() {
        let updates = cluster_with_outliers(&[2.0, -1.0], 0.1, 7, &[-60.0, 60.0], 1);
        for kind in [
            AggregatorKind::Median,
            AggregatorKind::GeoMed,
            AggregatorKind::CenteredClip { tau: 1.0, iters: 3 },
        ] {
            let acc = judge(&kind, &refs(&updates));
            assert!(!acc.accepted[7], "{kind:?} must reject the outlier");
            assert_eq!(acc.strikes[7], STRIKE_WORST, "{kind:?}");
            assert!(acc.strikes[..7].iter().all(|s| *s == 0.0), "{kind:?}");
        }
    }

    #[test]
    fn fedavg_judges_nothing() {
        let updates = cluster_with_outliers(&[0.0], 0.1, 3, &[9.0], 1);
        let acc = judge(&AggregatorKind::FedAvg, &refs(&updates));
        assert!(acc.accepted.iter().all(|a| *a));
        assert!(acc.strikes.iter().all(|s| *s == 0.0));
    }

    #[test]
    fn tiny_clusters_are_not_judged() {
        let a = vec![1.0f32];
        let b = vec![-1.0f32];
        let acc = judge(&AggregatorKind::Krum { f: 1 }, &[&a, &b]);
        assert_eq!(acc.accepted, vec![true, true]);
        assert_eq!(acc.strikes, vec![0.0, 0.0]);
    }

    #[test]
    fn homogeneous_round_strikes_nobody() {
        // With no real outlier the rank logic still nominates a worst
        // input, but the score gate zeroes the strike: deterministic
        // shards mean the *same* honest client would be rank-worst
        // round after round, and ungated rank strikes alone were enough
        // to quarantine it (found by the hfl-oracle honest-quarantine
        // invariant).
        let updates = cluster_with_outliers(&[1.0, 1.0], 0.3, 8, &[1.0, 1.0], 0);
        let acc = judge(&AggregatorKind::MultiKrum { f: 2, m: 6 }, &refs(&updates));
        assert!(
            acc.strikes.iter().all(|s| *s == 0.0),
            "homogeneous rounds must not strike: {:?}",
            acc.strikes
        );
    }

    #[test]
    fn staleness_strikes_stack_on_value_strikes() {
        let updates = cluster_with_outliers(&[1.0, 1.0], 0.1, 6, &[50.0, 50.0], 1);
        let kind = AggregatorKind::MultiKrum { f: 1, m: 6 };
        let mut acc = judge(&kind, &refs(&updates));
        let before = acc.strikes.clone();
        // Input 2 arrived half a τ late, the outlier (6) a full τ late.
        let mut lateness = vec![0.0; 7];
        lateness[2] = 0.5;
        lateness[6] = 1.0;
        judge_staleness(&mut acc, &lateness);
        assert_eq!(acc.strikes[2], before[2] + 0.5 * STALE_STRIKE_SCALE);
        assert_eq!(acc.strikes[6], before[6] + STALE_STRIKE_SCALE);
        assert_eq!(acc.strikes[0], before[0], "on-time inputs untouched");
        // Acceptance is staleness-blind: admission already happened.
        assert!(!acc.accepted[6]);
    }

    #[test]
    fn staleness_fraction_is_capped_at_one() {
        let mut acc = Acceptance {
            accepted: vec![true; 2],
            strikes: vec![0.0; 2],
        };
        judge_staleness(&mut acc, &[5.0, 0.0]);
        assert_eq!(acc.strikes[0], STALE_STRIKE_SCALE);
        assert_eq!(acc.strikes[1], 0.0);
    }

    #[test]
    fn nnm_evidence_maps_back_to_inputs() {
        // NNM pulls the honest cohort together, so the outlier's mixed
        // vector separates even more clearly for the base rule.
        let updates = cluster_with_outliers(&[1.0, 1.0], 0.4, 6, &[50.0, 50.0], 1);
        let kind = AggregatorKind::Nnm {
            k: 3,
            inner: Box::new(AggregatorKind::MultiKrum { f: 1, m: 5 }),
        };
        let acc = judge(&kind, &refs(&updates));
        assert_eq!(acc.accepted.len(), 7, "verdicts index the original inputs");
        assert!(!acc.accepted[6], "outlier must not be selected");
        assert_eq!(acc.strikes[6], STRIKE_WORST);
        assert!(acc.strikes[..6].iter().all(|s| *s == 0.0));
    }

    #[test]
    fn bucketing_evidence_uses_residuals_over_inputs() {
        let updates = cluster_with_outliers(&[0.0, 2.0], 0.2, 7, &[-30.0, 30.0], 1);
        let kind = AggregatorKind::Bucketing {
            s: 2,
            inner: Box::new(AggregatorKind::Median),
        };
        let acc = judge(&kind, &refs(&updates));
        assert_eq!(acc.accepted.len(), 8, "verdicts index the original inputs");
        assert!(!acc.accepted[7], "outlier residual must reject");
        assert_eq!(acc.strikes[7], STRIKE_WORST);
        assert!(acc.strikes[..7].iter().all(|s| *s == 0.0));
    }

    #[test]
    fn separated_outlier_is_still_struck_through_the_gate() {
        let updates = cluster_with_outliers(&[0.5, -0.5], 0.05, 5, &[8.0, 8.0], 1);
        let acc = judge(&AggregatorKind::Krum { f: 1 }, &refs(&updates));
        assert_eq!(acc.strikes[5], STRIKE_WORST);
        assert!(acc.strikes[..5].iter().all(|s| *s == 0.0));
    }
}
