//! Krum and Multi-Krum (Blanchard et al., NeurIPS 2017).
//!
//! Krum scores every update by the sum of its `n − f − 2` smallest squared
//! distances to the other updates and selects the minimizer; Multi-Krum
//! averages the `m` best-scoring updates. Requires `n ≥ 2f + 3`.
//!
//! The O(n²·d) pairwise distance matrix is the hot kernel; it is computed
//! in parallel over row chunks.

use crate::{validate_updates, Aggregator};

/// Computes the Krum score of every update: score(i) = Σ of the
/// `n − f − 2` smallest squared distances from update `i` to the others.
///
/// Exposed for the consensus crate (validated agreement uses Krum scores
/// as an acceptance predicate) and for benchmarks.
pub fn krum_scores(updates: &[&[f32]], f: usize) -> Vec<f64> {
    let n = updates.len();
    // The *guarantee* needs n ≥ 2f+3 (see `guarantee_holds`), and scoring
    // needs n − f − 2 ≥ 1 kept distances. The paper itself runs Multi-Krum
    // on clusters of 4 with an assumed 25 % malicious, and quorums can
    // shrink the input set further, so `f` is clamped to the largest value
    // scoring supports rather than rejected: small clusters degrade toward
    // nearest-neighbour scoring.
    let f = f.min(n.saturating_sub(3));
    // Pairwise squared distances, parallel over i.
    let threads = hfl_parallel::default_threads();
    let dists: Vec<Vec<f64>> = hfl_parallel::par_map_indexed(n, threads, |i| {
        (0..n)
            .map(|j| {
                if i == j {
                    0.0
                } else {
                    hfl_tensor::ops::dist_sq(updates[i], updates[j])
                }
            })
            .collect()
    });
    // n ≥ 3 keeps n−f−2 ≥ 1 distances; degenerate n ∈ {1, 2} keeps all.
    let keep = if n >= 3 { n - f - 2 } else { n - 1 };
    (0..n)
        .map(|i| {
            let mut row: Vec<f64> = (0..n).filter(|j| *j != i).map(|j| dists[i][j]).collect();
            // total_cmp, not partial_cmp: an adversarial NaN update must
            // not panic the aggregator. NaN distances order after every
            // finite distance, so a NaN-poisoned row scores worst and the
            // input is never selected.
            row.sort_unstable_by(f64::total_cmp);
            row.iter().take(keep).sum()
        })
        .collect()
}

/// Classic Krum: select the single lowest-scoring update.
#[derive(Clone, Copy, Debug)]
pub struct Krum {
    f: usize,
}

impl Krum {
    /// Krum assuming at most `f` Byzantine inputs.
    pub fn new(f: usize) -> Self {
        Self { f }
    }

    /// The assumed Byzantine count.
    pub fn f(&self) -> usize {
        self.f
    }

    /// True when Blanchard et al.'s Byzantine-resilience guarantee
    /// (`n ≥ 2f + 3`) holds for `n` inputs.
    pub fn guarantee_holds(f: usize, n: usize) -> bool {
        n >= 2 * f + 3
    }
}

impl Aggregator for Krum {
    fn name(&self) -> &'static str {
        "krum"
    }

    fn aggregate(&self, updates: &[&[f32]], _weights: Option<&[f32]>) -> Vec<f32> {
        validate_updates(updates);
        let scores = krum_scores(updates, self.f);
        let best = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty scores")
            .0;
        updates[best].to_vec()
    }

    fn max_byzantine(&self, n: usize) -> usize {
        // n >= 2f+3  =>  f <= (n-3)/2
        n.saturating_sub(3) / 2
    }
}

/// Multi-Krum: average the `m` best-scoring updates (m=1 degenerates to
/// Krum; m=n degenerates to FedAvg).
#[derive(Clone, Copy, Debug)]
pub struct MultiKrum {
    f: usize,
    m: usize,
}

impl MultiKrum {
    /// Multi-Krum with assumed Byzantine count `f`, averaging the `m`
    /// best updates.
    ///
    /// # Panics
    /// If `m == 0`.
    pub fn new(f: usize, m: usize) -> Self {
        assert!(m > 0, "Multi-Krum must select at least one update");
        Self { f, m }
    }

    /// The paper's evaluation setting: assumed malicious proportion of
    /// 25 %, selecting the complement.
    pub fn paper_default(n: usize) -> Self {
        let f = n / 4;
        Self::new(f, n - f)
    }

    /// Indices of the `m` selected updates, lowest score first.
    pub fn select(&self, updates: &[&[f32]]) -> Vec<usize> {
        let scores = krum_scores(updates, self.f);
        let mut idx: Vec<usize> = (0..updates.len()).collect();
        idx.sort_by(|a, b| scores[*a].total_cmp(&scores[*b]));
        idx.truncate(self.m.min(updates.len()));
        idx
    }
}

impl Aggregator for MultiKrum {
    fn name(&self) -> &'static str {
        "multi-krum"
    }

    fn aggregate(&self, updates: &[&[f32]], _weights: Option<&[f32]>) -> Vec<f32> {
        let d = validate_updates(updates);
        let chosen = self.select(updates);
        let selected: Vec<&[f32]> = chosen.iter().map(|&i| updates[i]).collect();
        let mut out = vec![0.0f32; d];
        hfl_tensor::ops::mean_of(&selected, &mut out);
        out
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(3) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::cluster_with_outliers;

    #[test]
    fn krum_picks_from_honest_cluster() {
        let updates = cluster_with_outliers(&[1.0, 1.0, 1.0], 0.1, 7, &[100.0, 100.0, 100.0], 2);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = Krum::new(2).aggregate(&refs, None);
        assert!(hfl_tensor::ops::dist(&out, &[1.0, 1.0, 1.0]) < 0.5);
    }

    #[test]
    fn krum_returns_an_actual_input() {
        let updates = cluster_with_outliers(&[0.0, 0.0], 0.2, 6, &[50.0, 50.0], 1);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = Krum::new(1).aggregate(&refs, None);
        assert!(updates.iter().any(|u| u.as_slice() == out.as_slice()));
    }

    #[test]
    fn multikrum_excludes_outliers() {
        let n = 8;
        let f = 2;
        let updates = cluster_with_outliers(&[1.0, -1.0], 0.1, n - f, &[30.0, -30.0], f);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let mk = MultiKrum::new(f, n - f);
        let sel = mk.select(&refs);
        // selected indices must all be honest (honest occupy 0..n-f)
        assert!(sel.iter().all(|&i| i < n - f), "selected {sel:?}");
        let out = mk.aggregate(&refs, None);
        assert!(hfl_tensor::ops::dist(&out, &[1.0, -1.0]) < 0.5);
    }

    #[test]
    fn multikrum_m_equals_n_is_mean_when_no_attack() {
        let updates = [
            vec![0.0f32, 2.0],
            vec![2.0f32, 0.0],
            vec![1.0f32, 1.0],
            vec![1.0f32, 1.0],
            vec![1.0f32, 1.0],
        ];
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = MultiKrum::new(1, 5).aggregate(&refs, None);
        assert!(hfl_tensor::ops::approx_eq(&out, &[1.0, 1.0], 1e-6));
    }

    #[test]
    fn paper_default_is_quarter() {
        let mk = MultiKrum::paper_default(16);
        assert_eq!(mk.f, 4);
        assert_eq!(mk.m, 12);
    }

    #[test]
    fn scores_are_lower_for_central_updates() {
        let updates = cluster_with_outliers(&[0.0], 0.1, 5, &[10.0], 1);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let scores = krum_scores(&refs, 1);
        let outlier_score = scores[5];
        assert!(scores[..5].iter().all(|s| *s < outlier_score));
    }

    #[test]
    fn tiny_inputs_degrade_gracefully() {
        // f is clamped so scoring always keeps at least one distance;
        // with two honest near-identical updates and f=5, Krum still
        // returns one of them.
        let u = [vec![1.0f32], vec![1.1f32], vec![0.9f32]];
        let refs: Vec<&[f32]> = u.iter().map(|x| x.as_slice()).collect();
        let out = Krum::new(5).aggregate(&refs, None);
        assert!((out[0] - 1.0).abs() <= 0.11);
        // Singleton input is returned unchanged.
        let one = [7.0f32];
        let out = Krum::new(1).aggregate(&[&one], None);
        assert_eq!(out, vec![7.0]);
    }

    #[test]
    fn paper_cluster_of_four_works() {
        // The paper's partial-aggregation setting: 4 updates, f = 1.
        let updates = cluster_with_outliers(&[1.0], 0.05, 3, &[100.0], 1);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = MultiKrum::new(1, 3).aggregate(&refs, None);
        assert!((out[0] - 1.0).abs() < 0.5);
        assert!(!Krum::guarantee_holds(1, 4));
        assert!(Krum::guarantee_holds(1, 5));
    }

    #[test]
    fn nan_adversarial_update_cannot_panic_or_win() {
        // A Byzantine client can submit NaN coordinates; every pairwise
        // distance involving it is NaN. The sort/min must not panic
        // (total_cmp orders NaN after all finite scores), and the
        // NaN-scored input must never be selected.
        let mut updates = cluster_with_outliers(&[1.0, 1.0], 0.1, 6, &[0.0, 0.0], 0);
        updates.push(vec![f32::NAN, f32::INFINITY]);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();

        let out = Krum::new(1).aggregate(&refs, None);
        assert!(out.iter().all(|x| x.is_finite()), "Krum picked NaN: {out:?}");
        assert!(hfl_tensor::ops::dist(&out, &[1.0, 1.0]) < 0.5);

        let mk = MultiKrum::new(1, 4);
        let sel = mk.select(&refs);
        assert!(sel.iter().all(|&i| i < 6), "NaN input selected: {sel:?}");
        let out = mk.aggregate(&refs, None);
        assert!(out.iter().all(|x| x.is_finite()));

        let scores = krum_scores(&refs, 1);
        assert!(
            scores[..6].iter().all(|s| s.is_finite()),
            "honest scores must exclude the NaN tail: {scores:?}"
        );
    }

    #[test]
    fn tolerance_formula() {
        assert_eq!(Krum::new(1).max_byzantine(16), 6);
        assert_eq!(Krum::new(1).max_byzantine(3), 0);
        assert_eq!(Krum::new(1).max_byzantine(2), 0);
    }
}
