//! Krum and Multi-Krum (Blanchard et al., NeurIPS 2017).
//!
//! Krum scores every update by the sum of its `n − f − 2` smallest squared
//! distances to the other updates and selects the minimizer; Multi-Krum
//! averages the `m` best-scoring updates. Requires `n ≥ 2f + 3`.
//!
//! The O(n²·d) pairwise distance matrix is the hot kernel. It is computed
//! **symmetry-halved** (only the upper triangle, since `dist_sq(a, b)` is
//! bitwise-equal to `dist_sq(b, a)`: `(x−y) = −(y−x)` exactly in IEEE
//! arithmetic, so the squared per-coordinate terms — and their ordered sum
//! — agree), **register-blocked** via [`hfl_tensor::ops::dist_sq_block`]
//! (one pass over row `i` serves four partners), and **work-stealing
//! parallel** over matrix rows (row `i` holds `n − i − 1` pairs, a
//! triangular skew that static chunking starves on). The original
//! full-matrix loop is retained verbatim in [`reference`] and the
//! differential suite pins the two bitwise-equal.

use crate::{validate_updates, AggScratch, Aggregator};

/// Computes the Krum score of every update: score(i) = Σ of the
/// `n − f − 2` smallest squared distances from update `i` to the others.
///
/// Exposed for the consensus crate (validated agreement uses Krum scores
/// as an acceptance predicate) and for benchmarks.
pub fn krum_scores(updates: &[&[f32]], f: usize) -> Vec<f64> {
    krum_scores_with_threads(updates, f, hfl_parallel::default_threads())
}

/// [`krum_scores`] with an explicit worker count (the differential suite
/// sweeps 1–8 threads; results are identical at any count).
pub fn krum_scores_with_threads(updates: &[&[f32]], f: usize, threads: usize) -> Vec<f64> {
    let mut dists = Vec::new();
    let mut row = Vec::new();
    let mut scores = Vec::new();
    krum_scores_into(updates, f, threads, &mut dists, &mut row, &mut scores);
    scores
}

/// Allocation-free scoring core: fills `scores`, reusing the caller's
/// `dists` (flat n×n, upper triangle) and `row` buffers. Once the
/// buffers reach their high-water mark, steady-state calls perform no
/// heap allocation at `threads == 1` (thread spawning itself allocates).
pub fn krum_scores_into(
    updates: &[&[f32]],
    f: usize,
    threads: usize,
    dists: &mut Vec<f64>,
    row: &mut Vec<f64>,
    scores: &mut Vec<f64>,
) {
    let n = updates.len();
    // The *guarantee* needs n ≥ 2f+3 (see `guarantee_holds`), and scoring
    // needs n − f − 2 ≥ 1 kept distances. The paper itself runs Multi-Krum
    // on clusters of 4 with an assumed 25 % malicious, and quorums can
    // shrink the input set further, so `f` is clamped to the largest value
    // scoring supports rather than rejected: small clusters degrade toward
    // nearest-neighbour scoring.
    let f = f.min(n.saturating_sub(3));
    // Upper-triangle pairwise squared distances in a flat n×n buffer,
    // work-stealing parallel over rows (row i carries n−i−1 pairs).
    dists.clear();
    dists.resize(n * n, 0.0);
    if n > 1 {
        hfl_parallel::par_chunks_mut(dists, n, threads, |base, mrow| {
            let i = base / n;
            if i + 1 < n {
                hfl_tensor::ops::dist_sq_block(updates[i], &updates[i + 1..], &mut mrow[i + 1..]);
            }
        });
    }
    // n ≥ 3 keeps n−f−2 ≥ 1 distances; degenerate n ∈ {1, 2} keeps all.
    let keep = if n >= 3 { n - f - 2 } else { n.saturating_sub(1) };
    scores.clear();
    for i in 0..n {
        row.clear();
        for j in 0..n {
            if j != i {
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                row.push(dists[lo * n + hi]);
            }
        }
        // total_cmp, not partial_cmp: an adversarial NaN update must
        // not panic the aggregator. NaN distances order after every
        // finite distance, so a NaN-poisoned row scores worst and the
        // input is never selected. Ties under the total order are
        // bitwise-equal doubles, so the unstable sort cannot perturb
        // the kept-prefix sum.
        row.sort_unstable_by(f64::total_cmp);
        scores.push(row.iter().take(keep).sum());
    }
}

/// Classic Krum: select the single lowest-scoring update.
#[derive(Clone, Copy, Debug)]
pub struct Krum {
    f: usize,
}

impl Krum {
    /// Krum assuming at most `f` Byzantine inputs.
    pub fn new(f: usize) -> Self {
        Self { f }
    }

    /// The assumed Byzantine count.
    pub fn f(&self) -> usize {
        self.f
    }

    /// True when Blanchard et al.'s Byzantine-resilience guarantee
    /// (`n ≥ 2f + 3`) holds for `n` inputs.
    pub fn guarantee_holds(f: usize, n: usize) -> bool {
        n >= 2 * f + 3
    }
}

impl Aggregator for Krum {
    fn name(&self) -> &'static str {
        "krum"
    }

    fn aggregate(&self, updates: &[&[f32]], weights: Option<&[f32]>) -> Vec<f32> {
        let mut out = Vec::new();
        self.aggregate_into(updates, weights, &mut out, &mut AggScratch::default());
        out
    }

    fn aggregate_into(
        &self,
        updates: &[&[f32]],
        _weights: Option<&[f32]>,
        out: &mut Vec<f32>,
        scratch: &mut AggScratch,
    ) {
        validate_updates(updates);
        let AggScratch {
            dists, row, scores, ..
        } = scratch;
        krum_scores_into(
            updates,
            self.f,
            hfl_parallel::default_threads(),
            dists,
            row,
            scores,
        );
        let best = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty scores")
            .0;
        out.clear();
        out.extend_from_slice(updates[best]);
    }

    fn max_byzantine(&self, n: usize) -> usize {
        // n >= 2f+3  =>  f <= (n-3)/2
        n.saturating_sub(3) / 2
    }
}

/// Multi-Krum: average the `m` best-scoring updates (m=1 degenerates to
/// Krum; m=n degenerates to FedAvg).
#[derive(Clone, Copy, Debug)]
pub struct MultiKrum {
    f: usize,
    m: usize,
}

impl MultiKrum {
    /// Multi-Krum with assumed Byzantine count `f`, averaging the `m`
    /// best updates.
    ///
    /// # Panics
    /// If `m == 0`.
    pub fn new(f: usize, m: usize) -> Self {
        assert!(m > 0, "Multi-Krum must select at least one update");
        Self { f, m }
    }

    /// The paper's evaluation setting: assumed malicious proportion of
    /// 25 %, selecting the complement.
    pub fn paper_default(n: usize) -> Self {
        let f = n / 4;
        Self::new(f, n - f)
    }

    /// Indices of the `m` selected updates, lowest score first.
    pub fn select(&self, updates: &[&[f32]]) -> Vec<usize> {
        let mut scratch = AggScratch::default();
        let mut idx = Vec::new();
        self.select_into(updates, &mut scratch, &mut idx);
        idx
    }

    /// [`MultiKrum::select`] into caller-owned buffers (allocation-free
    /// at steady state for the cohort sizes the engine runs; the stable
    /// index sort falls back to an allocating merge only above 20
    /// elements).
    pub fn select_into(&self, updates: &[&[f32]], scratch: &mut AggScratch, idx: &mut Vec<usize>) {
        let AggScratch {
            dists, row, scores, ..
        } = scratch;
        krum_scores_into(
            updates,
            self.f,
            hfl_parallel::default_threads(),
            dists,
            row,
            scores,
        );
        idx.clear();
        idx.extend(0..updates.len());
        // Stable sort: equal scores keep input order, matching the
        // original selection semantics the golden manifests pin.
        idx.sort_by(|a, b| scores[*a].total_cmp(&scores[*b]));
        idx.truncate(self.m.min(updates.len()));
    }
}

impl Aggregator for MultiKrum {
    fn name(&self) -> &'static str {
        "multi-krum"
    }

    fn aggregate(&self, updates: &[&[f32]], weights: Option<&[f32]>) -> Vec<f32> {
        let mut out = Vec::new();
        self.aggregate_into(updates, weights, &mut out, &mut AggScratch::default());
        out
    }

    fn aggregate_into(
        &self,
        updates: &[&[f32]],
        _weights: Option<&[f32]>,
        out: &mut Vec<f32>,
        scratch: &mut AggScratch,
    ) {
        let d = validate_updates(updates);
        let mut idx = std::mem::take(&mut scratch.idx);
        self.select_into(updates, scratch, &mut idx);
        out.clear();
        out.resize(d, 0.0);
        hfl_tensor::ops::mean_of_indexed(updates, &idx, out);
        scratch.idx = idx;
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(3) / 2
    }
}

/// The original, unoptimized scoring loop, retained verbatim so the
/// differential suite and `perf_baseline --naive` can pin the
/// symmetry-halved/blocked kernel bitwise against it. Not part of the
/// supported API.
#[doc(hidden)]
pub mod reference {
    /// Pre-overhaul `krum_scores`: full (both-triangle) distance matrix,
    /// one `dist_sq` pass per pair, statically-placed parallel rows.
    pub fn krum_scores_naive(updates: &[&[f32]], f: usize, threads: usize) -> Vec<f64> {
        let n = updates.len();
        let f = f.min(n.saturating_sub(3));
        let dists: Vec<Vec<f64>> = hfl_parallel::par_map_indexed(n, threads, |i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        0.0
                    } else {
                        hfl_tensor::ops::dist_sq(updates[i], updates[j])
                    }
                })
                .collect()
        });
        let keep = if n >= 3 { n - f - 2 } else { n.saturating_sub(1) };
        (0..n)
            .map(|i| {
                let mut row: Vec<f64> = (0..n).filter(|j| *j != i).map(|j| dists[i][j]).collect();
                row.sort_unstable_by(f64::total_cmp);
                row.iter().take(keep).sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::cluster_with_outliers;

    #[test]
    fn krum_picks_from_honest_cluster() {
        let updates = cluster_with_outliers(&[1.0, 1.0, 1.0], 0.1, 7, &[100.0, 100.0, 100.0], 2);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = Krum::new(2).aggregate(&refs, None);
        assert!(hfl_tensor::ops::dist(&out, &[1.0, 1.0, 1.0]) < 0.5);
    }

    #[test]
    fn krum_returns_an_actual_input() {
        let updates = cluster_with_outliers(&[0.0, 0.0], 0.2, 6, &[50.0, 50.0], 1);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = Krum::new(1).aggregate(&refs, None);
        assert!(updates.iter().any(|u| u.as_slice() == out.as_slice()));
    }

    #[test]
    fn multikrum_excludes_outliers() {
        let n = 8;
        let f = 2;
        let updates = cluster_with_outliers(&[1.0, -1.0], 0.1, n - f, &[30.0, -30.0], f);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let mk = MultiKrum::new(f, n - f);
        let sel = mk.select(&refs);
        // selected indices must all be honest (honest occupy 0..n-f)
        assert!(sel.iter().all(|&i| i < n - f), "selected {sel:?}");
        let out = mk.aggregate(&refs, None);
        assert!(hfl_tensor::ops::dist(&out, &[1.0, -1.0]) < 0.5);
    }

    #[test]
    fn multikrum_m_equals_n_is_mean_when_no_attack() {
        let updates = [
            vec![0.0f32, 2.0],
            vec![2.0f32, 0.0],
            vec![1.0f32, 1.0],
            vec![1.0f32, 1.0],
            vec![1.0f32, 1.0],
        ];
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = MultiKrum::new(1, 5).aggregate(&refs, None);
        assert!(hfl_tensor::ops::approx_eq(&out, &[1.0, 1.0], 1e-6));
    }

    #[test]
    fn paper_default_is_quarter() {
        let mk = MultiKrum::paper_default(16);
        assert_eq!(mk.f, 4);
        assert_eq!(mk.m, 12);
    }

    #[test]
    fn scores_are_lower_for_central_updates() {
        let updates = cluster_with_outliers(&[0.0], 0.1, 5, &[10.0], 1);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let scores = krum_scores(&refs, 1);
        let outlier_score = scores[5];
        assert!(scores[..5].iter().all(|s| *s < outlier_score));
    }

    #[test]
    fn tiny_inputs_degrade_gracefully() {
        // f is clamped so scoring always keeps at least one distance;
        // with two honest near-identical updates and f=5, Krum still
        // returns one of them.
        let u = [vec![1.0f32], vec![1.1f32], vec![0.9f32]];
        let refs: Vec<&[f32]> = u.iter().map(|x| x.as_slice()).collect();
        let out = Krum::new(5).aggregate(&refs, None);
        assert!((out[0] - 1.0).abs() <= 0.11);
        // Singleton input is returned unchanged.
        let one = [7.0f32];
        let out = Krum::new(1).aggregate(&[&one], None);
        assert_eq!(out, vec![7.0]);
    }

    #[test]
    fn paper_cluster_of_four_works() {
        // The paper's partial-aggregation setting: 4 updates, f = 1.
        let updates = cluster_with_outliers(&[1.0], 0.05, 3, &[100.0], 1);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = MultiKrum::new(1, 3).aggregate(&refs, None);
        assert!((out[0] - 1.0).abs() < 0.5);
        assert!(!Krum::guarantee_holds(1, 4));
        assert!(Krum::guarantee_holds(1, 5));
    }

    #[test]
    fn nan_adversarial_update_cannot_panic_or_win() {
        // A Byzantine client can submit NaN coordinates; every pairwise
        // distance involving it is NaN. The sort/min must not panic
        // (total_cmp orders NaN after all finite scores), and the
        // NaN-scored input must never be selected.
        let mut updates = cluster_with_outliers(&[1.0, 1.0], 0.1, 6, &[0.0, 0.0], 0);
        updates.push(vec![f32::NAN, f32::INFINITY]);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();

        let out = Krum::new(1).aggregate(&refs, None);
        assert!(out.iter().all(|x| x.is_finite()), "Krum picked NaN: {out:?}");
        assert!(hfl_tensor::ops::dist(&out, &[1.0, 1.0]) < 0.5);

        let mk = MultiKrum::new(1, 4);
        let sel = mk.select(&refs);
        assert!(sel.iter().all(|&i| i < 6), "NaN input selected: {sel:?}");
        let out = mk.aggregate(&refs, None);
        assert!(out.iter().all(|x| x.is_finite()));

        let scores = krum_scores(&refs, 1);
        assert!(
            scores[..6].iter().all(|s| s.is_finite()),
            "honest scores must exclude the NaN tail: {scores:?}"
        );
    }

    #[test]
    fn optimized_scores_bitwise_match_naive_reference() {
        // The in-crate smoke version of tests/kernel_equivalence.rs:
        // symmetry-halved + blocked + work-stealing scores must equal
        // the original loop bit for bit, NaN tail included.
        let mut updates = cluster_with_outliers(&[1.0, -2.0, 0.5], 0.3, 9, &[40.0, -40.0, 7.0], 2);
        updates.push(vec![f32::NAN, f32::INFINITY, -0.0]);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        for f in [0usize, 1, 3] {
            for threads in [1usize, 2, 4, 8] {
                let opt = krum_scores_with_threads(&refs, f, threads);
                let naive = reference::krum_scores_naive(&refs, f, threads);
                assert_eq!(opt.len(), naive.len());
                for (a, b) in opt.iter().zip(&naive) {
                    assert_eq!(a.to_bits(), b.to_bits(), "f={f} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn aggregate_into_matches_aggregate_and_reuses_buffers() {
        let updates = cluster_with_outliers(&[1.0, -1.0], 0.1, 6, &[30.0, -30.0], 2);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let mut scratch = AggScratch::default();
        let mut out = Vec::new();
        for _ in 0..3 {
            let mk = MultiKrum::new(2, 4);
            mk.aggregate_into(&refs, None, &mut out, &mut scratch);
            assert_eq!(out, mk.aggregate(&refs, None));
            let k = Krum::new(2);
            k.aggregate_into(&refs, None, &mut out, &mut scratch);
            assert_eq!(out, k.aggregate(&refs, None));
        }
    }

    #[test]
    fn tolerance_formula() {
        assert_eq!(Krum::new(1).max_byzantine(16), 6);
        assert_eq!(Krum::new(1).max_byzantine(3), 0);
        assert_eq!(Krum::new(1).max_byzantine(2), 0);
    }
}
