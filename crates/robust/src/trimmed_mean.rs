//! Coordinate-wise trimmed mean (Yin et al., ICML 2018).

use crate::{validate_updates, Aggregator};

/// Coordinate-wise `ratio`-trimmed mean: removes the `⌊ratio·n⌋` smallest
/// and largest values of each coordinate before averaging.
#[derive(Clone, Copy, Debug)]
pub struct TrimmedMean {
    ratio: f64,
}

impl TrimmedMean {
    /// Trimmed mean removing a `ratio` fraction from each tail.
    ///
    /// # Panics
    /// If `ratio` is outside `[0, 0.5)`.
    pub fn new(ratio: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&ratio),
            "trim ratio must be in [0, 0.5)"
        );
        Self { ratio }
    }

    /// The trim fraction per tail.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Number of values trimmed from each tail for `n` inputs, clamped so
    /// at least one value always remains.
    pub fn trim_count(&self, n: usize) -> usize {
        let t = (self.ratio * n as f64).floor() as usize;
        if 2 * t >= n {
            n.saturating_sub(1) / 2
        } else {
            t
        }
    }
}

impl Aggregator for TrimmedMean {
    fn name(&self) -> &'static str {
        "trimmed-mean"
    }

    fn aggregate(&self, updates: &[&[f32]], _weights: Option<&[f32]>) -> Vec<f32> {
        let d = validate_updates(updates);
        let trim = self.trim_count(updates.len());
        let mut out = vec![0.0f32; d];
        hfl_tensor::stats::coordinate_trimmed_mean(updates, trim, &mut out);
        out
    }

    fn max_byzantine(&self, n: usize) -> usize {
        self.trim_count(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::cluster_with_outliers;

    #[test]
    fn trims_extremes() {
        let updates = cluster_with_outliers(&[2.0], 0.0, 8, &[1e9], 2);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = TrimmedMean::new(0.2).aggregate(&refs, None);
        assert!((out[0] - 2.0).abs() < 1e-3, "got {}", out[0]);
    }

    #[test]
    fn zero_ratio_is_plain_mean() {
        let a = [0.0f32];
        let b = [4.0f32];
        let out = TrimmedMean::new(0.0).aggregate(&[&a, &b], None);
        assert_eq!(out, vec![2.0]);
    }

    #[test]
    fn trim_count_clamps_for_tiny_n() {
        let tm = TrimmedMean::new(0.4);
        assert_eq!(tm.trim_count(2), 0); // 0.8 of 2 floor = 0
        assert_eq!(tm.trim_count(3), 1);
        assert_eq!(tm.trim_count(10), 4);
    }

    #[test]
    #[should_panic(expected = "trim ratio")]
    fn half_ratio_panics() {
        TrimmedMean::new(0.5);
    }
}
