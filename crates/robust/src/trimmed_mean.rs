//! Coordinate-wise trimmed mean (Yin et al., ICML 2018).

use crate::{validate_updates, AggScratch, Aggregator};

/// Dimension above which the coordinate loop is split across threads —
/// the same crossover the median kernel uses.
const PARALLEL_THRESHOLD: usize = 16_384;

/// Coordinate-wise trimmed mean over `rows`, parallelized over
/// coordinate chunks claimed off the work-stealing scheduler: each
/// worker owns a disjoint slice of `out` plus a private column scratch,
/// so placement is deterministic and per-coordinate values match the
/// sequential kernel exactly at any thread count.
pub fn coordinate_trimmed_mean_parallel(
    rows: &[&[f32]],
    trim: usize,
    out: &mut [f32],
    threads: usize,
) {
    let d = out.len();
    assert!(!rows.is_empty(), "coordinate_trimmed_mean: empty input");
    assert!(
        rows.iter().all(|r| r.len() == d),
        "coordinate_trimmed_mean: row length mismatch"
    );
    let chunk = d.div_ceil(threads.max(1)).max(1);
    hfl_parallel::par_chunks_mut(out, chunk, threads, |base, slice| {
        let mut col = vec![0.0f32; rows.len()];
        for (off, o) in slice.iter_mut().enumerate() {
            let j = base + off;
            for (c, r) in col.iter_mut().zip(rows) {
                *c = r[j];
            }
            *o = hfl_tensor::stats::trimmed_mean_in_place(&mut col, trim);
        }
    });
}

/// Coordinate-wise `ratio`-trimmed mean: removes the `⌊ratio·n⌋` smallest
/// and largest values of each coordinate before averaging.
#[derive(Clone, Copy, Debug)]
pub struct TrimmedMean {
    ratio: f64,
}

impl TrimmedMean {
    /// Trimmed mean removing a `ratio` fraction from each tail.
    ///
    /// # Panics
    /// If `ratio` is outside `[0, 0.5)`.
    pub fn new(ratio: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&ratio),
            "trim ratio must be in [0, 0.5)"
        );
        Self { ratio }
    }

    /// The trim fraction per tail.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Number of values trimmed from each tail for `n` inputs, clamped so
    /// at least one value always remains.
    pub fn trim_count(&self, n: usize) -> usize {
        let t = (self.ratio * n as f64).floor() as usize;
        if 2 * t >= n {
            n.saturating_sub(1) / 2
        } else {
            t
        }
    }
}

impl Aggregator for TrimmedMean {
    fn name(&self) -> &'static str {
        "trimmed-mean"
    }

    fn aggregate(&self, updates: &[&[f32]], _weights: Option<&[f32]>) -> Vec<f32> {
        let d = validate_updates(updates);
        let trim = self.trim_count(updates.len());
        let mut out = vec![0.0f32; d];
        if d >= PARALLEL_THRESHOLD {
            coordinate_trimmed_mean_parallel(updates, trim, &mut out, hfl_parallel::default_threads());
        } else {
            hfl_tensor::stats::coordinate_trimmed_mean(updates, trim, &mut out);
        }
        out
    }

    fn aggregate_into(
        &self,
        updates: &[&[f32]],
        _weights: Option<&[f32]>,
        out: &mut Vec<f32>,
        scratch: &mut AggScratch,
    ) {
        let d = validate_updates(updates);
        let trim = self.trim_count(updates.len());
        out.clear();
        out.resize(d, 0.0);
        if d >= PARALLEL_THRESHOLD {
            coordinate_trimmed_mean_parallel(updates, trim, out, hfl_parallel::default_threads());
        } else {
            hfl_tensor::stats::coordinate_trimmed_mean_into(updates, trim, out, &mut scratch.col);
        }
    }

    fn max_byzantine(&self, n: usize) -> usize {
        self.trim_count(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::cluster_with_outliers;

    #[test]
    fn trims_extremes() {
        let updates = cluster_with_outliers(&[2.0], 0.0, 8, &[1e9], 2);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = TrimmedMean::new(0.2).aggregate(&refs, None);
        assert!((out[0] - 2.0).abs() < 1e-3, "got {}", out[0]);
    }

    #[test]
    fn zero_ratio_is_plain_mean() {
        let a = [0.0f32];
        let b = [4.0f32];
        let out = TrimmedMean::new(0.0).aggregate(&[&a, &b], None);
        assert_eq!(out, vec![2.0]);
    }

    #[test]
    fn trim_count_clamps_for_tiny_n() {
        let tm = TrimmedMean::new(0.4);
        assert_eq!(tm.trim_count(2), 0); // 0.8 of 2 floor = 0
        assert_eq!(tm.trim_count(3), 1);
        assert_eq!(tm.trim_count(10), 4);
    }

    #[test]
    #[should_panic(expected = "trim ratio")]
    fn half_ratio_panics() {
        TrimmedMean::new(0.5);
    }

    #[test]
    fn parallel_trimmed_mean_matches_sequential() {
        // Same result regardless of thread count and chunking.
        let rows: Vec<Vec<f32>> = (0..9)
            .map(|i| {
                (0..1000)
                    .map(|j| ((i * 31 + j * 7) % 17) as f32 - 8.0)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut seq = vec![0.0f32; 1000];
        hfl_tensor::stats::coordinate_trimmed_mean(&refs, 2, &mut seq);
        for threads in [1, 2, 4, 7] {
            let mut par = vec![0.0f32; 1000];
            coordinate_trimmed_mean_parallel(&refs, 2, &mut par, threads);
            assert_eq!(par, seq, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn large_dimension_routes_through_parallel_path() {
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|i| vec![i as f32; super::PARALLEL_THRESHOLD + 3])
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let out = TrimmedMean::new(0.2).aggregate(&refs, None);
        assert!(out.iter().all(|x| *x == 2.0));
    }
}
