//! AutoGM-style filtered geometric median (after the automated
//! geometric-median scheme surveyed by Li et al., "An experimental study
//! of Byzantine-robust aggregation schemes" — the paper's Table II lists
//! it under both the Euclidean-distance and median strategies).
//!
//! Two passes: (1) compute the geometric median of all updates;
//! (2) discard updates farther from it than `kappa ×` the median
//! update-to-GM distance (a data-driven outlier radius — the "auto" in
//! AutoGM), then average the survivors. Falls back to the plain geometric
//! median when filtering would discard everything.

use crate::geomed::GeoMed;
use crate::{validate_updates, Aggregator};

/// Filtered geometric median.
#[derive(Clone, Copy, Debug)]
pub struct AutoGm {
    /// Outlier radius in units of the median distance to the GM.
    pub kappa: f64,
    /// Inner Weiszfeld settings.
    pub geomed: GeoMed,
}

impl Default for AutoGm {
    fn default() -> Self {
        Self {
            kappa: 3.0,
            geomed: GeoMed::default(),
        }
    }
}

impl AutoGm {
    /// AutoGM with the given outlier multiplier.
    ///
    /// # Panics
    /// If `kappa <= 0`.
    pub fn new(kappa: f64) -> Self {
        assert!(kappa > 0.0, "kappa must be positive");
        Self {
            kappa,
            ..Self::default()
        }
    }

    /// Indices of the updates that survive the filter.
    pub fn survivors(&self, updates: &[&[f32]]) -> Vec<usize> {
        let (gm, _) = self.geomed.compute(updates);
        let mut dists: Vec<f64> = updates
            .iter()
            .map(|u| hfl_tensor::ops::dist(u, &gm))
            .collect();
        let mut sorted = dists.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
        let med = sorted[sorted.len() / 2].max(1e-12);
        let radius = self.kappa * med;
        let kept: Vec<usize> = dists
            .iter()
            .enumerate()
            .filter(|(_, d)| **d <= radius)
            .map(|(i, _)| i)
            .collect();
        if kept.is_empty() {
            dists.clear();
            (0..updates.len()).collect()
        } else {
            kept
        }
    }
}

impl Aggregator for AutoGm {
    fn name(&self) -> &'static str {
        "autogm"
    }

    fn aggregate(&self, updates: &[&[f32]], _weights: Option<&[f32]>) -> Vec<f32> {
        let d = validate_updates(updates);
        let kept = self.survivors(updates);
        let selected: Vec<&[f32]> = kept.iter().map(|&i| updates[i]).collect();
        let mut out = vec![0.0f32; d];
        hfl_tensor::ops::mean_of(&selected, &mut out);
        out
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::cluster_with_outliers;

    #[test]
    fn filters_far_outliers() {
        let updates = cluster_with_outliers(&[1.0, 1.0], 0.1, 7, &[1e5, -1e5], 3);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let agm = AutoGm::default();
        let kept = agm.survivors(&refs);
        assert!(
            kept.iter().all(|&i| i < 7),
            "kept adversarial index: {kept:?}"
        );
        let out = agm.aggregate(&refs, None);
        assert!(hfl_tensor::ops::dist(&out, &[1.0, 1.0]) < 0.5);
    }

    #[test]
    fn no_outliers_keeps_everything() {
        let updates = cluster_with_outliers(&[0.0, 0.0], 0.2, 8, &[0.0, 0.0], 0);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        assert_eq!(AutoGm::default().survivors(&refs).len(), 8);
    }

    #[test]
    fn identical_updates_survive_zero_spread() {
        // All-equal inputs: median distance 0; the 1e-12 floor keeps all.
        let updates = vec![vec![2.0f32, 2.0]; 5];
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = AutoGm::default().aggregate(&refs, None);
        assert_eq!(out, vec![2.0, 2.0]);
    }

    #[test]
    fn more_robust_than_plain_mean() {
        let updates = cluster_with_outliers(&[1.0], 0.05, 6, &[1e6], 2);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let auto = AutoGm::default().aggregate(&refs, None);
        let mean = crate::FedAvg.aggregate(&refs, None);
        assert!((auto[0] - 1.0).abs() < 0.5);
        assert!(mean[0] > 1e5);
    }

    #[test]
    #[should_panic(expected = "kappa must be positive")]
    fn zero_kappa_panics() {
        AutoGm::new(0.0);
    }
}
