//! Coordinate-wise median (Yin et al., ICML 2018) — the paper's non-IID
//! partial-aggregation rule.

use crate::{validate_updates, AggScratch, Aggregator};

/// Dimension above which the coordinate loop is split across threads.
/// Below this, thread-spawn overhead exceeds the selection work.
const PARALLEL_THRESHOLD: usize = 16_384;

/// Coordinate-wise median over `rows`, parallelized over coordinate
/// chunks: each worker owns a disjoint slice of `out` plus a private
/// column scratch buffer, so the kernel is data-race-free by construction
/// and scales linearly in the coordinate count.
pub fn coordinate_median_parallel(rows: &[&[f32]], out: &mut [f32], threads: usize) {
    let d = out.len();
    assert!(!rows.is_empty(), "coordinate_median: empty input");
    assert!(
        rows.iter().all(|r| r.len() == d),
        "coordinate_median: row length mismatch"
    );
    let chunk = d.div_ceil(threads.max(1)).max(1);
    hfl_parallel::par_chunks_mut(out, chunk, threads, |base, slice| {
        let mut col = vec![0.0f32; rows.len()];
        for (off, o) in slice.iter_mut().enumerate() {
            let j = base + off;
            for (c, r) in col.iter_mut().zip(rows) {
                *c = r[j];
            }
            *o = hfl_tensor::stats::median_in_place(&mut col);
        }
    });
}

/// Coordinate-wise median over updates.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordMedian;

impl Aggregator for CoordMedian {
    fn name(&self) -> &'static str {
        "median"
    }

    fn aggregate(&self, updates: &[&[f32]], _weights: Option<&[f32]>) -> Vec<f32> {
        let d = validate_updates(updates);
        let mut out = vec![0.0f32; d];
        if d >= PARALLEL_THRESHOLD {
            coordinate_median_parallel(updates, &mut out, hfl_parallel::default_threads());
        } else {
            hfl_tensor::stats::coordinate_median(updates, &mut out);
        }
        out
    }

    fn aggregate_into(
        &self,
        updates: &[&[f32]],
        _weights: Option<&[f32]>,
        out: &mut Vec<f32>,
        scratch: &mut AggScratch,
    ) {
        let d = validate_updates(updates);
        out.clear();
        out.resize(d, 0.0);
        if d >= PARALLEL_THRESHOLD {
            coordinate_median_parallel(updates, out, hfl_parallel::default_threads());
        } else {
            hfl_tensor::stats::coordinate_median_into(updates, out, &mut scratch.col);
        }
    }

    fn max_byzantine(&self, n: usize) -> usize {
        // The median moves outside the honest range once the adversary
        // controls half the inputs.
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::cluster_with_outliers;

    #[test]
    fn median_resists_minority_outliers() {
        let updates = cluster_with_outliers(&[1.0, 2.0], 0.1, 5, &[1e6, -1e6], 2);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = CoordMedian.aggregate(&refs, None);
        assert!(hfl_tensor::ops::dist(&out, &[1.0, 2.0]) < 0.5);
    }

    #[test]
    fn median_breaks_at_majority() {
        let updates = cluster_with_outliers(&[0.0], 0.0, 2, &[100.0], 3);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = CoordMedian.aggregate(&refs, None);
        assert_eq!(out[0], 100.0);
    }

    #[test]
    fn single_update_is_identity() {
        let u = [3.0f32, -2.0];
        let out = CoordMedian.aggregate(&[&u], None);
        assert_eq!(out, vec![3.0, -2.0]);
    }

    #[test]
    fn parallel_median_matches_sequential() {
        // Same result regardless of thread count and chunking.
        let rows: Vec<Vec<f32>> = (0..9)
            .map(|i| {
                (0..1000)
                    .map(|j| ((i * 31 + j * 7) % 17) as f32 - 8.0)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut seq = vec![0.0f32; 1000];
        hfl_tensor::stats::coordinate_median(&refs, &mut seq);
        for threads in [1, 2, 4, 7] {
            let mut par = vec![0.0f32; 1000];
            coordinate_median_parallel(&refs, &mut par, threads);
            assert_eq!(par, seq, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn large_dimension_routes_through_parallel_path() {
        // Exercise the d >= threshold branch end to end.
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|i| vec![i as f32; super::PARALLEL_THRESHOLD + 3])
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let out = CoordMedian.aggregate(&refs, None);
        assert!(out.iter().all(|x| *x == 2.0));
    }

    #[test]
    fn tolerance_is_minority() {
        assert_eq!(CoordMedian.max_byzantine(5), 2);
        assert_eq!(CoordMedian.max_byzantine(4), 1);
        assert_eq!(CoordMedian.max_byzantine(1), 0);
    }
}
