//! Defense-side memory: per-client exponentially-decayed suspicion
//! scores, quarantine above a threshold, rehabilitation on decay.
//!
//! The hierarchy's aggregation rules are memoryless — a client that
//! sign-flips every round is treated identically in round 50 and in
//! round 1. The tracker accumulates the per-round strike evidence the
//! rules already produce ([`crate::evidence`]) into a score
//!
//! ```text
//! score[c] ← decay · (score[c] + strikes_this_round[c])
//! ```
//!
//! and quarantines a client whose pre-decay score crosses
//! `quarantine_threshold`: its updates are excluded from aggregation
//! until the score decays below `release_threshold` (quarantined clients
//! accrue no new evidence, so rehabilitation is automatic — a client
//! that was struck by bad luck returns within a few rounds).
//!
//! Steady state: a client struck `s` per round converges to a pre-decay
//! score of `s / (1 − decay)`. With the defaults (decay 0.8, quarantine
//! 2.2) a persistent worst-rank outlier (s = 1.0, steady state 5.0)
//! crosses within 3 rounds, a persistent runner-up (s = 0.5, steady
//! state 2.5) within 7, while a client struck occasionally stays below
//! threshold forever.

use serde::{Deserialize, Serialize};

/// Suspicion layer parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SuspicionConfig {
    /// Multiplicative per-round score decay, in `(0, 1)`.
    pub decay: f64,
    /// Quarantine a client whose pre-decay score reaches this.
    pub quarantine_threshold: f64,
    /// Release a quarantined client once its score decays below this
    /// (must be below `quarantine_threshold` for hysteresis).
    pub release_threshold: f64,
}

impl Default for SuspicionConfig {
    fn default() -> Self {
        Self {
            decay: 0.8,
            quarantine_threshold: 2.2,
            release_threshold: 0.8,
        }
    }
}

impl SuspicionConfig {
    /// First parameter out of range, if any (`None` = valid). The exact
    /// invariants: `decay ∈ (0, 1)`, thresholds positive and finite,
    /// `release_threshold < quarantine_threshold`.
    pub fn invalid_param(&self) -> Option<(&'static str, f64)> {
        if !(self.decay > 0.0 && self.decay < 1.0) {
            return Some(("decay", self.decay));
        }
        if !(self.quarantine_threshold > 0.0 && self.quarantine_threshold.is_finite()) {
            return Some(("quarantine_threshold", self.quarantine_threshold));
        }
        if !(self.release_threshold > 0.0 && self.release_threshold < self.quarantine_threshold) {
            return Some(("release_threshold", self.release_threshold));
        }
        None
    }
}

/// A quarantine-state transition produced by [`SuspicionTracker::end_round`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SuspicionChange {
    /// The client's score crossed the quarantine threshold.
    Quarantined {
        /// Client id.
        client: usize,
        /// Score at the transition.
        score: f64,
    },
    /// The quarantined client's score decayed below the release
    /// threshold (rehabilitation).
    Released {
        /// Client id.
        client: usize,
        /// Score at the transition.
        score: f64,
    },
}

/// Per-client suspicion state for one run. Purely arithmetic — no RNG,
/// no wall clock — so runs stay bit-reproducible.
#[derive(Clone, Debug)]
pub struct SuspicionTracker {
    cfg: SuspicionConfig,
    scores: Vec<f64>,
    quarantined: Vec<bool>,
    quarantine_events: u64,
}

impl SuspicionTracker {
    /// A fresh tracker for `n` clients.
    pub fn new(n: usize, cfg: SuspicionConfig) -> Self {
        Self {
            cfg,
            scores: vec![0.0; n],
            quarantined: vec![false; n],
            quarantine_events: 0,
        }
    }

    /// Adds strike evidence for `client` this round.
    pub fn strike(&mut self, client: usize, weight: f64) {
        self.scores[client] += weight;
    }

    /// True while `client`'s updates are excluded from aggregation.
    pub fn is_quarantined(&self, client: usize) -> bool {
        self.quarantined[client]
    }

    /// Current score of `client`.
    pub fn score(&self, client: usize) -> f64 {
        self.scores[client]
    }

    /// All current scores, indexed by client.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Total quarantine transitions so far.
    pub fn quarantine_events(&self) -> u64 {
        self.quarantine_events
    }

    /// Currently quarantined clients, ascending.
    pub fn quarantined_clients(&self) -> Vec<usize> {
        (0..self.quarantined.len())
            .filter(|&c| self.quarantined[c])
            .collect()
    }

    /// Per-client quarantine flags, indexed like [`Self::scores`].
    pub fn quarantined_mask(&self) -> &[bool] {
        &self.quarantined
    }

    /// Overwrites the tracker's mutable state from a checkpoint
    /// (scores, quarantine flags, transition count). Both slices must
    /// match the tracked population size.
    pub fn restore_state(
        &mut self,
        scores: &[f64],
        quarantined: &[bool],
        quarantine_events: u64,
    ) -> Result<(), String> {
        if scores.len() != self.scores.len() || quarantined.len() != self.quarantined.len() {
            return Err(format!(
                "suspicion state is for {} clients, tracker has {}",
                scores.len(),
                self.scores.len()
            ));
        }
        self.scores.copy_from_slice(scores);
        self.quarantined.copy_from_slice(quarantined);
        self.quarantine_events = quarantine_events;
        Ok(())
    }

    /// Closes the round: thresholds are checked on the accumulated
    /// (pre-decay) scores, then every score decays. Returns the state
    /// transitions in ascending client order.
    pub fn end_round(&mut self) -> Vec<SuspicionChange> {
        let mut changes = Vec::new();
        for c in 0..self.scores.len() {
            if !self.quarantined[c] && self.scores[c] >= self.cfg.quarantine_threshold {
                self.quarantined[c] = true;
                self.quarantine_events += 1;
                changes.push(SuspicionChange::Quarantined {
                    client: c,
                    score: self.scores[c],
                });
            } else if self.quarantined[c] && self.scores[c] < self.cfg.release_threshold {
                self.quarantined[c] = false;
                changes.push(SuspicionChange::Released {
                    client: c,
                    score: self.scores[c],
                });
            }
            self.scores[c] *= self.cfg.decay;
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(SuspicionConfig::default().invalid_param(), None);
    }

    #[test]
    fn invalid_params_are_caught() {
        let mut c = SuspicionConfig {
            decay: 1.0,
            ..SuspicionConfig::default()
        };
        assert_eq!(c.invalid_param(), Some(("decay", 1.0)));
        c = SuspicionConfig::default();
        c.quarantine_threshold = 0.0;
        assert!(c.invalid_param().is_some());
        c = SuspicionConfig::default();
        c.release_threshold = 3.0; // above quarantine
        assert_eq!(c.invalid_param(), Some(("release_threshold", 3.0)));
    }

    #[test]
    fn persistent_worst_rank_is_quarantined_within_three_rounds() {
        let mut t = SuspicionTracker::new(4, SuspicionConfig::default());
        let mut quarantined_at = None;
        for round in 0..5 {
            t.strike(2, 1.0);
            for ch in t.end_round() {
                if let SuspicionChange::Quarantined { client, .. } = ch {
                    assert_eq!(client, 2);
                    quarantined_at.get_or_insert(round);
                }
            }
        }
        assert!(quarantined_at.expect("must quarantine") <= 2);
        assert!(t.is_quarantined(2));
        assert_eq!(t.quarantine_events(), 1);
    }

    #[test]
    fn runner_up_strikes_eventually_quarantine() {
        // s = 0.5/round: steady state 2.5 > threshold 2.2 — the adaptive
        // attacker pinned at rank 2 is still caught, just slower.
        let mut t = SuspicionTracker::new(2, SuspicionConfig::default());
        for _ in 0..10 {
            t.strike(0, 0.5);
            t.end_round();
        }
        assert!(t.is_quarantined(0));
        assert!(!t.is_quarantined(1));
    }

    #[test]
    fn occasional_strikes_never_quarantine() {
        // An honest client that is the worst-ranked once every 4 rounds
        // (rotating bad luck) stays below threshold forever.
        let mut t = SuspicionTracker::new(1, SuspicionConfig::default());
        for round in 0..40 {
            if round % 4 == 0 {
                t.strike(0, 1.0);
            }
            t.end_round();
        }
        assert!(!t.is_quarantined(0), "score {}", t.score(0));
    }

    #[test]
    fn rehabilitation_on_decay() {
        let mut t = SuspicionTracker::new(1, SuspicionConfig::default());
        for _ in 0..4 {
            t.strike(0, 1.0);
            t.end_round();
        }
        assert!(t.is_quarantined(0));
        // No further evidence (quarantined inputs are excluded): the
        // score decays below release within a handful of rounds.
        let mut released_at = None;
        for round in 0..12 {
            for ch in t.end_round() {
                if let SuspicionChange::Released { client, .. } = ch {
                    assert_eq!(client, 0);
                    released_at.get_or_insert(round);
                }
            }
        }
        assert!(released_at.expect("must release") <= 8);
        assert!(!t.is_quarantined(0));
    }

    #[test]
    fn hysteresis_no_flapping_at_the_boundary() {
        // A score that hovers between release and quarantine thresholds
        // changes state at most once.
        let mut t = SuspicionTracker::new(1, SuspicionConfig::default());
        let mut transitions = 0;
        for _ in 0..30 {
            t.strike(0, 0.3); // steady state 1.5: between 0.8 and 2.2
            transitions += t.end_round().len();
        }
        assert_eq!(transitions, 0, "boundary hovering must not flap");
    }

    #[test]
    fn changes_are_deterministic_and_ordered() {
        let mut t = SuspicionTracker::new(5, SuspicionConfig::default());
        for c in [4, 1, 3] {
            t.strike(c, 3.0);
        }
        let changes = t.end_round();
        let clients: Vec<usize> = changes
            .iter()
            .map(|ch| match ch {
                SuspicionChange::Quarantined { client, .. }
                | SuspicionChange::Released { client, .. } => *client,
            })
            .collect();
        assert_eq!(clients, vec![1, 3, 4]);
    }
}
