//! Geometric median via Weiszfeld's algorithm (GeoMed; Chen et al. 2017).
//!
//! The geometric median minimizes the sum of Euclidean distances to the
//! inputs and has breakdown point 1/2. Weiszfeld iterates a weighted mean
//! with weights `1/dist`; each iteration is O(n·d) and parallelizes over
//! inputs.

use crate::{validate_updates, Aggregator};

/// Geometric-median aggregation.
#[derive(Clone, Copy, Debug)]
pub struct GeoMed {
    /// Maximum Weiszfeld iterations.
    pub max_iters: usize,
    /// Convergence threshold on the step length.
    pub tol: f64,
}

impl Default for GeoMed {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tol: 1e-7,
        }
    }
}

impl GeoMed {
    /// Runs Weiszfeld from the coordinate-wise mean. Returns the estimate
    /// and the number of iterations used.
    pub fn compute(&self, updates: &[&[f32]]) -> (Vec<f32>, usize) {
        let d = validate_updates(updates);
        let mut est = vec![0.0f32; d];
        hfl_tensor::ops::mean_of(updates, &mut est);
        if updates.len() == 1 {
            return (est, 0);
        }
        let threads = hfl_parallel::default_threads();
        let mut next = vec![0.0f32; d];
        for it in 0..self.max_iters {
            // Weights 1/max(dist, eps); a point sitting exactly on an
            // input gets a huge weight, effectively snapping to it —
            // the standard Weiszfeld regularization.
            let dists: Vec<f64> = hfl_parallel::par_map(updates, threads, |u| {
                hfl_tensor::ops::dist(&est, u).max(1e-12)
            });
            let weights: Vec<f32> = dists.iter().map(|d| (1.0 / d) as f32).collect();
            hfl_tensor::ops::weighted_mean_of(updates, &weights, &mut next);
            let step = hfl_tensor::ops::dist(&est, &next);
            est.copy_from_slice(&next);
            if step < self.tol {
                return (est, it + 1);
            }
        }
        (est, self.max_iters)
    }
}

impl Aggregator for GeoMed {
    fn name(&self) -> &'static str {
        "geomed"
    }

    fn aggregate(&self, updates: &[&[f32]], _weights: Option<&[f32]>) -> Vec<f32> {
        self.compute(updates).0
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::cluster_with_outliers;

    #[test]
    fn geomed_of_symmetric_points_is_center() {
        let updates = [
            vec![1.0f32, 0.0],
            vec![-1.0f32, 0.0],
            vec![0.0f32, 1.0],
            vec![0.0f32, -1.0],
        ];
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = GeoMed::default().aggregate(&refs, None);
        assert!(hfl_tensor::ops::norm(&out) < 1e-4, "got {out:?}");
    }

    #[test]
    fn geomed_resists_minority_outliers() {
        let updates = cluster_with_outliers(&[1.0, 1.0], 0.05, 7, &[1e4, 1e4], 3);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = GeoMed::default().aggregate(&refs, None);
        assert!(
            hfl_tensor::ops::dist(&out, &[1.0, 1.0]) < 0.5,
            "got {out:?}"
        );
    }

    #[test]
    fn mean_would_fail_where_geomed_holds() {
        let updates = cluster_with_outliers(&[1.0, 1.0], 0.05, 7, &[1e4, 1e4], 3);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let mean = crate::FedAvg.aggregate(&refs, None);
        assert!(hfl_tensor::ops::dist(&mean, &[1.0, 1.0]) > 100.0);
    }

    #[test]
    fn single_point_is_identity() {
        let u = [5.0f32, -3.0];
        let (out, iters) = GeoMed::default().compute(&[&u]);
        assert_eq!(out, vec![5.0, -3.0]);
        assert_eq!(iters, 0);
    }

    #[test]
    fn converges_quickly_on_tight_cluster() {
        let updates = cluster_with_outliers(&[0.0, 0.0], 0.01, 10, &[0.0, 0.0], 0);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let (_, iters) = GeoMed::default().compute(&refs);
        assert!(iters < 100, "did not converge: {iters}");
    }
}
