//! Geometric median via Weiszfeld's algorithm (GeoMed; Chen et al. 2017).
//!
//! The geometric median minimizes the sum of Euclidean distances to the
//! inputs and has breakdown point 1/2. Weiszfeld iterates a weighted mean
//! with weights `1/dist`; each iteration is O(n·d) and parallelizes over
//! inputs.

use crate::{validate_updates, AggScratch, Aggregator};

/// Geometric-median aggregation.
#[derive(Clone, Copy, Debug)]
pub struct GeoMed {
    /// Maximum Weiszfeld iterations.
    pub max_iters: usize,
    /// Convergence threshold on the step length.
    pub tol: f64,
}

impl Default for GeoMed {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tol: 1e-7,
        }
    }
}

impl GeoMed {
    /// Runs Weiszfeld from the coordinate-wise mean. Returns the estimate
    /// and the number of iterations used.
    pub fn compute(&self, updates: &[&[f32]]) -> (Vec<f32>, usize) {
        let mut est = Vec::new();
        let iters = self.compute_into(
            updates,
            hfl_parallel::default_threads(),
            &mut est,
            &mut AggScratch::default(),
        );
        (est, iters)
    }

    /// Allocation-free Weiszfeld core: writes the estimate into `est`,
    /// reusing `scratch` buffers (distance row, weight row, next-estimate
    /// temporary) across iterations *and* across calls. Returns the
    /// iteration count. Values are identical to [`GeoMed::compute`] —
    /// per-input distances and the fused weighted mean are computed the
    /// same way, only buffer lifetimes change.
    pub fn compute_into(
        &self,
        updates: &[&[f32]],
        threads: usize,
        est: &mut Vec<f32>,
        scratch: &mut AggScratch,
    ) -> usize {
        let d = validate_updates(updates);
        est.clear();
        est.resize(d, 0.0);
        hfl_tensor::ops::mean_of(updates, est);
        if updates.len() == 1 {
            return 0;
        }
        let n = updates.len();
        let AggScratch { row, col, tmp, .. } = scratch;
        let (dists, weights, next) = (row, col, tmp);
        dists.clear();
        dists.resize(n, 0.0);
        next.clear();
        next.resize(d, 0.0);
        let chunk = n.div_ceil(threads.max(1)).max(1);
        for it in 0..self.max_iters {
            // Weights 1/max(dist, eps); a point sitting exactly on an
            // input gets a huge weight, effectively snapping to it —
            // the standard Weiszfeld regularization. The fill is
            // work-stealing over row chunks but placement is by index,
            // so the row is identical at any thread count.
            let est_ro = &est[..];
            hfl_parallel::par_chunks_mut(dists, chunk, threads, |base, slice| {
                for (off, o) in slice.iter_mut().enumerate() {
                    *o = hfl_tensor::ops::dist(est_ro, updates[base + off]).max(1e-12);
                }
            });
            weights.clear();
            weights.extend(dists.iter().map(|d| (1.0 / d) as f32));
            hfl_tensor::ops::weighted_mean_of(updates, weights, next);
            let step = hfl_tensor::ops::dist(est, next);
            est.copy_from_slice(next);
            if step < self.tol {
                return it + 1;
            }
        }
        self.max_iters
    }
}

impl Aggregator for GeoMed {
    fn name(&self) -> &'static str {
        "geomed"
    }

    fn aggregate(&self, updates: &[&[f32]], _weights: Option<&[f32]>) -> Vec<f32> {
        self.compute(updates).0
    }

    fn aggregate_into(
        &self,
        updates: &[&[f32]],
        _weights: Option<&[f32]>,
        out: &mut Vec<f32>,
        scratch: &mut AggScratch,
    ) {
        self.compute_into(updates, hfl_parallel::default_threads(), out, scratch);
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::cluster_with_outliers;

    #[test]
    fn geomed_of_symmetric_points_is_center() {
        let updates = [
            vec![1.0f32, 0.0],
            vec![-1.0f32, 0.0],
            vec![0.0f32, 1.0],
            vec![0.0f32, -1.0],
        ];
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = GeoMed::default().aggregate(&refs, None);
        assert!(hfl_tensor::ops::norm(&out) < 1e-4, "got {out:?}");
    }

    #[test]
    fn geomed_resists_minority_outliers() {
        let updates = cluster_with_outliers(&[1.0, 1.0], 0.05, 7, &[1e4, 1e4], 3);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = GeoMed::default().aggregate(&refs, None);
        assert!(
            hfl_tensor::ops::dist(&out, &[1.0, 1.0]) < 0.5,
            "got {out:?}"
        );
    }

    #[test]
    fn mean_would_fail_where_geomed_holds() {
        let updates = cluster_with_outliers(&[1.0, 1.0], 0.05, 7, &[1e4, 1e4], 3);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let mean = crate::FedAvg.aggregate(&refs, None);
        assert!(hfl_tensor::ops::dist(&mean, &[1.0, 1.0]) > 100.0);
    }

    #[test]
    fn single_point_is_identity() {
        let u = [5.0f32, -3.0];
        let (out, iters) = GeoMed::default().compute(&[&u]);
        assert_eq!(out, vec![5.0, -3.0]);
        assert_eq!(iters, 0);
    }

    #[test]
    fn compute_into_bitwise_matches_compute_across_threads() {
        let updates = cluster_with_outliers(&[1.0, 1.0, -0.5], 0.3, 9, &[50.0, -50.0, 2.0], 2);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let (baseline, base_iters) = GeoMed::default().compute(&refs);
        let mut scratch = AggScratch::default();
        let mut est = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let iters = GeoMed::default().compute_into(&refs, threads, &mut est, &mut scratch);
            assert_eq!(iters, base_iters, "threads={threads}");
            for (a, b) in est.iter().zip(&baseline) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn converges_quickly_on_tight_cluster() {
        let updates = cluster_with_outliers(&[0.0, 0.0], 0.01, 10, &[0.0, 0.0], 0);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let (_, iters) = GeoMed::default().compute(&refs);
        assert!(iters < 100, "did not converge: {iters}");
    }
}
