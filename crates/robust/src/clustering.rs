//! Cosine-similarity clustering (Sattler et al., ICASSP 2020 style).
//!
//! Builds a similarity graph linking updates whose cosine similarity
//! exceeds a threshold, finds connected components, and averages the
//! largest one — the assumption (as in the paper's related work §II-A)
//! being that benign updates form the largest mutually-similar cluster.

use crate::{validate_updates, Aggregator};

/// Largest-cosine-cluster aggregation.
#[derive(Clone, Copy, Debug)]
pub struct CosineClustering {
    threshold: f64,
}

impl CosineClustering {
    /// Links updates with cosine similarity `>= threshold`.
    ///
    /// # Panics
    /// If `threshold` is outside `[-1, 1]`.
    pub fn new(threshold: f64) -> Self {
        assert!(
            (-1.0..=1.0).contains(&threshold),
            "cosine threshold must be in [-1, 1]"
        );
        Self { threshold }
    }

    /// Partitions update indices into connected components of the
    /// similarity graph, largest component first (ties broken by smallest
    /// member index for determinism).
    pub fn components(&self, updates: &[&[f32]]) -> Vec<Vec<usize>> {
        let n = updates.len();
        let threads = hfl_parallel::default_threads();
        // Parallel upper-triangle similarity; row i holds sims to j>i.
        let sims: Vec<Vec<f64>> = hfl_parallel::par_map_indexed(n, threads, |i| {
            ((i + 1)..n)
                .map(|j| hfl_tensor::ops::cosine_similarity(updates[i], updates[j]))
                .collect()
        });
        // Union-find over edges above the threshold.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for (i, row) in sims.iter().enumerate() {
            for (off, s) in row.iter().enumerate() {
                if *s >= self.threshold {
                    let j = i + 1 + off;
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri.max(rj)] = ri.min(rj);
                    }
                }
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..n {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(i);
        }
        let mut comps: Vec<Vec<usize>> = groups.into_values().collect();
        comps.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        comps
    }
}

impl Aggregator for CosineClustering {
    fn name(&self) -> &'static str {
        "cosine-clustering"
    }

    fn aggregate(&self, updates: &[&[f32]], _weights: Option<&[f32]>) -> Vec<f32> {
        let d = validate_updates(updates);
        let comps = self.components(updates);
        let biggest = &comps[0];
        let selected: Vec<&[f32]> = biggest.iter().map(|&i| updates[i]).collect();
        let mut out = vec![0.0f32; d];
        hfl_tensor::ops::mean_of(&selected, &mut out);
        out
    }

    fn max_byzantine(&self, n: usize) -> usize {
        // Sound while benign updates form the strict-majority cluster.
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Honest updates point roughly along +e1; attackers along −e1.
    fn two_camps(n_good: usize, n_bad: usize) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        for i in 0..n_good {
            out.push(vec![1.0, 0.02 * i as f32]);
        }
        for i in 0..n_bad {
            out.push(vec![-1.0, -0.02 * i as f32]);
        }
        out
    }

    #[test]
    fn splits_into_two_components() {
        let updates = two_camps(5, 3);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let comps = CosineClustering::new(0.5).components(&refs);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 5);
        assert!(comps[0].iter().all(|&i| i < 5));
    }

    #[test]
    fn aggregates_majority_camp() {
        let updates = two_camps(6, 4);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = CosineClustering::new(0.5).aggregate(&refs, None);
        assert!(out[0] > 0.9, "picked the wrong camp: {out:?}");
    }

    #[test]
    fn threshold_minus_one_merges_everything() {
        let updates = two_camps(3, 3);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let comps = CosineClustering::new(-1.0).components(&refs);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 6);
    }

    #[test]
    fn ties_resolve_to_smallest_index_component() {
        let updates = two_camps(3, 3);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let comps = CosineClustering::new(0.5).components(&refs);
        assert_eq!(comps[0][0], 0, "tie must resolve to component containing 0");
    }

    #[test]
    fn single_update_single_component() {
        let u = [1.0f32, 2.0];
        let comps = CosineClustering::new(0.9).components(&[&u]);
        assert_eq!(comps, vec![vec![0]]);
    }

    #[test]
    #[should_panic(expected = "must be in [-1, 1]")]
    fn bad_threshold_panics() {
        CosineClustering::new(1.5);
    }
}
