//! FedAvg: (weighted) linear averaging — the non-robust baseline.
//!
//! Blanchard et al. proved linear aggregation cannot tolerate even one
//! Byzantine worker; it is included as the vanilla-FL baseline and as the
//! final combining step inside Multi-Krum / clustering.

use crate::{validate_updates, AggScratch, Aggregator};

/// Plain or dataset-size-weighted averaging.
#[derive(Clone, Copy, Debug, Default)]
pub struct FedAvg;

impl Aggregator for FedAvg {
    fn name(&self) -> &'static str {
        "fedavg"
    }

    fn aggregate(&self, updates: &[&[f32]], weights: Option<&[f32]>) -> Vec<f32> {
        let d = validate_updates(updates);
        let mut out = vec![0.0f32; d];
        match weights {
            Some(w) => hfl_tensor::ops::weighted_mean_of(updates, w, &mut out),
            None => hfl_tensor::ops::mean_of(updates, &mut out),
        }
        out
    }

    fn aggregate_into(
        &self,
        updates: &[&[f32]],
        weights: Option<&[f32]>,
        out: &mut Vec<f32>,
        _scratch: &mut AggScratch,
    ) {
        let d = validate_updates(updates);
        out.clear();
        out.resize(d, 0.0);
        match weights {
            Some(w) => hfl_tensor::ops::weighted_mean_of(updates, w, out),
            None => hfl_tensor::ops::mean_of(updates, out),
        }
    }

    fn max_byzantine(&self, _n: usize) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unweighted_mean() {
        let a = [0.0f32, 0.0];
        let b = [2.0f32, 4.0];
        let out = FedAvg.aggregate(&[&a, &b], None);
        assert_eq!(out, vec![1.0, 2.0]);
    }

    #[test]
    fn weighted_mean() {
        let a = [0.0f32];
        let b = [8.0f32];
        let out = FedAvg.aggregate(&[&a, &b], Some(&[3.0, 1.0]));
        assert_eq!(out, vec![2.0]);
    }

    #[test]
    fn single_adversary_breaks_mean() {
        // Documents *why* FedAvg is the non-robust baseline.
        let honest = [1.0f32];
        let attacker = [1e9f32];
        let out = FedAvg.aggregate(&[&honest, &honest, &honest, &attacker], None);
        assert!(out[0] > 1e8);
        assert_eq!(FedAvg.max_byzantine(100), 0);
    }

    #[test]
    #[should_panic(expected = "zero updates")]
    fn empty_panics() {
        FedAvg.aggregate(&[], None);
    }
}
