//! Composable pre-aggregation transforms (the ByzFL recipe): reshape the
//! update set *before* any base rule runs, so robustness under
//! heterogeneous (non-IID) clients stops depending on the base rule's
//! distance assumptions.
//!
//! Two transforms, each wrapping **any** [`Aggregator`]:
//!
//! * [`Bucketing`] — partition the inputs into buckets of `s` and hand
//!   the base rule the bucket means. Honest variance shrinks by ~`s`
//!   while at most one bucket per Byzantine input is corrupted, so the
//!   base rule sees a cleaner, smaller cohort (Karimireddy et al.,
//!   "Byzantine-robust learning on heterogeneous datasets via
//!   bucketing").
//! * [`Nnm`] — replace every input by the mean of its `k` nearest
//!   neighbours (itself included). Honest non-IID spread collapses
//!   toward local cluster means, leaving genuinely adversarial vectors
//!   exposed (Allouah et al., "Fixing by mixing").
//!
//! Both transforms are **deterministic**: bucketing chunks the inputs in
//! their given order (which is already a seeded shuffle upstream — the
//! engine's arrival order), and NNM breaks distance ties by input index.
//! `aggregate` therefore stays bit-reproducible with no RNG plumbed
//! through the [`Aggregator`] trait.

use crate::{validate_updates, Aggregator};

/// Which pre-aggregation transform to apply. See the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PreAggregation {
    /// Average disjoint buckets of `s` consecutive inputs (the final
    /// bucket may be smaller). `s = 1` is the identity.
    Bucketing {
        /// Bucket size, ≥ 1.
        s: usize,
    },
    /// Replace each input by the mean of its `k` nearest neighbours in
    /// Euclidean distance, the input itself included. `k = 1` is the
    /// identity; `k` is clamped to the cohort size.
    Nnm {
        /// Neighbourhood size, ≥ 1.
        k: usize,
    },
}

impl PreAggregation {
    /// Stable label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PreAggregation::Bucketing { .. } => "bucketing",
            PreAggregation::Nnm { .. } => "nnm",
        }
    }

    /// Applies the transform, returning the derived update set the base
    /// rule aggregates. Bucketing returns `⌈n/s⌉` vectors; NNM returns
    /// `n` vectors with `out[i]` derived from input `i` (index
    /// correspondence is preserved, which acceptance evidence relies
    /// on).
    pub fn transform(&self, updates: &[&[f32]]) -> Vec<Vec<f32>> {
        let d = validate_updates(updates);
        match *self {
            PreAggregation::Bucketing { s } => {
                assert!(s >= 1, "bucket size must be >= 1");
                updates
                    .chunks(s)
                    .map(|bucket| {
                        let mut mean = vec![0.0f32; d];
                        hfl_tensor::ops::mean_of(bucket, &mut mean);
                        mean
                    })
                    .collect()
            }
            PreAggregation::Nnm { k } => {
                assert!(k >= 1, "neighbourhood size must be >= 1");
                let n = updates.len();
                let k = k.min(n);
                let mut out = Vec::with_capacity(n);
                let mut dvals = vec![0.0f64; n];
                let mut dists: Vec<(f64, usize)> = Vec::with_capacity(n);
                let mut idx: Vec<usize> = Vec::with_capacity(k);
                for u in updates {
                    // One blocked pass fills the whole distance row;
                    // each value is bitwise-equal to the per-pair
                    // `dist_sq` the original scan computed.
                    hfl_tensor::ops::dist_sq_block(u, updates, &mut dvals);
                    dists.clear();
                    dists.extend(dvals.iter().copied().enumerate().map(|(j, dv)| (dv, j)));
                    // Ties (equal distances) resolve by index — total
                    // order, deterministic across platforms.
                    dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    idx.clear();
                    idx.extend(dists.iter().take(k).map(|&(_, j)| j));
                    let mut mean = vec![0.0f32; d];
                    hfl_tensor::ops::mean_of_indexed(updates, &idx, &mut mean);
                    out.push(mean);
                }
                out
            }
        }
    }

    /// How many Byzantine *inputs* the composition tolerates, given the
    /// base rule's own tolerance: `f` Byzantine inputs corrupt at most
    /// `f` buckets (so bucketing defers to the base rule over `⌈n/s⌉`
    /// cohort members), while NNM preserves the cohort size.
    pub fn composed_max_byzantine(&self, base: &dyn Aggregator, n: usize) -> usize {
        match *self {
            PreAggregation::Bucketing { s } => base.max_byzantine(n.div_ceil(s.max(1))),
            PreAggregation::Nnm { .. } => base.max_byzantine(n),
        }
    }
}

/// A base rule behind a pre-aggregation transform — itself an
/// [`Aggregator`], so the composition plugs in anywhere a plain rule
/// does (any hierarchy level, the evidence layer, the bench grids).
pub struct PreAggregated {
    pre: PreAggregation,
    base: Box<dyn Aggregator>,
}

impl PreAggregated {
    /// Composes `pre ∘ base`.
    pub fn new(pre: PreAggregation, base: Box<dyn Aggregator>) -> Self {
        match pre {
            PreAggregation::Bucketing { s } => assert!(s >= 1, "bucket size must be >= 1"),
            PreAggregation::Nnm { k } => assert!(k >= 1, "neighbourhood size must be >= 1"),
        }
        Self { pre, base }
    }

    /// The transform in front of the base rule.
    pub fn pre(&self) -> PreAggregation {
        self.pre
    }

    /// The wrapped base rule.
    pub fn base(&self) -> &dyn Aggregator {
        self.base.as_ref()
    }
}

impl Aggregator for PreAggregated {
    fn name(&self) -> &'static str {
        // The composed name cannot be allocated here (&'static); the
        // transform name is the discriminating part — configuration
        // carries the full structure.
        self.pre.name()
    }

    fn aggregate(&self, updates: &[&[f32]], _weights: Option<&[f32]>) -> Vec<f32> {
        let derived = self.pre.transform(updates);
        let refs: Vec<&[f32]> = derived.iter().map(|v| v.as_slice()).collect();
        // Weights are deliberately dropped: bucket means / NNM mixtures
        // no longer correspond to single datasets, and every robust base
        // rule ignores weights anyway.
        self.base.aggregate(&refs, None)
    }

    fn max_byzantine(&self, n: usize) -> usize {
        self.pre.composed_max_byzantine(self.base.as_ref(), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::cluster_with_outliers;
    use crate::{AggregatorKind, CoordMedian, FedAvg, Krum};

    fn refs(v: &[Vec<f32>]) -> Vec<&[f32]> {
        v.iter().map(|x| x.as_slice()).collect()
    }

    #[test]
    fn bucketing_identity_at_s1() {
        let updates = cluster_with_outliers(&[1.0, 2.0], 0.2, 5, &[9.0, 9.0], 1);
        let t = PreAggregation::Bucketing { s: 1 }.transform(&refs(&updates));
        assert_eq!(t, updates);
    }

    #[test]
    fn bucketing_counts_and_means() {
        let updates = vec![
            vec![0.0f32, 0.0],
            vec![2.0, 4.0],
            vec![4.0, 8.0],
            vec![6.0, 12.0],
            vec![100.0, 100.0],
        ];
        let t = PreAggregation::Bucketing { s: 2 }.transform(&refs(&updates));
        assert_eq!(t.len(), 3, "ceil(5/2) buckets");
        assert_eq!(t[0], vec![1.0, 2.0]);
        assert_eq!(t[1], vec![5.0, 10.0]);
        assert_eq!(t[2], vec![100.0, 100.0], "ragged final bucket kept");
    }

    #[test]
    fn nnm_identity_at_k1() {
        let updates = cluster_with_outliers(&[0.0, 1.0], 0.3, 4, &[5.0, 5.0], 1);
        let t = PreAggregation::Nnm { k: 1 }.transform(&refs(&updates));
        assert_eq!(t, updates, "nearest neighbour of each input is itself");
    }

    #[test]
    fn nnm_pulls_honest_updates_together() {
        let updates = cluster_with_outliers(&[1.0, 1.0], 1.0, 6, &[40.0, -40.0], 1);
        let t = PreAggregation::Nnm { k: 3 }.transform(&refs(&updates));
        let spread = |rows: &[Vec<f32>], upto: usize| -> f64 {
            let refs: Vec<&[f32]> = rows[..upto].iter().map(|v| v.as_slice()).collect();
            let mut mean = vec![0.0f32; 2];
            hfl_tensor::ops::mean_of(&refs, &mut mean);
            refs.iter()
                .map(|r| hfl_tensor::ops::dist_sq(r, &mean))
                .sum::<f64>()
        };
        assert!(
            spread(&t, 6) < spread(&updates, 6),
            "honest variance must shrink"
        );
        // The outlier's mixture is contaminated toward the honest mass.
        assert!(t[6][0] < updates[6][0]);
    }

    #[test]
    fn bucketing_dilutes_the_outlier_for_krum() {
        // One Byzantine among 8: plain Krum with f=1 already survives,
        // but the composed rule must land near the honest centre too.
        let updates = cluster_with_outliers(&[1.0, -2.0], 0.2, 8, &[80.0, 80.0], 1);
        let composed =
            PreAggregated::new(PreAggregation::Bucketing { s: 3 }, Box::new(Krum::new(1)));
        let out = composed.aggregate(&refs(&updates), None);
        assert!((out[0] - 1.0).abs() < 1.5, "got {out:?}");
        assert!((out[1] + 2.0).abs() < 1.5, "got {out:?}");
    }

    #[test]
    fn nnm_plus_median_holds_under_mimic_style_duplicates() {
        // Mimic-style: duplicates of one honest point, honest spread
        // elsewhere. NNM + median must stay inside the honest hull.
        let mut updates = cluster_with_outliers(&[0.0, 0.0], 2.0, 6, &[0.0, 0.0], 0);
        for _ in 0..3 {
            updates.push(updates[0].clone());
        }
        let composed = PreAggregated::new(PreAggregation::Nnm { k: 3 }, Box::new(CoordMedian));
        let out = composed.aggregate(&refs(&updates), None);
        assert!(out.iter().all(|x| x.abs() < 3.0), "got {out:?}");
    }

    #[test]
    fn composed_tolerance_bucketing_shrinks_cohort() {
        let composed =
            PreAggregated::new(PreAggregation::Bucketing { s: 2 }, Box::new(Krum::new(2)));
        // 10 inputs → 5 buckets; Krum over 5 tolerates (5-3)/2 = 1.
        assert_eq!(composed.max_byzantine(10), 1);
        let nnm = PreAggregated::new(PreAggregation::Nnm { k: 3 }, Box::new(Krum::new(2)));
        assert_eq!(
            nnm.max_byzantine(10),
            Krum::new(2).max_byzantine(10),
            "NNM keeps the cohort size"
        );
    }

    #[test]
    fn transform_is_deterministic_and_order_stable() {
        let updates = cluster_with_outliers(&[3.0, -1.0], 0.7, 7, &[-20.0, 20.0], 2);
        for pre in [
            PreAggregation::Bucketing { s: 3 },
            PreAggregation::Nnm { k: 4 },
        ] {
            let a = pre.transform(&refs(&updates));
            let b = pre.transform(&refs(&updates));
            assert_eq!(a, b, "{pre:?}");
        }
    }

    #[test]
    fn kind_builds_composed_rules() {
        let kinds = [
            AggregatorKind::Bucketing {
                s: 2,
                inner: Box::new(AggregatorKind::Median),
            },
            AggregatorKind::Nnm {
                k: 3,
                inner: Box::new(AggregatorKind::Krum { f: 1 }),
            },
            AggregatorKind::Nnm {
                k: 2,
                inner: Box::new(AggregatorKind::CenteredClip { tau: 1.0, iters: 3 }),
            },
        ];
        let updates = cluster_with_outliers(&[1.0, 1.0], 0.1, 7, &[-9.0, 9.0], 1);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        for k in kinds {
            let agg = k.build();
            let out = agg.aggregate(&refs, None);
            assert_eq!(out.len(), 2);
            assert!(out.iter().all(|x| x.is_finite()));
            assert!((out[0] - 1.0).abs() < 1.0, "{k:?} dragged: {out:?}");
        }
    }

    #[test]
    fn fedavg_behind_bucketing_is_still_fedavg_on_equal_buckets() {
        // With n divisible by s, bucket means average back to the mean.
        let updates = vec![
            vec![1.0f32, 3.0],
            vec![3.0, 5.0],
            vec![5.0, 7.0],
            vec![7.0, 9.0],
        ];
        let composed = PreAggregated::new(PreAggregation::Bucketing { s: 2 }, Box::new(FedAvg));
        let out = composed.aggregate(&refs(&updates), None);
        assert!(hfl_tensor::ops::approx_eq(&out, &[4.0, 6.0], 1e-6));
    }
}
