//! One-pass streaming aggregation kernels for sampled-cohort rounds.
//!
//! The batch kernels in [`crate::median`] / [`crate::trimmed_mean`] /
//! [`crate::krum`] hold every update simultaneously: O(n·d) memory for
//! the coordinate rules and an O(n²·d) distance matrix for Krum. With
//! per-round client sampling the collector sees updates *in arrival
//! order* and the cohort can be large; these variants bound the working
//! set independently of the input count:
//!
//! * [`StreamingMedian`] — P² quantile estimation (Jain & Chlamtac,
//!   CACM 1985) per coordinate: five markers per coordinate, one pass,
//!   O(d) state.
//! * [`StreamingTrimmedMean`] — a deterministic reservoir of whole rows
//!   (Algorithm R with a splitmix64-hashed replacement slot, so the same
//!   arrival order always yields the same reservoir), then the exact
//!   trimmed mean over the reservoir: O(R·d) state with R fixed.
//! * [`SampledKrum`] — arrival-order bucketing to `m` bucket means, then
//!   exact Krum over the means: the distance matrix shrinks from
//!   O(n²·d) to O(m²·d).
//!
//! Every rule falls back to the exact batch kernel below a configurable
//! input-count threshold, so small-cohort rounds — everything the paper's
//! evaluation actually runs — are bit-identical to the batch rules; the
//! approximations only engage past the threshold where the batch kernels
//! would dominate memory. The equivalence proptests in
//! `crates/robust/tests/proptests.rs` pin the fallback regime.

use crate::{validate_updates, Aggregator, Krum};

/// Default input-count threshold below which the streaming rules run the
/// exact batch kernel. Chosen well above every cluster size the paper's
/// topologies produce, so existing configs that opt into a streaming
/// rule still aggregate exactly.
pub const DEFAULT_EXACT_THRESHOLD: usize = 256;

/// Single-quantile P² estimator (five markers). State is 15 `f64`s; one
/// observation is O(1). The estimate is arrival-order dependent (it is
/// an online approximation), but fully deterministic for a fixed order.
#[derive(Clone, Debug)]
struct P2Median {
    /// Marker heights (estimated quantile values).
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Observations seen so far; the first five are buffered in `q`.
    count: usize,
}

impl P2Median {
    fn new() -> Self {
        Self {
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 2.0, 3.0, 4.0, 5.0],
            count: 0,
        }
    }

    fn observe(&mut self, x: f64) {
        if self.count < 5 {
            self.q[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.q.sort_unstable_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;
        // Locate the cell and stretch the extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = self.q[4].max(x);
            3
        } else {
            let mut k = 0;
            for i in 1..4 {
                if x >= self.q[i] {
                    k = i;
                }
            }
            k
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        // Desired positions for p = 0.5: increments (0, 1/4, 1/2, 3/4, 1).
        self.np[1] += 0.25;
        self.np[2] += 0.5;
        self.np[3] += 0.75;
        self.np[4] += 1.0;
        // Adjust the three interior markers toward their desired ranks.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let s = d.signum();
                let qp = self.parabolic(i, s);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, s)
                };
                self.n[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        self.q[i] + s * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count < 5 {
            // Exact median of the buffered prefix.
            let mut buf = self.q[..self.count].to_vec();
            buf.sort_unstable_by(f64::total_cmp);
            let m = self.count;
            return if m % 2 == 1 {
                buf[m / 2]
            } else {
                0.5 * (buf[m / 2 - 1] + buf[m / 2])
            };
        }
        self.q[2]
    }
}

/// Coordinate-wise median with O(d) streaming state past
/// [`exact_threshold`](Self::exact_threshold) inputs.
#[derive(Clone, Copy, Debug)]
pub struct StreamingMedian {
    exact_threshold: usize,
}

impl StreamingMedian {
    /// Streaming median that runs the exact batch kernel below
    /// `exact_threshold` inputs and P² above.
    pub fn new(exact_threshold: usize) -> Self {
        Self {
            exact_threshold: exact_threshold.max(1),
        }
    }

    /// The exact-fallback threshold.
    pub fn exact_threshold(&self) -> usize {
        self.exact_threshold
    }
}

impl Aggregator for StreamingMedian {
    fn name(&self) -> &'static str {
        "streaming-median"
    }

    fn aggregate(&self, updates: &[&[f32]], _weights: Option<&[f32]>) -> Vec<f32> {
        let d = validate_updates(updates);
        if updates.len() < self.exact_threshold {
            let mut out = vec![0.0f32; d];
            hfl_tensor::stats::coordinate_median(updates, &mut out);
            return out;
        }
        let mut est: Vec<P2Median> = vec![P2Median::new(); d];
        for row in updates {
            for (e, &x) in est.iter_mut().zip(row.iter()) {
                e.observe(x as f64);
            }
        }
        est.iter().map(|e| e.estimate() as f32).collect()
    }

    fn max_byzantine(&self, n: usize) -> usize {
        // Same breakdown point as the batch median.
        n.saturating_sub(1) / 2
    }
}

/// splitmix64 finalizer: the deterministic "coin" for reservoir slots.
/// Inlined rather than pulled from `hfl-ml` to keep this crate's
/// dependency set unchanged.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Coordinate-wise trimmed mean over a deterministic row reservoir past
/// [`exact_threshold`](Self::exact_threshold) inputs.
#[derive(Clone, Copy, Debug)]
pub struct StreamingTrimmedMean {
    ratio: f64,
    exact_threshold: usize,
}

impl StreamingTrimmedMean {
    /// Streaming trimmed mean removing a `ratio` fraction from each tail,
    /// exact below `exact_threshold` inputs and reservoir-based above
    /// (the reservoir holds `exact_threshold` rows).
    ///
    /// # Panics
    /// If `ratio` is outside `[0, 0.5)`.
    pub fn new(ratio: f64, exact_threshold: usize) -> Self {
        assert!(
            (0.0..0.5).contains(&ratio),
            "trim ratio {ratio} outside [0, 0.5)"
        );
        Self {
            ratio,
            exact_threshold: exact_threshold.max(1),
        }
    }

    /// The exact-fallback threshold (also the reservoir capacity).
    pub fn exact_threshold(&self) -> usize {
        self.exact_threshold
    }

    fn trim_count(&self, n: usize) -> usize {
        let t = (self.ratio * n as f64).floor() as usize;
        if 2 * t >= n {
            n.saturating_sub(1) / 2
        } else {
            t
        }
    }
}

impl Aggregator for StreamingTrimmedMean {
    fn name(&self) -> &'static str {
        "streaming-trimmed-mean"
    }

    fn aggregate(&self, updates: &[&[f32]], _weights: Option<&[f32]>) -> Vec<f32> {
        let d = validate_updates(updates);
        let mut out = vec![0.0f32; d];
        if updates.len() < self.exact_threshold {
            hfl_tensor::stats::coordinate_trimmed_mean(
                updates,
                self.trim_count(updates.len()),
                &mut out,
            );
            return out;
        }
        // Algorithm R over whole rows with a hash-derived slot: arrival
        // `i` replaces slot `splitmix64(i) mod (i + 1)` when that lands
        // inside the reservoir. Same arrival order ⇒ same reservoir.
        let cap = self.exact_threshold;
        let mut reservoir: Vec<&[f32]> = Vec::with_capacity(cap);
        for (i, row) in updates.iter().enumerate() {
            if i < cap {
                reservoir.push(row);
            } else {
                let j = (splitmix64(i as u64) % (i as u64 + 1)) as usize;
                if j < cap {
                    reservoir[j] = row;
                }
            }
        }
        let trim = self.trim_count(reservoir.len());
        hfl_tensor::stats::coordinate_trimmed_mean(&reservoir, trim, &mut out);
        out
    }

    fn max_byzantine(&self, n: usize) -> usize {
        // The trim budget is what the rule absorbs per coordinate; past
        // the threshold it applies to the reservoir, which the adversary
        // does not control the membership of.
        self.trim_count(n.min(self.exact_threshold))
    }
}

/// Krum over `m` arrival-order bucket means: bounds the pairwise
/// distance matrix to O(m²·d) regardless of the input count. Exact Krum
/// below `m` inputs.
#[derive(Clone, Copy, Debug)]
pub struct SampledKrum {
    f: usize,
    m: usize,
}

impl SampledKrum {
    /// Sampled Krum assuming at most `f` Byzantine inputs, bucketing to
    /// at most `m` bucket means.
    ///
    /// # Panics
    /// If `m == 0`.
    pub fn new(f: usize, m: usize) -> Self {
        assert!(m > 0, "sampled Krum needs at least one bucket");
        Self { f, m }
    }

    /// The assumed Byzantine count.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The bucket budget.
    pub fn m(&self) -> usize {
        self.m
    }
}

impl Aggregator for SampledKrum {
    fn name(&self) -> &'static str {
        "sampled-krum"
    }

    fn aggregate(&self, updates: &[&[f32]], weights: Option<&[f32]>) -> Vec<f32> {
        let d = validate_updates(updates);
        let n = updates.len();
        if n <= self.m {
            return Krum::new(self.f).aggregate(updates, weights);
        }
        // Contiguous arrival-order buckets, near-equal sizes. One
        // Byzantine input corrupts at most its own bucket mean, so `f`
        // Byzantine inputs corrupt at most `f` of the `m` means and the
        // usual Krum resilience argument applies at the bucket level.
        let per = n / self.m;
        let extra = n % self.m;
        let mut means: Vec<Vec<f32>> = Vec::with_capacity(self.m);
        let mut start = 0;
        for b in 0..self.m {
            let size = per + usize::from(b < extra);
            let bucket = &updates[start..start + size];
            let mut mean = vec![0.0f32; d];
            hfl_tensor::ops::mean_of(bucket, &mut mean);
            means.push(mean);
            start += size;
        }
        let refs: Vec<&[f32]> = means.iter().map(|v| v.as_slice()).collect();
        Krum::new(self.f).aggregate(&refs, None)
    }

    fn max_byzantine(&self, n: usize) -> usize {
        // Krum's bound evaluated at the effective input count (buckets
        // past the cut, raw inputs below it).
        self.m.min(n).saturating_sub(3) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::cluster_with_outliers;
    use crate::{CoordMedian, TrimmedMean};

    fn refs(v: &[Vec<f32>]) -> Vec<&[f32]> {
        v.iter().map(|x| x.as_slice()).collect()
    }

    /// Deterministic pseudo-shuffle: a fixed-seed Fisher–Yates over the
    /// splitmix64 stream.
    fn shuffled<T: Clone>(xs: &[T], seed: u64) -> Vec<T> {
        let mut v = xs.to_vec();
        for i in (1..v.len()).rev() {
            let j = (splitmix64(seed.wrapping_add(i as u64)) % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn exact_fallback_matches_batch_median_any_order() {
        let updates = cluster_with_outliers(&[1.0, -2.0, 0.5], 0.4, 9, &[40.0, -40.0, 0.0], 2);
        let sm = StreamingMedian::new(DEFAULT_EXACT_THRESHOLD);
        for seed in 0..5u64 {
            let perm = shuffled(&updates, seed);
            let got = sm.aggregate(&refs(&perm), None);
            let want = CoordMedian.aggregate(&refs(&perm), None);
            assert_eq!(got, want, "fallback must be bit-identical");
        }
    }

    #[test]
    fn exact_fallback_matches_batch_trimmed_mean_any_order() {
        let updates = cluster_with_outliers(&[2.0, 2.0], 0.3, 10, &[-25.0, 25.0], 2);
        let st = StreamingTrimmedMean::new(0.2, DEFAULT_EXACT_THRESHOLD);
        let bt = TrimmedMean::new(0.2);
        for seed in 0..5u64 {
            let perm = shuffled(&updates, seed);
            let got = st.aggregate(&refs(&perm), None);
            let want = bt.aggregate(&refs(&perm), None);
            assert_eq!(got, want, "fallback must be bit-identical");
        }
    }

    #[test]
    fn p2_path_approximates_the_median() {
        // 1000 inputs, well past a threshold of 16: the P² estimate per
        // coordinate must land near the true median.
        let n = 1000;
        let updates: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let x = (splitmix64(i as u64) % 2000) as f32 / 1000.0 - 1.0;
                vec![x, 3.0 + x * 0.5]
            })
            .collect();
        let out = StreamingMedian::new(16).aggregate(&refs(&updates), None);
        let exact = CoordMedian.aggregate(&refs(&updates), None);
        for (o, e) in out.iter().zip(&exact) {
            assert!((o - e).abs() < 0.05, "P² estimate {o} vs exact {e}");
        }
    }

    #[test]
    fn p2_path_resists_minority_outliers() {
        // Outliers interleaved with honest arrivals (the engine shuffles
        // arrival order). P² is an approximation whose marker heights
        // interpolate across the honest/outlier gap, so the contract is
        // "stays with the honest cloud", not exact-median tightness:
        // the estimate must end up orders of magnitude closer to the
        // honest center than to the ±50 outliers, for every order.
        for seed in 0..5u64 {
            let updates = shuffled(
                &cluster_with_outliers(&[1.0, 2.0], 0.1, 60, &[50.0, -50.0], 12),
                seed,
            );
            let out = StreamingMedian::new(16).aggregate(&refs(&updates), None);
            assert!(
                hfl_tensor::ops::dist(&out, &[1.0, 2.0]) < 5.0,
                "P² dragged by outliers at shuffle {seed}: {out:?}"
            );
        }
    }

    #[test]
    fn reservoir_path_resists_minority_outliers() {
        let updates = cluster_with_outliers(&[0.0, 1.0], 0.2, 500, &[1e5, -1e5], 50);
        let st = StreamingTrimmedMean::new(0.2, 64);
        for seed in 0..3u64 {
            let perm = shuffled(&updates, seed);
            let out = st.aggregate(&refs(&perm), None);
            assert!(
                hfl_tensor::ops::dist(&out, &[0.0, 1.0]) < 0.5,
                "reservoir trim failed at shuffle {seed}: {out:?}"
            );
        }
    }

    #[test]
    fn reservoir_is_deterministic_per_arrival_order() {
        let updates = cluster_with_outliers(&[5.0], 1.0, 300, &[9.0], 0);
        let st = StreamingTrimmedMean::new(0.1, 32);
        let a = st.aggregate(&refs(&updates), None);
        let b = st.aggregate(&refs(&updates), None);
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_krum_is_exact_below_the_cut() {
        let updates = cluster_with_outliers(&[1.0, 1.0], 0.1, 6, &[80.0, 80.0], 1);
        let got = SampledKrum::new(1, 16).aggregate(&refs(&updates), None);
        let want = Krum::new(1).aggregate(&refs(&updates), None);
        assert_eq!(got, want);
    }

    #[test]
    fn sampled_krum_buckets_resist_outliers() {
        // 97 honest + 3 adversarial inputs, 10 buckets of 10: at most 3
        // bucket means are corrupted, so clean buckets hold a strict
        // majority and Krum over the means must pick one of them
        // regardless of which buckets the shuffle poisons.
        let updates = cluster_with_outliers(&[2.0, -2.0], 0.2, 97, &[500.0, -500.0], 3);
        for seed in 0..3u64 {
            let perm = shuffled(&updates, seed);
            let out = SampledKrum::new(3, 10).aggregate(&refs(&perm), None);
            assert!(
                hfl_tensor::ops::dist(&out, &[2.0, -2.0]) < 5.0,
                "corrupted bucket selected at shuffle {seed}: {out:?}"
            );
        }
    }

    #[test]
    fn sampled_krum_bounds_tolerance_by_buckets() {
        let sk = SampledKrum::new(2, 11);
        assert_eq!(sk.max_byzantine(1000), 4); // (11 − 3) / 2
        assert_eq!(sk.max_byzantine(9), 3); // below the cut: (9 − 3) / 2
    }

    #[test]
    fn streaming_thresholds_are_clamped_positive() {
        let sm = StreamingMedian::new(0);
        assert_eq!(sm.exact_threshold(), 1);
        let st = StreamingTrimmedMean::new(0.0, 0);
        assert_eq!(st.exact_threshold(), 1);
    }

    #[test]
    fn p2_small_prefix_is_exact() {
        // Fewer than five observations: the estimator reports the exact
        // median of what it has seen.
        let mut e = P2Median::new();
        for x in [3.0, 1.0, 2.0] {
            e.observe(x);
        }
        assert_eq!(e.estimate(), 2.0);
    }
}
