//! Centered Clipping (Karimireddy et al., ICML 2021).
//!
//! Fixed-point iteration `v ← v + (1/n) Σᵢ clip(xᵢ − v, τ)`: each update's
//! influence is bounded by the clipping radius τ, so a minority of
//! arbitrarily-placed updates can move the result by at most `f·τ/n` per
//! iteration. We start from the coordinate-wise median for a robust seed.

use crate::{validate_updates, Aggregator};

/// Centered-clipping aggregation.
#[derive(Clone, Copy, Debug)]
pub struct CenteredClip {
    tau: f64,
    iters: usize,
}

impl CenteredClip {
    /// Centered clipping with radius `tau` and `iters` refinement passes.
    ///
    /// # Panics
    /// If `tau <= 0` or `iters == 0`.
    pub fn new(tau: f64, iters: usize) -> Self {
        assert!(tau > 0.0, "clip radius must be positive");
        assert!(iters > 0, "need at least one iteration");
        Self { tau, iters }
    }

    /// The clipping radius τ.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

impl Aggregator for CenteredClip {
    fn name(&self) -> &'static str {
        "centered-clip"
    }

    fn aggregate(&self, updates: &[&[f32]], _weights: Option<&[f32]>) -> Vec<f32> {
        let d = validate_updates(updates);
        // Robust seed: coordinate-wise median.
        let mut v = vec![0.0f32; d];
        hfl_tensor::stats::coordinate_median(updates, &mut v);
        let inv_n = 1.0 / updates.len() as f32;
        let mut delta = vec![0.0f32; d];
        let mut diff = vec![0.0f32; d];
        for _ in 0..self.iters {
            hfl_tensor::ops::zero(&mut delta);
            for u in updates {
                diff.copy_from_slice(u);
                hfl_tensor::ops::sub_assign(&v, &mut diff); // diff = u - v
                hfl_tensor::ops::clip_norm(&mut diff, self.tau);
                hfl_tensor::ops::add_assign(&diff, &mut delta);
            }
            hfl_tensor::ops::axpy(inv_n, &delta, &mut v);
        }
        v
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::cluster_with_outliers;

    #[test]
    fn clip_bounds_outlier_influence() {
        let updates = cluster_with_outliers(&[1.0, 1.0], 0.05, 9, &[1e6, 1e6], 1);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = CenteredClip::new(1.0, 5).aggregate(&refs, None);
        // One outlier can shift the estimate by at most iters·τ/n = 0.5.
        assert!(
            hfl_tensor::ops::dist(&out, &[1.0, 1.0]) < 0.8,
            "got {out:?}"
        );
    }

    #[test]
    fn no_attack_converges_to_mean_neighborhood() {
        let updates = [vec![0.0f32, 0.0], vec![2.0f32, 2.0]];
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = CenteredClip::new(10.0, 20).aggregate(&refs, None);
        assert!(
            hfl_tensor::ops::dist(&out, &[1.0, 1.0]) < 1e-3,
            "got {out:?}"
        );
    }

    #[test]
    fn tiny_tau_stays_at_median_seed() {
        let updates = cluster_with_outliers(&[5.0], 0.0, 5, &[5.0], 0);
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
        let out = CenteredClip::new(1e-6, 1).aggregate(&refs, None);
        assert!((out[0] - 5.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tau_panics() {
        CenteredClip::new(0.0, 1);
    }
}
