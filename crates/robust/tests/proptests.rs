//! Property-based tests for the robust aggregation rules: the robustness
//! contracts that must survive arbitrary adversarial inputs.

use proptest::prelude::*;

use hfl_robust::{
    Aggregator, CenteredClip, CoordMedian, FedAvg, GeoMed, Krum, MultiKrum, SampledKrum,
    StreamingMedian, StreamingTrimmedMean, TrimmedMean, DEFAULT_EXACT_THRESHOLD,
};

/// Max units-in-last-place gap between two f32 values (0 = bit-identical
/// up to signed-zero equivalence).
fn ulp_gap(a: f32, b: f32) -> u32 {
    if a == b {
        return 0;
    }
    let to_ordered = |x: f32| {
        let bits = x.to_bits() as i32;
        if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        }
    };
    to_ordered(a).abs_diff(to_ordered(b))
}

/// Honest updates in a small box around `center`, plus `n_bad` copies of
/// an arbitrary adversarial vector.
fn scenario() -> impl Strategy<Value = (Vec<Vec<f32>>, usize, Vec<f32>)> {
    (4usize..10, prop::collection::vec(-5.0f32..5.0, 4))
        .prop_flat_map(|(n_good, center)| {
            let n_bad = (n_good - 1) / 2; // strict honest majority
            let honest = prop::collection::vec(
                prop::collection::vec(-0.5f32..0.5, 4),
                n_good,
            );
            let bad = prop::collection::vec(-1e4f32..1e4, 4);
            (Just(center), honest, Just(n_bad), bad)
        })
        .prop_map(|(center, noise, n_bad, bad)| {
            let honest: Vec<Vec<f32>> = noise
                .into_iter()
                .map(|d| center.iter().zip(&d).map(|(c, x)| c + x).collect())
                .collect();
            (honest, n_bad, bad)
        })
}

/// Per-coordinate bounding box of the honest updates, inflated by `eps`.
fn honest_box(honest: &[Vec<f32>], eps: f32) -> (Vec<f32>, Vec<f32>) {
    let d = honest[0].len();
    let mut lo = vec![f32::INFINITY; d];
    let mut hi = vec![f32::NEG_INFINITY; d];
    for h in honest {
        for j in 0..d {
            lo[j] = lo[j].min(h[j]);
            hi[j] = hi[j].max(h[j]);
        }
    }
    for j in 0..d {
        lo[j] -= eps;
        hi[j] += eps;
    }
    (lo, hi)
}

/// Honest updates in a tight box around a center far from the origin,
/// plus the coalition strength `n_bad = ⌊(n_good − 1)/2⌋` (strict honest
/// majority) and a sign-flip magnitude κ. Keeping `‖center‖` large makes
/// the reflected point `−κ · mean(honest)` unambiguously far from the
/// honest cloud, so resilience failures can't hide in noise.
fn signflip_scenario() -> impl Strategy<Value = (Vec<Vec<f32>>, usize, f32)> {
    (4usize..10, prop::collection::vec(2.0f32..5.0, 4), 2.0f32..6.0)
        .prop_flat_map(|(n_good, center, kappa)| {
            let noise = prop::collection::vec(prop::collection::vec(-0.5f32..0.5, 4), n_good);
            (Just(center), noise, Just((n_good - 1) / 2), Just(kappa))
        })
        .prop_map(|(center, noise, n_bad, kappa)| {
            let honest: Vec<Vec<f32>> = noise
                .into_iter()
                .map(|d| center.iter().zip(&d).map(|(c, x)| c + x).collect())
                .collect();
            (honest, n_bad, kappa)
        })
}

/// The unanimous coalition vector: `−κ · mean(honest)`.
fn signflip_point(honest: &[Vec<f32>], kappa: f32) -> Vec<f32> {
    let refs: Vec<&[f32]> = honest.iter().map(|h| h.as_slice()).collect();
    let mut mean = vec![0.0f32; honest[0].len()];
    hfl_tensor::ops::mean_of(&refs, &mut mean);
    mean.iter().map(|m| -kappa * m).collect()
}

fn all_inputs<'a>(honest: &'a [Vec<f32>], bad: &'a [f32], n_bad: usize) -> Vec<&'a [f32]> {
    let mut refs: Vec<&[f32]> = honest.iter().map(|h| h.as_slice()).collect();
    refs.extend(std::iter::repeat_n(bad, n_bad));
    refs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn median_stays_in_honest_box((honest, n_bad, bad) in scenario()) {
        let refs = all_inputs(&honest, &bad, n_bad);
        let out = CoordMedian.aggregate(&refs, None);
        let (lo, hi) = honest_box(&honest, 1e-3);
        for j in 0..out.len() {
            prop_assert!(out[j] >= lo[j] && out[j] <= hi[j],
                "median coord {j}: {} outside [{}, {}]", out[j], lo[j], hi[j]);
        }
    }

    #[test]
    fn trimmed_mean_stays_in_honest_box((honest, n_bad, bad) in scenario()) {
        let refs = all_inputs(&honest, &bad, n_bad);
        // Trim exactly the adversarial mass from each tail.
        let ratio = (n_bad as f64 / refs.len() as f64).min(0.49);
        let out = TrimmedMean::new(ratio).aggregate(&refs, None);
        // Trimmed mean with exact-trim stays within the honest range per
        // coordinate (each tail removes at least the bad copies on that
        // side).
        let (lo, hi) = honest_box(&honest, 1e-3);
        for j in 0..out.len() {
            prop_assert!(out[j] >= lo[j] && out[j] <= hi[j]);
        }
    }

    #[test]
    fn krum_selects_a_real_input((honest, n_bad, bad) in scenario()) {
        let refs = all_inputs(&honest, &bad, n_bad);
        let out = Krum::new(n_bad).aggregate(&refs, None);
        prop_assert!(refs.contains(&out.as_slice()));
    }

    #[test]
    fn krum_picks_honest_when_adversary_is_far((honest, n_bad, bad) in scenario()) {
        // The adversarial point is ≥ 1e3 away from the honest cloud (the
        // scenario draws it from ±1e4 while honest live in ±6); when that
        // holds, Krum must select an honest input.
        let far = honest.iter().all(|h| hfl_tensor::ops::dist(h, &bad) > 100.0);
        prop_assume!(far && n_bad >= 1);
        let refs = all_inputs(&honest, &bad, n_bad);
        let out = Krum::new(n_bad).aggregate(&refs, None);
        prop_assert!(honest.iter().any(|h| h.as_slice() == out.as_slice()),
            "Krum selected the adversarial point");
    }

    #[test]
    fn multikrum_excludes_far_adversaries((honest, n_bad, bad) in scenario()) {
        let far = honest.iter().all(|h| hfl_tensor::ops::dist(h, &bad) > 100.0);
        prop_assume!(far && n_bad >= 1);
        let refs = all_inputs(&honest, &bad, n_bad);
        let mk = MultiKrum::new(n_bad, honest.len());
        let selected = mk.select(&refs);
        prop_assert!(selected.iter().all(|&i| i < honest.len()),
            "Multi-Krum selected adversarial index in {selected:?}");
    }

    #[test]
    fn geomed_bounded_displacement((honest, n_bad, bad) in scenario()) {
        let refs = all_inputs(&honest, &bad, n_bad);
        let out = GeoMed::default().aggregate(&refs, None);
        // Geometric median with minority outliers stays within a modest
        // multiple of the honest diameter of the honest centroid.
        let mut centroid = vec![0.0f32; 4];
        let hrefs: Vec<&[f32]> = honest.iter().map(|h| h.as_slice()).collect();
        hfl_tensor::ops::mean_of(&hrefs, &mut centroid);
        let diam = honest
            .iter()
            .map(|h| hfl_tensor::ops::dist(h, &centroid))
            .fold(0.0f64, f64::max);
        let disp = hfl_tensor::ops::dist(&out, &centroid);
        prop_assert!(disp <= 10.0 * (diam + 1.0),
            "geomed displaced {disp} (honest diameter {diam})");
    }

    #[test]
    fn centered_clip_bounded_displacement((honest, n_bad, bad) in scenario()) {
        let refs = all_inputs(&honest, &bad, n_bad);
        let cc = CenteredClip::new(1.0, 3);
        let out = cc.aggregate(&refs, None);
        // Each of 3 iterations moves the estimate by at most τ; seeded at
        // the coordinate-median (inside the honest box), displacement is
        // bounded by iters·τ in every coordinate direction.
        let (lo, hi) = honest_box(&honest, 3.0 + 1e-3);
        for j in 0..out.len() {
            prop_assert!(out[j] >= lo[j] && out[j] <= hi[j]);
        }
    }

    #[test]
    fn fedavg_equals_manual_mean(honest in prop::collection::vec(
        prop::collection::vec(-10.0f32..10.0, 4), 1..8))
    {
        let refs: Vec<&[f32]> = honest.iter().map(|h| h.as_slice()).collect();
        let out = FedAvg.aggregate(&refs, None);
        for j in 0..4 {
            let want: f32 = honest.iter().map(|h| h[j]).sum::<f32>() / honest.len() as f32;
            prop_assert!((out[j] - want).abs() <= 1e-3);
        }
    }

    // ≤ f-resilience under a *unanimous sign-flip coalition*: every
    // Byzantine input is the same `−κ · mean(honest)` vector (the
    // colluding-coalition shape the runner's model attacks produce,
    // unlike the arbitrary `bad` point above). With a strict honest
    // majority, each rule must stay with the honest cloud rather than
    // the coalition's reflected point.

    #[test]
    fn median_resists_unanimous_sign_flip((honest, n_bad, kappa) in signflip_scenario()) {
        let bad = signflip_point(&honest, kappa);
        let refs = all_inputs(&honest, &bad, n_bad);
        let out = CoordMedian.aggregate(&refs, None);
        let (lo, hi) = honest_box(&honest, 1e-3);
        for j in 0..out.len() {
            prop_assert!(out[j] >= lo[j] && out[j] <= hi[j],
                "median coord {j}: {} outside [{}, {}]", out[j], lo[j], hi[j]);
        }
    }

    #[test]
    fn trimmed_mean_resists_unanimous_sign_flip((honest, n_bad, kappa) in signflip_scenario()) {
        let bad = signflip_point(&honest, kappa);
        let refs = all_inputs(&honest, &bad, n_bad);
        let ratio = (n_bad as f64 / refs.len() as f64).min(0.49);
        let out = TrimmedMean::new(ratio).aggregate(&refs, None);
        let (lo, hi) = honest_box(&honest, 1e-3);
        for j in 0..out.len() {
            prop_assert!(out[j] >= lo[j] && out[j] <= hi[j]);
        }
    }

    #[test]
    fn krum_family_rejects_unanimous_sign_flip((honest, n_bad, kappa) in signflip_scenario()) {
        let bad = signflip_point(&honest, kappa);
        prop_assume!(honest.iter().all(|h| hfl_tensor::ops::dist(h, &bad) > 10.0));
        let refs = all_inputs(&honest, &bad, n_bad);
        let out = Krum::new(n_bad).aggregate(&refs, None);
        prop_assert!(honest.iter().any(|h| h.as_slice() == out.as_slice()),
            "Krum picked the coalition's point");
        let selected = MultiKrum::new(n_bad, honest.len()).select(&refs);
        prop_assert!(selected.iter().all(|&i| i < honest.len()),
            "Multi-Krum selected coalition index in {selected:?}");
    }

    #[test]
    fn geomed_sides_with_the_honest_majority((honest, n_bad, kappa) in signflip_scenario()) {
        let bad = signflip_point(&honest, kappa);
        prop_assume!(n_bad >= 1);
        let refs = all_inputs(&honest, &bad, n_bad);
        let out = GeoMed::default().aggregate(&refs, None);
        let mut centroid = vec![0.0f32; 4];
        let hrefs: Vec<&[f32]> = honest.iter().map(|h| h.as_slice()).collect();
        hfl_tensor::ops::mean_of(&hrefs, &mut centroid);
        prop_assert!(
            hfl_tensor::ops::dist(&out, &centroid) < hfl_tensor::ops::dist(&out, &bad),
            "geomed landed nearer the coalition than the honest centroid"
        );
    }

    #[test]
    fn centered_clip_resists_unanimous_sign_flip((honest, n_bad, kappa) in signflip_scenario()) {
        let bad = signflip_point(&honest, kappa);
        let refs = all_inputs(&honest, &bad, n_bad);
        let out = CenteredClip::new(1.0, 3).aggregate(&refs, None);
        let (lo, hi) = honest_box(&honest, 3.0 + 1e-3);
        for j in 0..out.len() {
            prop_assert!(out[j] >= lo[j] && out[j] <= hi[j]);
        }
    }

    // Streaming-kernel equivalence (ISSUE 9): below the exact-fallback
    // threshold the streaming rules must reproduce the batch kernels on
    // *any* arrival order, within 1 ulp.

    #[test]
    fn streaming_median_matches_exact_on_any_arrival_order(
        (honest, n_bad, bad) in scenario(),
        seed in 0u64..1000,
    ) {
        let mut refs = all_inputs(&honest, &bad, n_bad);
        let n = refs.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            refs.swap(i, j);
        }
        let exact = CoordMedian.aggregate(&refs, None);
        let streamed = StreamingMedian::new(DEFAULT_EXACT_THRESHOLD).aggregate(&refs, None);
        for (j, (e, s)) in exact.iter().zip(&streamed).enumerate() {
            prop_assert!(ulp_gap(*e, *s) <= 1, "coord {j}: exact {e} vs streamed {s}");
        }
    }

    #[test]
    fn streaming_trimmed_mean_matches_exact_on_any_arrival_order(
        (honest, n_bad, bad) in scenario(),
        ratio_pct in 0u32..50,
        seed in 0u64..1000,
    ) {
        let ratio = ratio_pct as f64 / 100.0;
        let mut refs = all_inputs(&honest, &bad, n_bad);
        let n = refs.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(37).wrapping_add(i * 13)) % n;
            refs.swap(i, j);
        }
        let exact = TrimmedMean::new(ratio).aggregate(&refs, None);
        let streamed =
            StreamingTrimmedMean::new(ratio, DEFAULT_EXACT_THRESHOLD).aggregate(&refs, None);
        for (j, (e, s)) in exact.iter().zip(&streamed).enumerate() {
            prop_assert!(ulp_gap(*e, *s) <= 1, "coord {j}: exact {e} vs streamed {s}");
        }
    }

    #[test]
    fn sampled_krum_is_exact_krum_below_the_bucket_cut(
        (honest, n_bad, bad) in scenario(),
    ) {
        let refs = all_inputs(&honest, &bad, n_bad);
        let exact = Krum::new(n_bad).aggregate(&refs, None);
        let sampled = SampledKrum::new(n_bad, refs.len()).aggregate(&refs, None);
        prop_assert_eq!(exact, sampled);
    }

    #[test]
    fn aggregators_are_permutation_insensitive_median(
        (honest, n_bad, bad) in scenario(),
        seed in 0u64..1000,
    ) {
        // Coordinate-wise median must not depend on input order.
        let mut refs = all_inputs(&honest, &bad, n_bad);
        let a = CoordMedian.aggregate(&refs, None);
        // deterministic shuffle
        let n = refs.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            refs.swap(i, j);
        }
        let b = CoordMedian.aggregate(&refs, None);
        prop_assert_eq!(a, b);
    }
}
