//! Runs one scenario through the real entry points and collects the
//! cross-run observations the oracles judge.
//!
//! A scenario costs two fully independent instrumented runs (prepare +
//! train, so the determinism oracle compares end-to-end reproductions,
//! not a cached experiment) plus, when the Byzantine-degradation oracle
//! applies, a third same-seed run with the attack stripped.
//!
//! [`Mutation`] injects deliberate corruptions *at the observation
//! boundary* — the values a buggy engine would have produced — so CI
//! can prove the oracles and the shrinker actually catch a broken
//! quorum rule or a leaked message without compiling a broken engine
//! (see `DESIGN.md` §10).

use std::collections::HashMap;

use abd_hfl_core::config::ConfigError;
use abd_hfl_core::engine::cost::clean_round_messages;
use abd_hfl_core::runner::{
    resume_prepared_with, run_prepared_snapshotting, run_prepared_with, Experiment, RunResult,
};
use hfl_snapshot::EngineSnapshot;
use hfl_telemetry::{Event, RunManifest, Telemetry};

use crate::scenario::{AttackSpec, ProtocolSpec, ScenarioSpec};

/// Relative accuracy slack of the Byzantine-degradation oracle: under
/// an in-tolerance static attack the final accuracy must stay within
/// this of the same-seed clean run.
pub const BYZANTINE_EPSILON: f64 = 0.25;

/// Everything the oracles look at for one scenario.
pub struct Observations {
    /// The scenario that was run.
    pub spec: ScenarioSpec,
    /// Outcome of the primary run.
    pub result: RunResult,
    /// Manifest of the primary run.
    pub manifest: RunManifest,
    /// `manifest.to_json()` of the primary run.
    pub manifest_json: String,
    /// Manifest JSON of the independent same-seed rerun.
    pub rerun_manifest_json: String,
    /// Structured events of the primary run.
    pub events: Vec<Event>,
    /// `cluster_sizes[level][cluster]` of the built hierarchy.
    pub cluster_sizes: Vec<Vec<usize>>,
    /// Malicious-member count of each bottom cluster.
    pub malicious_per_cluster: Vec<usize>,
    /// Bytes of one model transfer (`4·d`).
    pub model_bytes: u64,
    /// Closed-form per-round message count, when the scenario is clean
    /// enough for [`clean_round_messages`] to apply exactly.
    pub expected_round_messages: Option<u64>,
    /// Final accuracy of the attack-stripped same-seed twin, when the
    /// Byzantine-degradation oracle is eligible.
    pub clean_final_accuracy: Option<f64>,
}

impl Observations {
    /// True when nothing in the scenario removes contributors: the
    /// strict quorum / closed-form accounting forms apply. Deadline
    /// buffers disqualify too — late admissions make the kept set
    /// larger than the quorum.
    pub fn is_clean(&self) -> bool {
        let s = &self.spec;
        s.faults.is_empty()
            && s.churn == 0.0
            && !s.suspicion
            && s.protocol == ProtocolSpec::None
            && s.deadline_us.is_none()
    }
}

/// True when the scenario qualifies for the Byzantine-degradation
/// oracle: a static attack, full quorum (so the kept set is the whole
/// cluster and per-cluster tolerance arithmetic holds), nothing else
/// removing contributors, and every bottom cluster's malicious count
/// within the *composed* (pre-aggregation + base rule) tolerance.
/// Sampled populations re-bind cohort slots every round, so the
/// per-cluster malicious arithmetic has no fixed placement to bound —
/// those scenarios are ineligible.
fn byzantine_bound_eligible(spec: &ScenarioSpec, malicious_per_cluster: &[usize]) -> bool {
    let worst = malicious_per_cluster.iter().copied().max().unwrap_or(0);
    spec.attack.is_static()
        && spec.sampling_population == 0
        && spec.proportion > 0.0
        && spec.protocol == ProtocolSpec::None
        && spec.faults.is_empty()
        && spec.churn == 0.0
        && spec.phi == 1.0
        && spec.deadline_us.is_none()
        && worst >= 1
        && worst <= spec.tolerance()
        && spec.rounds >= 3
}

/// Reusable run state for snapshot-seeded replay: per-round
/// [`EngineSnapshot`]s keyed by the scenario's *base* shape (everything
/// but the horizon), plus memoized clean-twin accuracies. Shrink
/// candidates that only shorten `rounds` — the shrinker's first and
/// most frequent edit — resume from the deepest compatible snapshot
/// instead of re-executing the prefix.
#[derive(Default)]
pub struct SnapshotCache {
    snapshots: HashMap<String, Vec<EngineSnapshot>>,
    clean_accuracy: HashMap<String, f64>,
    /// Rounds actually executed through runs under this cache.
    pub rounds_executed: u64,
    /// Rounds skipped by resuming from a cached snapshot.
    pub rounds_saved: u64,
}

impl SnapshotCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache key: the spec with the horizon zeroed, so any
    /// rounds-only variant of the same scenario shares snapshots
    /// (matching [`abd_hfl_core::runner::base_config_hash`]'s
    /// normalization — `ScenarioSpec::to_config` derives `eval_every`
    /// from `rounds`, so zeroing `rounds` covers both).
    fn base_key(spec: &ScenarioSpec) -> String {
        let mut s = spec.clone();
        s.rounds = 0;
        format!("{s:?}")
    }

    /// The deepest cached snapshot strictly before `spec.rounds`.
    fn best_for(&self, spec: &ScenarioSpec) -> Option<&EngineSnapshot> {
        self.snapshots
            .get(&Self::base_key(spec))?
            .iter()
            .filter(|s| s.round < spec.rounds)
            .max_by_key(|s| s.round)
    }
}

/// Runs `spec` and gathers [`Observations`]. `Err` means the spec does
/// not lower to a consistent config — a generator or corpus bug, never
/// an engine bug, so the fuzz loop treats it as fatal.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<Observations, ConfigError> {
    run_scenario_inner(spec, None)
}

/// [`run_scenario`] with snapshot-seeded replay: both instrumented
/// runs resume from the deepest cached snapshot compatible with
/// `spec`, and cache misses record per-round snapshots for later
/// rounds-only variants (the shrinker's horizon-halving candidates).
pub fn run_scenario_cached(
    spec: &ScenarioSpec,
    cache: &mut SnapshotCache,
) -> Result<Observations, ConfigError> {
    run_scenario_inner(spec, Some(cache))
}

fn run_scenario_inner(
    spec: &ScenarioSpec,
    mut cache: Option<&mut SnapshotCache>,
) -> Result<Observations, ConfigError> {
    let cfg = spec.to_config();

    let resume_from: Option<EngineSnapshot> =
        cache.as_deref().and_then(|c| c.best_for(spec)).cloned();

    let (run, events, start_round) = {
        let exp = Experiment::try_prepare(&cfg)?;
        let (telem, rec) = Telemetry::recording();
        let (run, snaps, start) = match &resume_from {
            Some(snap) => {
                let run = resume_prepared_with(&exp, &telem, snap)
                    .expect("cached snapshot must resume under its own base config");
                (run, Vec::new(), snap.round)
            }
            None => {
                if cache.is_some() {
                    let (run, snaps) = run_prepared_snapshotting(&exp, &telem, 1);
                    (run, snaps, 0)
                } else {
                    (run_prepared_with(&exp, &telem), Vec::new(), 0)
                }
            }
        };
        if let (Some(c), false) = (cache.as_mut(), snaps.is_empty()) {
            c.snapshots
                .entry(SnapshotCache::base_key(spec))
                .or_insert(snaps);
        }
        // A resumed run never emitted events for the prefix rounds;
        // reconstruct the one event kind the oracles *sum* —
        // `RoundFinished` — from the snapshot's round records so
        // accounting conservation still closes over the totals.
        let mut events: Vec<Event> = run.manifest.rounds[..start]
            .iter()
            .map(|r| Event::RoundFinished {
                round: r.round - 1,
                messages: r.messages,
                bytes: r.bytes,
                excluded: r.excluded,
                absent: r.absent,
            })
            .collect();
        events.extend(rec.events());
        (run, events, start)
    };

    // Fully independent reproduction: fresh prepare, fresh telemetry.
    // When resuming, the rerun restarts from the *same* snapshot, so
    // the determinism oracle still compares two independent
    // executions of every round past the checkpoint.
    let rerun = {
        let rerun_exp = Experiment::try_prepare(&cfg)?;
        let (rerun_telem, _rerun_rec) = Telemetry::recording();
        match &resume_from {
            Some(snap) => resume_prepared_with(&rerun_exp, &rerun_telem, snap)
                .expect("cached snapshot must resume under its own base config"),
            None => run_prepared_with(&rerun_exp, &rerun_telem),
        }
    };

    if let Some(c) = cache.as_mut() {
        let executed = (spec.rounds - start_round) as u64;
        c.rounds_executed += 2 * executed;
        c.rounds_saved += 2 * start_round as u64;
    }

    let exp = Experiment::try_prepare(&cfg)?;
    let h = &exp.hierarchy;
    let cluster_sizes: Vec<Vec<usize>> = (0..h.num_levels())
        .map(|l| h.level(l).clusters.iter().map(|c| c.len()).collect())
        .collect();
    let bottom = h.bottom_level();
    let malicious_per_cluster: Vec<usize> = h
        .level(bottom)
        .clusters
        .iter()
        .map(|c| c.members.iter().filter(|&&d| exp.malicious[d]).count())
        .collect();

    let clean_final_accuracy = if byzantine_bound_eligible(spec, &malicious_per_cluster) {
        let mut clean_spec = spec.clone();
        clean_spec.attack = AttackSpec::None;
        clean_spec.proportion = 0.0;
        let clean_key = format!("{clean_spec:?}");
        let cached = cache
            .as_deref()
            .and_then(|c| c.clean_accuracy.get(&clean_key).copied());
        match cached {
            Some(acc) => {
                if let Some(c) = cache.as_mut() {
                    c.rounds_saved += clean_spec.rounds as u64;
                }
                Some(acc)
            }
            None => {
                let clean_cfg = clean_spec.to_config();
                let clean_exp = Experiment::try_prepare(&clean_cfg)?;
                let clean = run_prepared_with(&clean_exp, &Telemetry::disabled());
                if let Some(c) = cache.as_mut() {
                    c.rounds_executed += clean_spec.rounds as u64;
                    c.clean_accuracy
                        .insert(clean_key, clean.result.final_accuracy);
                }
                Some(clean.result.final_accuracy)
            }
        }
    } else {
        None
    };

    let manifest_json = run.manifest.to_json();
    Ok(Observations {
        // The closed form models only the base protocol: the arms race
        // (suspicion, protocol attacks, adaptive attacks) stacks the
        // defense layer, whose echo audit ships extra digests, and
        // deadline buffers change transfer counts via late admissions.
        expected_round_messages: if spec.faults.is_empty()
            && spec.churn == 0.0
            && spec.deadline_us.is_none()
            && !cfg.arms_race()
        {
            clean_round_messages(&cfg, h)
        } else {
            None
        },
        spec: spec.clone(),
        result: run.result,
        manifest: run.manifest,
        manifest_json,
        rerun_manifest_json: rerun.manifest.to_json(),
        events,
        cluster_sizes,
        malicious_per_cluster,
        model_bytes: 4 * exp.template.param_len() as u64,
        clean_final_accuracy,
    })
}

/// A deliberate corruption of the observations — what a buggy engine
/// would have reported. Used by `fuzz_oracle --mutation` to prove the
/// oracle layer catches the failure class end to end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Every aggregation closes one input short of its quorum (a broken
    /// `quorum_size`, an off-by-one in the kept set...).
    QuorumUndershoot,
    /// The manifest's message total drifts from the per-round ledger
    /// (a transfer charged to the total but not the round, or vice
    /// versa).
    InflateMessages,
    /// The same-seed rerun produces a different manifest byte stream
    /// (any nondeterminism: unseeded RNG, map-order iteration...).
    SkewRerun,
    /// A buffer admits an update past its staleness bound τ (a broken
    /// lateness comparison, a buffer leaking onto the sync path...).
    OverdueAdmit,
    /// An in-tolerance attack sails through the defense and craters
    /// accuracy (a pre-aggregation transform that drops honest mass, a
    /// clipping radius that never clips...).
    DefenseBypass,
}

impl Mutation {
    /// Parses the `--mutation` flag names.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "quorum" => Some(Mutation::QuorumUndershoot),
            "conservation" => Some(Mutation::InflateMessages),
            "determinism" => Some(Mutation::SkewRerun),
            "staleness" => Some(Mutation::OverdueAdmit),
            "defense-bypass" => Some(Mutation::DefenseBypass),
            _ => None,
        }
    }

    /// The `--mutation` flag name.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::QuorumUndershoot => "quorum",
            Mutation::InflateMessages => "conservation",
            Mutation::SkewRerun => "determinism",
            Mutation::OverdueAdmit => "staleness",
            Mutation::DefenseBypass => "defense-bypass",
        }
    }

    /// Applies the corruption to `obs` in place.
    pub fn apply(&self, obs: &mut Observations) {
        match self {
            Mutation::QuorumUndershoot => {
                for ev in &mut obs.events {
                    if let Event::ClusterAggregated { inputs, .. } = ev {
                        *inputs = inputs.saturating_sub(1);
                    }
                }
            }
            Mutation::InflateMessages => {
                obs.manifest.totals.messages += 17;
            }
            Mutation::SkewRerun => {
                obs.rerun_manifest_json.push(' ');
            }
            Mutation::OverdueAdmit => {
                // One admission past τ. On a sync spec the fabricated
                // buffer event is itself the violation (no buffer may
                // exist without a deadline), so the mutation trips the
                // staleness-safety oracle on every scenario.
                obs.events.push(Event::StaleUpdateAdmitted {
                    round: 0,
                    level: obs.spec.total_levels - 1,
                    cluster: 0,
                    device: 0,
                    lateness_us: obs.spec.staleness_bound_us + 1,
                    weight: 0.5,
                });
            }
            Mutation::DefenseBypass => {
                // Fabricate the clean twin a bypassed defense would
                // betray: the attacked run sits ε + slack below it. On
                // attack-free scenarios (no real twin exists) this is
                // exactly what a defense silently discarding honest
                // updates looks like, so the mutation trips the
                // Byzantine-degradation oracle on every scenario.
                obs.clean_final_accuracy =
                    Some(obs.result.final_accuracy + BYZANTINE_EPSILON + 0.1);
            }
        }
    }
}

/// Runs `spec`, optionally applies a [`Mutation`], and checks every
/// oracle: the fuzz loop's single step.
pub fn check(
    spec: &ScenarioSpec,
    mutation: Option<Mutation>,
) -> Result<(Observations, Vec<crate::oracles::Violation>), ConfigError> {
    let mut obs = run_scenario(spec)?;
    if let Some(m) = mutation {
        m.apply(&mut obs);
    }
    let violations = crate::oracles::check_all(&obs);
    Ok((obs, violations))
}

/// [`check`] with snapshot-seeded replay through `cache`: the fuzz
/// loop's single step when `--snapshots` is on, and the shrinker's
/// probe when it re-runs horizon-halved candidates.
pub fn check_cached(
    spec: &ScenarioSpec,
    mutation: Option<Mutation>,
    cache: &mut SnapshotCache,
) -> Result<(Observations, Vec<crate::oracles::Violation>), ConfigError> {
    let mut obs = run_scenario_cached(spec, cache)?;
    if let Some(m) = mutation {
        m.apply(&mut obs);
    }
    let violations = crate::oracles::check_all(&obs);
    Ok((obs, violations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioGen;

    /// A horizon-halved spec resumes from the full run's snapshots and
    /// still produces the exact observations an uncached run does —
    /// manifests byte-identical, all oracles green, rounds saved.
    #[test]
    fn cached_horizon_shrink_matches_uncached() {
        let mut gen = ScenarioGen::new(3);
        let mut spec = gen.draw();
        spec.rounds = 6;

        let mut cache = SnapshotCache::new();
        let full = run_scenario_cached(&spec, &mut cache).expect("spec must lower");
        assert_eq!(cache.rounds_saved, 0, "nothing to resume from yet");
        assert!(crate::oracles::check_all(&full).is_empty());

        let mut half = spec.clone();
        half.rounds = 3;
        let uncached = run_scenario(&half).expect("spec must lower");
        let cached = run_scenario_cached(&half, &mut cache).expect("spec must lower");
        assert!(cache.rounds_saved > 0, "the halved horizon must resume");
        assert_eq!(
            cached.manifest_json, uncached.manifest_json,
            "resumed primary run must match the uncached manifest byte-for-byte"
        );
        assert_eq!(
            cached.rerun_manifest_json, uncached.rerun_manifest_json,
            "resumed rerun must match too"
        );
        assert!(crate::oracles::check_all(&cached).is_empty());
    }

    /// A sampled population re-binds cohort slots every round, so the
    /// Byzantine-bound eligibility must skip those scenarios — and the
    /// rest of the oracle battery must still hold end to end on one.
    #[test]
    fn sampled_scenarios_skip_the_byzantine_bound_but_pass_every_oracle() {
        let mut gen = ScenarioGen::new(21);
        let mut spec = loop {
            let s = gen.draw();
            if s.sampling_population > 0 {
                break s;
            }
        };
        spec.rounds = spec.rounds.min(3);
        let obs = run_scenario(&spec).expect("sampled spec must lower");
        assert!(
            obs.clean_final_accuracy.is_none(),
            "sampled specs are Byzantine-bound ineligible: {spec:?}"
        );
        let violations = crate::oracles::check_all(&obs);
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// Anything other than a rounds-only change is a different base
    /// key: the cache must miss rather than resume a foreign run.
    #[test]
    fn non_horizon_edits_do_not_share_snapshots() {
        let mut gen = ScenarioGen::new(4);
        let mut spec = gen.draw();
        spec.rounds = 4;

        let mut cache = SnapshotCache::new();
        run_scenario_cached(&spec, &mut cache).expect("spec must lower");
        let mut other = spec.clone();
        other.seed ^= 1;
        other.rounds = 2;
        let saved_before = cache.rounds_saved;
        run_scenario_cached(&other, &mut cache).expect("spec must lower");
        assert_eq!(
            cache.rounds_saved, saved_before,
            "a seed change must not hit the snapshot cache"
        );
    }
}
