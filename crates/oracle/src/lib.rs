//! # hfl-oracle
//!
//! A deterministic scenario fuzzer plus an invariant-oracle layer over
//! the round engine. The paper's claims (Theorems 1–3) are checked at a
//! handful of hand-picked configs in `tests/`; this crate checks them
//! on *generated* configs drawn across the full composable space the
//! engine exposes — topology × aggregator × attack × fault plan ×
//! suspicion × quorum fraction.
//!
//! The moving parts:
//!
//! * [`scenario::ScenarioSpec`] — a flat, serializable description of
//!   one run; [`ScenarioSpec::to_config`](scenario::ScenarioSpec::to_config)
//!   lowers it to an [`abd_hfl_core::config::HflConfig`].
//! * [`scenario::ScenarioGen`] — a seeded generator drawing valid
//!   specs. Same generator seed ⇒ same scenario stream, so any fuzz
//!   failure is replayable from two integers (`--seed`, iteration).
//! * [`harness`] — runs a spec through the real entry point
//!   ([`abd_hfl_core::runner::run_prepared_with`], twice, plus a
//!   same-seed clean twin when the Byzantine-bound oracle applies) and
//!   collects [`harness::Observations`].
//! * [`oracles`] — the seven invariants checked on every run; see
//!   [`oracles::check_all`].
//! * [`harness::Mutation`] — deliberate observation-level corruptions
//!   (e.g. a quorum undershoot) used to prove the oracles *can* fail;
//!   `fuzz_oracle --mutation quorum` is CI's self-check of the harness.
//! * [`shrink`] — greedy minimization of a failing spec; the result is
//!   persisted as a TOML case under `tests/corpus/` and replayed by
//!   `tests/oracle_corpus.rs`.
//! * [`toml`] — the hand-rolled TOML subset those corpus cases use
//!   (the workspace deliberately has no serialization dependencies).
//!
//! See `DESIGN.md` §10 for the workflow and the invariant catalogue.

#![warn(missing_docs)]

pub mod harness;
pub mod oracles;
pub mod scenario;
pub mod shrink;
pub mod toml;

pub use harness::{
    check, check_cached, run_scenario, run_scenario_cached, Mutation, Observations, SnapshotCache,
};
pub use oracles::{check_all, Violation};
pub use scenario::{ScenarioGen, ScenarioSpec};
