//! Scenario descriptions and the seeded generator.
//!
//! A [`ScenarioSpec`] is deliberately *flat*: every field is a scalar,
//! a small enum, or a list of flat fault events, so specs serialize to
//! a dozen TOML lines ([`crate::toml`]), shrink by simple field edits
//! ([`crate::shrink`]), and diff readably in a corpus directory.

use abd_hfl_core::config::{
    AsyncRoundCfg, AttackCfg, DataDistribution, HeterogeneityCfg, HflConfig, LevelAgg, SamplingCfg,
    TopologyCfg,
};
use hfl_attacks::{AdaptiveAttack, DataAttack, ModelAttack, Placement};
use hfl_faults::FaultPlan;
use hfl_ml::synth::SynthConfig;
use hfl_robust::{AggregatorKind, SuspicionConfig};
use hfl_simnet::DelayModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lower bound (µs) of the uniform link delay every async scenario
/// lowers to. Shared with the liveness oracle, which must know the
/// worst synthesized arrival.
pub const ASYNC_LINK_LO: u64 = 500;
/// Upper bound (µs) of the uniform link delay of async scenarios.
pub const ASYNC_LINK_HI: u64 = 5_000;

/// Aggregation rule used at every BRA level of the scenario.
#[derive(Clone, Debug, PartialEq)]
pub enum AggSpec {
    /// Plain averaging (no robustness).
    FedAvg,
    /// Krum with assumed `f`.
    Krum {
        /// Assumed Byzantine count.
        f: usize,
    },
    /// Multi-Krum selecting `m` of the inputs.
    MultiKrum {
        /// Assumed Byzantine count.
        f: usize,
        /// Selection size.
        m: usize,
    },
    /// Coordinate-wise median.
    Median,
    /// Coordinate-wise trimmed mean.
    TrimmedMean {
        /// Per-tail trim ratio.
        ratio: f64,
    },
    /// Geometric median (Weiszfeld).
    GeoMed,
    /// Centered clipping with radius `tau` and `iters` refinements.
    CenteredClip {
        /// Clipping radius.
        tau: f64,
        /// Fixed-point iterations.
        iters: usize,
    },
}

impl AggSpec {
    /// The concrete aggregator.
    pub fn kind(&self) -> AggregatorKind {
        match self {
            AggSpec::FedAvg => AggregatorKind::FedAvg,
            AggSpec::Krum { f } => AggregatorKind::Krum { f: *f },
            AggSpec::MultiKrum { f, m } => AggregatorKind::MultiKrum { f: *f, m: *m },
            AggSpec::Median => AggregatorKind::Median,
            AggSpec::TrimmedMean { ratio } => AggregatorKind::TrimmedMean { ratio: *ratio },
            AggSpec::GeoMed => AggregatorKind::GeoMed,
            AggSpec::CenteredClip { tau, iters } => AggregatorKind::CenteredClip {
                tau: *tau,
                iters: *iters,
            },
        }
    }

    /// How many Byzantine members per cluster the rule tolerates (the
    /// eligibility bound of the Byzantine-degradation oracle) given the
    /// cluster size `n`.
    pub fn tolerance(&self, n: usize) -> usize {
        match self {
            AggSpec::FedAvg => 0,
            AggSpec::Krum { f } | AggSpec::MultiKrum { f, .. } => {
                // The Krum guarantee needs n ≥ 2f + 3.
                (*f).min(n.saturating_sub(3) / 2)
            }
            AggSpec::Median | AggSpec::GeoMed => (n.saturating_sub(1)) / 2,
            AggSpec::TrimmedMean { ratio } => ((n as f64) * ratio).floor() as usize,
            // Centered clipping is robust to a sub-half minority; stay a
            // notch under the breakdown point for eligibility.
            AggSpec::CenteredClip { .. } => n.saturating_sub(1) / 3,
        }
    }
}

/// Optional pre-aggregation transform composed in front of the base
/// rule (single-layer, mirroring the config's composition contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PreAggSpec {
    /// No transform — the base rule sees the raw inputs.
    None,
    /// Average consecutive buckets of `s` inputs.
    Bucketing {
        /// Bucket size.
        s: usize,
    },
    /// Replace each input by the mean of its `k` nearest neighbours.
    Nnm {
        /// Neighbourhood size (self included).
        k: usize,
    },
}

impl PreAggSpec {
    /// Wraps `base` in the concrete composed aggregator kind.
    pub fn wrap(&self, base: AggregatorKind) -> AggregatorKind {
        match self {
            PreAggSpec::None => base,
            PreAggSpec::Bucketing { s } => AggregatorKind::Bucketing {
                s: *s,
                inner: Box::new(base),
            },
            PreAggSpec::Nnm { k } => AggregatorKind::Nnm {
                k: *k,
                inner: Box::new(base),
            },
        }
    }

    /// Byzantine tolerance of the composed rule on a cluster of `n`:
    /// bucketing hands the base rule `⌈n/s⌉` bucket means (each
    /// malicious input can corrupt at most its own bucket), NNM keeps
    /// the cohort size.
    pub fn composed_tolerance(&self, base: &AggSpec, n: usize) -> usize {
        match self {
            PreAggSpec::None | PreAggSpec::Nnm { .. } => base.tolerance(n),
            PreAggSpec::Bucketing { s } => base.tolerance(n.div_ceil(*s)),
        }
    }
}

/// The Byzantine client behaviour of the scenario.
#[derive(Clone, Debug, PartialEq)]
pub enum AttackSpec {
    /// Everybody honest.
    None,
    /// Static sign flip at `scale`.
    SignFlip {
        /// Magnitude multiplier.
        scale: f64,
    },
    /// Static *A Little Is Enough* at `z` standard deviations.
    Alie {
        /// Standard-deviation shift.
        z: f64,
    },
    /// Static inner-product manipulation at `epsilon`.
    Ipm {
        /// Negative-scaling factor.
        epsilon: f64,
    },
    /// Data poisoning: all labels flipped to class 9.
    LabelFlip,
    /// Static mimic: copy the `victim`-th honest update verbatim.
    Mimic {
        /// Honest index copied (modulo the honest count).
        victim: usize,
    },
    /// Static scaled reflection of the honest mean by `factor`.
    Scaling {
        /// Scale factor (negative reflects).
        factor: f64,
    },
    /// AGR-tailored min-max perturbation (deterministic bisection).
    MinMax,
    /// AGR-tailored min-sum perturbation (deterministic bisection).
    MinSum,
    /// The adaptive ALIE adversary (bisecting magnitude).
    AdaptiveAlie,
    /// The adaptive IPM adversary.
    AdaptiveIpm,
    /// The adaptive scaling adversary (bisecting reflection factor).
    AdaptiveScaling,
}

impl AttackSpec {
    /// True for the static (non-adaptive) attack families — the only
    /// ones the Byzantine-degradation oracle covers.
    pub fn is_static(&self) -> bool {
        matches!(
            self,
            AttackSpec::SignFlip { .. }
                | AttackSpec::Alie { .. }
                | AttackSpec::Ipm { .. }
                | AttackSpec::LabelFlip
                | AttackSpec::Mimic { .. }
                | AttackSpec::Scaling { .. }
                | AttackSpec::MinMax
                | AttackSpec::MinSum
        )
    }

    fn to_cfg(&self, proportion: f64, placement: Placement) -> AttackCfg {
        match self {
            AttackSpec::None => AttackCfg::None,
            AttackSpec::SignFlip { scale } => AttackCfg::Model {
                attack: ModelAttack::SignFlip {
                    scale: *scale as f32,
                },
                proportion,
                placement,
            },
            AttackSpec::Alie { z } => AttackCfg::Model {
                attack: ModelAttack::Alie { z: *z as f32 },
                proportion,
                placement,
            },
            AttackSpec::Ipm { epsilon } => AttackCfg::Model {
                attack: ModelAttack::Ipm {
                    epsilon: *epsilon as f32,
                },
                proportion,
                placement,
            },
            AttackSpec::LabelFlip => AttackCfg::Data {
                attack: DataAttack::LabelFlipAll { target: 9 },
                proportion,
                placement,
            },
            AttackSpec::Mimic { victim } => AttackCfg::Model {
                attack: ModelAttack::Mimic { victim: *victim },
                proportion,
                placement,
            },
            AttackSpec::Scaling { factor } => AttackCfg::Model {
                attack: ModelAttack::Scaling {
                    factor: *factor as f32,
                },
                proportion,
                placement,
            },
            AttackSpec::MinMax => AttackCfg::Model {
                attack: ModelAttack::MinMax,
                proportion,
                placement,
            },
            AttackSpec::MinSum => AttackCfg::Model {
                attack: ModelAttack::MinSum,
                proportion,
                placement,
            },
            AttackSpec::AdaptiveAlie => AttackCfg::Adaptive {
                attack: AdaptiveAttack::alie_default(),
                proportion,
                placement,
            },
            AttackSpec::AdaptiveIpm => AttackCfg::Adaptive {
                attack: AdaptiveAttack::ipm_default(),
                proportion,
                placement,
            },
            AttackSpec::AdaptiveScaling => AttackCfg::Adaptive {
                attack: AdaptiveAttack::scaling_default(),
                proportion,
                placement,
            },
        }
    }
}

/// Protocol-level misbehaviour (leader equivocation, withholding).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// No protocol attack.
    None,
    /// Leaders of malicious clusters equivocate.
    Equivocate,
    /// The coalition withholds pivotally.
    Withhold,
    /// Malicious members stall uploads until just inside the staleness
    /// bound τ (requires a deadline-driven scenario with τ > 0).
    StalenessExploit,
}

/// One scheduled fault, flattened for TOML round-tripping.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// `node` crashes at `at` and never recovers.
    CrashStop {
        /// Activation round.
        at: usize,
        /// Crashing device.
        node: usize,
    },
    /// `node` crashes at `at` and recovers at `recover`.
    CrashRecover {
        /// Activation round.
        at: usize,
        /// Crashing device.
        node: usize,
        /// Recovery round.
        recover: usize,
    },
    /// The bottom-level leader of `cluster` is killed at `at`.
    KillLeader {
        /// Activation round.
        at: usize,
        /// Bottom-level cluster index.
        cluster: usize,
    },
    /// `node`'s uplink slows by `factor` from `at` onward.
    Straggler {
        /// Activation round.
        at: usize,
        /// Straggling device.
        node: usize,
        /// Delay multiplier.
        factor: f64,
    },
    /// Uniform message loss `prob` during `[at, until)`.
    LossBurst {
        /// Activation round.
        at: usize,
        /// Per-message loss probability.
        prob: f64,
        /// Healing round.
        until: usize,
    },
}

/// A complete, flat description of one fuzzed run.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// The run seed (data, shuffles, SGD, placements).
    pub seed: u64,
    /// Hierarchy depth (2 or 3 levels).
    pub total_levels: usize,
    /// Cluster size below the top.
    pub m: usize,
    /// Top-cluster size.
    pub n_top: usize,
    /// Training rounds.
    pub rounds: usize,
    /// Local SGD iterations per round.
    pub local_iters: usize,
    /// Quorum fraction φ.
    pub phi: f64,
    /// Aggregation rule at every level.
    pub agg: AggSpec,
    /// Pre-aggregation transform composed in front of `agg`.
    pub pre_agg: PreAggSpec,
    /// Byzantine client behaviour.
    pub attack: AttackSpec,
    /// Malicious fraction (ignored for `AttackSpec::None`).
    pub proportion: f64,
    /// Malicious placement: `true` = seeded random, `false` = prefix.
    pub random_placement: bool,
    /// Per-round client churn probability.
    pub churn: f64,
    /// Suspicion/quarantine defense layer on?
    pub suspicion: bool,
    /// Protocol-level attack.
    pub protocol: ProtocolSpec,
    /// Deadline (µs) of the deadline-driven collection buffers; `None`
    /// keeps the synchronous barriers.
    pub deadline_us: Option<u64>,
    /// Staleness bound τ (µs past buffer close); 0 when synchronous.
    pub staleness_bound_us: u64,
    /// Extreme non-IID partition (2 labels per client)?
    pub noniid: bool,
    /// Dirichlet non-IID concentration; `None` keeps IID (or the
    /// 2-label extreme when `noniid` is set — never both).
    pub dirichlet_alpha: Option<f64>,
    /// Mixed-device compute/bandwidth heterogeneity profiles on?
    pub heterogeneity: bool,
    /// Cross-device population the run samples its cohort from each
    /// round; 0 keeps sampling off (the cohort *is* the population).
    pub sampling_population: usize,
    /// Stratified (index-range) sampling instead of uniform?
    pub sampling_stratified: bool,
    /// Synthetic training-set size.
    pub train_samples: usize,
    /// Scheduled faults.
    pub faults: Vec<FaultEvent>,
}

impl ScenarioSpec {
    /// Byzantine tolerance of the composed (pre-agg + base) rule on a
    /// bottom cluster — the Byzantine-degradation eligibility bound.
    pub fn tolerance(&self) -> usize {
        self.pre_agg.composed_tolerance(&self.agg, self.m)
    }

    /// Worst per-client arrival-delay multiplier the heterogeneity
    /// profiles can draw (compute × bandwidth spread) — the liveness
    /// oracle's stretch allowance; 1 when profiles are off.
    pub fn heterogeneity_stretch(&self) -> f64 {
        if self.heterogeneity {
            let het = HeterogeneityCfg::mixed_devices();
            het.compute_spread * het.bandwidth_spread
        } else {
            1.0
        }
    }

    /// Number of clients the spec's topology yields.
    pub fn num_clients(&self) -> usize {
        match self.total_levels {
            2 => self.m * self.n_top,
            _ => self.m * self.m * self.n_top,
        }
    }

    /// Number of bottom-level clusters.
    pub fn num_bottom_clusters(&self) -> usize {
        self.num_clients() / self.m
    }

    /// Lowers the spec to a runnable config.
    pub fn to_config(&self) -> HflConfig {
        let placement = if self.random_placement {
            Placement::Random
        } else {
            Placement::Prefix
        };
        let attack = self.attack.to_cfg(self.proportion, placement);
        let mut cfg = HflConfig::quick(attack, self.seed);
        cfg.topology = TopologyCfg::Ecsm {
            total_levels: self.total_levels,
            m: self.m,
            n_top: self.n_top,
        };
        cfg.levels = vec![LevelAgg::Bra(self.pre_agg.wrap(self.agg.kind())); self.total_levels];
        cfg.flag_level = 1;
        cfg.rounds = self.rounds;
        cfg.eval_every = self.rounds;
        cfg.local_iters = self.local_iters;
        cfg.quorum = self.phi;
        cfg.churn_leave_prob = self.churn;
        cfg.distribution = if self.noniid {
            DataDistribution::NonIid {
                labels_per_client: 2,
            }
        } else if let Some(alpha) = self.dirichlet_alpha {
            DataDistribution::Dirichlet { alpha }
        } else {
            DataDistribution::Iid
        };
        if self.heterogeneity {
            cfg.heterogeneity = Some(HeterogeneityCfg::mixed_devices());
        }
        if self.sampling_population > 0 {
            cfg.sampling = Some(if self.sampling_stratified {
                SamplingCfg::stratified(self.sampling_population, self.num_clients())
            } else {
                SamplingCfg::uniform(self.sampling_population, self.num_clients())
            });
        }
        cfg.data = SynthConfig {
            train_samples: self.train_samples,
            test_samples: (self.train_samples / 4).max(200),
            ..SynthConfig::default()
        };
        cfg.suspicion = self.suspicion.then(SuspicionConfig::default);
        cfg.protocol_attack = match self.protocol {
            ProtocolSpec::None => None,
            ProtocolSpec::Equivocate => {
                Some(hfl_attacks::ProtocolAttack::Equivocate { flip_scale: 1.0 })
            }
            ProtocolSpec::Withhold => Some(hfl_attacks::ProtocolAttack::Withhold),
            ProtocolSpec::StalenessExploit => Some(hfl_attacks::ProtocolAttack::StalenessExploit),
        };
        if let Some(deadline_us) = self.deadline_us {
            cfg.async_rounds = Some(AsyncRoundCfg {
                deadline_us,
                staleness_bound_us: self.staleness_bound_us,
                link_delay: DelayModel::Uniform {
                    lo: ASYNC_LINK_LO,
                    hi: ASYNC_LINK_HI,
                },
                tier_deadlines: Vec::new(),
            });
        }
        if !self.faults.is_empty() {
            let mut plan = FaultPlan::new();
            for ev in &self.faults {
                plan = match *ev {
                    FaultEvent::CrashStop { at, node } => plan.crash_stop(at, node),
                    FaultEvent::CrashRecover { at, node, recover } => {
                        plan.crash_recover(at, node, recover)
                    }
                    FaultEvent::KillLeader { at, cluster } => {
                        plan.kill_leader(at, self.total_levels - 1, cluster, None)
                    }
                    FaultEvent::Straggler { at, node, factor } => {
                        plan.straggler(at, node, factor, None)
                    }
                    FaultEvent::LossBurst { at, prob, until } => plan.loss_burst(at, prob, until),
                };
            }
            cfg.faults = Some(plan);
        }
        cfg
    }
}

/// The seeded scenario stream: same seed, same sequence of specs.
pub struct ScenarioGen {
    rng: StdRng,
}

impl ScenarioGen {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next scenario. Every draw is valid by construction:
    /// fault targets are bounded by the drawn topology, rounds bound
    /// fault schedules, and non-IID partitions only appear on
    /// topologies with enough clients for honest label coverage.
    pub fn draw(&mut self) -> ScenarioSpec {
        let rng = &mut self.rng;
        let total_levels = if rng.gen_bool(0.5) { 2 } else { 3 };
        let m: usize = rng.gen_range(3..=4);
        let n_top = rng.gen_range(2..=3);
        let rounds = rng.gen_range(2..=5);
        let phi = *[1.0, 1.0, 0.75, 0.5, 2.0 / 3.0]
            .get(rng.gen_range(0..5usize))
            .unwrap();
        let agg = match rng.gen_range(0..7usize) {
            0 => AggSpec::FedAvg,
            1 => AggSpec::Krum { f: 1 },
            2 => AggSpec::MultiKrum {
                f: 1,
                m: (m - 1).max(2),
            },
            3 => AggSpec::Median,
            4 => AggSpec::TrimmedMean { ratio: 0.2 },
            5 => AggSpec::GeoMed,
            _ => AggSpec::CenteredClip { tau: 2.0, iters: 3 },
        };
        // Roughly a third of draws compose a pre-aggregation transform
        // in front of the base rule.
        let pre_agg = match rng.gen_range(0..6usize) {
            0 => PreAggSpec::Bucketing { s: 2 },
            1 => PreAggSpec::Nnm { k: m - 1 },
            _ => PreAggSpec::None,
        };
        let attack = match rng.gen_range(0..13usize) {
            0 | 1 => AttackSpec::None,
            2 => AttackSpec::SignFlip {
                scale: [1.0, 2.0, 10.0][rng.gen_range(0..3usize)],
            },
            3 => AttackSpec::Alie {
                z: [0.5, 1.5][rng.gen_range(0..2usize)],
            },
            4 => AttackSpec::Ipm {
                epsilon: [0.1, 1.0][rng.gen_range(0..2usize)],
            },
            5 => AttackSpec::LabelFlip,
            6 => AttackSpec::Mimic {
                victim: rng.gen_range(0..m),
            },
            7 => AttackSpec::Scaling {
                factor: [-1.5, -10.0][rng.gen_range(0..2usize)],
            },
            8 => AttackSpec::MinMax,
            9 => AttackSpec::MinSum,
            10 => AttackSpec::AdaptiveAlie,
            11 => AttackSpec::AdaptiveIpm,
            _ => AttackSpec::AdaptiveScaling,
        };
        let proportion = if matches!(attack, AttackSpec::None) {
            0.0
        } else {
            // ≤ 1 malicious member per bottom cluster under prefix
            // placement keeps most draws inside aggregator tolerance.
            [0.125, 0.25][rng.gen_range(0..2usize)]
        };
        let suspicion = rng.gen_bool(0.4);
        // About a third of the stream runs deadline-driven: the
        // liveness and staleness-safety oracles need real buffer
        // traffic, while the remaining sync draws pin the "no buffer
        // events without a deadline" half of staleness safety.
        let deadline_us = rng
            .gen_bool(1.0 / 3.0)
            .then(|| [2_000u64, 4_000, 8_000][rng.gen_range(0..3usize)]);
        let staleness_bound_us = match deadline_us {
            Some(_) => [500u64, 1_000, 2_000][rng.gen_range(0..3usize)],
            None => 0,
        };
        let protocol = if attack.is_static() && rng.gen_bool(0.2) {
            // The staleness exploit is only defined relative to an
            // async buffer close (τ > 0 holds for every async draw).
            let choices: &[ProtocolSpec] = if deadline_us.is_some() {
                &[
                    ProtocolSpec::Equivocate,
                    ProtocolSpec::Withhold,
                    ProtocolSpec::StalenessExploit,
                ]
            } else {
                &[ProtocolSpec::Equivocate, ProtocolSpec::Withhold]
            };
            choices[rng.gen_range(0..choices.len())]
        } else {
            ProtocolSpec::None
        };
        let churn = if rng.gen_bool(0.25) { 0.15 } else { 0.0 };
        let noniid = total_levels == 3 && rng.gen_bool(0.3);
        // Dirichlet heterogeneity rides on draws the 2-label extreme
        // left IID; α stays ≥ 0.5 so the honest-coverage re-draw budget
        // holds on the smallest fuzz tasks.
        let dirichlet_alpha =
            (!noniid && rng.gen_bool(0.25)).then(|| [0.5, 1.0, 10.0][rng.gen_range(0..3usize)]);
        let heterogeneity = rng.gen_bool(0.25);
        let mut spec = ScenarioSpec {
            seed: rng.gen_range(0..1_000_000),
            total_levels,
            m,
            n_top,
            rounds,
            local_iters: rng.gen_range(1..=2),
            phi,
            agg,
            pre_agg,
            attack,
            proportion,
            random_placement: rng.gen_bool(0.3),
            churn,
            suspicion,
            protocol,
            deadline_us,
            staleness_bound_us,
            noniid,
            dirichlet_alpha,
            heterogeneity,
            sampling_population: 0,
            sampling_stratified: false,
            train_samples: [600, 1_000, 1_600][rng.gen_range(0..3usize)],
            faults: Vec::new(),
        };
        let n_faults = rng.gen_range(0..=2usize);
        let clients = spec.num_clients();
        let clusters = spec.num_bottom_clusters();
        for _ in 0..n_faults {
            let at = rng.gen_range(0..spec.rounds);
            let ev = match rng.gen_range(0..5usize) {
                0 => FaultEvent::CrashStop {
                    at,
                    node: rng.gen_range(0..clients),
                },
                1 => FaultEvent::CrashRecover {
                    at,
                    node: rng.gen_range(0..clients),
                    recover: (at + 1).min(spec.rounds),
                },
                2 => FaultEvent::KillLeader {
                    at,
                    cluster: rng.gen_range(0..clusters),
                },
                3 => FaultEvent::Straggler {
                    at,
                    node: rng.gen_range(0..clients),
                    factor: 4.0,
                },
                _ => FaultEvent::LossBurst {
                    at,
                    prob: 0.2,
                    until: (at + 2).min(spec.rounds),
                },
            };
            spec.faults.push(ev);
        }
        // Cross-device sampling rides at the end of the stream so every
        // earlier field keeps its historical draw position. Dirichlet
        // draws skip it: the partition's usability check needs every
        // population member non-empty, which a fuzz-sized task cannot
        // give a population several times its cohort.
        if rng.gen_bool(0.2) && spec.dirichlet_alpha.is_none() {
            spec.sampling_population = spec.num_clients() * [2usize, 4][rng.gen_range(0..2usize)];
            spec.sampling_stratified = rng.gen_bool(0.5);
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_lower_to_valid_configs() {
        let mut gen = ScenarioGen::new(7);
        for i in 0..50 {
            let spec = gen.draw();
            let cfg = spec.to_config();
            let h = cfg.topology.build(cfg.seed);
            cfg.try_validate(&h)
                .unwrap_or_else(|e| panic!("draw {i} invalid: {e} ({spec:?})"));
            assert_eq!(h.num_clients(), spec.num_clients());
            assert_eq!(
                h.level(h.bottom_level()).num_clusters(),
                spec.num_bottom_clusters()
            );
        }
    }

    #[test]
    fn the_stream_mixes_sync_and_async_draws() {
        let mut gen = ScenarioGen::new(9);
        let specs: Vec<_> = (0..60).map(|_| gen.draw()).collect();
        assert!(specs.iter().any(|s| s.deadline_us.is_some()));
        assert!(specs.iter().any(|s| s.deadline_us.is_none()));
        for s in &specs {
            if s.protocol == ProtocolSpec::StalenessExploit {
                assert!(
                    s.deadline_us.is_some() && s.staleness_bound_us > 0,
                    "the staleness exploit needs an async buffer: {s:?}"
                );
            }
            if s.deadline_us.is_none() {
                assert_eq!(s.staleness_bound_us, 0, "sync draws carry no τ: {s:?}");
            }
        }
    }

    #[test]
    fn same_seed_generators_draw_identical_streams() {
        let mut a = ScenarioGen::new(11);
        let mut b = ScenarioGen::new(11);
        for _ in 0..20 {
            assert_eq!(a.draw(), b.draw());
        }
    }

    #[test]
    fn tolerance_respects_the_krum_guarantee() {
        assert_eq!(AggSpec::Krum { f: 1 }.tolerance(5), 1);
        assert_eq!(AggSpec::Krum { f: 1 }.tolerance(4), 0);
        assert_eq!(AggSpec::Median.tolerance(4), 1);
        assert_eq!(AggSpec::FedAvg.tolerance(8), 0);
        assert_eq!(AggSpec::TrimmedMean { ratio: 0.2 }.tolerance(4), 0);
        assert_eq!(AggSpec::CenteredClip { tau: 2.0, iters: 3 }.tolerance(4), 1);
    }

    #[test]
    fn composed_tolerance_follows_the_preagg_contract() {
        let base = AggSpec::Median;
        assert_eq!(PreAggSpec::None.composed_tolerance(&base, 9), 4);
        // NNM keeps the cohort size, bucketing shrinks it to ⌈n/s⌉.
        assert_eq!(PreAggSpec::Nnm { k: 3 }.composed_tolerance(&base, 9), 4);
        assert_eq!(
            PreAggSpec::Bucketing { s: 2 }.composed_tolerance(&base, 9),
            2
        );
        assert_eq!(
            PreAggSpec::Bucketing { s: 2 }.composed_tolerance(&AggSpec::Krum { f: 1 }, 8),
            0,
            "4 buckets cannot carry the Krum n ≥ 2f + 3 guarantee"
        );
    }

    #[test]
    fn sampled_draws_lower_to_sampling_configs() {
        use abd_hfl_core::config::SamplingScheme;
        let mut gen = ScenarioGen::new(17);
        let specs: Vec<_> = (0..150).map(|_| gen.draw()).collect();
        let sampled: Vec<_> = specs
            .iter()
            .filter(|s| s.sampling_population > 0)
            .collect();
        assert!(!sampled.is_empty(), "the stream must draw sampled runs");
        assert!(specs.iter().any(|s| s.sampling_population == 0));
        assert!(sampled.iter().any(|s| s.sampling_stratified));
        assert!(sampled.iter().any(|s| !s.sampling_stratified));
        for s in &sampled {
            assert!(
                s.dirichlet_alpha.is_none(),
                "sampling never rides a Dirichlet draw: {s:?}"
            );
            let cfg = s.to_config();
            let sampling = cfg.sampling.expect("sampled spec must set cfg.sampling");
            assert_eq!(sampling.population, s.sampling_population);
            assert_eq!(sampling.cohort_size, s.num_clients());
            assert_eq!(
                sampling.scheme == SamplingScheme::Stratified,
                s.sampling_stratified
            );
        }
    }

    #[test]
    fn the_stream_draws_every_gallery_family() {
        let mut gen = ScenarioGen::new(13);
        let specs: Vec<_> = (0..400).map(|_| gen.draw()).collect();
        let attack = |p: fn(&AttackSpec) -> bool| specs.iter().any(|s| p(&s.attack));
        assert!(attack(|a| matches!(a, AttackSpec::Mimic { .. })));
        assert!(attack(|a| matches!(a, AttackSpec::Scaling { .. })));
        assert!(attack(|a| *a == AttackSpec::MinMax));
        assert!(attack(|a| *a == AttackSpec::MinSum));
        assert!(attack(|a| *a == AttackSpec::AdaptiveScaling));
        assert!(specs
            .iter()
            .any(|s| matches!(s.agg, AggSpec::CenteredClip { .. })));
        assert!(specs
            .iter()
            .any(|s| matches!(s.pre_agg, PreAggSpec::Bucketing { .. })));
        assert!(specs
            .iter()
            .any(|s| matches!(s.pre_agg, PreAggSpec::Nnm { .. })));
        assert!(specs.iter().any(|s| s.dirichlet_alpha.is_some()));
        assert!(specs.iter().any(|s| s.heterogeneity));
        for s in &specs {
            assert!(
                !(s.noniid && s.dirichlet_alpha.is_some()),
                "the 2-label extreme and Dirichlet are mutually exclusive: {s:?}"
            );
        }
    }
}
