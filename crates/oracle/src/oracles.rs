//! The seven invariant oracles.
//!
//! Each oracle inspects [`Observations`] — manifests, structured
//! events, registry metrics, hierarchy shape — and reports every
//! violation it finds. An empty report from [`check_all`] is the
//! fuzzer's definition of "this scenario behaved".
//!
//! | # | Oracle | Claim checked |
//! |---|---|---|
//! | 1 | `quorum_safety` | no aggregation closes below `⌈φ·present⌉` (Theorem 1 / Algorithm 4) |
//! | 2 | `accounting_conservation` | every recorded message/byte total is internally consistent and, on clean runs, equals the closed form of Algorithms 3–5 |
//! | 3 | `determinism` | same seed ⇒ byte-identical manifests |
//! | 4 | `byzantine_bound` | an in-tolerance static attack degrades accuracy by at most ε (Theorems 2–3) |
//! | 5 | `honest_quarantine` | runs with no attack never quarantine anyone |
//! | 6 | `liveness` | deadline-driven runs complete every round; no buffer closes past `max(deadline, slowest scaled link delay)` |
//! | 7 | `staleness_safety` | admitted lateness `∈ (0, τ]` at a discounted weight, dropped lateness `> τ`; sync runs emit no buffer events |

use hfl_consensus::quorum_size;
use hfl_telemetry::{Event, MetricValue};

use crate::harness::{Observations, BYZANTINE_EPSILON};
use crate::scenario::{FaultEvent, ASYNC_LINK_HI};

/// One oracle violation: which invariant broke and how.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Stable oracle name (`quorum_safety`, ...).
    pub oracle: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Runs every oracle; the returned list is empty iff the scenario
/// upheld all seven invariants.
pub fn check_all(obs: &Observations) -> Vec<Violation> {
    let mut out = Vec::new();
    quorum_safety(obs, &mut out);
    accounting_conservation(obs, &mut out);
    determinism(obs, &mut out);
    byzantine_bound(obs, &mut out);
    honest_quarantine(obs, &mut out);
    liveness(obs, &mut out);
    staleness_safety(obs, &mut out);
    out
}

fn violation(out: &mut Vec<Violation>, oracle: &'static str, detail: String) {
    out.push(Violation { oracle, detail });
}

/// Oracle 1 — no aggregation may close with fewer inputs than the
/// quorum it reported, unless the fault layer explicitly sanctioned a
/// degraded close (`DegradedQuorum`) for that same site. On clean
/// scenarios the reported quorum itself must equal
/// `quorum_size(φ, |cluster|)` recomputed from the config.
fn quorum_safety(obs: &Observations, out: &mut Vec<Violation>) {
    let degraded: Vec<(usize, usize, usize)> = obs
        .events
        .iter()
        .filter_map(|e| match e {
            Event::DegradedQuorum {
                round,
                level,
                cluster,
                ..
            } => Some((*round, *level, *cluster)),
            _ => None,
        })
        .collect();
    let strict = obs.is_clean();
    for ev in &obs.events {
        let Event::ClusterAggregated {
            round,
            level,
            cluster,
            inputs,
            quorum,
        } = ev
        else {
            continue;
        };
        if inputs < quorum && !degraded.contains(&(*round, *level, *cluster)) {
            violation(
                out,
                "quorum_safety",
                format!(
                    "round {round} level {level} cluster {cluster}: closed with \
                     {inputs} inputs below quorum {quorum} with no DegradedQuorum record"
                ),
            );
        }
        if strict && *level > 0 {
            let size = obs.cluster_sizes[*level][*cluster];
            let want = quorum_size(obs.spec.phi, size);
            if *quorum != want {
                violation(
                    out,
                    "quorum_safety",
                    format!(
                        "round {round} level {level} cluster {cluster}: quorum {quorum} \
                         but ⌈φ·{size}⌉ = {want} on a clean run"
                    ),
                );
            }
            if *inputs != want {
                violation(
                    out,
                    "quorum_safety",
                    format!(
                        "round {round} level {level} cluster {cluster}: aggregated \
                         {inputs} inputs, expected exactly the quorum {want} on a clean run"
                    ),
                );
            }
        }
    }
}

/// Oracle 2 — the cost ledger must be conserved across every view that
/// reports it: manifest totals vs the per-round time series, the
/// metrics registry, the `RoundFinished` event stream, and (clean
/// all-BRA runs) the closed form of Algorithms 3–5.
fn accounting_conservation(obs: &Observations, out: &mut Vec<Violation>) {
    let m = &obs.manifest;
    let sums = m.rounds.iter().fold((0u64, 0u64, 0u64, 0u64), |a, r| {
        (
            a.0 + r.messages,
            a.1 + r.bytes,
            a.2 + r.excluded,
            a.3 + r.absent,
        )
    });
    let totals = [
        ("messages", sums.0, m.totals.messages),
        ("bytes", sums.1, m.totals.bytes),
        ("excluded", sums.2, m.totals.excluded),
        ("absent", sums.3, m.totals.absent),
    ];
    for (what, per_round, total) in totals {
        if per_round != total {
            violation(
                out,
                "accounting_conservation",
                format!("per-round {what} sum to {per_round} but totals say {total}"),
            );
        }
    }

    let counter = |name: &str| -> Option<u64> {
        m.metrics
            .iter()
            .find_map(|s| match (&s.value, s.name.as_str()) {
                (MetricValue::Counter(v), n) if n == name => Some(*v),
                _ => None,
            })
    };
    for (name, want) in [
        ("hfl_messages_total", m.totals.messages),
        ("hfl_bytes_total", m.totals.bytes),
    ] {
        match counter(name) {
            Some(got) if got != want => violation(
                out,
                "accounting_conservation",
                format!("registry {name} = {got} but manifest totals say {want}"),
            ),
            None => violation(
                out,
                "accounting_conservation",
                format!("registry counter {name} missing from the manifest"),
            ),
            _ => {}
        }
    }

    let (ev_messages, ev_bytes) = obs
        .events
        .iter()
        .filter_map(|e| match e {
            Event::RoundFinished {
                messages, bytes, ..
            } => Some((*messages, *bytes)),
            _ => None,
        })
        .fold((0u64, 0u64), |a, (ms, bs)| (a.0 + ms, a.1 + bs));
    if ev_messages != m.totals.messages || ev_bytes != m.totals.bytes {
        violation(
            out,
            "accounting_conservation",
            format!(
                "RoundFinished events sum to {ev_messages} msgs / {ev_bytes} bytes, \
                 manifest totals say {} / {}",
                m.totals.messages, m.totals.bytes
            ),
        );
    }

    if let Some(per_round) = obs.expected_round_messages {
        let want = per_round * obs.spec.rounds as u64;
        if m.totals.messages != want {
            violation(
                out,
                "accounting_conservation",
                format!(
                    "clean run recorded {} messages, closed form says \
                     {per_round} × {} rounds = {want}",
                    m.totals.messages, obs.spec.rounds
                ),
            );
        }
        let want_bytes = m.totals.messages * obs.model_bytes;
        if m.totals.bytes != want_bytes {
            violation(
                out,
                "accounting_conservation",
                format!(
                    "clean run recorded {} bytes, {} messages × {} model bytes = {want_bytes}",
                    m.totals.bytes, m.totals.messages, obs.model_bytes
                ),
            );
        }
    }
}

/// Oracle 3 — two fully independent same-seed reproductions must render
/// byte-identical manifests.
fn determinism(obs: &Observations, out: &mut Vec<Violation>) {
    if obs.manifest_json != obs.rerun_manifest_json {
        let at = obs
            .manifest_json
            .bytes()
            .zip(obs.rerun_manifest_json.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| obs.manifest_json.len().min(obs.rerun_manifest_json.len()));
        violation(
            out,
            "determinism",
            format!(
                "same-seed manifests diverge at byte {at}: ...{} vs ...{}",
                excerpt(&obs.manifest_json, at),
                excerpt(&obs.rerun_manifest_json, at)
            ),
        );
    }
}

fn excerpt(s: &str, at: usize) -> &str {
    let start = at.saturating_sub(12);
    let end = (at + 24).min(s.len());
    // Manifest JSON is ASCII, so byte slicing is char-safe.
    s.get(start..end).unwrap_or("<non-ascii>")
}

/// Oracle 4 — when every bottom cluster's malicious count is within the
/// aggregator's tolerance and the attack is static, final accuracy must
/// stay within [`BYZANTINE_EPSILON`] of the same-seed clean twin
/// (eligibility is decided in the harness, which then runs the twin).
fn byzantine_bound(obs: &Observations, out: &mut Vec<Violation>) {
    let Some(clean) = obs.clean_final_accuracy else {
        return;
    };
    let attacked = obs.result.final_accuracy;
    if (clean - attacked).abs() > BYZANTINE_EPSILON {
        violation(
            out,
            "byzantine_bound",
            format!(
                "in-tolerance {:?} (worst cluster {} of {} malicious, tolerance {}) moved \
                 accuracy {clean:.3} → {attacked:.3}, beyond ε = {BYZANTINE_EPSILON}",
                obs.spec.attack,
                obs.malicious_per_cluster.iter().max().unwrap_or(&0),
                obs.spec.m,
                obs.spec.tolerance(),
            ),
        );
    }
}

/// Oracle 6 — deadline-driven runs must stay live. A straggler plan
/// may force deadline closes, but it must never stall the hierarchy:
/// every scheduled round finishes, every buffer close is caused by
/// `"quorum"` or `"deadline"`, and no close lands later than
/// `max(deadline, slowest straggler factor × max link delay)` — the
/// liveness floor only ever extends an empty buffer to its *first*
/// synthesized arrival, itself bounded by the slowest scaled link.
fn liveness(obs: &Observations, out: &mut Vec<Violation>) {
    let Some(deadline) = obs.spec.deadline_us else {
        return;
    };
    if obs.manifest.rounds.len() != obs.spec.rounds {
        violation(
            out,
            "liveness",
            format!(
                "deadline-driven run finished {} of {} scheduled rounds",
                obs.manifest.rounds.len(),
                obs.spec.rounds
            ),
        );
    }
    let max_factor = obs
        .spec
        .faults
        .iter()
        .filter_map(|f| match f {
            FaultEvent::Straggler { factor, .. } => Some(*factor),
            _ => None,
        })
        .fold(1.0f64, f64::max)
        // Device heterogeneity stacks multiplicatively on straggler
        // windows, so the slowest possible arrival carries both.
        * obs.spec.heterogeneity_stretch();
    let bound = deadline.max((ASYNC_LINK_HI as f64 * max_factor).ceil() as u64);
    let mut closed_in_round = vec![false; obs.spec.rounds];
    for ev in &obs.events {
        let Event::BufferClosed {
            round,
            level,
            cluster,
            cause,
            close_us,
            occupancy,
            expected,
        } = ev
        else {
            continue;
        };
        if let Some(flag) = closed_in_round.get_mut(*round) {
            *flag = true;
        }
        if cause != "quorum" && cause != "deadline" {
            violation(
                out,
                "liveness",
                format!(
                    "round {round} level {level} cluster {cluster}: unknown close cause `{cause}`"
                ),
            );
        }
        if *close_us > bound {
            violation(
                out,
                "liveness",
                format!(
                    "round {round} level {level} cluster {cluster}: buffer closed at \
                     {close_us} µs, past the liveness bound {bound} µs \
                     (deadline {deadline}, worst straggler ×{max_factor})"
                ),
            );
        }
        if occupancy > expected {
            violation(
                out,
                "liveness",
                format!(
                    "round {round} level {level} cluster {cluster}: buffer closed with \
                     {occupancy} on-time updates but only {expected} expected"
                ),
            );
        }
    }
    for (round, closed) in closed_in_round.iter().enumerate() {
        if !closed {
            violation(
                out,
                "liveness",
                format!("round {round} ran with a deadline but closed no buffer"),
            );
        }
    }
}

/// Oracle 7 — the staleness bound is exact. Every admitted late update
/// has lateness in `(0, τ]` and a discounted (sub-unit, positive)
/// weight; every dropped update has lateness strictly beyond τ; and a
/// synchronous scenario (no deadline) emits no buffer events at all.
fn staleness_safety(obs: &Observations, out: &mut Vec<Violation>) {
    let tau = obs.spec.staleness_bound_us;
    let async_on = obs.spec.deadline_us.is_some();
    for ev in &obs.events {
        match ev {
            Event::BufferClosed {
                round,
                level,
                cluster,
                ..
            }
            | Event::StaleUpdateAdmitted {
                round,
                level,
                cluster,
                ..
            }
            | Event::StaleUpdateDropped {
                round,
                level,
                cluster,
                ..
            } if !async_on => {
                violation(
                    out,
                    "staleness_safety",
                    format!(
                        "synchronous run emitted an async buffer event at \
                         round {round} level {level} cluster {cluster}"
                    ),
                );
            }
            Event::StaleUpdateAdmitted {
                round,
                device,
                lateness_us,
                weight,
                ..
            } => {
                if *lateness_us == 0 || *lateness_us > tau {
                    violation(
                        out,
                        "staleness_safety",
                        format!(
                            "round {round}: device {device} admitted with lateness \
                             {lateness_us} µs outside (0, τ = {tau}]"
                        ),
                    );
                }
                if !(*weight > 0.0 && *weight < 1.0) {
                    violation(
                        out,
                        "staleness_safety",
                        format!(
                            "round {round}: late device {device} admitted at weight \
                             {weight}, want a discounted weight in (0, 1)"
                        ),
                    );
                }
            }
            Event::StaleUpdateDropped {
                round,
                device,
                lateness_us,
                ..
            } if *lateness_us <= tau => {
                violation(
                    out,
                    "staleness_safety",
                    format!(
                        "round {round}: device {device} dropped at lateness \
                         {lateness_us} µs though τ = {tau} still admits it"
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Oracle 5 — with no attack configured every client is honest, so
/// nothing may ever be quarantined: not in the run totals, not in the
/// suspicion event log, not in the registry.
fn honest_quarantine(obs: &Observations, out: &mut Vec<Violation>) {
    use crate::scenario::{AttackSpec, ProtocolSpec};
    if obs.spec.attack != AttackSpec::None || obs.spec.protocol != ProtocolSpec::None {
        return;
    }
    if obs.result.quarantined_total > 0 {
        violation(
            out,
            "honest_quarantine",
            format!(
                "attack-free run lost {} client-rounds to quarantine",
                obs.result.quarantined_total
            ),
        );
    }
    if let Some(susp) = &obs.manifest.suspicion {
        let quarantined: Vec<usize> = susp
            .events
            .iter()
            .filter(|e| e.kind == "quarantined")
            .map(|e| e.client)
            .collect();
        if !quarantined.is_empty() {
            violation(
                out,
                "honest_quarantine",
                format!("attack-free run quarantined honest clients {quarantined:?}"),
            );
        }
        for score in &susp.final_scores {
            if score.quarantined {
                violation(
                    out,
                    "honest_quarantine",
                    format!(
                        "attack-free run left honest client {} flagged quarantined",
                        score.client
                    ),
                );
            }
        }
    }
}
