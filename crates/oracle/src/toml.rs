//! TOML round-tripping for [`ScenarioSpec`] corpus cases.
//!
//! The workspace deliberately carries no serialization dependencies
//! (the telemetry manifest hand-rolls its JSON the same way), so this
//! module implements the small TOML subset the corpus needs: scalar
//! `key = value` lines at the root plus `[[fault]]` array-of-table
//! sections. Rust's `f64` `Display` is shortest-round-trip, so floats
//! survive write → parse exactly.

use crate::scenario::{AggSpec, AttackSpec, FaultEvent, PreAggSpec, ProtocolSpec, ScenarioSpec};

/// Corpus file schema version.
pub const SCHEMA: u64 = 1;

/// Renders a spec as a corpus TOML case.
pub fn to_toml(spec: &ScenarioSpec) -> String {
    let mut out = String::new();
    let mut line = |k: &str, v: String| {
        out.push_str(k);
        out.push_str(" = ");
        out.push_str(&v);
        out.push('\n');
    };
    line("schema", SCHEMA.to_string());
    line("seed", spec.seed.to_string());
    line("total_levels", spec.total_levels.to_string());
    line("m", spec.m.to_string());
    line("n_top", spec.n_top.to_string());
    line("rounds", spec.rounds.to_string());
    line("local_iters", spec.local_iters.to_string());
    line("phi", spec.phi.to_string());
    match &spec.agg {
        AggSpec::FedAvg => line("agg", "\"fedavg\"".into()),
        AggSpec::Krum { f } => {
            line("agg", "\"krum\"".into());
            line("agg_f", f.to_string());
        }
        AggSpec::MultiKrum { f, m } => {
            line("agg", "\"multikrum\"".into());
            line("agg_f", f.to_string());
            line("agg_m", m.to_string());
        }
        AggSpec::Median => line("agg", "\"median\"".into()),
        AggSpec::TrimmedMean { ratio } => {
            line("agg", "\"trimmed_mean\"".into());
            line("agg_ratio", ratio.to_string());
        }
        AggSpec::GeoMed => line("agg", "\"geomed\"".into()),
        AggSpec::CenteredClip { tau, iters } => {
            line("agg", "\"centered_clip\"".into());
            line("agg_tau", tau.to_string());
            line("agg_iters", iters.to_string());
        }
    }
    // Pre-aggregation keys are only written when a transform is
    // composed, so pre-gallery corpus files keep their exact shape.
    match &spec.pre_agg {
        PreAggSpec::None => {}
        PreAggSpec::Bucketing { s } => {
            line("pre_agg", "\"bucketing\"".into());
            line("pre_agg_s", s.to_string());
        }
        PreAggSpec::Nnm { k } => {
            line("pre_agg", "\"nnm\"".into());
            line("pre_agg_k", k.to_string());
        }
    }
    match &spec.attack {
        AttackSpec::None => line("attack", "\"none\"".into()),
        AttackSpec::SignFlip { scale } => {
            line("attack", "\"signflip\"".into());
            line("attack_param", scale.to_string());
        }
        AttackSpec::Alie { z } => {
            line("attack", "\"alie\"".into());
            line("attack_param", z.to_string());
        }
        AttackSpec::Ipm { epsilon } => {
            line("attack", "\"ipm\"".into());
            line("attack_param", epsilon.to_string());
        }
        AttackSpec::LabelFlip => line("attack", "\"labelflip\"".into()),
        AttackSpec::Mimic { victim } => {
            line("attack", "\"mimic\"".into());
            line("attack_victim", victim.to_string());
        }
        AttackSpec::Scaling { factor } => {
            line("attack", "\"scaling\"".into());
            line("attack_param", factor.to_string());
        }
        AttackSpec::MinMax => line("attack", "\"minmax\"".into()),
        AttackSpec::MinSum => line("attack", "\"minsum\"".into()),
        AttackSpec::AdaptiveAlie => line("attack", "\"adaptive_alie\"".into()),
        AttackSpec::AdaptiveIpm => line("attack", "\"adaptive_ipm\"".into()),
        AttackSpec::AdaptiveScaling => line("attack", "\"adaptive_scaling\"".into()),
    }
    line("proportion", spec.proportion.to_string());
    line("random_placement", spec.random_placement.to_string());
    line("churn", spec.churn.to_string());
    line("suspicion", spec.suspicion.to_string());
    let protocol = match spec.protocol {
        ProtocolSpec::None => "none",
        ProtocolSpec::Equivocate => "equivocate",
        ProtocolSpec::Withhold => "withhold",
        ProtocolSpec::StalenessExploit => "staleness_exploit",
    };
    line("protocol", format!("\"{protocol}\""));
    // Async keys are only written when set, so pre-async corpus files
    // and synchronous cases keep their exact historical shape.
    if let Some(deadline) = spec.deadline_us {
        line("deadline_us", deadline.to_string());
    }
    if spec.staleness_bound_us != 0 {
        line("staleness_bound_us", spec.staleness_bound_us.to_string());
    }
    line("noniid", spec.noniid.to_string());
    // Heterogeneity keys are likewise conditional on a non-default.
    if let Some(alpha) = spec.dirichlet_alpha {
        line("dirichlet_alpha", alpha.to_string());
    }
    if spec.heterogeneity {
        line("heterogeneity", "true".into());
    }
    // Sampling keys ride only on cross-device draws, keeping
    // pre-sampling corpus files byte-stable.
    if spec.sampling_population > 0 {
        line("sampling_population", spec.sampling_population.to_string());
        line("sampling_stratified", spec.sampling_stratified.to_string());
    }
    line("train_samples", spec.train_samples.to_string());
    for fault in &spec.faults {
        out.push_str("\n[[fault]]\n");
        let mut fline = |k: &str, v: String| {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&v);
            out.push('\n');
        };
        match *fault {
            FaultEvent::CrashStop { at, node } => {
                fline("kind", "\"crash_stop\"".into());
                fline("at", at.to_string());
                fline("node", node.to_string());
            }
            FaultEvent::CrashRecover { at, node, recover } => {
                fline("kind", "\"crash_recover\"".into());
                fline("at", at.to_string());
                fline("node", node.to_string());
                fline("recover", recover.to_string());
            }
            FaultEvent::KillLeader { at, cluster } => {
                fline("kind", "\"kill_leader\"".into());
                fline("at", at.to_string());
                fline("cluster", cluster.to_string());
            }
            FaultEvent::Straggler { at, node, factor } => {
                fline("kind", "\"straggler\"".into());
                fline("at", at.to_string());
                fline("node", node.to_string());
                fline("factor", factor.to_string());
            }
            FaultEvent::LossBurst { at, prob, until } => {
                fline("kind", "\"loss_burst\"".into());
                fline("at", at.to_string());
                fline("prob", prob.to_string());
                fline("until", until.to_string());
            }
        }
    }
    out
}

/// One parsed `key = value` map (the root table or one fault table).
#[derive(Default)]
struct Table {
    entries: Vec<(String, String)>,
}

impl Table {
    fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn req(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing key `{key}`"))
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        self.req(key)?
            .parse()
            .map_err(|e| format!("bad usize `{key}`: {e}"))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        self.req(key)?
            .parse()
            .map_err(|e| format!("bad u64 `{key}`: {e}"))
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        self.req(key)?
            .parse()
            .map_err(|e| format!("bad f64 `{key}`: {e}"))
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        self.req(key)?
            .parse()
            .map_err(|e| format!("bad bool `{key}`: {e}"))
    }

    fn string(&self, key: &str) -> Result<String, String> {
        let raw = self.req(key)?;
        let s = raw
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("`{key}` must be a quoted string, got `{raw}`"))?;
        Ok(s.to_string())
    }
}

/// Parses a corpus TOML case back into a spec.
pub fn from_toml(text: &str) -> Result<ScenarioSpec, String> {
    let mut root = Table::default();
    let mut faults: Vec<Table> = Vec::new();
    let mut in_fault = false;
    for (ln, raw) in text.lines().enumerate() {
        let trimmed = raw.split('#').next().unwrap_or("").trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "[[fault]]" {
            faults.push(Table::default());
            in_fault = true;
            continue;
        }
        if trimmed.starts_with('[') {
            return Err(format!("line {}: unknown section `{trimmed}`", ln + 1));
        }
        let (key, value) = trimmed
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`", ln + 1))?;
        let entry = (key.trim().to_string(), value.trim().to_string());
        if in_fault {
            faults
                .last_mut()
                .expect("fault table open")
                .entries
                .push(entry);
        } else {
            root.entries.push(entry);
        }
    }

    let schema = root.u64("schema")?;
    if schema != SCHEMA {
        return Err(format!(
            "unsupported corpus schema {schema} (want {SCHEMA})"
        ));
    }
    let agg = match root.string("agg")?.as_str() {
        "fedavg" => AggSpec::FedAvg,
        "krum" => AggSpec::Krum {
            f: root.usize("agg_f")?,
        },
        "multikrum" => AggSpec::MultiKrum {
            f: root.usize("agg_f")?,
            m: root.usize("agg_m")?,
        },
        "median" => AggSpec::Median,
        "trimmed_mean" => AggSpec::TrimmedMean {
            ratio: root.f64("agg_ratio")?,
        },
        "geomed" => AggSpec::GeoMed,
        "centered_clip" => AggSpec::CenteredClip {
            tau: root.f64("agg_tau")?,
            iters: root.usize("agg_iters")?,
        },
        other => return Err(format!("unknown agg `{other}`")),
    };
    let pre_agg = match root.get("pre_agg") {
        None => PreAggSpec::None,
        Some(_) => match root.string("pre_agg")?.as_str() {
            "bucketing" => PreAggSpec::Bucketing {
                s: root.usize("pre_agg_s")?,
            },
            "nnm" => PreAggSpec::Nnm {
                k: root.usize("pre_agg_k")?,
            },
            other => return Err(format!("unknown pre_agg `{other}`")),
        },
    };
    let attack = match root.string("attack")?.as_str() {
        "none" => AttackSpec::None,
        "signflip" => AttackSpec::SignFlip {
            scale: root.f64("attack_param")?,
        },
        "alie" => AttackSpec::Alie {
            z: root.f64("attack_param")?,
        },
        "ipm" => AttackSpec::Ipm {
            epsilon: root.f64("attack_param")?,
        },
        "labelflip" => AttackSpec::LabelFlip,
        "mimic" => AttackSpec::Mimic {
            victim: root.usize("attack_victim")?,
        },
        "scaling" => AttackSpec::Scaling {
            factor: root.f64("attack_param")?,
        },
        "minmax" => AttackSpec::MinMax,
        "minsum" => AttackSpec::MinSum,
        "adaptive_alie" => AttackSpec::AdaptiveAlie,
        "adaptive_ipm" => AttackSpec::AdaptiveIpm,
        "adaptive_scaling" => AttackSpec::AdaptiveScaling,
        other => return Err(format!("unknown attack `{other}`")),
    };
    let protocol = match root.string("protocol")?.as_str() {
        "none" => ProtocolSpec::None,
        "equivocate" => ProtocolSpec::Equivocate,
        "withhold" => ProtocolSpec::Withhold,
        "staleness_exploit" => ProtocolSpec::StalenessExploit,
        other => return Err(format!("unknown protocol `{other}`")),
    };
    let deadline_us = match root.get("deadline_us") {
        Some(_) => Some(root.u64("deadline_us")?),
        None => None,
    };
    let staleness_bound_us = match root.get("staleness_bound_us") {
        Some(_) => root.u64("staleness_bound_us")?,
        None => 0,
    };
    let mut fault_events = Vec::new();
    for table in &faults {
        let ev = match table.string("kind")?.as_str() {
            "crash_stop" => FaultEvent::CrashStop {
                at: table.usize("at")?,
                node: table.usize("node")?,
            },
            "crash_recover" => FaultEvent::CrashRecover {
                at: table.usize("at")?,
                node: table.usize("node")?,
                recover: table.usize("recover")?,
            },
            "kill_leader" => FaultEvent::KillLeader {
                at: table.usize("at")?,
                cluster: table.usize("cluster")?,
            },
            "straggler" => FaultEvent::Straggler {
                at: table.usize("at")?,
                node: table.usize("node")?,
                factor: table.f64("factor")?,
            },
            "loss_burst" => FaultEvent::LossBurst {
                at: table.usize("at")?,
                prob: table.f64("prob")?,
                until: table.usize("until")?,
            },
            other => return Err(format!("unknown fault kind `{other}`")),
        };
        fault_events.push(ev);
    }
    let dirichlet_alpha = match root.get("dirichlet_alpha") {
        Some(_) => Some(root.f64("dirichlet_alpha")?),
        None => None,
    };
    let heterogeneity = match root.get("heterogeneity") {
        Some(_) => root.bool("heterogeneity")?,
        None => false,
    };
    let sampling_population = match root.get("sampling_population") {
        Some(_) => root.usize("sampling_population")?,
        None => 0,
    };
    let sampling_stratified = match root.get("sampling_stratified") {
        Some(_) => root.bool("sampling_stratified")?,
        None => false,
    };
    Ok(ScenarioSpec {
        seed: root.u64("seed")?,
        total_levels: root.usize("total_levels")?,
        m: root.usize("m")?,
        n_top: root.usize("n_top")?,
        rounds: root.usize("rounds")?,
        local_iters: root.usize("local_iters")?,
        phi: root.f64("phi")?,
        agg,
        pre_agg,
        attack,
        proportion: root.f64("proportion")?,
        random_placement: root.bool("random_placement")?,
        churn: root.f64("churn")?,
        suspicion: root.bool("suspicion")?,
        protocol,
        deadline_us,
        staleness_bound_us,
        noniid: root.bool("noniid")?,
        dirichlet_alpha,
        heterogeneity,
        sampling_population,
        sampling_stratified,
        train_samples: root.usize("train_samples")?,
        faults: fault_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioGen;

    #[test]
    fn every_generated_spec_round_trips() {
        let mut gen = ScenarioGen::new(3);
        for _ in 0..100 {
            let spec = gen.draw();
            let text = to_toml(&spec);
            let back = from_toml(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(spec, back, "round-trip changed the spec:\n{text}");
        }
    }

    #[test]
    fn pre_async_cases_parse_with_synchronous_defaults() {
        let mut gen = ScenarioGen::new(8);
        let mut spec = gen.draw();
        spec.deadline_us = None;
        spec.staleness_bound_us = 0;
        if spec.protocol == ProtocolSpec::StalenessExploit {
            spec.protocol = ProtocolSpec::None;
        }
        let text = to_toml(&spec);
        assert!(
            !text.contains("deadline_us"),
            "sync cases must not grow async keys:\n{text}"
        );
        let back = from_toml(&text).unwrap();
        assert_eq!(back.deadline_us, None);
        assert_eq!(back.staleness_bound_us, 0);
    }

    #[test]
    fn pre_gallery_cases_parse_with_default_gallery_fields() {
        let mut gen = ScenarioGen::new(8);
        let mut spec = gen.draw();
        spec.pre_agg = PreAggSpec::None;
        spec.dirichlet_alpha = None;
        spec.heterogeneity = false;
        spec.sampling_population = 0;
        spec.sampling_stratified = false;
        let text = to_toml(&spec);
        for key in ["pre_agg", "dirichlet_alpha", "heterogeneity", "sampling"] {
            assert!(
                !text.contains(key),
                "default-shape cases must not grow `{key}`:\n{text}"
            );
        }
        let back = from_toml(&text).unwrap();
        assert_eq!(back.pre_agg, PreAggSpec::None);
        assert_eq!(back.dirichlet_alpha, None);
        assert!(!back.heterogeneity);
        assert_eq!(back.sampling_population, 0);
        assert!(!back.sampling_stratified);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut gen = ScenarioGen::new(4);
        let spec = gen.draw();
        let text = format!("# corpus case\n\n{}\n# trailing\n", to_toml(&spec));
        assert_eq!(from_toml(&text).unwrap(), spec);
    }

    #[test]
    fn parse_errors_name_the_offending_key() {
        let mut gen = ScenarioGen::new(7);
        let good = to_toml(&gen.draw());
        let bad = good.replace("seed = ", "seed = x");
        let err = from_toml(&bad).unwrap_err();
        assert!(err.contains("seed"), "{err}");
        let err = from_toml("schema = 9\n").unwrap_err();
        assert!(err.contains("schema 9"), "{err}");
    }
}
