//! Greedy scenario minimization.
//!
//! Given a failing spec and a predicate ("does this still fail?"), the
//! shrinker repeatedly tries a fixed list of simplifying edits — halve
//! the rounds, drop a fault, disable a layer, flatten the hierarchy —
//! and keeps the first edit that preserves the failure, restarting from
//! the simplified spec. The result is the spec a human debugs and the
//! TOML case the corpus replays.
//!
//! Every edit strictly simplifies (fewer rounds, fewer faults, fewer
//! active layers, a smaller topology), so the loop terminates; the
//! predicate typically re-runs the full harness, so shrinking a failure
//! costs a handful of (tiny) extra runs.

use crate::scenario::{AggSpec, AttackSpec, PreAggSpec, ProtocolSpec, ScenarioSpec};

/// Minimizes `spec` under `still_fails`. The input spec itself is
/// assumed to fail (the caller just observed it fail); the returned
/// spec is guaranteed to still satisfy `still_fails`.
pub fn shrink<F>(spec: &ScenarioSpec, mut still_fails: F) -> ScenarioSpec
where
    F: FnMut(&ScenarioSpec) -> bool,
{
    let mut best = spec.clone();
    loop {
        let mut progressed = false;
        for cand in candidates(&best) {
            if still_fails(&cand) {
                best = cand;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return best;
        }
    }
}

/// The simplifying edits, most-impactful first. Each returned candidate
/// differs from `spec` in one aspect (topology edits also drop the
/// fault schedule, whose node/cluster indices they would invalidate).
fn candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    let mut push = |edit: &dyn Fn(&mut ScenarioSpec)| {
        let mut cand = spec.clone();
        edit(&mut cand);
        if cand != *spec {
            out.push(cand);
        }
    };
    push(&|s| s.rounds = (s.rounds / 2).max(2));
    push(&|s| s.train_samples = (s.train_samples / 2).max(400));
    for i in 0..spec.faults.len() {
        push(&|s| {
            s.faults.remove(i);
        });
    }
    push(&|s| s.suspicion = false);
    push(&|s| s.protocol = ProtocolSpec::None);
    push(&|s| {
        // Back to synchronous barriers. The staleness exploit is only
        // valid relative to an async close, so it must fall with it.
        s.deadline_us = None;
        s.staleness_bound_us = 0;
        if s.protocol == ProtocolSpec::StalenessExploit {
            s.protocol = ProtocolSpec::None;
        }
    });
    push(&|s| {
        s.attack = AttackSpec::None;
        s.proportion = 0.0;
    });
    push(&|s| s.churn = 0.0);
    push(&|s| s.noniid = false);
    push(&|s| s.dirichlet_alpha = None);
    push(&|s| s.heterogeneity = false);
    push(&|s| {
        // Back to the cohort-is-the-population default.
        s.sampling_population = 0;
        s.sampling_stratified = false;
    });
    push(&|s| s.pre_agg = PreAggSpec::None);
    push(&|s| s.local_iters = 1);
    push(&|s| s.random_placement = false);
    push(&|s| {
        if s.total_levels > 2 {
            s.total_levels = 2;
            s.faults.clear();
        }
    });
    push(&|s| {
        if s.n_top > 2 {
            s.n_top = 2;
            s.faults.clear();
        }
    });
    push(&|s| {
        if s.m > 3 {
            s.m = 3;
            s.faults.clear();
        }
    });
    push(&|s| s.agg = AggSpec::FedAvg);
    push(&|s| s.phi = 1.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioGen;

    /// Shrinking against a pure predicate (no engine run) reaches the
    /// minimal shape the predicate allows.
    #[test]
    fn shrinks_to_the_smallest_spec_the_predicate_allows() {
        let mut gen = ScenarioGen::new(5);
        let mut spec = gen.draw();
        spec.rounds = 5;
        spec.total_levels = 3;
        spec.m = 4;
        spec.deadline_us = Some(4_000);
        spec.staleness_bound_us = 1_000;
        spec.sampling_population = spec.num_clients() * 4;
        spec.sampling_stratified = true;
        // Failure depends only on φ < 1 (say): everything else must
        // shrink away.
        spec.phi = 0.5;
        let shrunk = shrink(&spec, |s| s.phi < 1.0);
        assert_eq!(shrunk.rounds, 2);
        assert_eq!(shrunk.train_samples, 400);
        assert_eq!(shrunk.total_levels, 2);
        assert_eq!(shrunk.m, 3);
        assert_eq!(shrunk.n_top, 2);
        assert!(shrunk.faults.is_empty());
        assert!(!shrunk.suspicion);
        assert_eq!(shrunk.deadline_us, None, "async must shrink away");
        assert_eq!(shrunk.staleness_bound_us, 0);
        assert_eq!(shrunk.attack, AttackSpec::None);
        assert_eq!(shrunk.agg, AggSpec::FedAvg);
        assert_eq!(shrunk.pre_agg, PreAggSpec::None);
        assert_eq!(shrunk.dirichlet_alpha, None);
        assert!(!shrunk.heterogeneity);
        assert_eq!(shrunk.sampling_population, 0, "sampling must shrink away");
        assert!(!shrunk.sampling_stratified);
        assert_eq!(shrunk.phi, 0.5, "the failing ingredient must survive");
    }

    /// The shrinker never returns a spec the predicate rejects.
    #[test]
    fn result_still_satisfies_the_predicate() {
        let mut gen = ScenarioGen::new(6);
        for _ in 0..10 {
            let spec = gen.draw();
            let shrunk = shrink(&spec, |s| s.rounds >= 2);
            assert!(shrunk.rounds >= 2);
        }
    }
}
