//! The fault layer: wraps a compiled [`FaultInjector`] and gives the
//! canonical round its crash/partition/straggler semantics — leader
//! failover via the slot/carrier model, degraded quorums over the
//! survivors, straggler-last arrival order, and delivery-reach
//! accounting for broadcasts.

use hfl_faults::FaultInjector;
use hfl_simnet::Hierarchy;
use hfl_snapshot::LayerState;
use hfl_telemetry::FaultRecord;

use super::layer::{ClusterCtx, CollectorChoice, RoundCtx, RoundLayer};
use crate::runner::Experiment;

/// Crash/partition/straggler semantics for the round engine.
pub struct FaultLayer<'e> {
    inj: &'e FaultInjector,
    hierarchy: &'e Hierarchy,
    /// `produced[slot]`: the slot's carried model is fresh this round.
    produced: Vec<bool>,
    /// `carrier[slot]`: physical device holding the slot's model
    /// (differs from the slot after a failover promoted a deputy).
    carrier: Vec<usize>,
}

impl<'e> FaultLayer<'e> {
    /// The fault layer for an experiment, when its config carries a
    /// compiled fault plan.
    pub fn for_experiment(exp: &'e Experiment) -> Option<Self> {
        exp.injector().map(|inj| Self {
            inj,
            hierarchy: &exp.hierarchy,
            produced: Vec::new(),
            carrier: Vec::new(),
        })
    }
}

impl RoundLayer for FaultLayer<'_> {
    fn name(&self) -> &'static str {
        "faults"
    }

    fn open_round(&mut self, ctx: &mut RoundCtx<'_>) {
        // Scheduled faults activating this round go into the log first;
        // whatever the aggregation observes (failover, degraded
        // quorums) is appended in order.
        for ev in self.inj.faults_at(ctx.round) {
            ctx.fault_log.push(FaultRecord {
                round: ctx.round,
                kind: ev.kind.clone(),
                detail: ev.detail.clone(),
            });
            ctx.telem.fault_injected(ctx.round, &ev.kind, &ev.detail);
        }
    }

    fn begin_aggregate(&mut self, round: usize) {
        let n = self.hierarchy.num_clients();
        self.produced.clear();
        self.produced
            .extend((0..n).map(|dev| !self.inj.crashed(dev, round)));
        self.carrier.clear();
        self.carrier.extend(0..n);
    }

    /// Failover: the collector is the first member whose physical
    /// carrier is alive (and, at the bottom, present under churn).
    fn select_collector(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        cl: &ClusterCtx<'_>,
    ) -> Option<CollectorChoice> {
        let round = ctx.round;
        let collector_slot = cl.members.iter().copied().find(|&m| {
            !self.inj.crashed(self.carrier[m], round) && (!cl.at_bottom() || cl.active[m])
        });
        let Some(collector_slot) = collector_slot else {
            self.produced[cl.leader] = false;
            ctx.fault_log.push(FaultRecord {
                round,
                kind: "degraded_quorum".into(),
                detail: format!(
                    "level {l} cluster {ci}: no member able to collect (0 of {expected})",
                    l = cl.level,
                    ci = cl.index,
                    expected = cl.expected
                ),
            });
            ctx.telem
                .degraded_quorum(round, cl.level, cl.index, 0, cl.expected);
            return Some(CollectorChoice::SkipCluster);
        };
        let collector = self.carrier[collector_slot];
        if collector_slot != cl.leader {
            ctx.fault_log.push(FaultRecord {
                round,
                kind: "leader_failover".into(),
                detail: format!(
                    "level {l} cluster {ci}: node {collector} promoted over node {leader}",
                    l = cl.level,
                    ci = cl.index,
                    leader = cl.leader
                ),
            });
            ctx.telem
                .leader_failover(round, cl.level, cl.index, cl.leader, collector);
        }
        Some(CollectorChoice::Collect { device: collector })
    }

    /// Members lost to crashes, partitions or loss bursts are simply
    /// missing; the engine's quorum then degrades to ⌈φ·alive⌉ over the
    /// survivors (Algorithm 4's timeout branch) instead of hanging.
    fn filter_members(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        cl: &ClusterCtx<'_>,
        present: &mut Vec<usize>,
    ) {
        let round = ctx.round;
        let mut removed_by_fault = 0usize;
        present.retain(|&mi| {
            let m = cl.members[mi];
            if cl.at_bottom() {
                if self.inj.crashed(m, round) {
                    removed_by_fault += 1;
                    return false;
                }
            } else if !self.produced[m] {
                removed_by_fault += 1;
                return false;
            }
            let phys = self.carrier[m];
            if phys != cl.collector
                && (self.inj.partitioned(phys, cl.collector, round)
                    || self.inj.drop_upload(round, cl.level, cl.index, m))
            {
                removed_by_fault += 1;
                return false;
            }
            true
        });
        if cl.at_bottom() {
            ctx.cost.faulted += removed_by_fault as u64;
        }
        if removed_by_fault > 0 {
            ctx.fault_log.push(FaultRecord {
                round,
                kind: "degraded_quorum".into(),
                detail: format!(
                    "level {l} cluster {ci}: {alive} of {expected} contributed",
                    l = cl.level,
                    ci = cl.index,
                    alive = present.len(),
                    expected = cl.expected
                ),
            });
            ctx.telem
                .degraded_quorum(round, cl.level, cl.index, present.len(), cl.expected);
        }
    }

    /// Under a deadline policy stragglers do not merely sort last —
    /// their synthesized link delay stretches by the active
    /// `StragglerWindow` factor, so a slow enough device genuinely
    /// misses the close (and eventually the staleness bound).
    fn arrival_delay_factor(&self, round: usize, slot: usize) -> Option<f64> {
        Some(self.inj.straggle_factor(self.carrier[slot], round))
    }

    /// Stragglers arrive last; the stable sort keeps the shuffled
    /// arrival order among equally-fast members.
    fn reorder_arrivals(&self, round: usize, cl: &ClusterCtx<'_>, order: &mut Vec<usize>) {
        order.sort_by(|&a, &b| {
            let fa = self.inj.straggle_factor(self.carrier[cl.members[a]], round);
            let fb = self.inj.straggle_factor(self.carrier[cl.members[b]], round);
            fa.total_cmp(&fb)
        });
    }

    /// Broadcasts only reach members whose device is up.
    fn broadcast_reach(&self, round: usize, cl: &ClusterCtx<'_>) -> Option<u64> {
        Some(
            cl.members
                .iter()
                .filter(|&&m| !self.inj.crashed(self.carrier[m], round))
                .count() as u64,
        )
    }

    fn after_cluster(&mut self, _ctx: &mut RoundCtx<'_>, cl: &ClusterCtx<'_>) {
        self.produced[cl.leader] = true;
        self.carrier[cl.leader] = cl.collector;
    }

    fn cluster_skipped(&mut self, _ctx: &mut RoundCtx<'_>, cl: &ClusterCtx<'_>) {
        self.produced[cl.leader] = false;
    }

    /// Global aggregation runs over the slots that produced a partial
    /// and can reach the top collector; with nothing produced anywhere
    /// the engine falls back to the stale carried values rather than
    /// crash — the run records the anomaly and continues.
    fn select_top(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        top: &ClusterCtx<'_>,
        out: &mut Vec<usize>,
    ) -> bool {
        let round = ctx.round;
        out.extend(top.members.iter().copied().filter(|&m| self.produced[m]));
        let expected = top.members.len();
        match out.first().copied() {
            Some(first) => {
                let coll = self.carrier[first];
                if first != top.leader {
                    ctx.fault_log.push(FaultRecord {
                        round,
                        kind: "leader_failover".into(),
                        detail: format!(
                            "level 0 cluster 0: node {coll} promoted over node {}",
                            top.leader
                        ),
                    });
                    ctx.telem.leader_failover(round, 0, 0, top.leader, coll);
                }
                // Same elements in the same order as the pre-workspace
                // filter/collect (the first slot trivially survives:
                // its carrier is the collector).
                out.retain(|&m| {
                    let phys = self.carrier[m];
                    phys == coll
                        || (!self.inj.partitioned(phys, coll, round)
                            && !self.inj.drop_upload(round, 0, 0, m))
                });
            }
            None => {
                ctx.fault_log.push(FaultRecord {
                    round,
                    kind: "degraded_quorum".into(),
                    detail: "level 0 cluster 0: no fresh partials, using stale models".into(),
                });
                ctx.telem.anomaly(
                    "global_aggregation_stalled",
                    format!("round {round}: no fresh partials reached the top"),
                );
                out.extend_from_slice(top.members);
            }
        }
        if out.len() < expected {
            ctx.telem.degraded_quorum(round, 0, 0, out.len(), expected);
            ctx.fault_log.push(FaultRecord {
                round,
                kind: "degraded_quorum".into(),
                detail: format!(
                    "level 0 cluster 0: {alive} of {expected} contributed",
                    alive = out.len()
                ),
            });
        }
        true
    }

    /// Dissemination reaches every device that is up (crashed nodes
    /// rejoin with the current global on recovery).
    fn dissemination_reach(&self, round: usize, level: usize) -> Option<u64> {
        Some(
            self.hierarchy
                .level(level)
                .clusters
                .iter()
                .flat_map(|c| c.members.iter())
                .filter(|&&m| !self.inj.crashed(m, round))
                .count() as u64,
        )
    }

    /// Everything here re-derives from the compiled schedule each
    /// round; the snapshot carries only the activation cursor so resume
    /// can detect a schedule that drifted from the captured run.
    fn snapshot_state(&self, round: usize) -> Option<LayerState> {
        Some(LayerState::Fault {
            activated: self.inj.events_before(round),
        })
    }

    fn restore_state(&mut self, round: usize, state: &LayerState) -> Result<(), String> {
        let LayerState::Fault { activated } = state else {
            return Err(format!("fault layer handed {} state", state.layer_name()));
        };
        let want = self.inj.events_before(round);
        if *activated != want {
            return Err(format!(
                "fault schedule cursor mismatch at round {round}: \
                 snapshot saw {activated} activations, this plan has {want}"
            ));
        }
        Ok(())
    }
}
