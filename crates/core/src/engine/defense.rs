//! The defense layer: the quarantine filter, per-aggregation evidence
//! strikes, and the echo audit that convicts equivocating leaders.
//! Owns the run's [`SuspicionTracker`] when the config enables it; the
//! audit itself runs whenever the arms race is active at all, so a
//! suspicion-free adaptive run still pays the (tiny) digest cost — as
//! the paper's protocol always ships the echoes.

use hfl_consensus::echo::{hash_update, EchoReport};
use hfl_robust::{evidence, SuspicionChange, SuspicionTracker};
use hfl_snapshot::{LayerState, TrackerState};
use hfl_telemetry::SuspicionRecord;

use super::layer::{ClusterCtx, RoundCtx, RoundLayer};
use crate::runner::Experiment;

/// Quarantine + evidence + echo-audit semantics for the round engine.
pub struct DefenseLayer {
    /// Suspicion over *global* client ids (the whole population under
    /// sampling): scores survive across rounds whatever cohort a client
    /// lands in.
    tracker: Option<SuspicionTracker>,
    /// Echo audits collected this round: `(cluster, global leader id,
    /// report)`.
    audits: Vec<(usize, usize, EchoReport)>,
    /// The hierarchy's bottom level (audited clusters live there).
    bottom: usize,
}

impl DefenseLayer {
    /// The defense layer for an experiment, when its config engages the
    /// arms race (adaptive attack, protocol attack, or suspicion).
    pub fn for_experiment(exp: &Experiment) -> Option<Self> {
        let cfg = exp.config();
        if !cfg.arms_race() {
            return None;
        }
        Some(Self {
            tracker: cfg
                .suspicion
                .map(|s| SuspicionTracker::new(exp.population_size(), s)),
            audits: Vec::new(),
            bottom: exp.hierarchy.bottom_level(),
        })
    }

    /// The suspicion tracker, when the config enables it.
    pub fn tracker(&self) -> Option<&SuspicionTracker> {
        self.tracker.as_ref()
    }
}

impl RoundLayer for DefenseLayer {
    fn name(&self) -> &'static str {
        "defense"
    }

    fn begin_aggregate(&mut self, _round: usize) {
        self.audits.clear();
    }

    fn wants_verdicts(&self) -> bool {
        true
    }

    /// Quarantined clients are excluded from their cluster's inputs —
    /// unless that would empty the cluster (the defense must not DoS
    /// itself).
    fn filter_members(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        cl: &ClusterCtx<'_>,
        present: &mut Vec<usize>,
    ) {
        if !cl.at_bottom() {
            return;
        }
        if let Some(tracker) = &self.tracker {
            let kept: Vec<usize> = present
                .iter()
                .copied()
                .filter(|&mi| !tracker.is_quarantined(cl.global(cl.members[mi])))
                .collect();
            if !kept.is_empty() {
                ctx.cost.quarantined += (present.len() - kept.len()) as u64;
                *present = kept;
            }
        }
    }

    /// Strikes from the aggregation's evidence feed the tracker.
    fn observe_verdict(
        &mut self,
        _cl: &ClusterCtx<'_>,
        kept: &[usize],
        verdict: &evidence::Acceptance,
    ) {
        let Some(tracker) = self.tracker.as_mut() else {
            return;
        };
        for (pos, &dev) in kept.iter().enumerate() {
            if verdict.strikes[pos] > 0.0 {
                tracker.strike(dev, verdict.strikes[pos]);
            }
        }
    }

    /// Every member echoes the digest of the partial it received; the
    /// parent collector digests the up-sent value. 8 bytes per member,
    /// negligible next to the model transfers.
    fn audit_cluster(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        cl: &ClusterCtx<'_>,
        partial: &[f32],
        up: &[f32],
    ) {
        if !cl.at_bottom() {
            return;
        }
        ctx.charge_echo(cl.members.len());
        self.audits.push((
            cl.index,
            // Convictions bind to the *identity* behind the leader slot.
            cl.global(cl.leader),
            EchoReport {
                up_digest: hash_update(up),
                member_digests: vec![hash_update(partial); cl.members.len()],
            },
        ));
    }

    /// Round close, phase 1: the echo audit convicts equivocators
    /// (detection latency is one round by construction — the corrupt
    /// partial already propagated; repair applies from the next round
    /// via [`RoundCtx::convicted`]). Phase 2: the suspicion layer
    /// closes its round.
    fn close_round(&mut self, ctx: &mut RoundCtx<'_>) {
        let round = ctx.round;
        for (ci, leader, report) in self.audits.drain(..) {
            if report.equivocated() {
                ctx.convicted.push(leader);
                ctx.telem
                    .equivocation_detected(round, self.bottom, ci, leader);
                if let Some(t) = self.tracker.as_mut() {
                    t.strike(leader, 3.0 * evidence::STRIKE_WORST);
                }
                ctx.susp_log.push(SuspicionRecord {
                    round,
                    kind: "equivocation".into(),
                    client: leader,
                    score: self
                        .tracker
                        .as_ref()
                        .map(|t| t.score(leader))
                        .unwrap_or(0.0),
                });
            }
        }
        if let Some(t) = self.tracker.as_mut() {
            for change in t.end_round() {
                match change {
                    SuspicionChange::Quarantined { client, score } => {
                        ctx.telem.client_quarantined(round, client, score);
                        ctx.susp_log.push(SuspicionRecord {
                            round,
                            kind: "quarantined".into(),
                            client,
                            score,
                        });
                    }
                    SuspicionChange::Released { client, score } => {
                        ctx.telem.client_released(round, client, score);
                        ctx.susp_log.push(SuspicionRecord {
                            round,
                            kind: "released".into(),
                            client,
                            score,
                        });
                    }
                }
            }
        }
    }

    /// The audit accumulator is per-round (cleared on every
    /// `begin_aggregate`), so only the tracker crosses rounds.
    fn snapshot_state(&self, _round: usize) -> Option<LayerState> {
        Some(LayerState::Defense {
            tracker: self.tracker.as_ref().map(|t| TrackerState {
                scores: t.scores().to_vec(),
                quarantined: t.quarantined_mask().to_vec(),
                quarantine_events: t.quarantine_events(),
            }),
        })
    }

    fn restore_state(&mut self, _round: usize, state: &LayerState) -> Result<(), String> {
        let LayerState::Defense { tracker } = state else {
            return Err(format!("defense layer handed {} state", state.layer_name()));
        };
        match (self.tracker.as_mut(), tracker) {
            (Some(t), Some(s)) => t.restore_state(&s.scores, &s.quarantined, s.quarantine_events),
            (None, None) => Ok(()),
            (Some(_), None) => {
                Err("snapshot has no suspicion tracker but the config enables one".to_string())
            }
            (None, Some(_)) => {
                Err("snapshot carries a suspicion tracker but the config disables it".to_string())
            }
        }
    }
}
