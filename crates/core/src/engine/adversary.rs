//! The adversary layer: the coalition's side of the arms race — the
//! adaptive magnitude search fed by acceptance feedback, pivotal
//! withholding, and leader equivocation (with repair after the echo
//! audit convicts).

use hfl_attacks::{AdaptiveAdversary, AttackFeedback, ModelAttack, ProtocolAttack};
use hfl_consensus::quorum_size;
use hfl_robust::evidence::Acceptance;
use hfl_snapshot::{LayerState, SearchState};

use super::layer::{ClusterCtx, RoundCtx, RoundLayer};
use crate::config::AttackCfg;
use crate::runner::Experiment;

/// Adaptive-attack + protocol-attack semantics for the round engine.
pub struct AdversaryLayer<'e> {
    adversary: Option<AdaptiveAdversary>,
    /// `Some(flip_scale)` while malicious bottom leaders equivocate.
    equivocate: Option<f32>,
    /// Malicious members withhold pivotally.
    withhold: bool,
    /// Malicious members stall uploads until just inside the staleness
    /// bound of their cluster's deadline buffer.
    staleness_exploit: bool,
    /// Equivocators convicted by the echo audit (by *global* client
    /// id over the whole population): they are repaired — behave
    /// honestly — from the round after detection, whatever cohort they
    /// next land in.
    detected: Vec<bool>,
    /// Coalition feedback accumulated during the current round.
    feedback: AttackFeedback,
    malicious: &'e [bool],
    /// The quorum fraction φ (pivotal withholding must not break it).
    phi: f64,
}

impl<'e> AdversaryLayer<'e> {
    /// The adversary layer for an experiment, when its config engages
    /// the arms race (adaptive attack, protocol attack, or suspicion —
    /// the last so acceptance feedback stays observable symmetrically
    /// with the defense).
    pub fn for_experiment(exp: &'e Experiment) -> Option<Self> {
        let cfg = exp.config();
        if !cfg.arms_race() {
            return None;
        }
        let adversary = match &cfg.attack {
            AttackCfg::Adaptive { attack, .. } => Some(AdaptiveAdversary::new(attack.clone())),
            _ => None,
        };
        let (equivocate, withhold, staleness_exploit) = match &cfg.protocol_attack {
            Some(ProtocolAttack::Equivocate { flip_scale }) => (Some(*flip_scale), false, false),
            Some(ProtocolAttack::Withhold) => (None, true, false),
            Some(ProtocolAttack::StalenessExploit) => (None, false, true),
            None => (None, false, false),
        };
        Some(Self {
            adversary,
            equivocate,
            withhold,
            staleness_exploit,
            detected: vec![false; exp.population_size()],
            feedback: AttackFeedback::default(),
            malicious: &exp.malicious,
            phi: cfg.quorum,
        })
    }

    /// The magnitude-search state, when the attack is adaptive.
    pub fn adversary(&self) -> Option<&AdaptiveAdversary> {
        self.adversary.as_ref()
    }

    /// Device ids the echo audit has convicted of equivocation so far.
    pub fn detected_equivocators(&self) -> Vec<usize> {
        (0..self.detected.len())
            .filter(|&d| self.detected[d])
            .collect()
    }
}

impl RoundLayer for AdversaryLayer<'_> {
    fn name(&self) -> &'static str {
        "adversary"
    }

    fn begin_aggregate(&mut self, _round: usize) {
        self.feedback = AttackFeedback::default();
    }

    fn training_attack(&self) -> Option<ModelAttack> {
        self.adversary
            .as_ref()
            .map(AdaptiveAdversary::current_attack)
    }

    fn wants_verdicts(&self) -> bool {
        true
    }

    /// Pivotal withholding: malicious members drop their update exactly
    /// when the cluster still forms its quorum without them (only
    /// possible at φ < 1).
    fn filter_members(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        cl: &ClusterCtx<'_>,
        present: &mut Vec<usize>,
    ) {
        if !cl.at_bottom() || !self.withhold {
            return;
        }
        let withholding: Vec<usize> = present
            .iter()
            .copied()
            .filter(|&mi| {
                let slot = cl.members[mi];
                // Maliciousness is identity-bound; the leadership check
                // is topological (the slot holding the collection role).
                self.malicious[cl.global(slot)] && slot != cl.leader
            })
            .collect();
        let quorum_all = quorum_size(self.phi, present.len());
        if !withholding.is_empty() && present.len() - withholding.len() >= quorum_all {
            ctx.cost.withheld += withholding.len() as u64;
            for &mi in &withholding {
                ctx.telem
                    .update_withheld(ctx.round, cl.global(cl.members[mi]));
            }
            present.retain(|mi| !withholding.contains(mi));
        }
    }

    /// Staleness exploit: malicious bottom members (never the leader,
    /// whose collection role would expose the stall immediately) time
    /// their upload to land just inside the buffer's staleness bound τ
    /// — the latest arrival the protocol still admits. They never help
    /// form the quorum, every buffer they touch ages toward its
    /// deadline, and their updates enter at the worst admitted
    /// discount.
    fn stalls_until_stale(&self, _round: usize, cl: &ClusterCtx<'_>, slot: usize) -> bool {
        self.staleness_exploit
            && cl.at_bottom()
            && self.malicious[cl.global(slot)]
            && slot != cl.leader
    }

    /// Acceptance feedback: did the coalition's crafted updates make it
    /// into the aggregate this round?
    fn observe_verdict(&mut self, _cl: &ClusterCtx<'_>, kept: &[usize], verdict: &Acceptance) {
        for (pos, &dev) in kept.iter().enumerate() {
            if self.malicious[dev] {
                self.feedback.submitted += 1;
                if verdict.accepted[pos] {
                    self.feedback.accepted += 1;
                }
            }
        }
    }

    /// Equivocation: a malicious, undetected bottom leader sends
    /// `−flip_scale · partial` upward while echoing the true partial to
    /// its members.
    fn upward_value(&self, cl: &ClusterCtx<'_>, partial: &[f32]) -> Option<Vec<f32>> {
        if !cl.at_bottom() {
            return None;
        }
        let leader = cl.global(cl.leader);
        match self.equivocate {
            Some(flip) if self.malicious[leader] && !self.detected[leader] => {
                Some(partial.iter().map(|x| -flip * x).collect())
            }
            _ => None,
        }
    }

    /// Round close, phase 3: consume the defense's convictions (repair
    /// from next round), then feed the acceptance feedback to the
    /// magnitude search.
    fn close_round(&mut self, ctx: &mut RoundCtx<'_>) {
        for &leader in &ctx.convicted {
            self.detected[leader] = true;
        }
        if let Some(adv) = self.adversary.as_mut() {
            ctx.telem.attack_adapted(
                ctx.round,
                f64::from(adv.magnitude()),
                self.feedback.submitted,
                self.feedback.accepted,
            );
            adv.observe(ctx.round, self.feedback);
        }
    }

    /// Cross-round state: the magnitude-search window (adaptive attacks
    /// only) and which coalition leaders know themselves convicted. The
    /// feedback accumulator is per-round and resets on every
    /// `begin_aggregate`.
    fn snapshot_state(&self, _round: usize) -> Option<LayerState> {
        Some(LayerState::Adversary {
            search: self.adversary.as_ref().map(|adv| {
                let (lo, hi, current, history) = adv.search_state();
                SearchState {
                    lo,
                    hi,
                    current,
                    history: history.to_vec(),
                }
            }),
            detected: self.detected.clone(),
        })
    }

    fn restore_state(&mut self, _round: usize, state: &LayerState) -> Result<(), String> {
        let LayerState::Adversary { search, detected } = state else {
            return Err(format!(
                "adversary layer handed {} state",
                state.layer_name()
            ));
        };
        if detected.len() != self.detected.len() {
            return Err(format!(
                "conviction flags are for {} clients, population has {}",
                detected.len(),
                self.detected.len()
            ));
        }
        match (self.adversary.as_mut(), search) {
            (Some(adv), Some(s)) => {
                adv.restore_search(s.lo, s.hi, s.current, s.history.clone())?;
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err("snapshot has no search state but the attack is adaptive".to_string());
            }
            (None, Some(_)) => {
                return Err("snapshot carries search state but the attack is static".to_string());
            }
        }
        self.detected.copy_from_slice(detected);
        Ok(())
    }
}
