//! The round engine: **one** canonical execution of an ABD-HFL global
//! round, expressed as explicit phases with pluggable layer hooks.
//!
//! Phases (paper Algorithms 1–6):
//!
//! 1. **Round open** — scheduled faults activate
//!    ([`RoundLayer::open_round`]).
//! 2. **Local training** (Algorithm 2) — every client trains in
//!    parallel; the adversary layer may substitute this round's crafted
//!    attack ([`RoundLayer::training_attack`]).
//! 3. **Bottom-up aggregation** (Algorithms 3–4) — per cluster:
//!    collector selection (failover), member filtering (crashes,
//!    partitions, quarantine, withholding), seeded arrival shuffle +
//!    straggler reorder, quorum cut, BRA/CBA aggregation, acceptance
//!    verdicts, upward value (equivocation) and the echo audit.
//! 4. **Global aggregation** (Algorithm 6) — top-slot selection
//!    (fault fallback) and BRA or validation-voting consensus.
//! 5. **Dissemination + round close** (Algorithm 5) — reach-aware
//!    broadcast accounting, then the close hooks in stack order: echo
//!    convictions, suspicion transitions, adversary adaptation.
//!
//! The layer stack replaces what used to be three textually-separate
//! copies of this round (`aggregate_round_clean` / `_faulted` /
//! `_armed`): a clean run is the empty stack, a faulted run is
//! `[faults]`, an arms-race run is `[defense, adversary]` — and, newly
//! possible, a combined run is `[faults, defense, adversary]`. With a
//! given stack the engine reproduces the corresponding pre-refactor
//! path byte-for-byte: same RNG stream order, same cost accounting,
//! same event sequence (pinned by `tests/golden_manifests.rs`).

pub mod adversary;
pub mod cost;
pub mod defense;
pub mod fault;
pub mod layer;
pub mod telemetry;

pub use adversary::AdversaryLayer;
pub use cost::CostCounters;
pub use defense::DefenseLayer;
pub use fault::FaultLayer;
pub use layer::{ClusterCtx, CollectorChoice, RoundCtx, RoundLayer};
pub use telemetry::TelemetryLayer;

use rand::seq::SliceRandom;

use hfl_attacks::{AdaptiveAdversary, ModelAttack};
use hfl_consensus::eval::AccuracyEvaluator;
use hfl_consensus::quorum_size;
use hfl_ml::rng::rng_for_n;
use hfl_robust::evidence::{self, Acceptance};
use hfl_robust::SuspicionTracker;
use hfl_telemetry::{FaultRecord, SuspicionRecord, Telemetry};

use crate::config::LevelAgg;
use crate::runner::Experiment;

/// Executes canonical rounds for one experiment through a stack of
/// [`RoundLayer`]s. The engine owns no RNG state of its own — every
/// stream is derived from `(seed, round, …)`, so a given `(config,
/// seed)` is reproducible regardless of how many engines ran before.
pub struct RoundEngine<'e> {
    exp: &'e Experiment,
    fault: Option<FaultLayer<'e>>,
    defense: Option<DefenseLayer>,
    adversary: Option<AdversaryLayer<'e>>,
}

impl<'e> RoundEngine<'e> {
    /// The canonical stack for an experiment's config: the fault layer
    /// when a fault plan is compiled, and the defense + adversary pair
    /// when the arms race is engaged. All absent for a plain config,
    /// which makes the engine the fault-free reference path.
    pub fn for_experiment(exp: &'e Experiment) -> Self {
        Self {
            exp,
            fault: FaultLayer::for_experiment(exp),
            defense: DefenseLayer::for_experiment(exp),
            adversary: AdversaryLayer::for_experiment(exp),
        }
    }

    /// Fault layer only — the semantics of the legacy
    /// `aggregate_round*` entry points, which predate the arms race.
    pub(crate) fn fault_only(exp: &'e Experiment) -> Self {
        Self {
            exp,
            fault: FaultLayer::for_experiment(exp),
            defense: None,
            adversary: None,
        }
    }

    fn layers(&self) -> impl Iterator<Item = &(dyn RoundLayer + 'e)> + '_ {
        let f = self.fault.as_ref().map(|l| l as &(dyn RoundLayer + 'e));
        let d = self.defense.as_ref().map(|l| l as &(dyn RoundLayer + 'e));
        let a = self.adversary.as_ref().map(|l| l as &(dyn RoundLayer + 'e));
        f.into_iter().chain(d).chain(a)
    }

    fn layers_mut(&mut self) -> impl Iterator<Item = &mut (dyn RoundLayer + 'e)> + '_ {
        let f = self.fault.as_mut().map(|l| l as &mut (dyn RoundLayer + 'e));
        let d = self
            .defense
            .as_mut()
            .map(|l| l as &mut (dyn RoundLayer + 'e));
        let a = self
            .adversary
            .as_mut()
            .map(|l| l as &mut (dyn RoundLayer + 'e));
        f.into_iter().chain(d).chain(a)
    }

    /// Names of the active layers, in stack order.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers().map(RoundLayer::name).collect()
    }

    /// The defense's suspicion tracker, when the config enables it.
    pub fn suspicion(&self) -> Option<&SuspicionTracker> {
        self.defense.as_ref().and_then(DefenseLayer::tracker)
    }

    /// The adversary's magnitude-search state, when the attack is
    /// adaptive.
    pub fn adversary(&self) -> Option<&AdaptiveAdversary> {
        self.adversary.as_ref().and_then(AdversaryLayer::adversary)
    }

    /// Device ids the echo audit has convicted of equivocation so far.
    pub fn detected_equivocators(&self) -> Vec<usize> {
        self.adversary
            .as_ref()
            .map(AdversaryLayer::detected_equivocators)
            .unwrap_or_default()
    }

    /// The crafted model attack malicious clients substitute this
    /// round (the adaptive adversary's current magnitude), if any layer
    /// steers one.
    pub fn training_attack(&self) -> Option<ModelAttack> {
        self.layers().find_map(RoundLayer::training_attack)
    }

    /// Every stateful layer's cross-round state at the top of `round`,
    /// in stack order — the `layers` section of an
    /// [`hfl_snapshot::EngineSnapshot`].
    pub fn snapshot_layers(&self, round: usize) -> Vec<hfl_snapshot::LayerState> {
        self.layers()
            .filter_map(|l| l.snapshot_state(round))
            .collect()
    }

    /// Restores the state captured by [`Self::snapshot_layers`] onto a
    /// freshly built stack. The states must pair with this engine's
    /// stateful layers one-to-one in stack order — a count or variant
    /// mismatch means the snapshot was captured under a different
    /// config and is rejected.
    pub fn restore_layers(
        &mut self,
        round: usize,
        states: &[hfl_snapshot::LayerState],
    ) -> Result<(), String> {
        let stateful: Vec<&'static str> = self
            .layers()
            .filter(|l| l.snapshot_state(round).is_some())
            .map(RoundLayer::name)
            .collect();
        if stateful.len() != states.len() {
            return Err(format!(
                "snapshot carries {} layer states but the engine stack [{}] has {} stateful layers",
                states.len(),
                stateful.join(", "),
                stateful.len()
            ));
        }
        let mut it = states.iter();
        for layer in self.layers_mut() {
            // Pair in stack order, skipping stateless layers the same
            // way snapshot_layers' filter_map did.
            if layer.snapshot_state(round).is_none() {
                continue;
            }
            let state = it.next().expect("counted above");
            layer.restore_state(round, state)?;
        }
        Ok(())
    }

    /// Executes one full round: round-open hooks (scheduled faults),
    /// local training with the current crafted attack, then bottom-up
    /// aggregation. Returns the new global model.
    pub fn run_round(
        &mut self,
        global: &[f32],
        round: usize,
        cost: &mut CostCounters,
        telem: &Telemetry,
        fault_log: &mut Vec<FaultRecord>,
        susp_log: &mut Vec<SuspicionRecord>,
    ) -> Vec<f32> {
        {
            let mut ctx = RoundCtx {
                round,
                model_bytes: (self.exp.template.param_len() * 4) as u64,
                cost: &mut *cost,
                telem: TelemetryLayer::new(telem),
                fault_log: &mut *fault_log,
                susp_log: &mut *susp_log,
                convicted: Vec::new(),
            };
            for layer in self.layers_mut() {
                layer.open_round(&mut ctx);
            }
        }
        let attack = self.training_attack();
        let updates = self
            .exp
            .train_round_with(global, round, attack.as_ref(), telem);
        self.aggregate_round(&updates, round, cost, telem, fault_log, susp_log)
    }

    /// Phases 3–5: one round of bottom-up aggregation over per-client
    /// updates, through the layer stack. Returns the new global model
    /// and accumulates cost counters and manifest logs.
    pub fn aggregate_round(
        &mut self,
        updates: &[Vec<f32>],
        round: usize,
        cost: &mut CostCounters,
        telem: &Telemetry,
        fault_log: &mut Vec<FaultRecord>,
        susp_log: &mut Vec<SuspicionRecord>,
    ) -> Vec<f32> {
        let exp = self.exp;
        let cfg = exp.config();
        let h = &exp.hierarchy;
        let bottom = h.bottom_level();
        let model_bytes = (updates[0].len() * 4) as u64;
        let active = exp.active_mask(round);

        let mut ctx = RoundCtx {
            round,
            model_bytes,
            cost,
            telem: TelemetryLayer::new(telem),
            fault_log,
            susp_log,
            convicted: Vec::new(),
        };
        for layer in self.layers_mut() {
            layer.begin_aggregate(round);
        }
        ctx.cost.absent += active.iter().filter(|a| !**a).count() as u64;
        ctx.telem.churn_absences(round, &active);

        let wants_verdicts = self.layers().any(RoundLayer::wants_verdicts);

        // carried[slot] = the model this node carries upward: its local
        // update at the bottom, the partial aggregate of the cluster it
        // leads above.
        let mut carried: Vec<Vec<f32>> = updates.to_vec();

        // Partial aggregation: levels L down to 1.
        for l in (1..=bottom).rev() {
            let level = h.level(l);
            let mut next: Vec<Vec<f32>> = carried.clone();
            for (ci, cluster) in level.clusters.iter().enumerate() {
                let leader = cluster.leader();
                let expected = if l == bottom {
                    cluster.members.iter().filter(|&&m| active[m]).count()
                } else {
                    cluster.len()
                };
                let mut cl = ClusterCtx {
                    level: l,
                    bottom,
                    index: ci,
                    members: &cluster.members,
                    leader,
                    expected,
                    active: &active,
                    collector: leader,
                };
                let mut choice = None;
                for layer in self.layers_mut() {
                    if let Some(c) = layer.select_collector(&mut ctx, &cl) {
                        choice = Some(c);
                        break;
                    }
                }
                match choice {
                    Some(CollectorChoice::SkipCluster) => continue,
                    Some(CollectorChoice::Collect { device }) => cl.collector = device,
                    None => {}
                }

                // Churn removes absent bottom members; the layers then
                // take out whatever crashed, partitioned, quarantined
                // or withholding members remain.
                let mut present: Vec<usize> = (0..cluster.len())
                    .filter(|&mi| l != bottom || active[cluster.members[mi]])
                    .collect();
                for layer in self.layers_mut() {
                    layer.filter_members(&mut ctx, &cl, &mut present);
                }
                if present.is_empty() {
                    for layer in self.layers_mut() {
                        layer.cluster_skipped(&mut ctx, &cl);
                    }
                    continue;
                }

                // The quorum keeps the first ⌈φ·present⌉ of a seeded
                // random arrival order (Algorithm 4's wait-until-quorum).
                let mut order = present;
                let mut rng = rng_for_n(cfg.seed, &[round as u64, l as u64, ci as u64, 0xA221]);
                order.shuffle(&mut rng);
                for layer in self.layers() {
                    layer.reorder_arrivals(round, &cl, &mut order);
                }
                let quorum = quorum_size(cfg.quorum, order.len());
                let kept: Vec<usize> = {
                    let mut k = order[..quorum.min(order.len())].to_vec();
                    k.sort_unstable();
                    k
                };
                let inputs: Vec<&[f32]> = kept
                    .iter()
                    .map(|&mi| carried[cluster.members[mi]].as_slice())
                    .collect();
                let kept_devices: Vec<usize> = kept.iter().map(|&mi| cluster.members[mi]).collect();
                let want_verdict = wants_verdicts && l == bottom;

                let (partial, verdict) = match &cfg.levels[l] {
                    LevelAgg::Bra(kind) => {
                        // Members upload to the collector; the partial
                        // broadcasts back as far as it can reach
                        // (Algorithm 3).
                        let reach = self
                            .layers()
                            .find_map(|ly| ly.broadcast_reach(round, &cl))
                            .unwrap_or(cluster.len() as u64);
                        ctx.charge_transfers(l, quorum as u64 + reach);
                        let partial = kind.build().aggregate(&inputs, None);
                        let verdict = want_verdict.then(|| evidence::judge(kind, &inputs));
                        (partial, verdict)
                    }
                    LevelAgg::Cba(kind) => {
                        let byz: Vec<bool> = kept
                            .iter()
                            .map(|&mi| exp.protocol_byzantine(cluster.members[mi]))
                            .collect();
                        let own: Vec<Vec<f32>> = inputs.iter().map(|i| i.to_vec()).collect();
                        let eval = hfl_consensus::DistanceEvaluator::new(&own);
                        let mech = kind.build();
                        let out = mech.decide(&inputs, &byz, &eval, &mut rng);
                        ctx.charge_consensus(l, ci, mech.name(), &out);
                        // Consensus exclusion is the CBA acceptance
                        // verdict: excluded inputs are struck worst.
                        let verdict = want_verdict.then(|| {
                            let mut acc = Acceptance {
                                accepted: vec![true; kept.len()],
                                strikes: vec![0.0; kept.len()],
                            };
                            for &p in &out.excluded {
                                acc.accepted[p] = false;
                                acc.strikes[p] = evidence::STRIKE_WORST;
                            }
                            acc
                        });
                        (out.decided, verdict)
                    }
                };
                if let Some(v) = &verdict {
                    for layer in self.layers_mut() {
                        layer.observe_verdict(&cl, &kept_devices, v);
                    }
                }
                ctx.telem
                    .cluster_aggregated(round, l, ci, kept_devices.len(), quorum);

                // What goes upward may differ from what the members saw
                // (equivocation); the audit sees both sides.
                let up = self.layers().find_map(|ly| ly.upward_value(&cl, &partial));
                {
                    let up_ref: &[f32] = up.as_deref().unwrap_or(&partial);
                    for layer in self.layers_mut() {
                        layer.audit_cluster(&mut ctx, &cl, &partial, up_ref);
                    }
                }
                next[leader] = up.unwrap_or(partial);
                for layer in self.layers_mut() {
                    layer.after_cluster(&mut ctx, &cl);
                }
            }
            carried = next;
        }

        // Global aggregation at the top cluster (Algorithm 6).
        let top = &h.level(0).clusters[0];
        let top_cl = ClusterCtx {
            level: 0,
            bottom,
            index: 0,
            members: &top.members,
            leader: top.leader(),
            expected: top.len(),
            active: &active,
            collector: top.leader(),
        };
        let mut slots = None;
        for layer in self.layers_mut() {
            if let Some(s) = layer.select_top(&mut ctx, &top_cl) {
                slots = Some(s);
                break;
            }
        }
        let final_slots = slots.unwrap_or_else(|| top.members.clone());
        let proposals: Vec<&[f32]> = final_slots
            .iter()
            .map(|&dev| carried[dev].as_slice())
            .collect();
        let mut rng = rng_for_n(cfg.seed, &[round as u64, 0x601, 0xA221]);
        let global = match &cfg.levels[0] {
            LevelAgg::Bra(kind) => {
                ctx.charge_transfers(0, (2 * proposals.len()) as u64);
                kind.build().aggregate(&proposals, None)
            }
            LevelAgg::Cba(kind) => {
                // Validation voting over the test shards (Appendix D.B).
                let shards = exp.task.test.split_even(proposals.len().max(1));
                let eval = AccuracyEvaluator::new(exp.template.clone_box(), shards);
                let byz: Vec<bool> = final_slots
                    .iter()
                    .map(|&dev| exp.protocol_byzantine(dev))
                    .collect();
                let mech = kind.build();
                let out = mech.decide(&proposals, &byz, &eval, &mut rng);
                ctx.charge_consensus(0, 0, mech.name(), &out);
                out.decided
            }
        };
        ctx.telem
            .cluster_aggregated(round, 0, 0, proposals.len(), proposals.len());

        // Dissemination: the global model travels one model-transfer
        // per reachable node per level on its way down (Algorithm 5).
        for l in 1..=bottom {
            let per_level = self
                .layers()
                .find_map(|ly| ly.dissemination_reach(round, l))
                .unwrap_or(h.level(l).num_nodes() as u64);
            ctx.charge_transfers(l, per_level);
        }

        // Round close, in stack order: defense convictions and
        // suspicion transitions first, then the adversary adapts.
        for layer in self.layers_mut() {
            layer.close_round(&mut ctx);
        }

        global
    }
}
