//! The round engine: **one** canonical execution of an ABD-HFL global
//! round, expressed as explicit phases with pluggable layer hooks.
//!
//! Phases (paper Algorithms 1–6):
//!
//! 1. **Round open** — scheduled faults activate
//!    ([`RoundLayer::open_round`]).
//! 2. **Local training** (Algorithm 2) — every client trains in
//!    parallel; the adversary layer may substitute this round's crafted
//!    attack ([`RoundLayer::training_attack`]).
//! 3. **Bottom-up aggregation** (Algorithms 3–4) — per cluster:
//!    collector selection (failover), member filtering (crashes,
//!    partitions, quarantine, withholding), seeded arrival shuffle +
//!    straggler reorder, quorum cut, BRA/CBA aggregation, acceptance
//!    verdicts, upward value (equivocation) and the echo audit.
//! 4. **Global aggregation** (Algorithm 6) — top-slot selection
//!    (fault fallback) and BRA or validation-voting consensus.
//! 5. **Dissemination + round close** (Algorithm 5) — reach-aware
//!    broadcast accounting, then the close hooks in stack order: echo
//!    convictions, suspicion transitions, adversary adaptation.
//!
//! The layer stack replaces what used to be three textually-separate
//! copies of this round (`aggregate_round_clean` / `_faulted` /
//! `_armed`): a clean run is the empty stack, a faulted run is
//! `[faults]`, an arms-race run is `[defense, adversary]` — and, newly
//! possible, a combined run is `[faults, defense, adversary]`. With a
//! given stack the engine reproduces the corresponding pre-refactor
//! path byte-for-byte: same RNG stream order, same cost accounting,
//! same event sequence (pinned by `tests/golden_manifests.rs`).

pub mod adversary;
pub mod cost;
pub mod defense;
pub mod fault;
pub mod layer;
pub mod pool;
pub mod telemetry;

pub use adversary::AdversaryLayer;
pub use cost::CostCounters;
pub use defense::DefenseLayer;
pub use fault::FaultLayer;
pub use layer::{ClusterCtx, CollectorChoice, CollectorPolicy, RoundCtx, RoundLayer};
pub use pool::{BufferPool, RoundWorkspace};
pub use telemetry::TelemetryLayer;

use rand::seq::SliceRandom;

use hfl_attacks::{AdaptiveAdversary, ModelAttack};
use hfl_consensus::eval::AccuracyEvaluator;
use hfl_consensus::quorum_size;
use hfl_ml::rng::rng_for_n;
use hfl_robust::evidence::{self, Acceptance};
use hfl_robust::SuspicionTracker;
use hfl_simnet::DelayModel;
use hfl_telemetry::{FaultRecord, SuspicionRecord, Telemetry};

use crate::config::LevelAgg;
use crate::runner::Experiment;

/// RNG stream tag for async arrival synthesis. Distinct from the
/// arrival-shuffle tag (`0xA221`) so the synchronous path consumes
/// exactly its pre-async draw sequence: the `0xA57C` stream is opened
/// only under a finite-deadline policy.
const ARRIVAL_STREAM: u64 = 0xA57C;

/// What a deadline-driven buffer admitted when it closed (DESIGN.md
/// §12). Positions index the caller's arrival-candidate slice.
struct BufferOutcome {
    /// Admitted candidate positions, in arrival order.
    admitted: Vec<usize>,
    /// `weights[i]`: aggregation weight of `admitted[i]` (1.0 on-time,
    /// staleness-discounted for τ-late arrivals).
    weights: Vec<f32>,
    /// `lateness_frac[i]`: lateness of `admitted[i]` as a fraction of
    /// τ (0 for on-time arrivals) — staleness evidence for the
    /// defense.
    lateness_frac: Vec<f64>,
}

/// Executes canonical rounds for one experiment through a stack of
/// [`RoundLayer`]s. The engine owns no RNG state of its own — every
/// stream is derived from `(seed, round, …)`, so a given `(config,
/// seed)` is reproducible regardless of how many engines ran before.
pub struct RoundEngine<'e> {
    exp: &'e Experiment,
    fault: Option<FaultLayer<'e>>,
    defense: Option<DefenseLayer>,
    adversary: Option<AdversaryLayer<'e>>,
    /// Round-scoped buffer arena ([`pool`]): carried/next model rows,
    /// index scratch, prebuilt BRA aggregators, training buffers. Taken
    /// out for the duration of each aggregation and restored at its
    /// exit, so steady-state rounds allocate nothing.
    workspace: RoundWorkspace,
}

impl<'e> RoundEngine<'e> {
    /// The canonical stack for an experiment's config: the fault layer
    /// when a fault plan is compiled, and the defense + adversary pair
    /// when the arms race is engaged. All absent for a plain config,
    /// which makes the engine the fault-free reference path.
    pub fn for_experiment(exp: &'e Experiment) -> Self {
        Self {
            exp,
            fault: FaultLayer::for_experiment(exp),
            defense: DefenseLayer::for_experiment(exp),
            adversary: AdversaryLayer::for_experiment(exp),
            workspace: RoundWorkspace::default(),
        }
    }

    /// Fault layer only — the semantics of the legacy
    /// `aggregate_round*` entry points, which predate the arms race.
    pub(crate) fn fault_only(exp: &'e Experiment) -> Self {
        Self {
            exp,
            fault: FaultLayer::for_experiment(exp),
            defense: None,
            adversary: None,
            workspace: RoundWorkspace::default(),
        }
    }

    fn layers(&self) -> impl Iterator<Item = &(dyn RoundLayer + 'e)> + '_ {
        let f = self.fault.as_ref().map(|l| l as &(dyn RoundLayer + 'e));
        let d = self.defense.as_ref().map(|l| l as &(dyn RoundLayer + 'e));
        let a = self.adversary.as_ref().map(|l| l as &(dyn RoundLayer + 'e));
        f.into_iter().chain(d).chain(a)
    }

    fn layers_mut(&mut self) -> impl Iterator<Item = &mut (dyn RoundLayer + 'e)> + '_ {
        let f = self.fault.as_mut().map(|l| l as &mut (dyn RoundLayer + 'e));
        let d = self
            .defense
            .as_mut()
            .map(|l| l as &mut (dyn RoundLayer + 'e));
        let a = self
            .adversary
            .as_mut()
            .map(|l| l as &mut (dyn RoundLayer + 'e));
        f.into_iter().chain(d).chain(a)
    }

    /// Names of the active layers, in stack order.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers().map(RoundLayer::name).collect()
    }

    /// The defense's suspicion tracker, when the config enables it.
    pub fn suspicion(&self) -> Option<&SuspicionTracker> {
        self.defense.as_ref().and_then(DefenseLayer::tracker)
    }

    /// The adversary's magnitude-search state, when the attack is
    /// adaptive.
    pub fn adversary(&self) -> Option<&AdaptiveAdversary> {
        self.adversary.as_ref().and_then(AdversaryLayer::adversary)
    }

    /// Device ids the echo audit has convicted of equivocation so far.
    pub fn detected_equivocators(&self) -> Vec<usize> {
        self.adversary
            .as_ref()
            .map(AdversaryLayer::detected_equivocators)
            .unwrap_or_default()
    }

    /// The crafted model attack malicious clients substitute this
    /// round (the adaptive adversary's current magnitude), if any layer
    /// steers one.
    pub fn training_attack(&self) -> Option<ModelAttack> {
        self.layers().find_map(RoundLayer::training_attack)
    }

    /// Every stateful layer's cross-round state at the top of `round`,
    /// in stack order — the `layers` section of an
    /// [`hfl_snapshot::EngineSnapshot`].
    pub fn snapshot_layers(&self, round: usize) -> Vec<hfl_snapshot::LayerState> {
        self.layers()
            .filter_map(|l| l.snapshot_state(round))
            .collect()
    }

    /// Restores the state captured by [`Self::snapshot_layers`] onto a
    /// freshly built stack. The states must pair with this engine's
    /// stateful layers one-to-one in stack order — a count or variant
    /// mismatch means the snapshot was captured under a different
    /// config and is rejected.
    pub fn restore_layers(
        &mut self,
        round: usize,
        states: &[hfl_snapshot::LayerState],
    ) -> Result<(), String> {
        let stateful: Vec<&'static str> = self
            .layers()
            .filter(|l| l.snapshot_state(round).is_some())
            .map(RoundLayer::name)
            .collect();
        if stateful.len() != states.len() {
            return Err(format!(
                "snapshot carries {} layer states but the engine stack [{}] has {} stateful layers",
                states.len(),
                stateful.join(", "),
                stateful.len()
            ));
        }
        let mut it = states.iter();
        for layer in self.layers_mut() {
            // Pair in stack order, skipping stateless layers the same
            // way snapshot_layers' filter_map did.
            if layer.snapshot_state(round).is_none() {
                continue;
            }
            let state = it.next().expect("counted above");
            layer.restore_state(round, state)?;
        }
        Ok(())
    }

    /// Executes one full round: round-open hooks (scheduled faults),
    /// local training with the current crafted attack, then bottom-up
    /// aggregation. Returns the new global model.
    pub fn run_round(
        &mut self,
        global: &[f32],
        round: usize,
        cost: &mut CostCounters,
        telem: &Telemetry,
        fault_log: &mut Vec<FaultRecord>,
        susp_log: &mut Vec<SuspicionRecord>,
    ) -> Vec<f32> {
        let mut out = Vec::new();
        self.run_round_into(global, round, cost, telem, fault_log, susp_log, &mut out);
        out
    }

    /// [`Self::run_round`] writing the new global model into a
    /// caller-owned buffer. Training and aggregation both draw every
    /// buffer they need from the engine's [`RoundWorkspace`]; with one
    /// worker thread a steady-state round performs zero heap allocation
    /// (the invariant `crates/bench/tests/alloc_regression.rs` pins).
    #[allow(clippy::too_many_arguments)]
    pub fn run_round_into(
        &mut self,
        global: &[f32],
        round: usize,
        cost: &mut CostCounters,
        telem: &Telemetry,
        fault_log: &mut Vec<FaultRecord>,
        susp_log: &mut Vec<SuspicionRecord>,
        out: &mut Vec<f32>,
    ) {
        {
            let acfg = self.exp.config().async_rounds.as_ref();
            let mut ctx = RoundCtx {
                round,
                model_bytes: (self.exp.template.param_len() * 4) as u64,
                cost: &mut *cost,
                telem: TelemetryLayer::new(telem),
                fault_log: &mut *fault_log,
                susp_log: &mut *susp_log,
                convicted: Vec::new(),
                deadline_us: acfg.map(|a| a.deadline_us),
                staleness_bound_us: acfg.map(|a| a.staleness_bound_us).unwrap_or(0),
            };
            for layer in self.layers_mut() {
                layer.open_round(&mut ctx);
            }
        }
        let attack = self.training_attack();
        let exp = self.exp;
        // The training buffers leave the workspace for the duration of
        // the round: `updates` must outlive the aggregation call, and
        // the borrow of `self` must stay free for it.
        let mut updates = std::mem::take(&mut self.workspace.updates);
        let mut train = std::mem::take(&mut self.workspace.train);
        exp.train_round_into(global, round, attack.as_ref(), telem, &mut updates, &mut train);
        self.workspace.train = train;
        self.aggregate_round_into(&updates, round, cost, telem, fault_log, susp_log, out);
        self.workspace.updates = updates;
    }

    /// Phases 3–5: one round of bottom-up aggregation over per-client
    /// updates, through the layer stack. Returns the new global model
    /// and accumulates cost counters and manifest logs.
    pub fn aggregate_round(
        &mut self,
        updates: &[Vec<f32>],
        round: usize,
        cost: &mut CostCounters,
        telem: &Telemetry,
        fault_log: &mut Vec<FaultRecord>,
        susp_log: &mut Vec<SuspicionRecord>,
    ) -> Vec<f32> {
        let mut out = Vec::new();
        self.aggregate_round_into(updates, round, cost, telem, fault_log, susp_log, &mut out);
        out
    }

    /// [`Self::aggregate_round`] writing the new global model into a
    /// caller-owned buffer. Byte-identical to the allocating path: same
    /// RNG stream order, same cost accounting, same event sequence —
    /// the only difference is that every intermediate buffer (carried
    /// rows, member-index scratch, aggregation inputs, the per-rule
    /// scratch) comes from the engine's [`RoundWorkspace`] arena.
    #[allow(clippy::too_many_arguments)]
    pub fn aggregate_round_into(
        &mut self,
        updates: &[Vec<f32>],
        round: usize,
        cost: &mut CostCounters,
        telem: &Telemetry,
        fault_log: &mut Vec<FaultRecord>,
        susp_log: &mut Vec<SuspicionRecord>,
        out: &mut Vec<f32>,
    ) {
        let exp = self.exp;
        let cfg = exp.config();
        let h = &exp.hierarchy;
        let bottom = h.bottom_level();
        let model_bytes = (updates[0].len() * 4) as u64;
        // The workspace leaves the engine for the duration of the round
        // so layer hooks can borrow `self` freely; restored at the
        // single exit below. Disjoint-field borrows of `ws` (carried vs
        // next vs scratch) coexist because it is a local.
        let mut ws = std::mem::take(&mut self.workspace);
        ws.ensure_aggregators(cfg);
        exp.active_mask_into(round, &mut ws.active);
        // Which global client each cohort slot is bound to this round
        // (identity without sampling). All topological work below stays
        // on slots; identity-bound lookups map through this binding.
        exp.cohort_into(round, &mut ws.cohort);

        let mut ctx = RoundCtx {
            round,
            model_bytes,
            cost,
            telem: TelemetryLayer::new(telem),
            fault_log,
            susp_log,
            convicted: Vec::new(),
            deadline_us: cfg.async_rounds.as_ref().map(|a| a.deadline_us),
            staleness_bound_us: cfg
                .async_rounds
                .as_ref()
                .map(|a| a.staleness_bound_us)
                .unwrap_or(0),
        };
        for layer in self.layers_mut() {
            layer.begin_aggregate(round);
        }
        ctx.cost.absent += ws.active.iter().filter(|a| !**a).count() as u64;
        ctx.telem.churn_absences(round, &ws.active);

        let wants_verdicts = self.layers().any(RoundLayer::wants_verdicts);

        // carried[slot] = the model this node carries upward: its local
        // update at the bottom, the partial aggregate of the cluster it
        // leads above.
        ws.carried.resize_with(updates.len(), Vec::new);
        for (c, u) in ws.carried.iter_mut().zip(updates) {
            c.clear();
            c.extend_from_slice(u);
        }

        // Partial aggregation: levels L down to 1.
        for l in (1..=bottom).rev() {
            let level = h.level(l);
            // `next` starts as this level's copy of `carried`;
            // `clone_from` reuses the outer and per-row capacity.
            ws.next.clone_from(&ws.carried);
            let mut inputs = ws.refs.take();
            for (ci, cluster) in level.clusters.iter().enumerate() {
                let leader = cluster.leader();
                let expected = if l == bottom {
                    cluster.members.iter().filter(|&&m| ws.active[m]).count()
                } else {
                    cluster.len()
                };
                let mut cl = ClusterCtx {
                    level: l,
                    bottom,
                    index: ci,
                    members: &cluster.members,
                    leader,
                    expected,
                    active: &ws.active,
                    collector: leader,
                    cohort: &ws.cohort,
                };
                let mut choice = None;
                for layer in self.layers_mut() {
                    if let Some(c) = layer.select_collector(&mut ctx, &cl) {
                        choice = Some(c);
                        break;
                    }
                }
                match choice {
                    Some(CollectorChoice::SkipCluster) => continue,
                    Some(CollectorChoice::Collect { device }) => cl.collector = device,
                    None => {}
                }

                // Churn removes absent bottom members; the layers then
                // take out whatever crashed, partitioned, quarantined
                // or withholding members remain.
                ws.order.clear();
                ws.order.extend(
                    (0..cluster.len())
                        .filter(|&mi| l != bottom || ws.active[cluster.members[mi]]),
                );
                for layer in self.layers_mut() {
                    layer.filter_members(&mut ctx, &cl, &mut ws.order);
                }
                if ws.order.is_empty() {
                    for layer in self.layers_mut() {
                        layer.cluster_skipped(&mut ctx, &cl);
                    }
                    continue;
                }

                // The quorum keeps the first ⌈φ·present⌉ of a seeded
                // random arrival order (Algorithm 4's wait-until-quorum)
                // — or, under a deadline policy, whatever the collection
                // buffer admitted by first-of {quorum, deadline} with
                // its τ-bounded staleness window (DESIGN.md §12).
                let mut rng = rng_for_n(cfg.seed, &[round as u64, l as u64, ci as u64, 0xA221]);
                ws.order.shuffle(&mut rng);
                for layer in self.layers() {
                    layer.reorder_arrivals(round, &cl, &mut ws.order);
                }
                let quorum = quorum_size(cfg.quorum, ws.order.len());
                let policy = self
                    .layers()
                    .find_map(|ly| ly.collector_policy(round, &cl))
                    .unwrap_or_else(|| match &cfg.async_rounds {
                        Some(a) => CollectorPolicy::Deadline {
                            deadline_us: a.deadline_for(l),
                            staleness_bound_us: a.staleness_bound_us,
                        },
                        None => CollectorPolicy::WaitForQuorum,
                    });
                ws.kept.clear();
                let (weights, lateness): (Option<Vec<f32>>, Option<Vec<f64>>) = match policy {
                    CollectorPolicy::WaitForQuorum => {
                        ws.kept
                            .extend_from_slice(&ws.order[..quorum.min(ws.order.len())]);
                        ws.kept.sort_unstable();
                        (None, None)
                    }
                    CollectorPolicy::Deadline {
                        deadline_us,
                        staleness_bound_us,
                    } => {
                        let slots: Vec<usize> =
                            ws.order.iter().map(|&mi| cluster.members[mi]).collect();
                        let buf = self.close_deadline_buffer(
                            &mut ctx,
                            &cl,
                            &slots,
                            quorum,
                            deadline_us,
                            staleness_bound_us,
                        );
                        // Canonical member-index order, with weights
                        // and staleness evidence kept aligned.
                        let mut triples: Vec<(usize, f32, f64)> = buf
                            .admitted
                            .iter()
                            .zip(&buf.weights)
                            .zip(&buf.lateness_frac)
                            .map(|((&pos, &w), &f)| (ws.order[pos], w, f))
                            .collect();
                        triples.sort_unstable_by_key(|t| t.0);
                        ws.kept.extend(triples.iter().map(|t| t.0));
                        let weights = triples.iter().map(|t| t.1).collect();
                        let lateness = triples.iter().map(|t| t.2).collect();
                        (Some(weights), Some(lateness))
                    }
                };
                if ws.kept.len() < quorum {
                    // A deadline fired below quorum: sanctioned degraded
                    // close, mirroring the fault layer's record shape.
                    ctx.fault_log.push(FaultRecord {
                        round,
                        kind: "degraded_quorum".into(),
                        detail: format!(
                            "level {l} cluster {ci}: deadline closed with {alive} of quorum {quorum}",
                            alive = ws.kept.len()
                        ),
                    });
                    ctx.telem
                        .degraded_quorum(round, l, ci, ws.kept.len(), cl.expected);
                }
                inputs.clear();
                inputs.extend(
                    ws.kept
                        .iter()
                        .map(|&mi| ws.carried[cluster.members[mi]].as_slice()),
                );
                // Acceptance verdicts attach to *identities*: the global
                // client ids behind the kept slots.
                ws.kept_devices.clear();
                ws.kept_devices.extend(
                    ws.kept
                        .iter()
                        .map(|&mi| ws.cohort[cluster.members[mi]]),
                );
                let want_verdict = wants_verdicts && l == bottom;

                // The partial lands directly in `next[leader]` — the
                // BRA arm aggregates into it, the CBA arm swaps the
                // decided vector in (recycling the displaced buffer).
                let mut verdict = match &cfg.levels[l] {
                    LevelAgg::Bra(kind) => {
                        // Members upload to the collector; the partial
                        // broadcasts back as far as it can reach
                        // (Algorithm 3). `kept` is exactly the quorum on
                        // the synchronous path; a deadline buffer may
                        // admit more (τ-late) or fewer (degraded close).
                        let reach = self
                            .layers()
                            .find_map(|ly| ly.broadcast_reach(round, &cl))
                            .unwrap_or(cluster.len() as u64);
                        ctx.charge_transfers(l, ws.kept.len() as u64 + reach);
                        ws.level_aggs[l]
                            .as_deref()
                            .expect("BRA level has a prebuilt aggregator")
                            .aggregate_into(
                                &inputs,
                                weights.as_deref(),
                                &mut ws.next[leader],
                                &mut ws.agg,
                            );
                        want_verdict.then(|| evidence::judge(kind, &inputs))
                    }
                    LevelAgg::Cba(kind) => {
                        let byz: Vec<bool> = ws
                            .kept
                            .iter()
                            .map(|&mi| exp.protocol_byzantine(ws.cohort[cluster.members[mi]]))
                            .collect();
                        let own: Vec<Vec<f32>> = inputs.iter().map(|i| i.to_vec()).collect();
                        let eval = hfl_consensus::DistanceEvaluator::new(&own);
                        let mech = kind.build();
                        let decision = mech.decide(&inputs, &byz, &eval, &mut rng);
                        ctx.charge_consensus(l, ci, mech.name(), &decision);
                        // Consensus exclusion is the CBA acceptance
                        // verdict: excluded inputs are struck worst.
                        let verdict = want_verdict.then(|| {
                            let mut acc = Acceptance {
                                accepted: vec![true; ws.kept.len()],
                                strikes: vec![0.0; ws.kept.len()],
                            };
                            for &p in &decision.excluded {
                                acc.accepted[p] = false;
                                acc.strikes[p] = evidence::STRIKE_WORST;
                            }
                            acc
                        });
                        ws.pool
                            .put(std::mem::replace(&mut ws.next[leader], decision.decided));
                        verdict
                    }
                };
                // Lateness is acceptance evidence too: τ-late inputs
                // pick up staleness strikes on top of value strikes.
                if let (Some(v), Some(frac)) = (verdict.as_mut(), lateness.as_ref()) {
                    evidence::judge_staleness(v, frac);
                }
                if let Some(v) = &verdict {
                    for layer in self.layers_mut() {
                        layer.observe_verdict(&cl, &ws.kept_devices, v);
                    }
                }
                ctx.telem
                    .cluster_aggregated(round, l, ci, ws.kept_devices.len(), quorum);

                // What goes upward may differ from what the members saw
                // (equivocation); the audit sees both sides.
                let up = self
                    .layers()
                    .find_map(|ly| ly.upward_value(&cl, &ws.next[leader]));
                {
                    let up_ref: &[f32] = up.as_deref().unwrap_or(&ws.next[leader]);
                    for layer in self.layers_mut() {
                        layer.audit_cluster(&mut ctx, &cl, &ws.next[leader], up_ref);
                    }
                }
                if let Some(u) = up {
                    ws.pool.put(std::mem::replace(&mut ws.next[leader], u));
                }
                for layer in self.layers_mut() {
                    layer.after_cluster(&mut ctx, &cl);
                }
            }
            ws.refs.put(inputs);
            std::mem::swap(&mut ws.carried, &mut ws.next);
        }

        // Global aggregation at the top cluster (Algorithm 6).
        let top = &h.level(0).clusters[0];
        let top_cl = ClusterCtx {
            level: 0,
            bottom,
            index: 0,
            members: &top.members,
            leader: top.leader(),
            expected: top.len(),
            active: &ws.active,
            collector: top.leader(),
            cohort: &ws.cohort,
        };
        ws.final_slots.clear();
        let mut top_decided = false;
        for layer in self.layers_mut() {
            if layer.select_top(&mut ctx, &top_cl, &mut ws.final_slots) {
                top_decided = true;
                break;
            }
        }
        if !top_decided {
            ws.final_slots.extend_from_slice(&top.members);
        }
        // The global collector runs the same deadline buffer over the
        // surviving top slots (Algorithm 6 under DESIGN.md §12); the
        // synchronous path keeps every proposal, reported as its own
        // quorum.
        let top_policy = self
            .layers()
            .find_map(|ly| ly.collector_policy(round, &top_cl))
            .unwrap_or_else(|| match &cfg.async_rounds {
                Some(a) => CollectorPolicy::Deadline {
                    deadline_us: a.deadline_for(0),
                    staleness_bound_us: a.staleness_bound_us,
                },
                None => CollectorPolicy::WaitForQuorum,
            });
        let (top_weights, top_quorum): (Option<Vec<f32>>, usize) = match top_policy {
            CollectorPolicy::WaitForQuorum => (None, ws.final_slots.len()),
            CollectorPolicy::Deadline {
                deadline_us,
                staleness_bound_us,
            } => {
                let quorum = quorum_size(cfg.quorum, ws.final_slots.len());
                let buf = self.close_deadline_buffer(
                    &mut ctx,
                    &top_cl,
                    &ws.final_slots,
                    quorum,
                    deadline_us,
                    staleness_bound_us,
                );
                let mut pairs: Vec<(usize, f32)> = buf
                    .admitted
                    .iter()
                    .zip(&buf.weights)
                    .map(|(&pos, &w)| (ws.final_slots[pos], w))
                    .collect();
                pairs.sort_unstable_by_key(|p| p.0);
                if pairs.len() < quorum {
                    ctx.fault_log.push(FaultRecord {
                        round,
                        kind: "degraded_quorum".into(),
                        detail: format!(
                            "level 0 cluster 0: deadline closed with {alive} of quorum {quorum}",
                            alive = pairs.len()
                        ),
                    });
                    ctx.telem
                        .degraded_quorum(round, 0, 0, pairs.len(), top_cl.expected);
                }
                ws.final_slots.clear();
                ws.final_slots.extend(pairs.iter().map(|p| p.0));
                (Some(pairs.iter().map(|p| p.1).collect()), quorum)
            }
        };
        let mut proposals = ws.refs.take();
        proposals.extend(
            ws.final_slots
                .iter()
                .map(|&dev| ws.carried[dev].as_slice()),
        );
        let n_proposals = proposals.len();
        let mut rng = rng_for_n(cfg.seed, &[round as u64, 0x601, 0xA221]);
        match &cfg.levels[0] {
            LevelAgg::Bra(_) => {
                ctx.charge_transfers(0, (2 * n_proposals) as u64);
                ws.level_aggs[0]
                    .as_deref()
                    .expect("BRA level has a prebuilt aggregator")
                    .aggregate_into(&proposals, top_weights.as_deref(), out, &mut ws.agg);
            }
            LevelAgg::Cba(kind) => {
                // Validation voting over the test shards (Appendix D.B).
                let shards = exp.task.test.split_even(n_proposals.max(1));
                let eval = AccuracyEvaluator::new(exp.template.clone_box(), shards);
                let byz: Vec<bool> = ws
                    .final_slots
                    .iter()
                    .map(|&dev| exp.protocol_byzantine(ws.cohort[dev]))
                    .collect();
                let mech = kind.build();
                let decision = mech.decide(&proposals, &byz, &eval, &mut rng);
                ctx.charge_consensus(0, 0, mech.name(), &decision);
                out.clear();
                out.extend_from_slice(&decision.decided);
                ws.pool.put(decision.decided);
            }
        }
        ws.refs.put(proposals);
        ctx.telem
            .cluster_aggregated(round, 0, 0, n_proposals, top_quorum);

        // Dissemination: the global model travels one model-transfer
        // per reachable node per level on its way down (Algorithm 5).
        for l in 1..=bottom {
            let per_level = self
                .layers()
                .find_map(|ly| ly.dissemination_reach(round, l))
                .unwrap_or(h.level(l).num_nodes() as u64);
            ctx.charge_transfers(l, per_level);
        }

        // Round close, in stack order: defense convictions and
        // suspicion transitions first, then the adversary adapts.
        for layer in self.layers_mut() {
            layer.close_round(&mut ctx);
        }

        self.workspace = ws;
    }

    /// Closes one deadline-driven collection buffer (DESIGN.md §12).
    ///
    /// `slots` holds the global device ids of the arrival candidates in
    /// draw order (the seeded shuffle); returned positions index that
    /// slice. Arrival times come from the dedicated [`ARRIVAL_STREAM`]
    /// RNG — exactly one draw per candidate regardless of stall state,
    /// so adversary decisions never shift another candidate's sample —
    /// scaled through [`RoundLayer::arrival_delay_factor`] (straggler
    /// windows) and the experiment's per-client heterogeneity profile,
    /// all in integer µs.
    /// [`RoundLayer::stalls_until_stale`] candidates are re-timed to
    /// `close + τ`, just inside the staleness bound.
    ///
    /// The buffer closes at first-of `{quorum-th non-stalled arrival,
    /// deadline}`. Liveness floor: a buffer with a candidate never
    /// closes empty — when nobody stalls (stalled candidates are always
    /// admitted) and every arrival lands beyond `close + τ`, the close
    /// extends to the earliest arrival.
    fn close_deadline_buffer(
        &self,
        ctx: &mut RoundCtx<'_>,
        cl: &ClusterCtx<'_>,
        slots: &[usize],
        quorum: usize,
        deadline_us: u64,
        staleness_bound_us: u64,
    ) -> BufferOutcome {
        let cfg = self.exp.config();
        let round = ctx.round;
        let delay = cfg
            .async_rounds
            .as_ref()
            .map(|a| a.link_delay.clone())
            .unwrap_or(DelayModel::Constant { micros: 0 });
        let tags: Vec<u64> = if cl.level == 0 {
            vec![round as u64, 0x601, ARRIVAL_STREAM]
        } else {
            vec![
                round as u64,
                cl.level as u64,
                cl.index as u64,
                ARRIVAL_STREAM,
            ]
        };
        let mut rng = rng_for_n(cfg.seed, &tags);
        let mut arrivals: Vec<(u64, usize)> = Vec::with_capacity(slots.len());
        let mut stalled = vec![false; slots.len()];
        for (pos, &slot) in slots.iter().enumerate() {
            let raw = delay.sample(&mut rng);
            let factor = self
                .layers()
                .find_map(|ly| ly.arrival_delay_factor(round, slot))
                .unwrap_or(1.0);
            // Device heterogeneity stacks multiplicatively on top of any
            // straggler window: a slow device is slow every round.
            // Straggler windows are topological (slot); the profile is
            // identity-bound (the global client behind the slot).
            let factor = factor * self.exp.arrival_profile(cl.global(slot));
            let t = raw.saturating_scale(factor).as_micros();
            stalled[pos] = self
                .layers()
                .any(|ly| ly.stalls_until_stale(round, cl, slot));
            arrivals.push((t, pos));
        }

        // Close time: the quorum-th non-stalled arrival if it beats the
        // deadline, the deadline otherwise.
        let mut non_stalled: Vec<u64> = arrivals
            .iter()
            .filter(|&&(_, pos)| !stalled[pos])
            .map(|&(t, _)| t)
            .collect();
        non_stalled.sort_unstable();
        let quorum_time =
            (quorum > 0 && non_stalled.len() >= quorum).then(|| non_stalled[quorum - 1]);
        let (mut close_us, deadline_fired) = match quorum_time {
            Some(qt) if qt <= deadline_us => (qt, false),
            _ => (deadline_us, true),
        };
        if !stalled.iter().any(|&s| s) {
            if let Some(&first) = non_stalled.first() {
                if first > close_us.saturating_add(staleness_bound_us) {
                    close_us = first;
                }
            }
        }
        // Stalled uploads land just inside τ of whatever close the
        // honest arrivals produced.
        let stall_t = close_us.saturating_add(staleness_bound_us);
        for a in arrivals.iter_mut() {
            if stalled[a.1] {
                a.0 = stall_t;
            }
        }
        arrivals.sort_unstable();

        let mut out = BufferOutcome {
            admitted: Vec::new(),
            weights: Vec::new(),
            lateness_frac: Vec::new(),
        };
        let mut on_time = 0usize;
        // (device, lateness, admitted weight / dropped) in arrival order.
        let mut stale: Vec<(usize, u64, Option<f32>)> = Vec::new();
        for &(t, pos) in &arrivals {
            if t <= close_us {
                out.admitted.push(pos);
                out.weights.push(1.0);
                out.lateness_frac.push(0.0);
                on_time += 1;
            } else {
                let late = t - close_us;
                if late <= staleness_bound_us {
                    let w = cfg.correction.admission_weight(late, staleness_bound_us);
                    out.admitted.push(pos);
                    out.weights.push(w);
                    out.lateness_frac
                        .push(late as f64 / staleness_bound_us as f64);
                    stale.push((slots[pos], late, Some(w)));
                } else {
                    stale.push((slots[pos], late, None));
                }
            }
        }
        ctx.telem.buffer_closed(
            round,
            cl.level,
            cl.index,
            deadline_fired,
            close_us,
            on_time,
            slots.len(),
        );
        for (device, late, w) in stale {
            match w {
                Some(w) => {
                    ctx.telem
                        .stale_admitted(round, cl.level, cl.index, device, late, f64::from(w))
                }
                None => ctx
                    .telem
                    .stale_dropped(round, cl.level, cl.index, device, late),
            }
        }
        out
    }
}
