//! The layer hook contract: what a pluggable round layer may observe
//! and decide at each phase of [`super::RoundEngine`]'s canonical round.
//!
//! A layer is consulted at fixed points; every hook defaults to a
//! no-op, so a layer only implements the phases it cares about. Hooks
//! come in two flavours:
//!
//! * **Decision hooks** are first-claim-wins in stack order
//!   ([`RoundLayer::select_collector`], [`RoundLayer::broadcast_reach`],
//!   [`RoundLayer::upward_value`], [`RoundLayer::select_top`],
//!   [`RoundLayer::dissemination_reach`],
//!   [`RoundLayer::training_attack`]). Most return `Option<T>`;
//!   `select_top` fills a caller buffer and claims with `true`.
//!   Declining everywhere falls back to the engine's fault-free
//!   default.
//! * **Filter/observer hooks** run for *every* layer in stack order
//!   ([`RoundLayer::filter_members`], [`RoundLayer::observe_verdict`],
//!   [`RoundLayer::audit_cluster`], [`RoundLayer::close_round`], ...):
//!   each layer sees the previous layer's output.
//!
//! The stack order is fixed by [`super::RoundEngine::for_experiment`]:
//! faults first (the physical world acts before anyone reasons about
//! it), then the defense, then the adversary (which reacts to what the
//! defense left standing).

use hfl_attacks::ModelAttack;
use hfl_robust::evidence::Acceptance;
use hfl_snapshot::LayerState;
use hfl_telemetry::{FaultRecord, SuspicionRecord};

use super::cost::CostCounters;
use super::telemetry::TelemetryLayer;

/// Mutable per-round context shared by the engine and its layers: the
/// cost ledger, the telemetry emitter, and the manifest logs.
pub struct RoundCtx<'r> {
    /// The global round index.
    pub round: usize,
    /// Payload size of one model transfer (`4 · d` bytes).
    pub model_bytes: u64,
    /// The run's cost accumulators.
    pub cost: &'r mut CostCounters,
    /// Structured-event emitter (no-ops when recording is disabled).
    pub telem: TelemetryLayer<'r>,
    /// Manifest fault log for this round (filled even when event
    /// recording is disabled, like the per-round time series).
    pub fault_log: &'r mut Vec<FaultRecord>,
    /// Manifest suspicion log for the run.
    pub susp_log: &'r mut Vec<SuspicionRecord>,
    /// Leaders convicted of equivocation during this round's close —
    /// written by the defense layer's audit, consumed by layers later
    /// in the stack (the adversary repairs convicted equivocators).
    pub convicted: Vec<usize>,
    /// The round's base collection deadline, µs from buffer open —
    /// `None` is the synchronous barrier (deadline = ∞). Per-tier
    /// overrides refine this per cluster via
    /// [`RoundLayer::collector_policy`] / the config fallback.
    pub deadline_us: Option<u64>,
    /// The round's staleness bound τ, µs past buffer close (0 when
    /// synchronous).
    pub staleness_bound_us: u64,
}

/// One cluster aggregation site, as the hooks see it.
pub struct ClusterCtx<'c> {
    /// Aggregation level (0 = top).
    pub level: usize,
    /// The hierarchy's bottom level.
    pub bottom: usize,
    /// Cluster index within the level.
    pub index: usize,
    /// Member slot ids (global node ids).
    pub members: &'c [usize],
    /// The slot that owns the collection role.
    pub leader: usize,
    /// How many members were expected before faults (the churn-present
    /// count at the bottom, the full cluster above).
    pub expected: usize,
    /// This round's churn presence mask over all clients.
    pub active: &'c [bool],
    /// Physical device collecting for this cluster (differs from
    /// `leader` after a failover).
    pub collector: usize,
    /// The global client id bound to each cohort slot this round,
    /// ascending (identity — `cohort[i] == i` — without sampling).
    /// Topological state (members, leaders, churn, faults) lives on
    /// slots; identity-bound state (malicious flags, suspicion,
    /// convictions, heterogeneity) maps through [`ClusterCtx::global`].
    pub cohort: &'c [usize],
}

impl ClusterCtx<'_> {
    /// True at the hierarchy's bottom (client) level, where training
    /// updates enter and most layers act.
    pub fn at_bottom(&self) -> bool {
        self.level == self.bottom
    }

    /// The global client id bound to cohort slot `slot` this round.
    pub fn global(&self, slot: usize) -> usize {
        self.cohort[slot]
    }
}

/// How an aggregation point collects its members' updates (DESIGN.md
/// §12): the synchronous barrier, or a deadline-driven buffer closing
/// on first-of `{quorum, deadline}` with a τ-bounded staleness window.
/// Decided per cluster through the first-`Some`-wins
/// [`RoundLayer::collector_policy`] hook; the engine's fallback derives
/// from `HflConfig::async_rounds` (`None` ⇒ `WaitForQuorum`, the
/// `deadline = ∞` special case).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectorPolicy {
    /// Block until the quorum's updates are in — the synchronous
    /// barrier every config predating async rounds runs.
    WaitForQuorum,
    /// Admit arrivals as they come; close at
    /// `min(deadline, quorum arrival time)`. Arrivals within
    /// `staleness_bound` µs after close are admitted at discounted
    /// weight, later ones dropped.
    Deadline {
        /// Buffer deadline, µs from open.
        deadline_us: u64,
        /// Staleness bound τ, µs past close.
        staleness_bound_us: u64,
    },
}

/// A layer's answer to "who collects for this cluster?".
pub enum CollectorChoice {
    /// Proceed with this physical device as the collector.
    Collect {
        /// The collecting device id.
        device: usize,
    },
    /// Nobody can collect; the layer has recorded why and the engine
    /// skips the cluster for this round.
    SkipCluster,
}

/// A pluggable layer of the round engine. All hooks default to no-ops;
/// see the module docs for stack-order semantics.
#[allow(unused_variables)]
pub trait RoundLayer {
    /// Short stable identifier, used in introspection and docs.
    fn name(&self) -> &'static str;

    /// Round-open phase, before local training. Called once per round
    /// by [`super::RoundEngine::run_round`] (not by the bare
    /// aggregation entry point): scheduled-fault activation is
    /// announced here.
    fn open_round(&mut self, ctx: &mut RoundCtx<'_>) {}

    /// Reset per-aggregation state (slot freshness, per-round audit and
    /// feedback accumulators). Called at the top of every aggregation.
    fn begin_aggregate(&mut self, round: usize) {}

    /// The crafted model attack malicious clients substitute this
    /// round, when this layer steers one (the adaptive adversary).
    fn training_attack(&self) -> Option<ModelAttack> {
        None
    }

    /// True when this layer wants per-input acceptance verdicts
    /// ([`RoundLayer::observe_verdict`]) computed at the bottom level.
    fn wants_verdicts(&self) -> bool {
        false
    }

    /// Choose the physical collector for a cluster (`cl.collector`
    /// still holds the default, the leader slot). A fault layer
    /// promotes a deputy over a crashed leader here.
    fn select_collector(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        cl: &ClusterCtx<'_>,
    ) -> Option<CollectorChoice> {
        None
    }

    /// Remove members that cannot contribute (crashed, partitioned,
    /// quarantined, withholding...). `present` holds member indices
    /// into `cl.members`; churn-absent members are already gone.
    fn filter_members(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        cl: &ClusterCtx<'_>,
        present: &mut Vec<usize>,
    ) {
    }

    /// Reorder the shuffled arrival order (stragglers arrive last).
    fn reorder_arrivals(&self, round: usize, cl: &ClusterCtx<'_>, order: &mut Vec<usize>) {}

    /// How this cluster collects (first `Some` wins). `None` everywhere
    /// falls back to the config's `async_rounds` policy.
    fn collector_policy(&self, round: usize, cl: &ClusterCtx<'_>) -> Option<CollectorPolicy> {
        None
    }

    /// Multiplier on a member slot's synthesized link delay under a
    /// deadline policy (first `Some` wins; 1.0 otherwise). The fault
    /// layer routes `StragglerWindow` factors through here so
    /// stragglers actually risk missing deadlines.
    fn arrival_delay_factor(&self, round: usize, slot: usize) -> Option<f64> {
        None
    }

    /// True when this layer makes the member slot stall its upload
    /// until *just inside* the staleness bound τ of the cluster's
    /// buffer (the `StalenessExploit` adversary). Any layer answering
    /// true stalls the slot.
    fn stalls_until_stale(&self, round: usize, cl: &ClusterCtx<'_>, slot: usize) -> bool {
        false
    }

    /// How many members the leader's partial-broadcast reaches (BRA
    /// levels only). Default: the whole cluster.
    fn broadcast_reach(&self, round: usize, cl: &ClusterCtx<'_>) -> Option<u64> {
        None
    }

    /// Observe the per-input acceptance verdict of a bottom cluster's
    /// aggregation. `kept[i]` is the device whose update was input `i`.
    /// The defense turns strikes into suspicion; the adversary reads
    /// acceptance as its feedback signal.
    fn observe_verdict(&mut self, cl: &ClusterCtx<'_>, kept: &[usize], verdict: &Acceptance) {}

    /// The value the cluster's leader actually sends upward, when it
    /// differs from the honest partial (equivocation).
    fn upward_value(&self, cl: &ClusterCtx<'_>, partial: &[f32]) -> Option<Vec<f32>> {
        None
    }

    /// Audit the cluster's consensus/echo phase: `partial` is what the
    /// members saw, `up` what went upward. The defense collects echo
    /// digests here (and pays their cost).
    fn audit_cluster(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        cl: &ClusterCtx<'_>,
        partial: &[f32],
        up: &[f32],
    ) {
    }

    /// The cluster aggregated successfully (slot bookkeeping).
    fn after_cluster(&mut self, ctx: &mut RoundCtx<'_>, cl: &ClusterCtx<'_>) {}

    /// The cluster produced nothing this round (no collector or no
    /// contributors survived the filters).
    fn cluster_skipped(&mut self, ctx: &mut RoundCtx<'_>, cl: &ClusterCtx<'_>) {}

    /// Choose which top-cluster slots propose to the global
    /// aggregation by filling `out` (handed in empty) and returning
    /// `true` to claim the decision; the first claiming layer in stack
    /// order wins. Declining everywhere (`false`, the default) keeps
    /// every top slot. The fill-a-buffer shape (rather than returning
    /// `Option<Vec<usize>>`) lets the engine reuse one workspace buffer
    /// across rounds on the zero-allocation hot path.
    fn select_top(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        top: &ClusterCtx<'_>,
        out: &mut Vec<usize>,
    ) -> bool {
        false
    }

    /// How many level-`level` nodes the dissemination broadcast
    /// reaches. Default: all of them.
    fn dissemination_reach(&self, round: usize, level: usize) -> Option<u64> {
        None
    }

    /// Round-close phase, after dissemination: echo convictions,
    /// suspicion transitions, adversary adaptation — in stack order, so
    /// the defense's convictions (via [`RoundCtx::convicted`]) are
    /// visible to the adversary's close.
    fn close_round(&mut self, ctx: &mut RoundCtx<'_>) {}

    /// This layer's cross-round state at the top of `round` (that many
    /// rounds completed, none in flight), for an engine checkpoint.
    /// `None` means the layer is stateless across rounds and needs
    /// nothing restored on resume.
    fn snapshot_state(&self, round: usize) -> Option<LayerState> {
        None
    }

    /// Restores the state captured by [`RoundLayer::snapshot_state`] at
    /// the same `round`, onto a freshly built layer. The default
    /// rejects: a layer that snapshots must also restore, and a
    /// stateless layer must never be handed state.
    fn restore_state(&mut self, round: usize, state: &LayerState) -> Result<(), String> {
        Err(format!(
            "layer '{}' has no restorable state (got {})",
            self.name(),
            state.layer_name()
        ))
    }
}
