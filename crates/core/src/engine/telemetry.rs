//! The telemetry layer: one emitter owning every structured event the
//! round engine produces, so event names, payloads and the
//! enabled-check discipline live in a single place instead of being
//! copied into each round path.
//!
//! Unlike the other layers this one is not in the [`super::RoundLayer`]
//! stack — it is carried inside [`super::RoundCtx`] and invoked by the
//! engine and the layers alike. Every method no-ops when recording is
//! disabled; registry counters (which feed the manifest's metrics
//! snapshot) are kept regardless, matching the pre-engine behaviour.

use hfl_consensus::ConsensusOutcome;
use hfl_telemetry::{Event, Registry, Telemetry};

/// Event emitter + registry handle for one run.
#[derive(Clone, Copy)]
pub struct TelemetryLayer<'t> {
    telem: &'t Telemetry,
}

impl<'t> TelemetryLayer<'t> {
    /// Wraps a telemetry bundle.
    pub fn new(telem: &'t Telemetry) -> Self {
        Self { telem }
    }

    /// True when structured events are being recorded.
    pub fn enabled(&self) -> bool {
        self.telem.enabled()
    }

    /// The metrics registry (always live, even when events are off).
    pub fn registry(&self) -> &'t Registry {
        self.telem.registry()
    }

    /// One `ChurnAbsence` per client absent under churn this round.
    pub fn churn_absences(&self, round: usize, active: &[bool]) {
        if !self.telem.enabled() {
            return;
        }
        for (client, present) in active.iter().enumerate() {
            if !present {
                self.telem.emit(Event::ChurnAbsence { round, client });
            }
        }
    }

    /// A batch of model-bearing transfers at one level.
    pub fn messages_sent(&self, round: usize, level: usize, count: u64, bytes: u64) {
        if self.telem.enabled() {
            self.telem.emit(Event::MessagesSent {
                round,
                level,
                count,
                bytes,
            });
        }
    }

    /// A consensus outcome's transfers and exclusions, plus the
    /// per-mechanism registry metrics.
    pub fn consensus_outcome(
        &self,
        round: usize,
        level: usize,
        cluster: usize,
        mechanism: &'static str,
        out: &ConsensusOutcome,
    ) {
        hfl_consensus::telemetry::record_outcome(self.telem.registry(), mechanism, out);
        if !self.telem.enabled() {
            return;
        }
        self.telem.emit(Event::MessagesSent {
            round,
            level,
            count: out.messages,
            bytes: out.bytes,
        });
        for &proposal in &out.excluded {
            self.telem.emit(Event::ProposalExcluded {
                round,
                level,
                cluster,
                proposal,
            });
        }
    }

    /// A cluster finished aggregating.
    pub fn cluster_aggregated(
        &self,
        round: usize,
        level: usize,
        cluster: usize,
        inputs: usize,
        quorum: usize,
    ) {
        if self.telem.enabled() {
            self.telem.emit(Event::ClusterAggregated {
                round,
                level,
                cluster,
                inputs,
                quorum,
            });
        }
    }

    /// A scheduled fault activated.
    pub fn fault_injected(&self, round: usize, kind: &str, detail: &str) {
        if self.telem.enabled() {
            self.telem.emit(Event::FaultInjected {
                round,
                kind: kind.to_string(),
                detail: detail.to_string(),
            });
        }
    }

    /// A cluster aggregated with fewer contributors than expected.
    pub fn degraded_quorum(
        &self,
        round: usize,
        level: usize,
        cluster: usize,
        alive: usize,
        expected: usize,
    ) {
        if self.telem.enabled() {
            self.telem.emit(Event::DegradedQuorum {
                round,
                level,
                cluster,
                alive,
                expected,
            });
        }
    }

    /// A deputy was promoted over a failed leader.
    pub fn leader_failover(
        &self,
        round: usize,
        level: usize,
        cluster: usize,
        failed: usize,
        promoted: usize,
    ) {
        if self.telem.enabled() {
            self.telem.emit(Event::LeaderFailover {
                round,
                level,
                cluster,
                failed,
                promoted,
            });
        }
    }

    /// A free-form anomaly.
    pub fn anomaly(&self, kind: &str, detail: String) {
        if self.telem.enabled() {
            self.telem.emit(Event::Anomaly {
                kind: kind.to_string(),
                detail,
            });
        }
    }

    /// A withholding coalition member kept its update back.
    pub fn update_withheld(&self, round: usize, client: usize) {
        if self.telem.enabled() {
            self.telem.emit(Event::UpdateWithheld { round, client });
        }
    }

    /// The echo audit convicted an equivocating leader. The
    /// `hfl_equivocations_total` counter is bumped even when event
    /// recording is off.
    pub fn equivocation_detected(&self, round: usize, level: usize, cluster: usize, leader: usize) {
        self.telem
            .registry()
            .counter("hfl_equivocations_total", &[])
            .inc(1);
        if self.telem.enabled() {
            self.telem.emit(Event::EquivocationDetected {
                round,
                level,
                cluster,
                leader,
            });
        }
    }

    /// The suspicion layer quarantined a client.
    pub fn client_quarantined(&self, round: usize, client: usize, score: f64) {
        if self.telem.enabled() {
            self.telem.emit(Event::ClientQuarantined {
                round,
                client,
                score,
            });
        }
    }

    /// The suspicion layer released a client.
    pub fn client_released(&self, round: usize, client: usize, score: f64) {
        if self.telem.enabled() {
            self.telem.emit(Event::ClientReleased {
                round,
                client,
                score,
            });
        }
    }

    /// An async collection buffer closed. The per-cause close counters
    /// and the buffer-occupancy gauge are kept even when event
    /// recording is off; both are created lazily so synchronous runs
    /// (which never get here) keep their exact metrics snapshot.
    #[allow(clippy::too_many_arguments)]
    pub fn buffer_closed(
        &self,
        round: usize,
        level: usize,
        cluster: usize,
        deadline_fired: bool,
        close_us: u64,
        occupancy: usize,
        expected: usize,
    ) {
        let cause = if deadline_fired { "deadline" } else { "quorum" };
        let name = if deadline_fired {
            "hfl_deadline_closes_total"
        } else {
            "hfl_quorum_closes_total"
        };
        self.telem.registry().counter(name, &[]).inc(1);
        self.telem
            .registry()
            .gauge("hfl_buffer_occupancy", &[])
            .set(occupancy as f64);
        if self.telem.enabled() {
            self.telem.emit(Event::BufferClosed {
                round,
                level,
                cluster,
                cause: cause.to_string(),
                close_us,
                occupancy,
                expected,
            });
        }
    }

    /// A late update was admitted within τ at a discounted weight.
    pub fn stale_admitted(
        &self,
        round: usize,
        level: usize,
        cluster: usize,
        device: usize,
        lateness_us: u64,
        weight: f64,
    ) {
        self.telem
            .registry()
            .counter("hfl_stale_admitted_total", &[])
            .inc(1);
        if self.telem.enabled() {
            self.telem.emit(Event::StaleUpdateAdmitted {
                round,
                level,
                cluster,
                device,
                lateness_us,
                weight,
            });
        }
    }

    /// A late update beyond τ was rejected.
    pub fn stale_dropped(
        &self,
        round: usize,
        level: usize,
        cluster: usize,
        device: usize,
        lateness_us: u64,
    ) {
        self.telem
            .registry()
            .counter("hfl_stale_dropped_total", &[])
            .inc(1);
        if self.telem.enabled() {
            self.telem.emit(Event::StaleUpdateDropped {
                round,
                level,
                cluster,
                device,
                lateness_us,
            });
        }
    }

    /// The adaptive adversary closed its round.
    pub fn attack_adapted(&self, round: usize, magnitude: f64, submitted: u64, accepted: u64) {
        if self.telem.enabled() {
            self.telem.emit(Event::AttackAdapted {
                round,
                magnitude,
                submitted,
                accepted,
            });
        }
    }
}
