//! The round cost ledger: the `CostCounters` accumulators plus the one
//! shared set of charging helpers every transfer in a round goes
//! through. Before the engine, the BRA/CBA/dissemination accounting
//! blocks were copied into each of the three round paths; now a
//! message is counted (and its `MessagesSent` event emitted) in exactly
//! one place per kind.

use hfl_consensus::ConsensusOutcome;
use hfl_simnet::topology::Hierarchy;

use super::layer::RoundCtx;
use crate::config::{HflConfig, LevelAgg};

/// Mutable cost accumulators threaded through a round of aggregation.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostCounters {
    /// Model-bearing messages.
    pub messages: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Proposals excluded by consensus.
    pub excluded: u64,
    /// Client-round absences from churn.
    pub absent: u64,
    /// Bottom-level updates lost to injected faults.
    pub faulted: u64,
    /// Updates excluded by the suspicion layer's quarantine.
    pub quarantined: u64,
    /// Updates a withholding coalition kept back.
    pub withheld: u64,
}

impl CostCounters {
    /// Per-round delta: this ledger minus a snapshot taken at round
    /// start (counters are monotone, so plain subtraction is safe).
    pub fn since(&self, before: &CostCounters) -> CostCounters {
        CostCounters {
            messages: self.messages - before.messages,
            bytes: self.bytes - before.bytes,
            excluded: self.excluded - before.excluded,
            absent: self.absent - before.absent,
            faulted: self.faulted - before.faulted,
            quarantined: self.quarantined - before.quarantined,
            withheld: self.withheld - before.withheld,
        }
    }
}

/// Closed-form message count of one fault-free round (Algorithms 3–5):
/// what the ledger must report when nothing removes contributors — no
/// faults, no churn, no quarantine, no withholding. Per BRA cluster at
/// levels `1..=bottom` the leader collects `⌈φ·|C|⌉` uploads and
/// broadcasts the partial to the whole cluster; the top aggregation
/// charges an upload and a broadcast per proposal; dissemination then
/// pays one transfer per node per level on the way down.
///
/// Every one of these transfers is a model payload, so the matching
/// byte count is `messages × 4·d`. Returns `None` when any level uses
/// CBA: consensus rounds have outcome-dependent costs (vote traffic,
/// exclusions) with no config-only closed form.
///
/// This is the predictor behind `hfl-oracle`'s accounting-conservation
/// invariant: the fuzzer holds every eligible generated scenario to
/// this count exactly.
pub fn clean_round_messages(cfg: &HflConfig, h: &Hierarchy) -> Option<u64> {
    if cfg.levels.iter().any(|l| matches!(l, LevelAgg::Cba(_))) {
        return None;
    }
    let bottom = h.bottom_level();
    let mut messages = 0u64;
    for l in 1..=bottom {
        for c in &h.level(l).clusters {
            let quorum = hfl_consensus::quorum_size(cfg.quorum, c.len());
            messages += quorum as u64 + c.len() as u64;
        }
    }
    messages += 2 * h.level(0).num_nodes() as u64;
    for l in 1..=bottom {
        messages += h.level(l).num_nodes() as u64;
    }
    Some(messages)
}

impl RoundCtx<'_> {
    /// Charges `count` model-bearing transfers at `level` (each
    /// `model_bytes` on the wire) and emits the `MessagesSent` event.
    /// Used for BRA collect+broadcast and for dissemination.
    pub fn charge_transfers(&mut self, level: usize, count: u64) {
        let bytes = count * self.model_bytes;
        self.cost.messages += count;
        self.cost.bytes += bytes;
        self.telem.messages_sent(self.round, level, count, bytes);
    }

    /// Charges a consensus instance's own accounting (messages, bytes,
    /// exclusions), records its per-mechanism registry metrics, and
    /// emits the `MessagesSent` / `ProposalExcluded` events.
    pub fn charge_consensus(
        &mut self,
        level: usize,
        cluster: usize,
        mechanism: &'static str,
        out: &ConsensusOutcome,
    ) {
        self.telem
            .consensus_outcome(self.round, level, cluster, mechanism, out);
        self.cost.messages += out.messages;
        self.cost.bytes += out.bytes;
        self.cost.excluded += out.excluded.len() as u64;
    }

    /// Charges a bottom cluster's echo-audit digests (8 bytes per
    /// member; cost-only, no event — digests ride on existing links).
    pub fn charge_echo(&mut self, members: usize) {
        let (messages, bytes) = hfl_consensus::echo::echo_cost(members);
        self.cost.messages += messages;
        self.cost.bytes += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AttackCfg, HflConfig, LevelAgg, TopologyCfg};
    use crate::engine::RoundEngine;
    use crate::runner::Experiment;
    use hfl_robust::AggregatorKind;

    /// Every transfer in an all-BRA round goes through
    /// `charge_transfers`, so the ledger must match the closed form of
    /// Algorithms 3–5 exactly. Two bottom clusters of 3 under a top
    /// cluster of 2, full quorum, no churn:
    ///
    /// ```text
    /// bottom:        2 clusters × (3 uploads + 3 broadcasts) = 12
    /// top:           2 proposals × (upload + broadcast)      =  4
    /// dissemination: 6 bottom nodes                          =  6
    /// ```
    #[test]
    fn ledger_pins_the_closed_form_for_a_two_cluster_round() {
        let mut cfg = HflConfig::quick(AttackCfg::None, 9);
        cfg.topology = TopologyCfg::Ecsm {
            total_levels: 2,
            m: 3,
            n_top: 2,
        };
        cfg.levels = vec![LevelAgg::Bra(AggregatorKind::FedAvg); 2];
        cfg.flag_level = 1;
        cfg.quorum = 1.0;
        cfg.churn_leave_prob = 0.0;
        let exp = Experiment::prepare(&cfg);
        let mut engine = RoundEngine::for_experiment(&exp);

        let dim = 10;
        let updates = vec![vec![0.5f32; dim]; 6];
        let telem = hfl_telemetry::Telemetry::disabled();
        let mut cost = CostCounters::default();
        engine.aggregate_round(
            &updates,
            0,
            &mut cost,
            &telem,
            &mut Vec::new(),
            &mut Vec::new(),
        );

        assert_eq!(cost.messages, 12 + 4 + 6);
        assert_eq!(
            clean_round_messages(&cfg, &exp.hierarchy),
            Some(cost.messages),
            "the closed-form predictor must match the ledger"
        );
        assert_eq!(cost.bytes, cost.messages * (dim as u64 * 4));
        assert_eq!(cost.excluded, 0);
        assert_eq!(cost.absent, 0);
        assert_eq!(cost.faulted, 0);
        assert_eq!(cost.quarantined, 0);
        assert_eq!(cost.withheld, 0);
    }

    /// The predictor follows the quorum fraction and refuses CBA levels.
    #[test]
    fn clean_round_predictor_tracks_quorum_and_rejects_cba() {
        let mut cfg = HflConfig::quick(AttackCfg::None, 9);
        cfg.topology = TopologyCfg::Ecsm {
            total_levels: 2,
            m: 4,
            n_top: 2,
        };
        cfg.levels = vec![LevelAgg::Bra(AggregatorKind::FedAvg); 2];
        cfg.flag_level = 1;
        cfg.quorum = 0.5;
        let h = cfg.topology.build(cfg.seed);
        // 2 clusters × (⌈0.5·4⌉ + 4) + 2·2 top + 8 dissemination.
        assert_eq!(clean_round_messages(&cfg, &h), Some(2 * (2 + 4) + 4 + 8));

        cfg.levels[1] = LevelAgg::Cba(hfl_consensus::ConsensusKind::VoteMajority);
        assert_eq!(clean_round_messages(&cfg, &h), None);
    }

    /// `since` reports the monotone delta between two snapshots.
    #[test]
    fn since_subtracts_fieldwise() {
        let before = CostCounters {
            messages: 10,
            bytes: 400,
            excluded: 1,
            ..CostCounters::default()
        };
        let after = CostCounters {
            messages: 25,
            bytes: 1_000,
            excluded: 3,
            absent: 2,
            ..CostCounters::default()
        };
        let d = after.since(&before);
        assert_eq!(d.messages, 15);
        assert_eq!(d.bytes, 600);
        assert_eq!(d.excluded, 2);
        assert_eq!(d.absent, 2);
    }
}
