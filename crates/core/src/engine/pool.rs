//! Round-scoped buffer arena: every model-vector and index buffer the
//! canonical round needs, owned once by the engine and recycled across
//! rounds so the synchronous BRA hot path performs **zero heap
//! allocation in steady state** (the invariant
//! `crates/bench/tests/alloc_regression.rs` pins with the counting
//! allocator).
//!
//! Three pieces:
//!
//! * [`BufferPool`] — an arena of `Vec<f32>` model vectors. `get` hands
//!   out an empty vector with recycled capacity, `put` returns one.
//!   Used for buffers whose ownership genuinely moves (a CBA decision
//!   vector displacing a carried partial, an equivocated upward value).
//! * [`RefPool`] — recycles the *capacity* of `Vec<&[f32]>` input-ref
//!   vectors across rounds. The borrow lifetime changes every round, so
//!   the pool stores the vector with an erased (`'static`) lifetime
//!   while it is empty; handing it out re-binds the lifetime. Sound
//!   because an empty `Vec` owns only capacity — it contains no
//!   references to anything.
//! * [`RoundWorkspace`] — the engine's per-round state: carried/next
//!   model rows, churn and cohort bindings, member-index scratch,
//!   prebuilt per-level BRA aggregators (so `AggregatorKind::build`'s
//!   box allocation happens once, not per cluster per round), the
//!   shared [`AggScratch`], and the training-loop workspace.

use hfl_robust::{AggScratch, Aggregator};

use crate::config::{HflConfig, LevelAgg};
use crate::runner::TrainWorkspace;

/// Arena of reusable `Vec<f32>` model vectors.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<f32>>,
}

impl BufferPool {
    /// An empty vector, reusing pooled capacity when available.
    pub fn get(&mut self) -> Vec<f32> {
        let mut v = self.free.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Returns a vector to the arena for reuse.
    pub fn put(&mut self, v: Vec<f32>) {
        self.free.push(v);
    }
}

/// Recycles the capacity of `Vec<&[f32]>` across borrow lifetimes.
#[derive(Debug, Default)]
pub struct RefPool {
    /// Stored empty, so the `'static` here is never inhabited.
    parked: Vec<&'static [f32]>,
}

impl RefPool {
    /// An empty ref-vector with recycled capacity, usable for any
    /// borrow lifetime.
    pub fn take<'a>(&mut self) -> Vec<&'a [f32]> {
        let mut v = std::mem::take(&mut self.parked);
        v.clear();
        // SAFETY: `v` is empty — it holds no references, only capacity.
        // `Vec<&'a [f32]>` and `Vec<&'static [f32]>` differ only in
        // lifetime and share one layout.
        unsafe { std::mem::transmute::<Vec<&'static [f32]>, Vec<&'a [f32]>>(v) }
    }

    /// Parks a ref-vector's capacity for the next round.
    pub fn put<'a>(&mut self, mut v: Vec<&'a [f32]>) {
        v.clear();
        // SAFETY: emptied above; see `take`.
        self.parked = unsafe { std::mem::transmute::<Vec<&'a [f32]>, Vec<&'static [f32]>>(v) };
    }
}

/// All reusable state of one [`super::RoundEngine`]'s round execution.
///
/// The engine `std::mem::take`s the workspace at the top of an
/// aggregation (so layer hooks can borrow the engine freely) and puts
/// it back at the single exit.
#[derive(Default)]
pub struct RoundWorkspace {
    /// Churn presence mask for the round.
    pub active: Vec<bool>,
    /// Global client bound to each cohort slot.
    pub cohort: Vec<usize>,
    /// `carried[slot]`: the model each node carries upward.
    pub carried: Vec<Vec<f32>>,
    /// The next level's carried rows (swapped with `carried` per level).
    pub next: Vec<Vec<f32>>,
    /// Member-index scratch: the present/arrival-order buffer.
    pub order: Vec<usize>,
    /// Member-index scratch: the quorum's kept members.
    pub kept: Vec<usize>,
    /// Global client ids behind the kept members.
    pub kept_devices: Vec<usize>,
    /// Surviving top-cluster slots for the global aggregation.
    pub final_slots: Vec<usize>,
    /// Input-ref recycler for aggregation calls.
    pub refs: RefPool,
    /// Shared aggregator scratch (distance matrix, rows, columns...).
    pub agg: AggScratch,
    /// Model-vector arena for ownership-moving buffers.
    pub pool: BufferPool,
    /// This round's training outputs, one per cohort slot.
    pub updates: Vec<Vec<f32>>,
    /// The local-training loop's reusable model + SGD buffers.
    pub train: TrainWorkspace,
    /// `level_aggs[l]`: prebuilt aggregator for BRA level `l` (`None`
    /// for CBA levels, which build their mechanism per decision).
    /// Accessed by field in the engine so its borrow stays disjoint
    /// from the carried/next/scratch borrows of the same workspace.
    pub(super) level_aggs: Vec<Option<Box<dyn Aggregator>>>,
    aggs_built: bool,
}

impl RoundWorkspace {
    /// Builds the per-level BRA aggregators once per engine lifetime.
    /// Levels are config-constant, so the boxes never rebuild.
    pub fn ensure_aggregators(&mut self, cfg: &HflConfig) {
        if self.aggs_built {
            return;
        }
        self.level_aggs = cfg
            .levels
            .iter()
            .map(|l| match l {
                LevelAgg::Bra(kind) => Some(kind.build()),
                LevelAgg::Cba(_) => None,
            })
            .collect();
        self.aggs_built = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_pool_recycles_capacity() {
        let mut pool = BufferPool::default();
        let mut v = pool.get();
        v.extend_from_slice(&[1.0, 2.0, 3.0]);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        pool.put(v);
        let w = pool.get();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), cap);
        assert_eq!(w.as_ptr(), ptr, "expected the same allocation back");
    }

    #[test]
    fn ref_pool_recycles_capacity_across_borrows() {
        let mut refs = RefPool::default();
        let rows = [vec![1.0f32; 8], vec![2.0f32; 8]];
        let mut v = refs.take();
        v.extend(rows.iter().map(|r| r.as_slice()));
        let cap = v.capacity();
        refs.put(v);
        drop(rows);
        let other = [vec![3.0f32; 8]];
        let mut v2 = refs.take();
        v2.push(other[0].as_slice());
        assert!(v2.capacity() >= cap.max(1));
        assert_eq!(v2.len(), 1);
    }
}
