//! The correction factor α of Eq. (1) — how a client merges a late-arriving
//! global model into the local model it is already training from a flag
//! partial model:
//!
//! `θ′ = α·θ_G + (1−α)·θ_local`,  α ∈ (0, 1].
//!
//! §III-B gives the two determinants:
//! * **global-model latency** — the staler the global model, the smaller α;
//! * **relative dataset size of θ_F vs θ_G** — the more of the global data
//!   the flag model already represents, the less new information θ_G
//!   carries, so the smaller α.

use serde::{Deserialize, Serialize};

/// Policy computing α from the two paper-specified signals.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CorrectionPolicy {
    /// α when the global model is perfectly fresh and the flag model
    /// carried no information (the ceiling), in `(0, 1]`.
    pub alpha_max: f32,
    /// Floor keeping α strictly positive (Eq. 1 requires α ∈ (0,1]).
    pub alpha_min: f32,
    /// Latency (in local-iteration units) at which the latency discount
    /// halves α's headroom.
    pub latency_half_life: f64,
}

impl Default for CorrectionPolicy {
    fn default() -> Self {
        Self {
            alpha_max: 0.8,
            alpha_min: 0.05,
            latency_half_life: 10.0,
        }
    }
}

impl CorrectionPolicy {
    /// Computes α.
    ///
    /// * `staleness` — how late the global model is, measured in local
    ///   iterations completed since the round's flag model was adopted
    ///   (≥ 0).
    /// * `flag_fraction` — the fraction of the global training data the
    ///   flag partial model was aggregated from, in `[0, 1]` (the paper's
    ///   "relative datasets size of θ_F to θ_G").
    ///
    /// Both signals discount multiplicatively from `alpha_max`, floored
    /// at `alpha_min`:
    /// `α = max(α_min, α_max · 2^(−staleness/half_life) · (1 − flag_fraction))`.
    pub fn alpha(&self, staleness: f64, flag_fraction: f64) -> f32 {
        assert!(staleness >= 0.0, "staleness must be non-negative");
        assert!(
            (0.0..=1.0).contains(&flag_fraction),
            "flag_fraction must be a proportion"
        );
        let latency_discount = (-staleness / self.latency_half_life * std::f64::consts::LN_2).exp();
        let info_gain = 1.0 - flag_fraction;
        let a = self.alpha_max as f64 * latency_discount * info_gain;
        (a as f32).clamp(self.alpha_min, self.alpha_max)
    }

    /// Staleness-discounted admission weight for a late arrival in a
    /// deadline-driven collection buffer (DESIGN.md §12): the same
    /// half-life law as [`CorrectionPolicy::alpha`], with the staleness
    /// bound τ as the half-life — an update arriving exactly τ late
    /// weighs half an on-time one. Floored at `alpha_min` so an
    /// admitted update is never weightless, capped at 1 (on-time
    /// weight).
    ///
    /// Integer µs in, so two runs can never disagree on a weight from
    /// float drift in the lateness measurement itself.
    pub fn admission_weight(&self, lateness_us: u64, staleness_bound_us: u64) -> f32 {
        if lateness_us == 0 {
            return 1.0;
        }
        if staleness_bound_us == 0 {
            // Degenerate τ: any lateness is maximally stale.
            return self.alpha_min;
        }
        let halves = lateness_us as f64 / staleness_bound_us as f64;
        let w = (-halves * std::f64::consts::LN_2).exp();
        (w as f32).clamp(self.alpha_min, 1.0)
    }

    /// Applies Eq. (1) in place: `local = α·global + (1−α)·local`.
    pub fn merge(&self, alpha: f32, global: &[f32], local: &mut [f32]) {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "correction factor must be in (0, 1]"
        );
        hfl_tensor::ops::axpby(alpha, global, 1.0 - alpha, local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_uninformative_flag_gives_alpha_max() {
        let p = CorrectionPolicy::default();
        assert!((p.alpha(0.0, 0.0) - p.alpha_max).abs() < 1e-6);
    }

    #[test]
    fn alpha_decreases_with_staleness() {
        let p = CorrectionPolicy::default();
        let fresh = p.alpha(0.0, 0.25);
        let stale = p.alpha(20.0, 0.25);
        let very_stale = p.alpha(200.0, 0.25);
        assert!(fresh > stale);
        assert!(stale > very_stale || very_stale == p.alpha_min);
    }

    #[test]
    fn alpha_decreases_with_flag_coverage() {
        // A flag model already trained on most of the data ⇒ the global
        // model brings little, α small (paper §III-B, second bullet).
        let p = CorrectionPolicy::default();
        assert!(p.alpha(0.0, 0.1) > p.alpha(0.0, 0.9));
    }

    #[test]
    fn alpha_is_always_in_unit_interval() {
        let p = CorrectionPolicy::default();
        for s in [0.0, 1.0, 10.0, 1e6] {
            for f in [0.0, 0.5, 1.0] {
                let a = p.alpha(s, f);
                assert!(a > 0.0 && a <= 1.0, "alpha {a} out of range");
            }
        }
    }

    #[test]
    fn half_life_semantics() {
        let p = CorrectionPolicy {
            alpha_max: 0.8,
            alpha_min: 0.0001,
            latency_half_life: 10.0,
        };
        let a0 = p.alpha(0.0, 0.0);
        let a10 = p.alpha(10.0, 0.0);
        assert!((a10 / a0 - 0.5).abs() < 1e-3, "ratio {}", a10 / a0);
    }

    #[test]
    fn admission_weight_half_life_is_tau() {
        let p = CorrectionPolicy {
            alpha_min: 0.0001,
            ..CorrectionPolicy::default()
        };
        assert_eq!(p.admission_weight(0, 10_000), 1.0);
        let half = p.admission_weight(10_000, 10_000);
        assert!((half - 0.5).abs() < 1e-3, "{half}");
        let quarter = p.admission_weight(20_000, 10_000);
        assert!((quarter - 0.25).abs() < 1e-3, "{quarter}");
    }

    #[test]
    fn admission_weight_is_floored_and_monotone() {
        let p = CorrectionPolicy::default();
        let mut prev = 1.0f32;
        for lateness in [0u64, 1, 100, 5_000, 10_000, 1_000_000] {
            let w = p.admission_weight(lateness, 10_000);
            assert!(w <= prev, "weight must not grow with lateness");
            assert!(w >= p.alpha_min, "weight floored at alpha_min");
            prev = w;
        }
        // τ = 0: any lateness is worst-case stale.
        assert_eq!(p.admission_weight(1, 0), p.alpha_min);
    }

    #[test]
    fn merge_is_convex_combination() {
        let p = CorrectionPolicy::default();
        let global = [2.0f32, 0.0];
        let mut local = [0.0f32, 2.0];
        p.merge(0.25, &global, &mut local);
        assert_eq!(local, [0.5, 1.5]);
    }

    #[test]
    fn merge_alpha_one_adopts_global() {
        let p = CorrectionPolicy::default();
        let global = [7.0f32];
        let mut local = [1.0f32];
        p.merge(1.0, &global, &mut local);
        assert_eq!(local, [7.0]);
    }

    #[test]
    #[should_panic(expected = "correction factor")]
    fn merge_alpha_zero_panics() {
        let p = CorrectionPolicy::default();
        let mut local = [1.0f32];
        p.merge(0.0, &[1.0], &mut local);
    }
}
