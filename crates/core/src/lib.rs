//! # abd-hfl-core
//!
//! The paper's primary contribution: **A**synchronous **B**yzantine-resistant
//! **D**ecentralized **H**ierarchical **F**ederated **L**earning.
//!
//! * [`config`] — experiment configuration: topology, per-level
//!   aggregation choice (BRA or CBA, Algorithm 3's flexibility), attack
//!   settings, flag level.
//! * [`scheme`] — the four Byzantine-setting combinations of Table III.
//! * [`theory`] — Theorems 1–2, Corollaries 1–3 (ECSM) and Theorem 3
//!   (ACSM) as checked analytic functions.
//! * [`correction`] — the correction factor of Eq. (1).
//! * [`runner`] — experiment preparation and the synchronous-round
//!   reference driver (the paper's own evaluation mode) for ABD-HFL.
//! * [`engine`] — the round engine: one canonical round as explicit
//!   phases, with fault/defense/adversary semantics as pluggable layers.
//! * [`run`] — the unified entry point ([`run::RunOptions`]) in front of
//!   both drivers, with optional telemetry.
//! * [`vanilla`] — the star-topology vanilla-FL baseline.
//! * [`pipeline`] — the asynchronous pipeline learning workflow on the
//!   discrete-event simulator, measuring the efficiency indicator ν.
//!
//! Attaching an [`hfl_telemetry::Telemetry`] bundle to a run yields
//! structured events, `hfl_*` metrics and a deterministic
//! [`hfl_telemetry::RunManifest`] (see DESIGN.md §"Telemetry & run
//! manifests").
//!
//! # Example
//!
//! Run the paper's Table V configuration under a 50 % Type I attack:
//!
//! ```no_run
//! use abd_hfl_core::config::{AttackCfg, HflConfig};
//! use abd_hfl_core::run::run;
//! use hfl_attacks::{DataAttack, Placement};
//!
//! let cfg = HflConfig::paper_iid(
//!     AttackCfg::Data {
//!         attack: DataAttack::type_i(),
//!         proportion: 0.5,
//!         placement: Placement::Prefix,
//!     },
//!     42,
//! );
//! let result = run(&cfg);
//! assert!(result.final_accuracy > 0.85); // vanilla FL sits at ~10 % here
//! ```

pub mod config;
pub mod correction;
pub mod engine;
pub mod pipeline;
pub mod run;
pub mod runner;
pub mod scheme;
pub mod theory;
pub mod vanilla;

pub use config::{
    AttackCfg, DataDistribution, HflConfig, LevelAgg, ModelCfg, SamplingCfg, SamplingScheme,
    TopologyCfg,
};
pub use correction::CorrectionPolicy;
pub use run::{Driver, RunOptions, RunOutput};
pub use runner::{
    base_config_hash, resume_prepared_with, run_prepared_snapshotting, InstrumentedRun,
    ResumeError, RunResult,
};
#[allow(deprecated)]
pub use runner::{run_abd_hfl, run_abd_hfl_with};
pub use scheme::Scheme;
pub use vanilla::{run_vanilla, run_vanilla_with};
