//! The asynchronous **pipeline learning workflow** (paper §III-D, Fig. 2),
//! executed on the discrete-event simulator.
//!
//! While the synchronous driver ([`crate::runner`]) reproduces accuracy
//! results, this driver reproduces *timing*: local training of round
//! `r+1` (seeded by the flag partial model from level ℓ_F) overlaps with
//! the still-running aggregation of round `r` above ℓ_F, and the global
//! model arrives late and is merged in via the correction factor (Eq. 1).
//!
//! Measured per round and per bottom cluster, straight from the event
//! trace:
//! * `σ_w` — first local model received by the bottom leader → flag model
//!   received (the only time devices actually wait);
//! * `σ` — first local model received → global model received;
//! * `σ_p + σ_g = σ − σ_w` — aggregation time hidden by the pipeline;
//! * `ν = (σ_p + σ_g) / σ` — the efficiency indicator (Eq. 3).
//!
//! Simplification (documented in DESIGN.md): CBA mechanisms inside this
//! driver are decided atomically at the collecting node, with their
//! message/byte cost charged to the statistics and their latency folded
//! into the aggregation delay. The consensus *decision logic* is the real
//! implementation from `hfl-consensus`.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use hfl_consensus::quorum_size;
use hfl_faults::TimelineFaults;
use hfl_ml::rng::derive_seed;
use hfl_ml::sgd::train_local;
use hfl_simnet::engine::{Actor, Ctx, NodeId, Simulation};
use hfl_simnet::trace::{TraceEvent, TraceKind};
use hfl_simnet::{DelayModel, SimTime};
use hfl_telemetry::{fnv1a_hex, RunManifest, RunTotals, Telemetry};

use crate::config::{HflConfig, LevelAgg};
use crate::runner::Experiment;

/// Timing knobs for the pipeline simulation.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Network link delay (all links).
    pub net_delay: DelayModel,
    /// Duration of one full local-training phase (T iterations).
    pub train_delay: DelayModel,
    /// Duration of one aggregation (BRA) at a leader.
    pub agg_delay: DelayModel,
    /// Latency multiplier for CBA aggregations (consensus rounds are
    /// slower than a leader-side BRA pass).
    pub cba_delay_factor: f64,
    /// Number of global rounds to simulate.
    pub rounds: usize,
    /// Collection timeout (Algorithm 4's "until quorum **or Timeout**"):
    /// measured from the first model a leader receives in a round; on
    /// expiry the leader aggregates whatever arrived. `None` waits for
    /// the quorum indefinitely.
    pub collect_timeout: Option<SimTime>,
    /// Per-message drop probability of the network (stragglers /
    /// unreliable channels). Requires a timeout or a quorum < 1 to make
    /// progress when updates go missing.
    pub loss_prob: f64,
    /// Uplink delay override for pure bottom-level devices (Appendix E's
    /// "bandwidth difference of each level": leaf devices often sit on
    /// slower links than the edge servers acting as leaders). `None`
    /// keeps every link on `net_delay`.
    pub leaf_uplink: Option<DelayModel>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            net_delay: DelayModel::lan(),
            train_delay: DelayModel::Uniform {
                lo: 20_000,
                hi: 60_000,
            },
            agg_delay: DelayModel::Constant { micros: 2_000 },
            cba_delay_factor: 4.0,
            rounds: 5,
            collect_timeout: None,
            loss_prob: 0.0,
            leaf_uplink: None,
        }
    }
}

/// Per-round pipeline measurements, averaged over bottom clusters.
#[derive(Clone, Copy, Debug)]
pub struct RoundTiming {
    /// Global round index.
    pub round: usize,
    /// Mean waiting time σ_w (seconds).
    pub sigma_w: f64,
    /// Mean total time σ (seconds).
    pub sigma: f64,
    /// Mean pipelined time σ_p + σ_g (seconds).
    pub sigma_pg: f64,
    /// Mean efficiency indicator ν = (σ_p + σ_g)/σ.
    pub nu: f64,
}

/// Result of a pipeline simulation.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// Per-round timing decomposition (rounds with complete traces).
    pub rounds: Vec<RoundTiming>,
    /// Total simulated wall-clock.
    pub sim_time_secs: f64,
    /// Messages delivered.
    pub messages: u64,
    /// Bytes delivered.
    pub bytes: u64,
    /// Test accuracy of the final global model (training is real).
    pub final_accuracy: f64,
    /// Number of Eq. (1) correction-factor merges applied (global model
    /// arriving while a device was mid-training).
    pub corrections_applied: u64,
    /// Sequential-baseline estimate of one round's duration (seconds):
    /// what a round would cost if devices idled until the global model
    /// returned (σ measured) — compare with the pipelined round period.
    pub mean_sigma: f64,
    /// Mean round period actually achieved by the pipeline (seconds).
    pub mean_period: f64,
}

/// Protocol messages; parameters are shared, not copied, between actors.
#[derive(Clone)]
enum Msg {
    /// A model travelling up to the leader of `(level, cluster)`.
    Update {
        round: usize,
        level: usize,
        cluster: usize,
        params: Arc<Vec<f32>>,
    },
    /// Flag partial model for starting `round`.
    Flag { round: usize, params: Arc<Vec<f32>> },
    /// Completed global model of `round`.
    Global { round: usize, params: Arc<Vec<f32>> },
}

/// Timer-id packing: kind | level | round.
const TIMER_TRAIN: u64 = 0;
const TIMER_AGG: u64 = 1;
const TIMER_COLLECT_TIMEOUT: u64 = 2;

fn pack_timer(kind: u64, level: usize, round: usize) -> u64 {
    kind | ((level as u64) << 8) | ((round as u64) << 16)
}

fn unpack_timer(id: u64) -> (u64, usize, usize) {
    (id & 0xFF, ((id >> 8) & 0xFF) as usize, (id >> 16) as usize)
}

struct Collector {
    inputs: Vec<(usize, Arc<Vec<f32>>)>, // (member slot, params)
    quorum_hit: bool,
}

/// One physical device: a bottom-level client plus every leader role its
/// id holds in the hierarchy.
struct DeviceActor {
    id: usize,
    exp: Arc<Experiment>,
    pcfg: Arc<PipelineConfig>,
    /// Clusters this device leads: `(level, cluster index)`.
    led: Vec<(usize, usize)>,
    /// Bottom cluster this device belongs to (cluster index, leader id).
    bottom_cluster: usize,
    bottom_leader: usize,
    /// Fraction of global data the flag model covers (for α).
    flag_fraction: f64,
    params: Vec<f32>,
    training_round: Option<usize>,
    train_started: SimTime,
    collectors: HashMap<(usize, usize), Collector>, // (level, round)
    /// Aggregations already completed — guards against late arrivals
    /// re-opening a collector after a timeout-forced aggregation.
    aggregated: HashSet<(usize, usize)>,
    forwarded_flag: HashSet<usize>,
    forwarded_global: HashSet<usize>,
    corrections_applied: u64,
    rng: StdRng,
}

impl DeviceActor {
    fn start_training(&mut self, ctx: &mut Ctx<Msg>, round: usize) {
        if round >= self.pcfg.rounds {
            return;
        }
        self.training_round = Some(round);
        self.train_started = ctx.now();
        // A device inside an active StragglerWindow trains slower by the
        // window's factor — the same signal the round engine's deadline
        // buffers see — so stragglers miss collection timeouts here too
        // instead of only sorting last.
        let mut dur = self.pcfg.train_delay.sample(&mut self.rng);
        if let Some(inj) = self.exp.injector() {
            dur = dur.saturating_scale(inj.straggle_factor(self.id, round));
        }
        ctx.set_timer(dur, pack_timer(TIMER_TRAIN, 0, round));
    }

    fn finish_training(&mut self, ctx: &mut Ctx<Msg>, round: usize) {
        if self.training_round != Some(round) {
            return; // stale timer (training was re-seeded)
        }
        self.training_round = None;
        // Real SGD, performed at the event boundary.
        let mut model = self.exp.template.clone_box();
        model.set_params(&self.params);
        let cfg = self.exp.config();
        // The pipeline driver predates sampling and models the identity
        // cohort: device id == global client id.
        let shard = self.exp.client_shard(self.id);
        train_local(
            model.as_mut(),
            &shard,
            &cfg.sgd,
            cfg.local_iters,
            &mut self.rng,
        );
        self.params.copy_from_slice(model.params());
        ctx.trace(TraceEvent {
            round,
            level: self.exp.hierarchy.bottom_level(),
            cluster: self.bottom_cluster,
            kind: TraceKind::LocalTrainingDone,
        });
        let bottom = self.exp.hierarchy.bottom_level();
        ctx.send(
            self.bottom_leader,
            Msg::Update {
                round,
                level: bottom,
                cluster: self.bottom_cluster,
                params: Arc::new(self.params.clone()),
            },
        );
    }

    fn on_update(
        &mut self,
        ctx: &mut Ctx<Msg>,
        round: usize,
        level: usize,
        cluster: usize,
        params: Arc<Vec<f32>>,
    ) {
        debug_assert!(
            self.led.contains(&(level, cluster)) || level == 0,
            "update for a cluster this device does not lead"
        );
        let h = &self.exp.hierarchy;
        let size = if level == 0 {
            h.level(0).clusters[0].len()
        } else {
            h.level(level).clusters[cluster].len()
        };
        if self.aggregated.contains(&(level, round)) {
            return; // straggler arriving after a timeout-forced aggregate
        }
        let timeout = self.pcfg.collect_timeout;
        let entry = self
            .collectors
            .entry((level, round))
            .or_insert_with(|| Collector {
                inputs: Vec::new(),
                quorum_hit: false,
            });
        if entry.inputs.is_empty() {
            ctx.trace(TraceEvent {
                round,
                level,
                cluster,
                kind: TraceKind::FirstModelReceived,
            });
            if let Some(t) = timeout {
                ctx.set_timer(t, pack_timer(TIMER_COLLECT_TIMEOUT, level, round));
            }
        }
        entry.inputs.push((entry.inputs.len(), params));
        let quorum = quorum_size(self.exp.config().quorum, size);
        if !entry.quorum_hit && entry.inputs.len() >= quorum {
            entry.quorum_hit = true;
            ctx.trace(TraceEvent {
                round,
                level,
                cluster,
                kind: TraceKind::QuorumReached,
            });
            let base = self.pcfg.agg_delay.sample(&mut self.rng);
            let dur = match &self.exp.config().levels[level] {
                LevelAgg::Bra(_) => base,
                LevelAgg::Cba(_) => SimTime::from_micros(
                    (base.as_micros() as f64 * self.pcfg.cba_delay_factor) as u64,
                ),
            };
            ctx.set_timer(dur, pack_timer(TIMER_AGG, level, round));
        }
    }

    /// Collection timeout fired: aggregate whatever arrived (Algorithm 4's
    /// timeout branch). A no-op when the quorum already triggered.
    fn on_collect_timeout(&mut self, ctx: &mut Ctx<Msg>, level: usize, round: usize) {
        if let Some(entry) = self.collectors.get_mut(&(level, round)) {
            if !entry.quorum_hit && !entry.inputs.is_empty() {
                entry.quorum_hit = true;
                let dur = self.pcfg.agg_delay.sample(&mut self.rng);
                ctx.set_timer(dur, pack_timer(TIMER_AGG, level, round));
            }
        }
    }

    fn finish_aggregation(&mut self, ctx: &mut Ctx<Msg>, level: usize, round: usize) {
        let Some(collector) = self.collectors.remove(&(level, round)) else {
            return;
        };
        self.aggregated.insert((level, round));
        let refs: Vec<&[f32]> = collector.inputs.iter().map(|(_, p)| p.as_slice()).collect();
        let cfg = self.exp.config();
        let aggregated = match &cfg.levels[level] {
            LevelAgg::Bra(kind) => kind.build().aggregate(&refs, None),
            LevelAgg::Cba(kind) => {
                let own: Vec<Vec<f32>> = refs.iter().map(|r| r.to_vec()).collect();
                let eval = hfl_consensus::DistanceEvaluator::new(&own);
                let byz = vec![false; refs.len()];
                kind.build()
                    .decide(&refs, &byz, &eval, &mut self.rng)
                    .decided
            }
        };
        let cluster = if level == 0 {
            0
        } else {
            self.led
                .iter()
                .find(|(l, _)| *l == level)
                .map(|(_, c)| *c)
                .expect("aggregating a level this device does not lead")
        };
        ctx.trace(TraceEvent {
            round,
            level,
            cluster,
            kind: TraceKind::AggregateFormed,
        });
        let params = Arc::new(aggregated);
        let flag_level = cfg.flag_level;

        if level == 0 {
            // Global model complete: disseminate downward.
            self.handle_global(ctx, round, params);
        } else {
            // Flag level: disseminate the partial as the flag model for
            // the next round before sending it up (Algorithm 3, l.18–22).
            if level == flag_level {
                self.handle_flag(ctx, round + 1, Arc::clone(&params));
            }
            // Send upward to this device's leader at level−1 (or into the
            // top collection when level == 1).
            let h = &self.exp.hierarchy;
            let (up_level, up_cluster) = {
                let (ci, _) = h
                    .position(level - 1, self.id)
                    .expect("leader must appear one level up");
                (level - 1, ci)
            };
            let up_leader = if up_level == 0 {
                h.level(0).clusters[0].leader()
            } else {
                h.level(up_level).clusters[up_cluster].members[0]
            };
            if up_leader == self.id {
                // Self-delivery without the network.
                self.on_update(ctx, round, up_level, up_cluster, params);
            } else {
                ctx.send(
                    up_leader,
                    Msg::Update {
                        round,
                        level: up_level,
                        cluster: up_cluster,
                        params,
                    },
                );
            }
        }
    }

    /// Flag dissemination (Algorithm 5): forward to every cluster this
    /// device leads below the flag level; when the flag reaches a bottom
    /// device it seeds the next round of training.
    fn handle_flag(&mut self, ctx: &mut Ctx<Msg>, round: usize, params: Arc<Vec<f32>>) {
        if !self.forwarded_flag.insert(round) {
            return;
        }
        let h = &self.exp.hierarchy;
        let bottom = h.bottom_level();
        for &(level, cluster) in &self.led {
            if level >= self.exp.config().flag_level.max(1) && level <= bottom {
                for &m in &h.level(level).clusters[cluster].members {
                    if m != self.id {
                        ctx.send(
                            m,
                            Msg::Flag {
                                round,
                                params: Arc::clone(&params),
                            },
                        );
                    }
                }
            }
        }
        // This device is itself a bottom client: adopt the flag model.
        ctx.trace(TraceEvent {
            round: round.saturating_sub(1),
            level: bottom,
            cluster: self.bottom_cluster,
            kind: TraceKind::FlagModelReceived,
        });
        if self.training_round.is_none() {
            self.params.copy_from_slice(&params);
            self.start_training(ctx, round);
        }
    }

    /// Global-model dissemination plus the correction-factor merge of
    /// Eq. (1) when the device is mid-training.
    fn handle_global(&mut self, ctx: &mut Ctx<Msg>, round: usize, params: Arc<Vec<f32>>) {
        if !self.forwarded_global.insert(round) {
            return;
        }
        let h = &self.exp.hierarchy;
        let bottom = h.bottom_level();
        for &(level, cluster) in &self.led {
            if level <= bottom {
                for &m in &h.level(level).clusters[cluster].members {
                    if m != self.id {
                        ctx.send(
                            m,
                            Msg::Global {
                                round,
                                params: Arc::clone(&params),
                            },
                        );
                    }
                }
            }
        }
        ctx.trace(TraceEvent {
            round,
            level: bottom,
            cluster: self.bottom_cluster,
            kind: TraceKind::GlobalModelReceived,
        });
        let cfg = self.exp.config();
        if self.training_round.is_some() {
            // Mid-training: merge with the correction factor. Staleness is
            // measured in elapsed local-iteration units.
            let elapsed = ctx.now().saturating_sub(self.train_started).as_secs_f64();
            let iter_secs =
                self.pcfg.train_delay.mean_micros() / 1e6 / cfg.local_iters.max(1) as f64;
            let staleness = if iter_secs > 0.0 {
                elapsed / iter_secs
            } else {
                0.0
            };
            let alpha = cfg.correction.alpha(staleness, self.flag_fraction);
            cfg.correction.merge(alpha, &params, &mut self.params);
            self.corrections_applied += 1;
        } else {
            // Idle (round 0 bootstrap or finished): adopt outright.
            self.params.copy_from_slice(&params);
        }
    }
}

impl Actor<Msg> for DeviceActor {
    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        // Round 0: every device trains from the initial global model
        // (Algorithm 2, r = 0 branch).
        self.start_training(ctx, 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Msg>, _src: NodeId, msg: Msg) {
        match msg {
            Msg::Update {
                round,
                level,
                cluster,
                params,
            } => self.on_update(ctx, round, level, cluster, params),
            Msg::Flag { round, params } => self.handle_flag(ctx, round, params),
            Msg::Global { round, params } => self.handle_global(ctx, round, params),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, id: u64) {
        let (kind, level, round) = unpack_timer(id);
        match kind {
            TIMER_TRAIN => self.finish_training(ctx, round),
            TIMER_AGG => self.finish_aggregation(ctx, level, round),
            TIMER_COLLECT_TIMEOUT => self.on_collect_timeout(ctx, level, round),
            _ => unreachable!("unknown timer kind {kind}"),
        }
    }
}

/// Runs the asynchronous pipeline workflow and extracts the timing
/// decomposition from the trace.
#[deprecated(note = "use `crate::run::RunOptions::pipeline`")]
pub fn run_pipeline(cfg: &HflConfig, pcfg: &PipelineConfig) -> PipelineResult {
    pipeline_run(cfg, pcfg, &Telemetry::disabled()).0
}

/// [`run_pipeline`] with telemetry: returns the timing decomposition
/// together with the run's [`RunManifest`].
#[deprecated(note = "use `crate::run::RunOptions::pipeline` with \
                     `RunOptions::telemetry`")]
pub fn run_pipeline_with(
    cfg: &HflConfig,
    pcfg: &PipelineConfig,
    telem: &Telemetry,
) -> (PipelineResult, RunManifest) {
    pipeline_run(cfg, pcfg, telem)
}

/// The pipeline driver: bridges the simulator's trace stream into the
/// recorder (as `Event::Sim`), records network/timing metrics (`sim_*`
/// counters, `pipeline_*` histograms, trace anomaly count) and returns
/// the run's [`RunManifest`] (label `"pipeline"`; the per-round series
/// is empty — pipeline timing lives in the histograms).
///
/// The arms-race layer (adaptive attacks, suspicion/quarantine,
/// protocol attacks) is a sequential-runner feature: the async driver
/// runs static attacks only. A config carrying any arms-race field is
/// still accepted — the fields are ignored here and an
/// `Event::Anomaly { kind: "arms_race_ignored" }` is emitted once so
/// the omission is visible in the trace.
pub(crate) fn pipeline_run(
    cfg: &HflConfig,
    pcfg: &PipelineConfig,
    telem: &Telemetry,
) -> (PipelineResult, RunManifest) {
    assert!(pcfg.rounds > 0, "pipeline needs at least one round");
    if telem.enabled() && cfg.arms_race() {
        telem.emit(hfl_telemetry::Event::Anomaly {
            kind: "arms_race_ignored".into(),
            detail: "the async pipeline driver ignores adaptive attacks, the \
                     suspicion layer and protocol attacks; use the sequential \
                     runner for arms-race experiments"
                .into(),
        });
    }
    let exp = Arc::new(Experiment::prepare(cfg));
    let pcfg = Arc::new(pcfg.clone());
    let h = &exp.hierarchy;
    let bottom = h.bottom_level();
    let n = h.num_clients();
    let d = exp.template.param_len();

    let actors: Vec<DeviceActor> = (0..n)
        .map(|id| {
            let led: Vec<(usize, usize)> = (0..h.num_levels())
                .filter_map(|l| {
                    if l == 0 {
                        // The top cluster's collection role belongs to its
                        // leader; we model it via level-0 updates.
                        (h.level(0).clusters[0].leader() == id).then_some((0, 0))
                    } else {
                        h.level(l)
                            .clusters
                            .iter()
                            .position(|c| c.leader() == id)
                            .map(|ci| (l, ci))
                    }
                })
                .collect();
            let (bottom_cluster, _) = h
                .position(bottom, id)
                .expect("every device is a bottom client");
            let bottom_leader = h.level(bottom).clusters[bottom_cluster].leader();
            // Flag fraction: clients under this device's flag-level
            // ancestor over all clients.
            let flag_cluster = {
                let mut dev = id;
                let mut lvl = bottom;
                while lvl > cfg.flag_level {
                    let (ci, _) = h.position(lvl, dev).expect("device in hierarchy");
                    dev = h.level(lvl).clusters[ci].leader();
                    lvl -= 1;
                }
                let (ci, _) = h.position(lvl, dev).expect("ancestor at flag level");
                ci
            };
            let flag_fraction = h.descendants(cfg.flag_level, flag_cluster).len() as f64 / n as f64;
            DeviceActor {
                id,
                exp: Arc::clone(&exp),
                pcfg: Arc::clone(&pcfg),
                led,
                bottom_cluster,
                bottom_leader,
                flag_fraction,
                params: exp.template.params().to_vec(),
                training_round: None,
                train_started: SimTime::ZERO,
                collectors: HashMap::new(),
                aggregated: HashSet::new(),
                forwarded_flag: HashSet::new(),
                forwarded_global: HashSet::new(),
                corrections_applied: 0,
                rng: StdRng::seed_from_u64(derive_seed(cfg.seed, 0x51D0 + id as u64)),
            }
        })
        .collect();

    let mut sim = Simulation::new(
        actors,
        pcfg.net_delay.clone(),
        derive_seed(cfg.seed, 0x7E7),
        move |_m: &Msg| (d * 4) as u64,
    );
    if telem.enabled() {
        sim.set_recorder(Arc::clone(telem.recorder()));
    }
    if pcfg.loss_prob > 0.0 {
        assert!(
            pcfg.collect_timeout.is_some() || cfg.quorum < 1.0,
            "a lossy network needs a collection timeout or a quorum < 1 to progress"
        );
        sim.set_loss(pcfg.loss_prob);
    }
    if let Some(inj) = exp.injector() {
        if inj.has_delivery_faults() {
            assert!(
                pcfg.collect_timeout.is_some() || cfg.quorum < 1.0,
                "injected delivery faults (crashes, partitions, loss bursts) need a \
                 collection timeout or a quorum < 1 to progress"
            );
        }
        // Nominal round period for mapping sim time onto fault-plan
        // rounds: one training phase plus a per-level collect + aggregate
        // exchange. The mapping is approximate (slow rounds drift) but
        // deterministic, which is what reproducibility needs. Crashed
        // devices keep their timers; they are simply unreachable — every
        // message to or from them is dropped at the link layer.
        let levels = h.num_levels() as f64;
        let period_us = pcfg.train_delay.mean_micros()
            + levels * (pcfg.agg_delay.mean_micros() + 2.0 * pcfg.net_delay.mean_micros());
        let period = SimTime::from_micros(period_us.max(1.0) as u64);
        sim.set_link_fault(Box::new(TimelineFaults::new(inj.clone(), period)));
    }
    if let Some(leaf_model) = &pcfg.leaf_uplink {
        // Pure leaves = devices that lead no cluster (every leader also
        // appears at some higher level and gets the default link).
        let bottom_leaders: std::collections::HashSet<usize> = h
            .level(bottom)
            .clusters
            .iter()
            .map(|c| c.leader())
            .collect();
        for dev in 0..n {
            if !bottom_leaders.contains(&dev) {
                sim.set_uplink_delay(dev, leaf_model.clone());
            }
        }
    }
    let stats = sim.run(50_000_000);

    // Extract per-round timings from the trace.
    let trace = sim.trace();
    let n_bottom_clusters = h.level(bottom).num_clusters();
    let mut rounds = Vec::new();
    let mut global_times = Vec::new();
    for r in 0..pcfg.rounds {
        let mut sw = Vec::new();
        let mut sigma = Vec::new();
        for c in 0..n_bottom_clusters {
            let first = trace.first_time(r, bottom, c, TraceKind::FirstModelReceived);
            let flag = trace.first_time(r, bottom, c, TraceKind::FlagModelReceived);
            let global = trace.first_time(r, bottom, c, TraceKind::GlobalModelReceived);
            if let (Some(f), Some(fl), Some(g)) = (first, flag, global) {
                sw.push(fl.saturating_sub(f).as_secs_f64());
                sigma.push(g.saturating_sub(f).as_secs_f64());
            }
        }
        if let Some(g) = trace.first_time(r, 0, 0, TraceKind::AggregateFormed) {
            global_times.push(g.as_secs_f64());
        }
        if !sigma.is_empty() {
            let mw = sw.iter().sum::<f64>() / sw.len() as f64;
            let ms = sigma.iter().sum::<f64>() / sigma.len() as f64;
            let pg = (ms - mw).max(0.0);
            rounds.push(RoundTiming {
                round: r,
                sigma_w: mw,
                sigma: ms,
                sigma_pg: pg,
                nu: if ms > 0.0 { pg / ms } else { 0.0 },
            });
        }
    }

    let mean_sigma = if rounds.is_empty() {
        0.0
    } else {
        rounds.iter().map(|r| r.sigma).sum::<f64>() / rounds.len() as f64
    };
    let mean_period = if global_times.len() >= 2 {
        (global_times.last().unwrap() - global_times[0]) / (global_times.len() - 1) as f64
    } else {
        mean_sigma
    };

    // Final accuracy: the top leader's last formed global lives in its
    // params only implicitly; evaluate the mean of all devices' current
    // params' ancestor — simplest faithful readout: evaluate the last
    // device-held merged model of the top leader.
    let top_leader = h.level(0).clusters[0].leader();
    let final_accuracy = exp.evaluate(&sim.actors()[top_leader].params);
    let corrections_applied = sim.actors().iter().map(|a| a.corrections_applied).sum();

    // Metrics: network totals, timing decomposition, anomaly count.
    let registry = telem.registry();
    registry
        .counter("sim_messages_total", &[])
        .inc(stats.messages);
    registry.counter("sim_bytes_total", &[]).inc(stats.bytes);
    registry.counter("sim_events_total", &[]).inc(stats.events);
    registry
        .counter("sim_dropped_total", &[])
        .inc(stats.dropped);
    registry
        .counter("trace_anomalies_total", &[])
        .inc(trace.anomalies());
    let sigma_w_h = registry.histogram("pipeline_sigma_w_seconds", &[]);
    let sigma_h = registry.histogram("pipeline_sigma_seconds", &[]);
    let nu_h = registry.histogram("pipeline_nu", &[]);
    for rt in &rounds {
        sigma_w_h.observe(rt.sigma_w);
        sigma_h.observe(rt.sigma);
        nu_h.observe(rt.nu);
    }
    registry.gauge("hfl_accuracy", &[]).set(final_accuracy);

    let mut manifest = RunManifest::new(
        "pipeline",
        cfg.seed,
        fnv1a_hex(format!("{cfg:?}|{pcfg:?}").as_bytes()),
    );
    manifest.totals = RunTotals {
        messages: stats.messages,
        bytes: stats.bytes,
        excluded: 0,
        absent: 0,
    };
    manifest.final_accuracy = final_accuracy;
    manifest.metrics = registry.snapshot();

    (
        PipelineResult {
            rounds,
            sim_time_secs: sim.now().as_secs_f64(),
            messages: stats.messages,
            bytes: stats.bytes,
            final_accuracy,
            corrections_applied,
            mean_sigma,
            mean_period,
        },
        manifest,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AttackCfg, HflConfig};

    // Shadow the deprecated shims with the real driver so the tests
    // exercise it directly.
    fn run_pipeline(cfg: &HflConfig, pcfg: &PipelineConfig) -> PipelineResult {
        pipeline_run(cfg, pcfg, &Telemetry::disabled()).0
    }

    fn run_pipeline_with(
        cfg: &HflConfig,
        pcfg: &PipelineConfig,
        telem: &Telemetry,
    ) -> (PipelineResult, RunManifest) {
        pipeline_run(cfg, pcfg, telem)
    }

    fn quick_cfg(seed: u64) -> HflConfig {
        let mut cfg = HflConfig::quick(AttackCfg::None, seed);
        cfg.rounds = 4; // pipeline rounds come from PipelineConfig
        cfg
    }

    fn quick_pipeline(rounds: usize) -> PipelineConfig {
        PipelineConfig {
            rounds,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_completes_and_measures() {
        let res = run_pipeline(&quick_cfg(1), &quick_pipeline(3));
        assert!(!res.rounds.is_empty(), "no rounds measured");
        assert!(res.messages > 0);
        for rt in &res.rounds {
            assert!(rt.sigma >= rt.sigma_w, "σ < σw in round {}", rt.round);
            assert!((0.0..=1.0).contains(&rt.nu), "ν out of range: {}", rt.nu);
        }
    }

    #[test]
    fn pipeline_saves_time_vs_sequential() {
        // Sequential workflow: each round costs (training + σ) because
        // devices idle until the global model returns. The pipeline must
        // beat that per-round period.
        let pcfg = quick_pipeline(5);
        let res = run_pipeline(&quick_cfg(2), &pcfg);
        let train_secs = pcfg.train_delay.mean_micros() / 1e6;
        let sequential = train_secs + res.mean_sigma;
        assert!(
            res.mean_period < sequential,
            "period {} vs sequential {}",
            res.mean_period,
            sequential
        );
        // And ν is meaningfully positive: aggregation is being hidden.
        let mean_nu: f64 = res.rounds.iter().map(|r| r.nu).sum::<f64>() / res.rounds.len() as f64;
        assert!(mean_nu > 0.05, "no pipelining benefit: ν = {mean_nu}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = run_pipeline(&quick_cfg(3), &quick_pipeline(3));
        let b = run_pipeline(&quick_cfg(3), &quick_pipeline(3));
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.sim_time_secs, b.sim_time_secs);
    }

    #[test]
    fn training_actually_learns_in_the_pipeline() {
        let mut cfg = quick_cfg(4);
        cfg.rounds = 12;
        let res = run_pipeline(&cfg, &quick_pipeline(12));
        assert!(
            res.final_accuracy > 0.5,
            "pipeline model failed to learn: {}",
            res.final_accuracy
        );
    }

    #[test]
    fn lossy_network_progresses_with_timeout() {
        // 10 % loss: leaders would deadlock waiting for full quorums; the
        // collection timeout (Algorithm 4) keeps rounds completing.
        let cfg = quick_cfg(8);
        let pcfg = PipelineConfig {
            rounds: 4,
            loss_prob: 0.10,
            collect_timeout: Some(SimTime::from_millis(120)),
            ..PipelineConfig::default()
        };
        let res = run_pipeline(&cfg, &pcfg);
        assert!(!res.rounds.is_empty(), "no rounds completed under loss");
        // Drops happened (64 clients × several rounds × 10 %).
        // (messages is deliveries; we can't see drops here, but progress
        // with loss is itself the property.)
        assert!(res.messages > 0);
    }

    #[test]
    #[should_panic(expected = "lossy network needs a collection timeout")]
    fn lossy_network_without_timeout_is_rejected() {
        let cfg = quick_cfg(9);
        let pcfg = PipelineConfig {
            rounds: 2,
            loss_prob: 0.10,
            ..PipelineConfig::default()
        };
        run_pipeline(&cfg, &pcfg);
    }

    #[test]
    fn timeout_shortens_straggler_rounds() {
        // Heavy straggler tail: without a timeout the leader waits for
        // the slowest trainer; with one it proceeds at the timeout.
        let mut cfg = quick_cfg(10);
        cfg.quorum = 1.0;
        let straggler_train = DelayModel::Straggler {
            base: Box::new(DelayModel::Constant { micros: 20_000 }),
            p: 0.1,
            factor: 20.0, // 400 ms stragglers
        };
        let base = PipelineConfig {
            rounds: 3,
            train_delay: straggler_train,
            ..PipelineConfig::default()
        };
        let slow = run_pipeline(&cfg, &base);
        let fast = run_pipeline(
            &cfg,
            &PipelineConfig {
                collect_timeout: Some(SimTime::from_millis(30)),
                ..base
            },
        );
        assert!(
            fast.mean_period < slow.mean_period,
            "timeout did not help: {} vs {}",
            fast.mean_period,
            slow.mean_period
        );
    }

    #[test]
    fn slow_leaf_uplinks_inflate_collection_time() {
        // Appendix E: leaf bandwidth dominates τ_L (the bottom leaders'
        // collection phase), stretching σ.
        let cfg = quick_cfg(11);
        let base = quick_pipeline(3);
        let fast = run_pipeline(&cfg, &base);
        let slow = run_pipeline(
            &cfg,
            &PipelineConfig {
                leaf_uplink: Some(DelayModel::Constant { micros: 50_000 }),
                ..base
            },
        );
        let mean_sigma = |r: &PipelineResult| {
            r.rounds.iter().map(|t| t.sigma).sum::<f64>() / r.rounds.len() as f64
        };
        assert!(
            mean_sigma(&slow) > mean_sigma(&fast),
            "slow leaf uplinks must stretch σ: {} vs {}",
            mean_sigma(&slow),
            mean_sigma(&fast)
        );
    }

    #[test]
    fn pipeline_manifest_and_sim_events() {
        use hfl_telemetry::{Event, Telemetry};
        let cfg = quick_cfg(20);
        let (telem, rec) = Telemetry::recording();
        let (res, manifest) = run_pipeline_with(&cfg, &quick_pipeline(2), &telem);
        assert_eq!(manifest.label, "pipeline");
        assert_eq!(manifest.totals.messages, res.messages);
        assert_eq!(manifest.final_accuracy, res.final_accuracy);
        // The simulator's trace stream was bridged into telemetry.
        let sim_events = rec
            .events()
            .into_iter()
            .filter(|e| matches!(e, Event::Sim { .. }))
            .count();
        assert!(sim_events > 0, "no Sim events bridged");
        // Metrics snapshot includes the network counters.
        assert_eq!(
            telem.registry().counter("sim_messages_total", &[]).get(),
            res.messages
        );
        assert!(manifest
            .metrics
            .iter()
            .any(|m| m.name == "pipeline_sigma_seconds"));
    }

    #[test]
    fn pipeline_manifest_is_deterministic() {
        use hfl_telemetry::Telemetry;
        let cfg = quick_cfg(21);
        let (_, a) = run_pipeline_with(&cfg, &quick_pipeline(2), &Telemetry::disabled());
        let (_, b) = run_pipeline_with(&cfg, &quick_pipeline(2), &Telemetry::disabled());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn crash_faults_drop_messages_but_rounds_complete() {
        use hfl_faults::FaultPlan;
        let mut cfg = quick_cfg(30);
        cfg.faults = Some(FaultPlan::new().crash_stop(1, 5));
        let pcfg = PipelineConfig {
            rounds: 3,
            collect_timeout: Some(SimTime::from_millis(120)),
            ..PipelineConfig::default()
        };
        let faulted = run_pipeline(&cfg, &pcfg);
        assert!(!faulted.rounds.is_empty(), "no rounds under crash faults");
        let mut clean_cfg = cfg.clone();
        clean_cfg.faults = None;
        let clean = run_pipeline(&clean_cfg, &pcfg);
        assert!(
            faulted.messages < clean.messages,
            "crashing a device must shed deliveries: {} vs {}",
            faulted.messages,
            clean.messages
        );
    }

    #[test]
    #[should_panic(expected = "injected delivery faults")]
    fn delivery_faults_without_timeout_are_rejected() {
        use hfl_faults::FaultPlan;
        let mut cfg = quick_cfg(31);
        cfg.faults = Some(FaultPlan::new().crash_stop(1, 0));
        run_pipeline(&cfg, &quick_pipeline(2));
    }

    #[test]
    fn flag_closer_to_bottom_reduces_waiting() {
        // ℓF = bottom (2) → flag is the bottom cluster's own partial:
        // minimal σw. ℓF = 1 → wait for one more level.
        let mut low = quick_cfg(5);
        low.flag_level = 2;
        let mut high = quick_cfg(5);
        high.flag_level = 1;
        let r_low = run_pipeline(&low, &quick_pipeline(4));
        let r_high = run_pipeline(&high, &quick_pipeline(4));
        let w_low: f64 =
            r_low.rounds.iter().map(|r| r.sigma_w).sum::<f64>() / r_low.rounds.len() as f64;
        let w_high: f64 =
            r_high.rounds.iter().map(|r| r.sigma_w).sum::<f64>() / r_high.rounds.len() as f64;
        assert!(
            w_low < w_high,
            "flag at bottom should wait less: {w_low} vs {w_high}"
        );
    }
}
