//! The synchronous-round reference driver — the evaluation mode of the
//! paper's own simulation (Algorithms 1–6 executed phase-by-phase each
//! global round; the pipeline/asynchrony aspects are studied separately
//! by [`crate::pipeline`], which measures timing on the event simulator).
//!
//! Per round:
//! 1. **LocalModelTraining** (Algorithm 2): every bottom device trains the
//!    current global model for `T` SGD iterations on its (possibly
//!    poisoned) shard — in parallel across clients.
//! 2. Model-poisoning attackers replace their trained update with a
//!    crafted vector (omniscient collusion).
//! 3. **PartialModelAggregation** (Algorithms 3–4): bottom-up per-cluster
//!    aggregation with the per-level BRA/CBA choice and quorum φ.
//! 4. **GlobalModelAggregation** (Algorithm 6): the top cluster forms the
//!    global model by BRA or consensus (validation voting over the test
//!    shards, Appendix D.B).
//! 5. **DisseminateModel** (Algorithm 5): the new global model reaches
//!    every device (message costs accounted level by level).
//!
//! Steps 3–5 (and the fault/defense/adversary semantics layered on
//! them) execute in [`crate::engine::RoundEngine`] — one canonical
//! round with pluggable layers; this module owns experiment
//! preparation, the training step and the run loop around it.

use hfl_attacks::{malicious_mask, ModelAttack};
use hfl_faults::FaultInjector;
use hfl_ml::rng::rng_for_n;
use hfl_ml::sgd::{train_local, train_local_scratch, TrainScratch};
use hfl_ml::synth::SyntheticDigits;
use hfl_ml::{ClientPopulation, Dataset, Model};
use hfl_robust::{AggregatorKind, Krum};
use hfl_simnet::Hierarchy;
use hfl_snapshot::{CostSnapshot, EngineSnapshot, SNAPSHOT_VERSION};
use hfl_telemetry::{
    fnv1a_hex, ClientScore, Event, FaultRecord, MetricSample, MetricValue, Registry, RoundRecord,
    RunManifest, RunTotals, SuspicionRecord, SuspicionSection, Telemetry,
};

use crate::config::{AttackCfg, ConfigError, DataDistribution, HflConfig, LevelAgg, SamplingScheme};
use crate::engine::RoundEngine;

pub use crate::engine::CostCounters;

/// Outcome of one full training run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// `(round, test accuracy)` at each evaluation point (always includes
    /// the final round).
    pub accuracy: Vec<(usize, f64)>,
    /// Test accuracy of the final global model.
    pub final_accuracy: f64,
    /// Total model-bearing messages exchanged.
    pub messages: u64,
    /// Total payload bytes exchanged.
    pub bytes: u64,
    /// Total proposals excluded by consensus across all rounds.
    pub excluded_total: u64,
    /// Total client-round absences caused by churn.
    pub absent_total: u64,
    /// Total bottom-level client-round updates lost to injected faults
    /// (crashes, partitions, loss bursts). Zero for fault-free runs.
    pub faulted_total: u64,
    /// Total client-round updates excluded by the suspicion layer's
    /// quarantine. Zero when the layer is disabled.
    pub quarantined_total: u64,
    /// Total client-round updates a withholding coalition kept back.
    /// Zero without the `Withhold` protocol attack.
    pub withheld_total: u64,
}

/// Reusable buffers for the per-round training step, owned by the
/// engine's round workspace. On the single-threaded hot path one model
/// instance and one SGD scratch serve every cohort slot in turn
/// (`set_params` overwrites all parameters, so reuse is
/// indistinguishable from a fresh `clone_box`), making steady-state
/// training allocation-free.
#[derive(Default)]
pub struct TrainWorkspace {
    /// This round's cohort binding (global client per slot).
    cohort: Vec<usize>,
    /// The reusable trainee model (lazily cloned from the template).
    model: Option<Box<dyn Model>>,
    /// SGD gradient/index/staging buffers.
    scratch: TrainScratch,
}

/// A run's result plus its [`RunManifest`] — what the instrumented entry
/// points ([`crate::run::RunOptions`], [`run_prepared_with`]) return.
#[derive(Clone, Debug)]
pub struct InstrumentedRun {
    /// The training outcome (same shape as the uninstrumented API).
    pub result: RunResult,
    /// The self-describing record of the run: config hash, seed, build
    /// info, per-round time series, totals, metrics snapshot.
    pub manifest: RunManifest,
}

/// Pre-built, reusable experiment state (task generation and partitioning
/// are the expensive, attack-independent steps — the Table V harness
/// reuses them across the malicious-proportion sweep where possible).
pub struct Experiment {
    /// The hierarchy.
    pub hierarchy: Hierarchy,
    /// The synthetic task.
    pub task: SyntheticDigits,
    /// The lazy per-client shard plan over the whole population: client
    /// `i`'s partition is a pure function of `(seed, i, distribution)`,
    /// derived on demand by [`Experiment::client_shard`]. O(dataset)
    /// state regardless of the population size.
    pub population: ClientPopulation,
    /// Which clients are malicious — indexed by *global* client id over
    /// the whole population (identity-bound state survives across
    /// sampled cohorts).
    pub malicious: Vec<bool>,
    /// The model template (architecture + initial parameters).
    pub template: Box<dyn Model>,
    config: HflConfig,
    /// Compiled fault schedule, when the config carries a `FaultPlan`.
    injector: Option<FaultInjector>,
    /// Per-client arrival-delay multipliers (compute × bandwidth), drawn
    /// once at prepare when the config carries a [`HeterogeneityCfg`]
    /// and no sampling (the identity cohort); under sampling the profile
    /// is derived lazily per global client instead.
    arrival_profiles: Option<Vec<f64>>,
    /// Materialized post-poisoning shards in the identity-cohort case
    /// (`sampling: None`) — the eager layout this refactor replaced,
    /// kept so the dense small-n path pays no per-round derivation.
    /// `None` under sampling: per-round cost then touches only the
    /// cohort's shards.
    shard_cache: Option<Vec<Dataset>>,
}

impl Experiment {
    /// Builds everything deterministic-from-seed: hierarchy, task,
    /// malicious mask, partition, data poisoning, model init.
    ///
    /// # Panics
    /// On an inconsistent config; [`Experiment::try_prepare`] reports
    /// instead.
    pub fn prepare(cfg: &HflConfig) -> Self {
        match Self::try_prepare(cfg) {
            Ok(exp) => exp,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Experiment::prepare`] returning the config inconsistency (if
    /// any) instead of panicking — sweep harnesses report the offending
    /// cell and move on.
    pub fn try_prepare(cfg: &HflConfig) -> Result<Self, ConfigError> {
        let hierarchy = cfg.topology.build(cfg.seed);
        cfg.try_validate(&hierarchy)?;
        let injector = match &cfg.faults {
            Some(plan) if !plan.is_empty() => Some(
                FaultInjector::compile(plan, &hierarchy, cfg.seed).map_err(ConfigError::Faults)?,
            ),
            _ => None,
        };
        let n_clients = hierarchy.num_clients();
        // Without sampling the population *is* the hierarchy's bottom
        // level; with it, identity-bound state spans the whole population.
        let population_n = cfg.sampling.as_ref().map_or(n_clients, |s| s.population);

        let mut data_cfg = cfg.data.clone();
        data_cfg.seed = hfl_ml::rng::derive_seed(cfg.seed, 0xDA7A);
        let task = SyntheticDigits::generate(&data_cfg);

        let malicious = match &cfg.malicious_override {
            Some(mask) => mask.clone(),
            None => malicious_mask(
                population_n,
                cfg.attack.proportion(),
                cfg.attack.placement(),
                hfl_ml::rng::derive_seed(cfg.seed, 0xBAD),
            ),
        };

        // The lazy shard plan: O(dataset) state however large the
        // population, consuming exactly the RNG streams the eager
        // partition functions did (the equivalence the ml crate's
        // proptests pin down).
        let population = match &cfg.distribution {
            DataDistribution::Iid => ClientPopulation::iid(&task.train, population_n, cfg.seed),
            DataDistribution::NonIid { labels_per_client } => ClientPopulation::noniid(
                &task.train,
                population_n,
                *labels_per_client,
                &malicious,
                cfg.seed,
            ),
            DataDistribution::Dirichlet { alpha } => {
                ClientPopulation::dirichlet(&task.train, population_n, *alpha, &malicious, cfg.seed)
            }
        };

        let template = cfg.model.build(
            task.train.dim(),
            task.train.num_classes(),
            hfl_ml::rng::derive_seed(cfg.seed, 0x0de1),
        );

        // Device heterogeneity: each client draws a compute factor and a
        // bandwidth factor uniformly from [1, spread]; their product
        // stretches that client's synthesized arrival delay under async
        // rounds. Drawn from a dedicated stream so enabling profiles
        // perturbs nothing else. Under sampling the per-client draw
        // moves to `arrival_profile` (a dedicated stream per global id)
        // so the profile table never materializes at population scale.
        let arrival_profiles = match (&cfg.heterogeneity, &cfg.sampling) {
            (Some(het), None) => {
                use rand::Rng;
                let mut rng = rng_for_n(cfg.seed, &[0x4E70]);
                Some(
                    (0..n_clients)
                        .map(|_| {
                            let compute = 1.0 + rng.gen::<f64>() * (het.compute_spread - 1.0);
                            let bandwidth = 1.0 + rng.gen::<f64>() * (het.bandwidth_spread - 1.0);
                            compute * bandwidth
                        })
                        .collect(),
                )
            }
            _ => None,
        };

        let mut exp = Self {
            hierarchy,
            task,
            population,
            malicious,
            template,
            config: cfg.clone(),
            injector,
            arrival_profiles,
            shard_cache: None,
        };
        // Identity cohort: materialize every shard once (the pre-refactor
        // eager layout — data poisoning happens up front and poisoned
        // devices then train "honestly" on poisoned data for the whole
        // run). Sampled runs instead derive shards per round, cohort-only.
        if cfg.sampling.is_none() {
            exp.shard_cache = Some((0..population_n).map(|c| exp.derive_shard(c)).collect());
        }
        Ok(exp)
    }

    /// The configuration this experiment was prepared from.
    pub fn config(&self) -> &HflConfig {
        &self.config
    }

    /// The compiled fault schedule, when the config carries one.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// The arrival-delay multiplier for global client `client` — 1.0
    /// unless the config carries a
    /// [`crate::config::HeterogeneityCfg`], in which case the client's
    /// compute × bandwidth slowdown product. Table-backed in the
    /// identity-cohort case, derived from a per-client stream under
    /// sampling (O(1) state at any population size).
    pub fn arrival_profile(&self, client: usize) -> f64 {
        if let Some(p) = &self.arrival_profiles {
            return p.get(client).copied().unwrap_or(1.0);
        }
        let Some(het) = &self.config.heterogeneity else {
            return 1.0;
        };
        use rand::Rng;
        let mut rng = rng_for_n(self.config.seed, &[0x4E70, client as u64]);
        let compute = 1.0 + rng.gen::<f64>() * (het.compute_spread - 1.0);
        let bandwidth = 1.0 + rng.gen::<f64>() * (het.bandwidth_spread - 1.0);
        compute * bandwidth
    }

    /// Total client population n — the hierarchy's client count unless
    /// per-round sampling binds the cohort to a larger population.
    pub fn population_size(&self) -> usize {
        self.population.num_clients()
    }

    /// The global client ids bound to the cohort's slots this round, in
    /// ascending order (one per bottom-level hierarchy position).
    /// Identity — slot `i` is client `i` — without sampling; otherwise a
    /// per-round draw from a dedicated RNG stream, so enabling sampling
    /// perturbs no other stream.
    pub fn cohort(&self, round: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.cohort_into(round, &mut out);
        out
    }

    /// [`Self::cohort`] into a caller-owned buffer — the identity
    /// cohort (no sampling) fills it without allocating, which keeps
    /// the engine's steady-state rounds heap-free. Sampled draws reuse
    /// the buffer but still pay their own working memory.
    pub fn cohort_into(&self, round: usize, out: &mut Vec<usize>) {
        out.clear();
        let m = self.hierarchy.num_clients();
        let Some(s) = &self.config.sampling else {
            out.extend(0..m);
            return;
        };
        let n = s.population;
        let mut rng = rng_for_n(self.config.seed, &[round as u64, 0x5A3F]);
        let draw = |rng: &mut rand::rngs::StdRng, bound: u64| -> usize {
            (rand::Rng::gen::<u64>(rng) % bound) as usize
        };
        match s.scheme {
            SamplingScheme::Uniform => {
                // Floyd's algorithm: m distinct ids from 0..n in O(m)
                // draws and O(m) memory, independent of n.
                let mut chosen = std::collections::HashSet::with_capacity(m);
                for j in (n - m)..n {
                    let t = draw(&mut rng, j as u64 + 1);
                    if !chosen.insert(t) {
                        chosen.insert(j);
                    }
                }
                out.extend(chosen);
                out.sort_unstable();
            }
            SamplingScheme::Stratified => {
                // One pick per contiguous stratum [i·n/m, (i+1)·n/m):
                // n ≥ m keeps every stratum non-empty, and the picks are
                // strictly increasing (hence distinct and sorted).
                out.extend((0..m).map(|i| {
                    let lo = i * n / m;
                    let hi = (i + 1) * n / m;
                    lo + draw(&mut rng, (hi - lo) as u64)
                }));
            }
        }
    }

    /// Global client `client`'s training shard — derived on demand from
    /// the lazy partition plan, with the client's data poisoning applied
    /// (poisoned devices train "honestly" on poisoned data). A clone of
    /// the materialized shard in the identity-cohort case.
    pub fn client_shard(&self, client: usize) -> Dataset {
        match &self.shard_cache {
            Some(cache) => cache[client].clone(),
            None => self.derive_shard(client),
        }
    }

    /// Derives the post-poisoning shard of global client `client` from
    /// scratch: a pure function of `(seed, client, distribution,
    /// attack)`, byte-identical to the eager preparation it replaced.
    fn derive_shard(&self, client: usize) -> Dataset {
        let mut shard = self.population.shard(&self.task.train, client);
        if self.malicious[client] && !shard.is_empty() {
            if let AttackCfg::Data { attack, .. } = &self.config.attack {
                let mut rng = rng_for_n(self.config.seed, &[0x1207, client as u64]);
                attack.apply(&mut shard, &mut rng);
            }
        }
        shard
    }

    /// Trains this round's cohort from `global`, in parallel. Returns
    /// one update per cohort slot (crafted updates substituted for
    /// model-poisoning attackers). Without sampling the cohort is every
    /// client.
    pub fn train_round(&self, global: &[f32], round: usize) -> Vec<Vec<f32>> {
        self.train_round_with(global, round, None, &Telemetry::disabled())
    }

    /// [`Self::train_round`] with an optional adaptive-attack override
    /// (the arms race's current crafted attack replaces the configured
    /// static one) and telemetry for anomalies.
    ///
    /// With no honest updates to estimate from (malicious proportion
    /// 1.0), crafting degrades to re-sending the round's starting global
    /// model instead of panicking, and the degradation is recorded as an
    /// `attack_no_honest_updates` anomaly event.
    pub fn train_round_with(
        &self,
        global: &[f32],
        round: usize,
        adaptive: Option<&ModelAttack>,
        telem: &Telemetry,
    ) -> Vec<Vec<f32>> {
        let mut updates = Vec::new();
        let mut ws = TrainWorkspace::default();
        self.train_round_into(global, round, adaptive, telem, &mut updates, &mut ws);
        updates
    }

    /// [`Self::train_round_with`] into caller-owned buffers. Numerically
    /// identical (same RNG streams, same arithmetic); with one worker
    /// thread the reusable model + SGD scratch in `ws` make the whole
    /// training step allocation-free once capacities have grown.
    pub fn train_round_into(
        &self,
        global: &[f32],
        round: usize,
        adaptive: Option<&ModelAttack>,
        telem: &Telemetry,
        updates: &mut Vec<Vec<f32>>,
        ws: &mut TrainWorkspace,
    ) {
        let cfg = &self.config;
        self.cohort_into(round, &mut ws.cohort);
        let TrainWorkspace {
            cohort,
            model: trainee,
            scratch,
        } = ws;
        let n = cohort.len();
        let threads = hfl_parallel::default_threads();
        updates.resize_with(n, Vec::new);
        if threads == 1 {
            // Sequential hot path: one reusable model instance serves
            // every slot in turn (`set_params` overwrites all
            // parameters, so reuse equals a fresh clone), and the SGD
            // scratch recycles its gradient/index/staging buffers.
            let model = trainee.get_or_insert_with(|| self.template.clone_box());
            for slot in 0..n {
                let c = cohort[slot];
                model.set_params(global);
                // Borrow the materialized shard when cached (identity
                // cohort); derive just this client's otherwise —
                // per-round work stays O(cohort), not O(population).
                let derived;
                let shard = match &self.shard_cache {
                    Some(cache) => &cache[c],
                    None => {
                        derived = self.derive_shard(c);
                        &derived
                    }
                };
                // Populations larger than the dataset leave tail
                // clients with empty shards; they contribute the
                // round's starting model unchanged.
                if !shard.is_empty() {
                    let mut rng = rng_for_n(cfg.seed, &[round as u64, c as u64, 0x7247]);
                    train_local_scratch(
                        model.as_mut(),
                        shard,
                        &cfg.sgd.at_round(round),
                        cfg.local_iters,
                        &mut rng,
                        scratch,
                    );
                }
                updates[slot].clear();
                updates[slot].extend_from_slice(model.params());
            }
        } else {
            let computed = hfl_parallel::par_map_indexed(n, threads, |slot| {
                let c = cohort[slot];
                let mut model = self.template.clone_box();
                model.set_params(global);
                let derived;
                let shard = match &self.shard_cache {
                    Some(cache) => &cache[c],
                    None => {
                        derived = self.derive_shard(c);
                        &derived
                    }
                };
                if !shard.is_empty() {
                    let mut rng = rng_for_n(cfg.seed, &[round as u64, c as u64, 0x7247]);
                    train_local(
                        model.as_mut(),
                        shard,
                        &cfg.sgd.at_round(round),
                        cfg.local_iters,
                        &mut rng,
                    );
                }
                model.params().to_vec()
            });
            for (dst, src) in updates.iter_mut().zip(computed) {
                *dst = src;
            }
        }

        let crafting = adaptive.or(match &cfg.attack {
            AttackCfg::Model { attack, .. } => Some(attack),
            _ => None,
        });
        if let Some(attack) = crafting {
            let honest: Vec<&[f32]> = updates
                .iter()
                .zip(cohort.iter())
                .filter(|(_, &c)| !self.malicious[c])
                .map(|(u, _)| u.as_slice())
                .collect();
            let mut rng = rng_for_n(cfg.seed, &[round as u64, 0xE71]);
            let crafted = match attack.try_craft(&honest, &mut rng) {
                Some(c) => c,
                None => {
                    if telem.enabled() {
                        telem.emit(Event::Anomaly {
                            kind: "attack_no_honest_updates".into(),
                            detail: format!(
                                "round {round}: no honest updates to craft from, \
                                 degrading to the stale global model"
                            ),
                        });
                    }
                    global.to_vec()
                }
            };
            for (u, &c) in updates.iter_mut().zip(cohort.iter()) {
                if self.malicious[c] {
                    u.copy_from_slice(&crafted);
                }
            }
        }
    }

    /// True when this device misbehaves *inside* aggregation protocols
    /// (only model-poisoning adversaries — static or adaptive — do; data
    /// poisoners follow the protocol honestly — paper Appendix D).
    /// `device` is a *global* client id (callers map cohort slots
    /// through the round's cohort first).
    pub(crate) fn protocol_byzantine(&self, device: usize) -> bool {
        matches!(
            self.config.attack,
            AttackCfg::Model { .. } | AttackCfg::Adaptive { .. }
        ) && self.malicious[device]
    }

    /// Which clients participate this round under churn (Assumption 3).
    /// Leaders always participate; others leave independently with
    /// `churn_leave_prob` (or a fault plan's churn override while one is
    /// active). All-present when churn is disabled.
    pub fn active_mask(&self, round: usize) -> Vec<bool> {
        let mut out = Vec::new();
        self.active_mask_into(round, &mut out);
        out
    }

    /// [`Self::active_mask`] into a caller-owned buffer — allocation-free
    /// when churn is disabled (the all-present fast path the engine's
    /// steady-state rounds take).
    pub fn active_mask_into(&self, round: usize, out: &mut Vec<bool>) {
        let p = self
            .injector
            .as_ref()
            .and_then(|inj| inj.churn_leave_prob(round))
            .unwrap_or(self.config.churn_leave_prob);
        // Churn is topological: it empties cohort *slots* (hierarchy
        // positions), whatever client a sampled round bound to them.
        let n = self.hierarchy.num_clients();
        out.clear();
        if p == 0.0 {
            out.resize(n, true);
            return;
        }
        let bottom = self.hierarchy.bottom_level();
        let mut rng = rng_for_n(self.config.seed, &[round as u64, 0xC842]);
        let leaders: std::collections::HashSet<usize> = self
            .hierarchy
            .level(bottom)
            .clusters
            .iter()
            .map(|c| c.leader())
            .collect();
        out.extend((0..n).map(|c| leaders.contains(&c) || !rand::Rng::gen_bool(&mut rng, p)));
    }

    /// Runs one round of bottom-up aggregation given per-client updates;
    /// returns the new global model and accumulates cost counters.
    #[deprecated(note = "build a `crate::engine::RoundEngine` (or use the \
                         `crate::run` entry points) instead")]
    pub fn aggregate_round(
        &self,
        updates: &[Vec<f32>],
        round: usize,
        cost: &mut CostCounters,
    ) -> Vec<f32> {
        let mut fault_log = Vec::new();
        let mut susp_log = Vec::new();
        RoundEngine::fault_only(self).aggregate_round(
            updates,
            round,
            cost,
            &Telemetry::disabled(),
            &mut fault_log,
            &mut susp_log,
        )
    }

    /// [`Self::aggregate_round`] with telemetry: emits structured events
    /// (cluster aggregations, exclusions, churn absences, message
    /// transfers) when the recorder is enabled and records per-mechanism
    /// consensus metrics into the registry. Identical numerics and RNG
    /// stream — instrumentation only observes.
    #[deprecated(note = "build a `crate::engine::RoundEngine` (or use the \
                         `crate::run` entry points) instead")]
    pub fn aggregate_round_with(
        &self,
        updates: &[Vec<f32>],
        round: usize,
        cost: &mut CostCounters,
        telem: &Telemetry,
    ) -> Vec<f32> {
        let mut fault_log = Vec::new();
        let mut susp_log = Vec::new();
        RoundEngine::fault_only(self).aggregate_round(
            updates,
            round,
            cost,
            telem,
            &mut fault_log,
            &mut susp_log,
        )
    }

    /// [`Self::aggregate_round_with`] that also appends failover and
    /// degraded-quorum [`FaultRecord`]s to `fault_log` (the manifest's
    /// fault log is filled even when the recorder is disabled, like the
    /// per-round time series).
    ///
    /// These legacy entry points predate the arms race, so they run a
    /// fault-only [`RoundEngine`] stack regardless of the config's
    /// attack/suspicion settings.
    #[deprecated(note = "build a `crate::engine::RoundEngine` (or use the \
                         `crate::run` entry points) instead")]
    pub fn aggregate_round_logged(
        &self,
        updates: &[Vec<f32>],
        round: usize,
        cost: &mut CostCounters,
        telem: &Telemetry,
        fault_log: &mut Vec<FaultRecord>,
    ) -> Vec<f32> {
        let mut susp_log = Vec::new();
        RoundEngine::fault_only(self).aggregate_round(
            updates,
            round,
            cost,
            telem,
            fault_log,
            &mut susp_log,
        )
    }

    /// Test accuracy of a parameter vector.
    pub fn evaluate(&self, params: &[f32]) -> f64 {
        let mut model = self.template.clone_box();
        model.set_params(params);
        hfl_ml::metrics::accuracy_parallel(
            model.as_ref(),
            &self.task.test,
            hfl_parallel::default_threads(),
        )
    }
}

/// Runs the full ABD-HFL training loop described by `cfg`.
#[deprecated(note = "use `crate::run::run` (or `crate::run::RunOptions` \
                     for telemetry and driver selection)")]
pub fn run_abd_hfl(cfg: &HflConfig) -> RunResult {
    run_prepared(&Experiment::prepare(cfg))
}

/// [`run_abd_hfl`] with telemetry: returns the result together with the
/// run's [`RunManifest`].
#[deprecated(note = "use `crate::run::RunOptions` with \
                     `RunOptions::telemetry`")]
pub fn run_abd_hfl_with(cfg: &HflConfig, telem: &Telemetry) -> InstrumentedRun {
    let exp = Experiment::prepare(cfg);
    run_prepared_with(&exp, telem)
}

/// Runs a prepared experiment (exposed so harnesses can reuse the
/// preparation across repetitions).
pub fn run_prepared(exp: &Experiment) -> RunResult {
    run_prepared_with(exp, &Telemetry::disabled()).result
}

/// [`run_prepared`] with telemetry: emits round lifecycle events, keeps
/// the `hfl_*` counters, and assembles the run's [`RunManifest`]
/// (per-round time series, totals, final registry snapshot).
///
/// Determinism: in default (no `wall-clock`) builds the manifest is a
/// pure function of the config — identical seeds give byte-identical
/// `manifest.to_json()` output.
pub fn run_prepared_with(exp: &Experiment, telem: &Telemetry) -> InstrumentedRun {
    let (run, _) = run_loop(exp, telem, None, None).expect("a fresh run cannot fail to start");
    run
}

/// Why a snapshot was refused by the resume entry points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResumeError {
    /// The snapshot was written by a different codec version.
    Version {
        /// The version tag found in the snapshot.
        found: u64,
    },
    /// The snapshot was captured under a config this one is not a
    /// horizon-extension of (only `rounds` / `eval_every` may differ).
    ConfigMismatch {
        /// What differed.
        detail: String,
    },
    /// The snapshot is internally inconsistent (truncated model,
    /// mismatched prefix lengths, unrestorable metrics).
    Corrupt {
        /// What is broken.
        detail: String,
    },
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Version { found } => write!(
                f,
                "cannot resume: snapshot version {found}, this build reads {SNAPSHOT_VERSION}"
            ),
            ResumeError::ConfigMismatch { detail } => {
                write!(f, "cannot resume under this config: {detail}")
            }
            ResumeError::Corrupt { detail } => write!(f, "corrupt snapshot: {detail}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Hash of `cfg` with the horizon fields (`rounds`, `eval_every`)
/// normalized away — the compatibility key a snapshot embeds as
/// `base_hash`. Resume accepts any config whose base hash matches the
/// snapshot's, which is what lets a shrink candidate with a shorter
/// horizon reuse its parent's checkpoints.
pub fn base_config_hash(cfg: &HflConfig) -> String {
    let mut c = cfg.clone();
    c.rounds = 0;
    c.eval_every = 1;
    fnv1a_hex(format!("{c:?}").as_bytes())
}

/// [`run_prepared_with`] that also captures an [`EngineSnapshot`] after
/// every `capture_every`-th completed round (never after the last — a
/// finished run has nothing to resume). The run itself is unaffected:
/// capture only reads state.
///
/// # Panics
/// When `capture_every` is zero.
pub fn run_prepared_snapshotting(
    exp: &Experiment,
    telem: &Telemetry,
    capture_every: usize,
) -> (InstrumentedRun, Vec<EngineSnapshot>) {
    assert!(capture_every > 0, "capture_every must be positive");
    run_loop(exp, telem, None, Some(capture_every)).expect("a fresh run cannot fail to start")
}

/// Continues a run from `snapshot` through rounds
/// `snapshot.round..cfg.rounds`, byte-identically to the straight
///-through execution of the same config: same model trajectory, same
/// manifest JSON, same registry totals.
///
/// `exp` must be prepared from a config whose [`base_config_hash`]
/// matches the snapshot's (the full hash may differ in the horizon
/// fields only), and `telem` must be a fresh bundle — the snapshot's
/// metric accumulators are seeded into its registry.
pub fn resume_prepared_with(
    exp: &Experiment,
    telem: &Telemetry,
    snapshot: &EngineSnapshot,
) -> Result<InstrumentedRun, ResumeError> {
    Ok(run_loop(exp, telem, Some(snapshot), None)?.0)
}

fn cost_to_snapshot(c: &CostCounters) -> CostSnapshot {
    CostSnapshot {
        messages: c.messages,
        bytes: c.bytes,
        excluded: c.excluded,
        absent: c.absent,
        faulted: c.faulted,
        quarantined: c.quarantined,
        withheld: c.withheld,
    }
}

fn cost_from_snapshot(s: &CostSnapshot) -> CostCounters {
    CostCounters {
        messages: s.messages,
        bytes: s.bytes,
        excluded: s.excluded,
        absent: s.absent,
        faulted: s.faulted,
        quarantined: s.quarantined,
        withheld: s.withheld,
    }
}

/// Seeds a fresh registry from a snapshot's metric samples. Counter and
/// gauge names are interned back to the `&'static str` the engine
/// registers them under; an unknown name (or a histogram, which cannot
/// be reconstructed from its stats) rejects the snapshot rather than
/// silently dropping totals.
fn restore_registry(reg: &Registry, samples: &[MetricSample]) -> Result<(), String> {
    const PLAIN_COUNTERS: &[&str] = &[
        "hfl_messages_total",
        "hfl_bytes_total",
        "hfl_excluded_total",
        "hfl_absent_total",
        "hfl_faulted_total",
        "hfl_quarantined_total",
        "hfl_withheld_total",
        "hfl_equivocations_total",
        "hfl_deadline_closes_total",
        "hfl_quorum_closes_total",
        "hfl_stale_admitted_total",
        "hfl_stale_dropped_total",
    ];
    const MECHANISM_COUNTERS: &[&str] = &[
        "consensus_instances_total",
        "consensus_excluded_total",
        "consensus_rounds_total",
        "consensus_messages_total",
        "consensus_bytes_total",
    ];
    for s in samples {
        match &s.value {
            MetricValue::Counter(v) => {
                if s.labels.is_empty() {
                    let name = PLAIN_COUNTERS
                        .iter()
                        .copied()
                        .find(|n| *n == s.name)
                        .ok_or_else(|| format!("unknown counter '{}' in snapshot", s.name))?;
                    reg.counter(name, &[]).inc(*v);
                } else if s.labels.len() == 1 && s.labels[0].0 == "mechanism" {
                    let name = MECHANISM_COUNTERS
                        .iter()
                        .copied()
                        .find(|n| *n == s.name)
                        .ok_or_else(|| {
                            format!("unknown per-mechanism counter '{}' in snapshot", s.name)
                        })?;
                    reg.counter(name, &[("mechanism", &s.labels[0].1)]).inc(*v);
                } else {
                    return Err(format!(
                        "counter '{}' carries labels this engine never writes",
                        s.name
                    ));
                }
            }
            MetricValue::Gauge(v) => {
                if s.name == "hfl_accuracy" && s.labels.is_empty() {
                    reg.gauge("hfl_accuracy", &[]).set(*v);
                } else if s.name == "hfl_buffer_occupancy" && s.labels.is_empty() {
                    reg.gauge("hfl_buffer_occupancy", &[]).set(*v);
                } else {
                    return Err(format!("unknown gauge '{}' in snapshot", s.name));
                }
            }
            MetricValue::Histogram(_) => {
                return Err(format!(
                    "histogram '{}' cannot be restored into a registry",
                    s.name
                ));
            }
        }
    }
    Ok(())
}

/// The one synchronous-driver loop behind [`run_prepared_with`],
/// [`run_prepared_snapshotting`] and [`resume_prepared_with`]: start
/// state comes from round 0 or a snapshot, and checkpoints are captured
/// on the way when asked.
fn run_loop(
    exp: &Experiment,
    telem: &Telemetry,
    start: Option<&EngineSnapshot>,
    capture_every: Option<usize>,
) -> Result<(InstrumentedRun, Vec<EngineSnapshot>), ResumeError> {
    let cfg = exp.config();
    let config_hash = fnv1a_hex(format!("{cfg:?}").as_bytes());
    let base_hash = base_config_hash(cfg);
    let mut global = exp.template.params().to_vec();
    let mut cost = CostCounters::default();
    let mut accuracy = Vec::new();
    let mut manifest = RunManifest::new("abd-hfl", cfg.seed, config_hash.clone());
    let mut susp_records: Vec<SuspicionRecord> = Vec::new();
    let mut snapshots: Vec<EngineSnapshot> = Vec::new();

    // The round engine with the config's layer stack: faults when a
    // plan is compiled, defense + adversary when the arms race is
    // engaged, empty for plain configs.
    let mut engine = RoundEngine::for_experiment(exp);

    let first_round = match start {
        None => 0,
        Some(s) => {
            if s.version != SNAPSHOT_VERSION {
                return Err(ResumeError::Version { found: s.version });
            }
            if s.base_hash != base_hash {
                return Err(ResumeError::ConfigMismatch {
                    detail: format!(
                        "snapshot base hash {} vs this config's {}",
                        s.base_hash, base_hash
                    ),
                });
            }
            if s.round > cfg.rounds {
                return Err(ResumeError::ConfigMismatch {
                    detail: format!(
                        "snapshot is at round {} but the config stops at {}",
                        s.round, cfg.rounds
                    ),
                });
            }
            if s.model.len() != global.len() {
                return Err(ResumeError::Corrupt {
                    detail: format!(
                        "snapshot model has {} parameters, the prepared model has {}",
                        s.model.len(),
                        global.len()
                    ),
                });
            }
            if s.rounds.len() != s.round {
                return Err(ResumeError::Corrupt {
                    detail: format!(
                        "snapshot at round {} carries {} round records",
                        s.round,
                        s.rounds.len()
                    ),
                });
            }
            global.copy_from_slice(&s.model);
            cost = cost_from_snapshot(&s.cost);
            accuracy = s.accuracy.clone();
            manifest.rounds = s.rounds.clone();
            manifest.faults = s.faults.clone();
            susp_records = s.susp_log.clone();
            engine
                .restore_layers(s.round, &s.layers)
                .map_err(|detail| ResumeError::ConfigMismatch { detail })?;
            restore_registry(telem.registry(), &s.metrics)
                .map_err(|detail| ResumeError::Corrupt { detail })?;
            s.round
        }
    };

    let messages_c = telem.registry().counter("hfl_messages_total", &[]);
    let bytes_c = telem.registry().counter("hfl_bytes_total", &[]);
    let excluded_c = telem.registry().counter("hfl_excluded_total", &[]);
    let absent_c = telem.registry().counter("hfl_absent_total", &[]);
    let faulted_c = telem.registry().counter("hfl_faulted_total", &[]);
    let quarantined_c = telem.registry().counter("hfl_quarantined_total", &[]);
    let withheld_c = telem.registry().counter("hfl_withheld_total", &[]);
    let accuracy_g = telem.registry().gauge("hfl_accuracy", &[]);

    // Outside strict mode, a Krum/Multi-Krum level whose smallest
    // cluster violates n ≥ 2f + 3 is allowed (the paper's own defaults
    // do this) but flagged once at run start.
    if !cfg.strict_guarantees && telem.enabled() {
        for (level, agg) in cfg.levels.iter().enumerate() {
            let f = match agg {
                LevelAgg::Bra(AggregatorKind::Krum { f })
                | LevelAgg::Bra(AggregatorKind::MultiKrum { f, .. }) => *f,
                _ => continue,
            };
            let n_min = exp
                .hierarchy
                .level(level)
                .clusters
                .iter()
                .map(|c| c.len())
                .min()
                .unwrap_or(0);
            if !Krum::guarantee_holds(f, n_min) {
                telem.emit(Event::Anomaly {
                    kind: "krum_guarantee_degraded".into(),
                    detail: format!(
                        "level {level}: Krum assumes n >= 2f + 3 but the smallest \
                         cluster has n = {n_min} with f = {f}; selection still runs \
                         but its Byzantine guarantee does not hold"
                    ),
                });
            }
        }
    }

    // Round-persistent buffers: the engine writes each round's global
    // into `next_global`, then the two swap — no per-round model
    // allocation. The fault log keeps its high-water capacity too.
    let mut next_global: Vec<f32> = Vec::with_capacity(global.len());
    let mut fault_log: Vec<FaultRecord> = Vec::new();
    manifest
        .rounds
        .reserve(cfg.rounds.saturating_sub(first_round));
    for round in first_round..cfg.rounds {
        if telem.enabled() {
            telem.emit(Event::RoundStarted { round });
        }
        let before = cost;
        fault_log.clear();
        engine.run_round_into(
            &global,
            round,
            &mut cost,
            telem,
            &mut fault_log,
            &mut susp_records,
            &mut next_global,
        );
        std::mem::swap(&mut global, &mut next_global);
        let delta = cost.since(&before);
        messages_c.inc(delta.messages);
        bytes_c.inc(delta.bytes);
        excluded_c.inc(delta.excluded);
        absent_c.inc(delta.absent);
        faulted_c.inc(delta.faulted);
        quarantined_c.inc(delta.quarantined);
        withheld_c.inc(delta.withheld);
        manifest.faults.append(&mut fault_log);

        let mut round_accuracy = None;
        if (round + 1) % cfg.eval_every == 0 || round + 1 == cfg.rounds {
            let a = exp.evaluate(&global);
            accuracy.push((round + 1, a));
            accuracy_g.set(a);
            round_accuracy = Some(a);
            if telem.enabled() {
                telem.emit(Event::Evaluated { round, accuracy: a });
            }
        }
        if telem.enabled() {
            telem.emit(Event::RoundFinished {
                round,
                messages: delta.messages,
                bytes: delta.bytes,
                excluded: delta.excluded,
                absent: delta.absent,
            });
        }
        manifest.rounds.push(RoundRecord {
            round: round + 1,
            accuracy: round_accuracy,
            messages: delta.messages,
            bytes: delta.bytes,
            excluded: delta.excluded,
            absent: delta.absent,
        });

        // Checkpoint the completed round (never the last: a finished
        // run has nothing left to resume). Capture only reads state, so
        // the run's own trajectory is unaffected.
        let done = round + 1;
        if let Some(every) = capture_every {
            if done < cfg.rounds && done % every == 0 {
                snapshots.push(EngineSnapshot {
                    version: SNAPSHOT_VERSION,
                    seed: cfg.seed,
                    config_hash: config_hash.clone(),
                    base_hash: base_hash.clone(),
                    round: done,
                    model: global.clone(),
                    cost: cost_to_snapshot(&cost),
                    accuracy: accuracy.clone(),
                    rounds: manifest.rounds.clone(),
                    faults: manifest.faults.clone(),
                    susp_log: susp_records.clone(),
                    layers: engine.snapshot_layers(done),
                    metrics: telem.registry().snapshot(),
                });
            }
        }
    }
    let final_accuracy = accuracy.last().map(|(_, a)| *a).unwrap_or(0.0);
    manifest.totals = RunTotals {
        messages: cost.messages,
        bytes: cost.bytes,
        excluded: cost.excluded,
        absent: cost.absent,
    };
    manifest.final_accuracy = final_accuracy;
    // The suspicion section appears iff the suspicion layer ran (or a
    // protocol attack produced records): absent keys keep pre-v3
    // manifests byte-identical for unchanged configs.
    if engine.suspicion().is_some() || !susp_records.is_empty() {
        let final_scores = engine
            .suspicion()
            .map(|t| {
                t.scores()
                    .iter()
                    .enumerate()
                    .filter(|&(c, &s)| s > 0.0 || t.is_quarantined(c))
                    .map(|(c, &s)| ClientScore {
                        client: c,
                        score: s,
                        quarantined: t.is_quarantined(c),
                    })
                    .collect()
            })
            .unwrap_or_default();
        manifest.suspicion = Some(SuspicionSection {
            events: susp_records,
            final_scores,
        });
    }
    manifest.metrics = telem.registry().snapshot();

    Ok((
        InstrumentedRun {
            result: RunResult {
                accuracy,
                final_accuracy,
                messages: cost.messages,
                bytes: cost.bytes,
                excluded_total: cost.excluded,
                absent_total: cost.absent,
                faulted_total: cost.faulted,
                quarantined_total: cost.quarantined,
                withheld_total: cost.withheld,
            },
            manifest,
        },
        snapshots,
    ))
}

/// Convenience for the repeated-runs protocol of the paper (5 runs,
/// seeds `seed + k`): returns the per-run results.
pub fn run_repeated(cfg: &HflConfig, repetitions: usize) -> Vec<RunResult> {
    assert!(repetitions > 0, "need at least one repetition");
    (0..repetitions)
        .map(|k| {
            let mut c = cfg.clone();
            c.seed = hfl_ml::rng::derive_seed(cfg.seed, 0x2E9 + k as u64);
            run_prepared(&Experiment::prepare(&c))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HflConfig;
    use hfl_attacks::{DataAttack, Placement};

    // Shadow the deprecated shims with the unified entry point so the
    // tests exercise the current API.
    fn run_abd_hfl(cfg: &HflConfig) -> RunResult {
        crate::run::run(cfg)
    }

    fn run_abd_hfl_with(cfg: &HflConfig, telem: &Telemetry) -> InstrumentedRun {
        run_prepared_with(&Experiment::prepare(cfg), telem)
    }

    fn quick(attack: AttackCfg, seed: u64) -> HflConfig {
        let mut cfg = HflConfig::quick(attack, seed);
        cfg.rounds = 25;
        cfg.eval_every = 25;
        cfg
    }

    #[test]
    fn honest_run_learns() {
        let r = run_abd_hfl(&quick(AttackCfg::None, 1));
        assert!(
            r.final_accuracy > 0.75,
            "clean accuracy only {}",
            r.final_accuracy
        );
        assert!(r.messages > 0 && r.bytes > 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = run_abd_hfl(&quick(AttackCfg::None, 7));
        let b = run_abd_hfl(&quick(AttackCfg::None, 7));
        assert_eq!(a.final_accuracy, b.final_accuracy);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn survives_30_percent_type_i_poisoning() {
        let attack = AttackCfg::Data {
            attack: DataAttack::type_i(),
            proportion: 0.3,
            placement: Placement::Prefix,
        };
        let r = run_abd_hfl(&quick(attack, 2));
        assert!(
            r.final_accuracy > 0.7,
            "ABD-HFL collapsed at 30 %: {}",
            r.final_accuracy
        );
    }

    #[test]
    fn consensus_excludes_poisoned_proposals() {
        let attack = AttackCfg::Data {
            attack: DataAttack::type_i(),
            proportion: 0.25,
            placement: Placement::Prefix,
        };
        let r = run_abd_hfl(&quick(attack, 3));
        // One proposal excluded per round by the vote.
        assert!(r.excluded_total > 0);
    }

    #[test]
    fn quorum_below_one_still_converges() {
        let mut cfg = quick(AttackCfg::None, 4);
        cfg.quorum = 0.75;
        let r = run_abd_hfl(&cfg);
        assert!(r.final_accuracy > 0.7, "quorum run: {}", r.final_accuracy);
    }

    #[test]
    fn repeated_runs_vary_but_agree_roughly() {
        let runs = run_repeated(&quick(AttackCfg::None, 5), 2);
        assert_eq!(runs.len(), 2);
        assert_ne!(runs[0].final_accuracy, runs[1].final_accuracy);
        assert!((runs[0].final_accuracy - runs[1].final_accuracy).abs() < 0.15);
    }

    #[test]
    fn churn_is_tolerated() {
        // 20 % of non-leader clients absent per round (Assumption 3):
        // learning still converges and absences are counted.
        let mut cfg = quick(AttackCfg::None, 11);
        cfg.churn_leave_prob = 0.2;
        let r = run_abd_hfl(&cfg);
        assert!(r.final_accuracy > 0.7, "churn run: {}", r.final_accuracy);
        // ≈ 0.2 × 48 non-leaders × 25 rounds = 240 expected absences.
        assert!(
            r.absent_total > 120 && r.absent_total < 400,
            "absences: {}",
            r.absent_total
        );
    }

    #[test]
    fn zero_churn_has_zero_absences() {
        let r = run_abd_hfl(&quick(AttackCfg::None, 12));
        assert_eq!(r.absent_total, 0);
    }

    #[test]
    fn leaders_never_churn() {
        let mut cfg = quick(AttackCfg::None, 13);
        cfg.churn_leave_prob = 0.9;
        let exp = Experiment::prepare(&cfg);
        let bottom = exp.hierarchy.bottom_level();
        for round in 0..5 {
            let active = exp.active_mask(round);
            for cluster in &exp.hierarchy.level(bottom).clusters {
                assert!(active[cluster.leader()], "leader churned out");
            }
        }
    }

    #[test]
    fn accuracy_series_has_eval_points() {
        let mut cfg = quick(AttackCfg::None, 6);
        cfg.rounds = 10;
        cfg.eval_every = 2;
        let r = run_abd_hfl(&cfg);
        assert_eq!(r.accuracy.len(), 5);
        assert_eq!(r.accuracy.last().unwrap().0, 10);
    }

    fn tiny(seed: u64) -> HflConfig {
        let mut cfg = HflConfig::quick(AttackCfg::None, seed);
        cfg.rounds = 3;
        cfg.eval_every = 3;
        cfg
    }

    #[test]
    fn manifest_is_byte_identical_across_equal_seeds() {
        let cfg = tiny(21);
        let a = run_abd_hfl_with(&cfg, &Telemetry::disabled());
        let b = run_abd_hfl_with(&cfg, &Telemetry::disabled());
        assert_eq!(a.manifest.to_json(), b.manifest.to_json());
        // And a different seed is visible in the manifest.
        let mut other = cfg.clone();
        other.seed = 22;
        let c = run_abd_hfl_with(&other, &Telemetry::disabled());
        assert_ne!(a.manifest.to_json(), c.manifest.to_json());
        assert_ne!(a.manifest.config_hash, c.manifest.config_hash);
    }

    #[test]
    fn manifest_roundtrips_and_matches_result() {
        let run = run_abd_hfl_with(&tiny(23), &Telemetry::disabled());
        let m = &run.manifest;
        assert_eq!(m.label, "abd-hfl");
        assert_eq!(m.seed, 23);
        assert_eq!(m.rounds.len(), 3);
        assert_eq!(m.totals.messages, run.result.messages);
        assert_eq!(m.totals.bytes, run.result.bytes);
        assert_eq!(
            m.rounds.iter().map(|r| r.messages).sum::<u64>(),
            run.result.messages
        );
        assert_eq!(m.final_accuracy, run.result.final_accuracy);
        // Only the last round is an eval point under eval_every = rounds.
        assert!(m.rounds[0].accuracy.is_none());
        assert!(m.rounds[2].accuracy.is_some());
        let back = hfl_telemetry::RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(&back, m);
    }

    #[test]
    fn instrumented_run_matches_uninstrumented() {
        let cfg = tiny(24);
        let plain = run_abd_hfl(&cfg);
        let (telem, _rec) = Telemetry::recording();
        let inst = run_abd_hfl_with(&cfg, &telem);
        assert_eq!(plain.final_accuracy, inst.result.final_accuracy);
        assert_eq!(plain.messages, inst.result.messages);
        assert_eq!(plain.bytes, inst.result.bytes);
    }

    #[test]
    fn events_cover_the_round_lifecycle() {
        let cfg = tiny(25);
        let (telem, rec) = Telemetry::recording();
        let inst = run_abd_hfl_with(&cfg, &telem);
        let events = rec.events();
        let starts = events
            .iter()
            .filter(|e| matches!(e, Event::RoundStarted { .. }))
            .count();
        let finishes = events
            .iter()
            .filter(|e| matches!(e, Event::RoundFinished { .. }))
            .count();
        assert_eq!(starts, cfg.rounds);
        assert_eq!(finishes, cfg.rounds);
        // Every message accounted in the result is also visible as a
        // MessagesSent event.
        let event_messages: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::MessagesSent { count, .. } => Some(*count),
                _ => None,
            })
            .sum();
        assert_eq!(event_messages, inst.result.messages);
        // And the registry counter agrees.
        assert_eq!(
            telem.registry().counter("hfl_messages_total", &[]).get(),
            inst.result.messages
        );
    }
}
