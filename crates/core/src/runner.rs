//! The synchronous-round reference driver — the evaluation mode of the
//! paper's own simulation (Algorithms 1–6 executed phase-by-phase each
//! global round; the pipeline/asynchrony aspects are studied separately
//! by [`crate::pipeline`], which measures timing on the event simulator).
//!
//! Per round:
//! 1. **LocalModelTraining** (Algorithm 2): every bottom device trains the
//!    current global model for `T` SGD iterations on its (possibly
//!    poisoned) shard — in parallel across clients.
//! 2. Model-poisoning attackers replace their trained update with a
//!    crafted vector (omniscient collusion).
//! 3. **PartialModelAggregation** (Algorithms 3–4): bottom-up per-cluster
//!    aggregation with the per-level BRA/CBA choice and quorum φ.
//! 4. **GlobalModelAggregation** (Algorithm 6): the top cluster forms the
//!    global model by BRA or consensus (validation voting over the test
//!    shards, Appendix D.B).
//! 5. **DisseminateModel** (Algorithm 5): the new global model reaches
//!    every device (message costs accounted level by level).

use rand::seq::SliceRandom;

use hfl_attacks::{
    malicious_mask, AdaptiveAdversary, AttackFeedback, ModelAttack, ProtocolAttack,
};
use hfl_consensus::echo::{echo_cost, hash_update, EchoReport};
use hfl_consensus::eval::AccuracyEvaluator;
use hfl_consensus::quorum_size;
use hfl_faults::FaultInjector;
use hfl_ml::partition::{iid_partition, noniid_partition};
use hfl_ml::rng::rng_for_n;
use hfl_ml::sgd::train_local;
use hfl_ml::synth::SyntheticDigits;
use hfl_ml::{Dataset, Model};
use hfl_robust::{evidence, AggregatorKind, Krum, SuspicionChange, SuspicionTracker};
use hfl_simnet::Hierarchy;
use hfl_telemetry::{
    fnv1a_hex, ClientScore, Event, FaultRecord, RoundRecord, RunManifest, RunTotals,
    SuspicionRecord, SuspicionSection, Telemetry,
};

use crate::config::{AttackCfg, ConfigError, DataDistribution, HflConfig, LevelAgg};

/// Outcome of one full training run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// `(round, test accuracy)` at each evaluation point (always includes
    /// the final round).
    pub accuracy: Vec<(usize, f64)>,
    /// Test accuracy of the final global model.
    pub final_accuracy: f64,
    /// Total model-bearing messages exchanged.
    pub messages: u64,
    /// Total payload bytes exchanged.
    pub bytes: u64,
    /// Total proposals excluded by consensus across all rounds.
    pub excluded_total: u64,
    /// Total client-round absences caused by churn.
    pub absent_total: u64,
    /// Total bottom-level client-round updates lost to injected faults
    /// (crashes, partitions, loss bursts). Zero for fault-free runs.
    pub faulted_total: u64,
    /// Total client-round updates excluded by the suspicion layer's
    /// quarantine. Zero when the layer is disabled.
    pub quarantined_total: u64,
    /// Total client-round updates a withholding coalition kept back.
    /// Zero without the `Withhold` protocol attack.
    pub withheld_total: u64,
}

/// A run's result plus its [`RunManifest`] — what the instrumented entry
/// points ([`run_abd_hfl_with`], [`run_prepared_with`]) return.
#[derive(Clone, Debug)]
pub struct InstrumentedRun {
    /// The training outcome (same shape as the uninstrumented API).
    pub result: RunResult,
    /// The self-describing record of the run: config hash, seed, build
    /// info, per-round time series, totals, metrics snapshot.
    pub manifest: RunManifest,
}

/// Mutable cost accumulators threaded through a round of aggregation.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostCounters {
    /// Model-bearing messages.
    pub messages: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Proposals excluded by consensus.
    pub excluded: u64,
    /// Client-round absences from churn.
    pub absent: u64,
    /// Bottom-level updates lost to injected faults.
    pub faulted: u64,
    /// Updates excluded by the suspicion layer's quarantine.
    pub quarantined: u64,
    /// Updates a withholding coalition kept back.
    pub withheld: u64,
}

/// Mutable arms-race state threaded through a run: the coalition's
/// adaptive magnitude search, the defense-side suspicion tracker, and
/// protocol-attack bookkeeping (which equivocators the echo audit has
/// caught). Built once per run by [`run_prepared_with`] when the config
/// enables any of the three; `None` keeps the pre-existing clean or
/// faulted aggregation paths byte-identical.
pub struct ArmsRace {
    adversary: Option<AdaptiveAdversary>,
    suspicion: Option<SuspicionTracker>,
    /// `Some(flip_scale)` while malicious bottom leaders equivocate.
    equivocate: Option<f32>,
    /// Malicious members withhold pivotally.
    withhold: bool,
    /// Equivocators convicted by the echo audit (by device id): they are
    /// repaired — behave honestly — from the round after detection.
    detected: Vec<bool>,
    /// Coalition feedback accumulated during the current round.
    feedback: AttackFeedback,
}

impl ArmsRace {
    /// Arms-race state for an experiment, or `None` when its config uses
    /// neither an adaptive attack, a protocol attack, nor suspicion.
    pub fn for_experiment(exp: &Experiment) -> Option<Self> {
        let cfg = exp.config();
        let adversary = match &cfg.attack {
            AttackCfg::Adaptive { attack, .. } => {
                Some(AdaptiveAdversary::new(attack.clone()))
            }
            _ => None,
        };
        let suspicion = cfg
            .suspicion
            .map(|s| SuspicionTracker::new(exp.hierarchy.num_clients(), s));
        let (equivocate, withhold) = match &cfg.protocol_attack {
            Some(ProtocolAttack::Equivocate { flip_scale }) => (Some(*flip_scale), false),
            Some(ProtocolAttack::Withhold) => (None, true),
            None => (None, false),
        };
        if adversary.is_none() && suspicion.is_none() && cfg.protocol_attack.is_none() {
            return None;
        }
        Some(Self {
            adversary,
            suspicion,
            equivocate,
            withhold,
            detected: vec![false; exp.hierarchy.num_clients()],
            feedback: AttackFeedback::default(),
        })
    }

    /// The adaptive adversary's concrete crafted attack for this round.
    pub fn current_attack(&self) -> Option<ModelAttack> {
        self.adversary.as_ref().map(AdaptiveAdversary::current_attack)
    }

    /// The magnitude-search state, when the attack is adaptive.
    pub fn adversary(&self) -> Option<&AdaptiveAdversary> {
        self.adversary.as_ref()
    }

    /// The suspicion tracker, when the defense layer is enabled.
    pub fn suspicion(&self) -> Option<&SuspicionTracker> {
        self.suspicion.as_ref()
    }

    /// Device ids the echo audit has convicted of equivocation so far.
    pub fn detected_equivocators(&self) -> Vec<usize> {
        (0..self.detected.len()).filter(|&d| self.detected[d]).collect()
    }
}

/// Pre-built, reusable experiment state (task generation and partitioning
/// are the expensive, attack-independent steps — the Table V harness
/// reuses them across the malicious-proportion sweep where possible).
pub struct Experiment {
    /// The hierarchy.
    pub hierarchy: Hierarchy,
    /// The synthetic task.
    pub task: SyntheticDigits,
    /// Per-client training shards (post-poisoning).
    pub client_data: Vec<Dataset>,
    /// Which bottom clients are malicious.
    pub malicious: Vec<bool>,
    /// The model template (architecture + initial parameters).
    pub template: Box<dyn Model>,
    config: HflConfig,
    /// Compiled fault schedule, when the config carries a `FaultPlan`.
    injector: Option<FaultInjector>,
}

impl Experiment {
    /// Builds everything deterministic-from-seed: hierarchy, task,
    /// malicious mask, partition, data poisoning, model init.
    ///
    /// # Panics
    /// On an inconsistent config; [`Experiment::try_prepare`] reports
    /// instead.
    pub fn prepare(cfg: &HflConfig) -> Self {
        match Self::try_prepare(cfg) {
            Ok(exp) => exp,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Experiment::prepare`] returning the config inconsistency (if
    /// any) instead of panicking — sweep harnesses report the offending
    /// cell and move on.
    pub fn try_prepare(cfg: &HflConfig) -> Result<Self, ConfigError> {
        let hierarchy = cfg.topology.build(cfg.seed);
        cfg.try_validate(&hierarchy)?;
        let injector = match &cfg.faults {
            Some(plan) if !plan.is_empty() => Some(
                FaultInjector::compile(plan, &hierarchy, cfg.seed)
                    .map_err(ConfigError::Faults)?,
            ),
            _ => None,
        };
        let n_clients = hierarchy.num_clients();

        let mut data_cfg = cfg.data.clone();
        data_cfg.seed = hfl_ml::rng::derive_seed(cfg.seed, 0xDA7A);
        let task = SyntheticDigits::generate(&data_cfg);

        let malicious = match &cfg.malicious_override {
            Some(mask) => mask.clone(),
            None => malicious_mask(
                n_clients,
                cfg.attack.proportion(),
                cfg.attack.placement(),
                hfl_ml::rng::derive_seed(cfg.seed, 0xBAD),
            ),
        };

        let mut client_data = match &cfg.distribution {
            DataDistribution::Iid => iid_partition(&task.train, n_clients, cfg.seed),
            DataDistribution::NonIid { labels_per_client } => noniid_partition(
                &task.train,
                n_clients,
                *labels_per_client,
                &malicious,
                cfg.seed,
            ),
        };

        // Data poisoning happens once, up front: poisoned devices then
        // train "honestly" on poisoned data for the whole run.
        if let AttackCfg::Data { attack, .. } = &cfg.attack {
            for (c, is_bad) in malicious.iter().enumerate() {
                if *is_bad {
                    let mut rng = rng_for_n(cfg.seed, &[0x1207, c as u64]);
                    attack.apply(&mut client_data[c], &mut rng);
                }
            }
        }

        let template = cfg.model.build(
            task.train.dim(),
            task.train.num_classes(),
            hfl_ml::rng::derive_seed(cfg.seed, 0x0de1),
        );

        Ok(Self {
            hierarchy,
            task,
            client_data,
            malicious,
            template,
            config: cfg.clone(),
            injector,
        })
    }

    /// The configuration this experiment was prepared from.
    pub fn config(&self) -> &HflConfig {
        &self.config
    }

    /// The compiled fault schedule, when the config carries one.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Trains every client for one round from `global`, in parallel.
    /// Returns one update per client (crafted updates substituted for
    /// model-poisoning attackers).
    pub fn train_round(&self, global: &[f32], round: usize) -> Vec<Vec<f32>> {
        self.train_round_with(global, round, None, &Telemetry::disabled())
    }

    /// [`Self::train_round`] with an optional adaptive-attack override
    /// (the arms race's current crafted attack replaces the configured
    /// static one) and telemetry for anomalies.
    ///
    /// With no honest updates to estimate from (malicious proportion
    /// 1.0), crafting degrades to re-sending the round's starting global
    /// model instead of panicking, and the degradation is recorded as an
    /// `attack_no_honest_updates` anomaly event.
    pub fn train_round_with(
        &self,
        global: &[f32],
        round: usize,
        adaptive: Option<&ModelAttack>,
        telem: &Telemetry,
    ) -> Vec<Vec<f32>> {
        let cfg = &self.config;
        let n = self.client_data.len();
        let threads = hfl_parallel::default_threads();
        let mut updates = hfl_parallel::par_map_indexed(n, threads, |c| {
            let mut model = self.template.clone_box();
            model.set_params(global);
            let mut rng = rng_for_n(cfg.seed, &[round as u64, c as u64, 0x7247]);
            train_local(
                model.as_mut(),
                &self.client_data[c],
                &cfg.sgd.at_round(round),
                cfg.local_iters,
                &mut rng,
            );
            model.params().to_vec()
        });

        let crafting = adaptive.or(match &cfg.attack {
            AttackCfg::Model { attack, .. } => Some(attack),
            _ => None,
        });
        if let Some(attack) = crafting {
            let honest: Vec<&[f32]> = updates
                .iter()
                .zip(&self.malicious)
                .filter(|(_, bad)| !**bad)
                .map(|(u, _)| u.as_slice())
                .collect();
            let mut rng = rng_for_n(cfg.seed, &[round as u64, 0xE71]);
            let crafted = match attack.try_craft(&honest, &mut rng) {
                Some(c) => c,
                None => {
                    if telem.enabled() {
                        telem.emit(Event::Anomaly {
                            kind: "attack_no_honest_updates".into(),
                            detail: format!(
                                "round {round}: no honest updates to craft from, \
                                 degrading to the stale global model"
                            ),
                        });
                    }
                    global.to_vec()
                }
            };
            for (u, bad) in updates.iter_mut().zip(&self.malicious) {
                if *bad {
                    u.copy_from_slice(&crafted);
                }
            }
        }
        updates
    }

    /// True when this device misbehaves *inside* aggregation protocols
    /// (only model-poisoning adversaries — static or adaptive — do; data
    /// poisoners follow the protocol honestly — paper Appendix D).
    fn protocol_byzantine(&self, device: usize) -> bool {
        matches!(
            self.config.attack,
            AttackCfg::Model { .. } | AttackCfg::Adaptive { .. }
        ) && self.malicious[device]
    }

    /// Which clients participate this round under churn (Assumption 3).
    /// Leaders always participate; others leave independently with
    /// `churn_leave_prob` (or a fault plan's churn override while one is
    /// active). All-present when churn is disabled.
    pub fn active_mask(&self, round: usize) -> Vec<bool> {
        let p = self
            .injector
            .as_ref()
            .and_then(|inj| inj.churn_leave_prob(round))
            .unwrap_or(self.config.churn_leave_prob);
        let n = self.client_data.len();
        if p == 0.0 {
            return vec![true; n];
        }
        let bottom = self.hierarchy.bottom_level();
        let mut rng = rng_for_n(self.config.seed, &[round as u64, 0xC842]);
        let leaders: std::collections::HashSet<usize> = self
            .hierarchy
            .level(bottom)
            .clusters
            .iter()
            .map(|c| c.leader())
            .collect();
        (0..n)
            .map(|c| leaders.contains(&c) || !rand::Rng::gen_bool(&mut rng, p))
            .collect()
    }

    /// Runs one round of bottom-up aggregation given per-client updates;
    /// returns the new global model and accumulates cost counters.
    pub fn aggregate_round(
        &self,
        updates: &[Vec<f32>],
        round: usize,
        cost: &mut CostCounters,
    ) -> Vec<f32> {
        self.aggregate_round_with(updates, round, cost, &Telemetry::disabled())
    }

    /// [`Self::aggregate_round`] with telemetry: emits structured events
    /// (cluster aggregations, exclusions, churn absences, message
    /// transfers) when the recorder is enabled and records per-mechanism
    /// consensus metrics into the registry. Identical numerics and RNG
    /// stream — instrumentation only observes.
    pub fn aggregate_round_with(
        &self,
        updates: &[Vec<f32>],
        round: usize,
        cost: &mut CostCounters,
        telem: &Telemetry,
    ) -> Vec<f32> {
        let mut fault_log = Vec::new();
        self.aggregate_round_logged(updates, round, cost, telem, &mut fault_log)
    }

    /// [`Self::aggregate_round_with`] that also appends failover and
    /// degraded-quorum [`FaultRecord`]s to `fault_log` (the manifest's
    /// fault log is filled even when the recorder is disabled, like the
    /// per-round time series).
    pub fn aggregate_round_logged(
        &self,
        updates: &[Vec<f32>],
        round: usize,
        cost: &mut CostCounters,
        telem: &Telemetry,
        fault_log: &mut Vec<FaultRecord>,
    ) -> Vec<f32> {
        match &self.injector {
            None => self.aggregate_round_clean(updates, round, cost, telem),
            Some(inj) => {
                self.aggregate_round_faulted(inj, updates, round, cost, telem, fault_log)
            }
        }
    }

    /// The fault-free aggregation path. Kept textually separate from
    /// [`Self::aggregate_round_faulted`] on purpose: this path's RNG
    /// stream is the determinism baseline every pre-fault manifest was
    /// produced under, and sharing code with the fault-aware path would
    /// make it too easy to perturb.
    fn aggregate_round_clean(
        &self,
        updates: &[Vec<f32>],
        round: usize,
        cost: &mut CostCounters,
        telem: &Telemetry,
    ) -> Vec<f32> {
        let cfg = &self.config;
        let h = &self.hierarchy;
        let bottom = h.bottom_level();
        let d = updates[0].len();
        let model_bytes = (d * 4) as u64;
        let active = self.active_mask(round);
        cost.absent += active.iter().filter(|a| !**a).count() as u64;
        if telem.enabled() {
            for (client, present) in active.iter().enumerate() {
                if !present {
                    telem.emit(Event::ChurnAbsence { round, client });
                }
            }
        }

        // models_of_level[device] = the model this level-ℓ node carries
        // upward. At the bottom that is its local update; above, the
        // partial aggregate of the cluster it leads.
        let mut carried: Vec<Vec<f32>> = updates.to_vec();

        // Partial aggregation: levels L down to 1.
        for l in (1..=bottom).rev() {
            let level = h.level(l);
            let mut next: Vec<Vec<f32>> = carried.clone();
            for (ci, cluster) in level.clusters.iter().enumerate() {
                // Churn removes absent bottom members entirely; the
                // quorum then keeps the first ⌈φ·present⌉ of a random
                // arrival order (Algorithm 4's wait-until-quorum).
                let present: Vec<usize> = (0..cluster.len())
                    .filter(|&mi| l != bottom || active[cluster.members[mi]])
                    .collect();
                let mut order = present;
                let mut rng =
                    rng_for_n(cfg.seed, &[round as u64, l as u64, ci as u64, 0xA221]);
                order.shuffle(&mut rng);
                let quorum = quorum_size(cfg.quorum, order.len());
                let kept: Vec<usize> = {
                    let mut k = order[..quorum.min(order.len())].to_vec();
                    k.sort_unstable();
                    k
                };
                let inputs: Vec<&[f32]> = kept
                    .iter()
                    .map(|&mi| carried[cluster.members[mi]].as_slice())
                    .collect();
                let partial = match &cfg.levels[l] {
                    LevelAgg::Bra(kind) => {
                        // Members upload to the leader; leader broadcasts
                        // the partial back to the cluster (Algorithm 3).
                        let count = (quorum + cluster.len()) as u64;
                        cost.messages += count;
                        cost.bytes += count * model_bytes;
                        if telem.enabled() {
                            telem.emit(Event::MessagesSent {
                                round,
                                level: l,
                                count,
                                bytes: count * model_bytes,
                            });
                        }
                        kind.build().aggregate(&inputs, None)
                    }
                    LevelAgg::Cba(kind) => {
                        let byz: Vec<bool> = kept
                            .iter()
                            .map(|&mi| self.protocol_byzantine(cluster.members[mi]))
                            .collect();
                        let own: Vec<Vec<f32>> =
                            inputs.iter().map(|i| i.to_vec()).collect();
                        let eval = hfl_consensus::DistanceEvaluator::new(&own);
                        let mech = kind.build();
                        let out = mech.decide(&inputs, &byz, &eval, &mut rng);
                        hfl_consensus::telemetry::record_outcome(
                            telem.registry(),
                            mech.name(),
                            &out,
                        );
                        cost.messages += out.messages;
                        cost.bytes += out.bytes;
                        cost.excluded += out.excluded.len() as u64;
                        if telem.enabled() {
                            telem.emit(Event::MessagesSent {
                                round,
                                level: l,
                                count: out.messages,
                                bytes: out.bytes,
                            });
                            for &proposal in &out.excluded {
                                telem.emit(Event::ProposalExcluded {
                                    round,
                                    level: l,
                                    cluster: ci,
                                    proposal,
                                });
                            }
                        }
                        out.decided
                    }
                };
                if telem.enabled() {
                    telem.emit(Event::ClusterAggregated {
                        round,
                        level: l,
                        cluster: ci,
                        inputs: inputs.len(),
                        quorum,
                    });
                }
                next[cluster.leader()] = partial;
            }
            carried = next;
        }

        // Global aggregation at the top cluster.
        let top = &h.level(0).clusters[0];
        let proposals: Vec<&[f32]> = top
            .members
            .iter()
            .map(|&dev| carried[dev].as_slice())
            .collect();
        let mut rng = rng_for_n(cfg.seed, &[round as u64, 0x601, 0xA221]);
        let global = match &cfg.levels[0] {
            LevelAgg::Bra(kind) => {
                let count = (2 * top.len()) as u64;
                cost.messages += count;
                cost.bytes += count * model_bytes;
                if telem.enabled() {
                    telem.emit(Event::MessagesSent {
                        round,
                        level: 0,
                        count,
                        bytes: count * model_bytes,
                    });
                }
                kind.build().aggregate(&proposals, None)
            }
            LevelAgg::Cba(kind) => {
                // Validation voting over the test shards (Appendix D.B):
                // the 10 000 test samples split evenly over the top nodes.
                let shards = self.task.test.split_even(top.len());
                let eval = AccuracyEvaluator::new(self.template.clone_box(), shards);
                let byz: Vec<bool> = top
                    .members
                    .iter()
                    .map(|&dev| self.protocol_byzantine(dev))
                    .collect();
                let mech = kind.build();
                let out = mech.decide(&proposals, &byz, &eval, &mut rng);
                hfl_consensus::telemetry::record_outcome(telem.registry(), mech.name(), &out);
                cost.messages += out.messages;
                cost.bytes += out.bytes;
                cost.excluded += out.excluded.len() as u64;
                if telem.enabled() {
                    telem.emit(Event::MessagesSent {
                        round,
                        level: 0,
                        count: out.messages,
                        bytes: out.bytes,
                    });
                    for &proposal in &out.excluded {
                        telem.emit(Event::ProposalExcluded {
                            round,
                            level: 0,
                            cluster: 0,
                            proposal,
                        });
                    }
                }
                out.decided
            }
        };
        if telem.enabled() {
            telem.emit(Event::ClusterAggregated {
                round,
                level: 0,
                cluster: 0,
                inputs: proposals.len(),
                quorum: proposals.len(),
            });
        }

        // Dissemination: the global model travels one model-transfer per
        // node per level on its way down (Algorithm 5).
        for l in 1..=bottom {
            let per_level = h.level(l).num_nodes() as u64;
            cost.messages += per_level;
            cost.bytes += per_level * model_bytes;
            if telem.enabled() {
                telem.emit(Event::MessagesSent {
                    round,
                    level: l,
                    count: per_level,
                    bytes: per_level * model_bytes,
                });
            }
        }

        global
    }

    /// The fault-aware aggregation path (active when the config carries
    /// a `FaultPlan`). Differences from the clean path:
    ///
    /// - **Leader failover**: when a cluster's leader is crashed, the
    ///   first alive member is promoted to collector for the round; the
    ///   leader's *slot* keeps its role upward, with `carrier[]`
    ///   tracking which physical device holds it.
    /// - **Degraded quorum**: members lost to crashes, partitions or
    ///   loss bursts are simply missing; the quorum is ⌈φ·alive⌉ over
    ///   the survivors (Algorithm 4's timeout branch) and the round
    ///   proceeds instead of hanging.
    /// - **Stragglers** arrive last in the collection order, so a
    ///   quorum below 1 sheds them first.
    ///
    /// Failover and degradation are appended to `fault_log` and (when
    /// enabled) emitted as events. All randomness stays seeded: the
    /// per-cluster arrival RNG is the same stream the clean path uses,
    /// and burst drops hash `(seed, round, level, cluster, member)`.
    #[allow(clippy::too_many_arguments)]
    fn aggregate_round_faulted(
        &self,
        inj: &FaultInjector,
        updates: &[Vec<f32>],
        round: usize,
        cost: &mut CostCounters,
        telem: &Telemetry,
        fault_log: &mut Vec<FaultRecord>,
    ) -> Vec<f32> {
        let cfg = &self.config;
        let h = &self.hierarchy;
        let bottom = h.bottom_level();
        let d = updates[0].len();
        let model_bytes = (d * 4) as u64;
        let active = self.active_mask(round);
        cost.absent += active.iter().filter(|a| !**a).count() as u64;
        if telem.enabled() {
            for (client, present) in active.iter().enumerate() {
                if !present {
                    telem.emit(Event::ChurnAbsence { round, client });
                }
            }
        }

        let n = updates.len();
        let mut carried: Vec<Vec<f32>> = updates.to_vec();
        // produced[slot]: carried[slot] is fresh this round.
        // carrier[slot]: physical device holding the slot's model (differs
        // from the slot after a failover promoted a deputy).
        let mut produced: Vec<bool> = (0..n).map(|dev| !inj.crashed(dev, round)).collect();
        let mut carrier: Vec<usize> = (0..n).collect();

        for l in (1..=bottom).rev() {
            let level = h.level(l);
            let mut next = carried.clone();
            for (ci, cluster) in level.clusters.iter().enumerate() {
                let leader = cluster.leader();
                let expected = if l == bottom {
                    cluster
                        .members
                        .iter()
                        .filter(|&&m| active[m])
                        .count()
                } else {
                    cluster.len()
                };
                // Failover: the collector is the first member whose
                // physical carrier is alive (and, at the bottom, present
                // under churn).
                let collector_slot = cluster.members.iter().copied().find(|&m| {
                    !inj.crashed(carrier[m], round) && (l != bottom || active[m])
                });
                let Some(collector_slot) = collector_slot else {
                    produced[leader] = false;
                    fault_log.push(FaultRecord {
                        round,
                        kind: "degraded_quorum".into(),
                        detail: format!(
                            "level {l} cluster {ci}: no member able to collect (0 of {expected})"
                        ),
                    });
                    if telem.enabled() {
                        telem.emit(Event::DegradedQuorum {
                            round,
                            level: l,
                            cluster: ci,
                            alive: 0,
                            expected,
                        });
                    }
                    continue;
                };
                let collector = carrier[collector_slot];
                if collector_slot != leader {
                    fault_log.push(FaultRecord {
                        round,
                        kind: "leader_failover".into(),
                        detail: format!(
                            "level {l} cluster {ci}: node {collector} promoted over node {leader}"
                        ),
                    });
                    if telem.enabled() {
                        telem.emit(Event::LeaderFailover {
                            round,
                            level: l,
                            cluster: ci,
                            failed: leader,
                            promoted: collector,
                        });
                    }
                }
                let mut removed_by_fault = 0usize;
                let present: Vec<usize> = (0..cluster.len())
                    .filter(|&mi| {
                        let m = cluster.members[mi];
                        if l == bottom {
                            if !active[m] {
                                return false; // churn, accounted separately
                            }
                            if inj.crashed(m, round) {
                                removed_by_fault += 1;
                                return false;
                            }
                        } else if !produced[m] {
                            removed_by_fault += 1;
                            return false;
                        }
                        let phys = carrier[m];
                        if phys != collector {
                            if inj.partitioned(phys, collector, round)
                                || inj.drop_upload(round, l, ci, m)
                            {
                                removed_by_fault += 1;
                                return false;
                            }
                        }
                        true
                    })
                    .collect();
                if l == bottom {
                    cost.faulted += removed_by_fault as u64;
                }
                if removed_by_fault > 0 {
                    fault_log.push(FaultRecord {
                        round,
                        kind: "degraded_quorum".into(),
                        detail: format!(
                            "level {l} cluster {ci}: {alive} of {expected} contributed",
                            alive = present.len()
                        ),
                    });
                    if telem.enabled() {
                        telem.emit(Event::DegradedQuorum {
                            round,
                            level: l,
                            cluster: ci,
                            alive: present.len(),
                            expected,
                        });
                    }
                }
                if present.is_empty() {
                    produced[leader] = false;
                    continue;
                }
                let mut order = present;
                let mut rng =
                    rng_for_n(cfg.seed, &[round as u64, l as u64, ci as u64, 0xA221]);
                order.shuffle(&mut rng);
                // Stragglers arrive last; the stable sort keeps the
                // shuffled arrival order among equally-fast members.
                order.sort_by(|&a, &b| {
                    let fa = inj.straggle_factor(carrier[cluster.members[a]], round);
                    let fb = inj.straggle_factor(carrier[cluster.members[b]], round);
                    fa.total_cmp(&fb)
                });
                let quorum = quorum_size(cfg.quorum, order.len());
                let kept: Vec<usize> = {
                    let mut k = order[..quorum].to_vec();
                    k.sort_unstable();
                    k
                };
                let inputs: Vec<&[f32]> = kept
                    .iter()
                    .map(|&mi| carried[cluster.members[mi]].as_slice())
                    .collect();
                // Broadcasts only reach members whose device is up.
                let reachable = cluster
                    .members
                    .iter()
                    .filter(|&&m| !inj.crashed(carrier[m], round))
                    .count() as u64;
                let partial = match &cfg.levels[l] {
                    LevelAgg::Bra(kind) => {
                        let count = quorum as u64 + reachable;
                        cost.messages += count;
                        cost.bytes += count * model_bytes;
                        if telem.enabled() {
                            telem.emit(Event::MessagesSent {
                                round,
                                level: l,
                                count,
                                bytes: count * model_bytes,
                            });
                        }
                        kind.build().aggregate(&inputs, None)
                    }
                    LevelAgg::Cba(kind) => {
                        let byz: Vec<bool> = kept
                            .iter()
                            .map(|&mi| self.protocol_byzantine(cluster.members[mi]))
                            .collect();
                        let own: Vec<Vec<f32>> =
                            inputs.iter().map(|i| i.to_vec()).collect();
                        let eval = hfl_consensus::DistanceEvaluator::new(&own);
                        let mech = kind.build();
                        let out = mech.decide(&inputs, &byz, &eval, &mut rng);
                        hfl_consensus::telemetry::record_outcome(
                            telem.registry(),
                            mech.name(),
                            &out,
                        );
                        cost.messages += out.messages;
                        cost.bytes += out.bytes;
                        cost.excluded += out.excluded.len() as u64;
                        if telem.enabled() {
                            telem.emit(Event::MessagesSent {
                                round,
                                level: l,
                                count: out.messages,
                                bytes: out.bytes,
                            });
                            for &proposal in &out.excluded {
                                telem.emit(Event::ProposalExcluded {
                                    round,
                                    level: l,
                                    cluster: ci,
                                    proposal,
                                });
                            }
                        }
                        out.decided
                    }
                };
                if telem.enabled() {
                    telem.emit(Event::ClusterAggregated {
                        round,
                        level: l,
                        cluster: ci,
                        inputs: inputs.len(),
                        quorum,
                    });
                }
                next[leader] = partial;
                produced[leader] = true;
                carrier[leader] = collector;
            }
            carried = next;
        }

        // Global aggregation at the top cluster, over the slots that
        // produced a partial and can reach the top collector.
        let top = &h.level(0).clusters[0];
        let alive_slots: Vec<usize> =
            top.members.iter().copied().filter(|&m| produced[m]).collect();
        let (final_slots, top_expected) = match alive_slots.first() {
            Some(&first) => {
                let coll = carrier[first];
                if first != top.leader() {
                    fault_log.push(FaultRecord {
                        round,
                        kind: "leader_failover".into(),
                        detail: format!(
                            "level 0 cluster 0: node {coll} promoted over node {}",
                            top.leader()
                        ),
                    });
                    if telem.enabled() {
                        telem.emit(Event::LeaderFailover {
                            round,
                            level: 0,
                            cluster: 0,
                            failed: top.leader(),
                            promoted: coll,
                        });
                    }
                }
                let kept: Vec<usize> = alive_slots
                    .iter()
                    .copied()
                    .filter(|&m| {
                        let phys = carrier[m];
                        phys == coll
                            || (!inj.partitioned(phys, coll, round)
                                && !inj.drop_upload(round, 0, 0, m))
                    })
                    .collect();
                (kept, top.len())
            }
            None => {
                // Nothing produced anywhere: fall back to the stale
                // carried values rather than crash — the run records the
                // anomaly and continues.
                fault_log.push(FaultRecord {
                    round,
                    kind: "degraded_quorum".into(),
                    detail: "level 0 cluster 0: no fresh partials, using stale models".into(),
                });
                if telem.enabled() {
                    telem.emit(Event::Anomaly {
                        kind: "global_aggregation_stalled".into(),
                        detail: format!("round {round}: no fresh partials reached the top"),
                    });
                }
                (top.members.clone(), top.len())
            }
        };
        if final_slots.len() < top_expected {
            if telem.enabled() {
                telem.emit(Event::DegradedQuorum {
                    round,
                    level: 0,
                    cluster: 0,
                    alive: final_slots.len(),
                    expected: top_expected,
                });
            }
            fault_log.push(FaultRecord {
                round,
                kind: "degraded_quorum".into(),
                detail: format!(
                    "level 0 cluster 0: {alive} of {top_expected} contributed",
                    alive = final_slots.len()
                ),
            });
        }
        let proposals: Vec<&[f32]> = final_slots
            .iter()
            .map(|&dev| carried[dev].as_slice())
            .collect();
        let mut rng = rng_for_n(cfg.seed, &[round as u64, 0x601, 0xA221]);
        let global = match &cfg.levels[0] {
            LevelAgg::Bra(kind) => {
                let count = (2 * proposals.len()) as u64;
                cost.messages += count;
                cost.bytes += count * model_bytes;
                if telem.enabled() {
                    telem.emit(Event::MessagesSent {
                        round,
                        level: 0,
                        count,
                        bytes: count * model_bytes,
                    });
                }
                kind.build().aggregate(&proposals, None)
            }
            LevelAgg::Cba(kind) => {
                let shards = self.task.test.split_even(proposals.len().max(1));
                let eval = AccuracyEvaluator::new(self.template.clone_box(), shards);
                let byz: Vec<bool> = final_slots
                    .iter()
                    .map(|&dev| self.protocol_byzantine(dev))
                    .collect();
                let mech = kind.build();
                let out = mech.decide(&proposals, &byz, &eval, &mut rng);
                hfl_consensus::telemetry::record_outcome(telem.registry(), mech.name(), &out);
                cost.messages += out.messages;
                cost.bytes += out.bytes;
                cost.excluded += out.excluded.len() as u64;
                if telem.enabled() {
                    telem.emit(Event::MessagesSent {
                        round,
                        level: 0,
                        count: out.messages,
                        bytes: out.bytes,
                    });
                    for &proposal in &out.excluded {
                        telem.emit(Event::ProposalExcluded {
                            round,
                            level: 0,
                            cluster: 0,
                            proposal,
                        });
                    }
                }
                out.decided
            }
        };
        if telem.enabled() {
            telem.emit(Event::ClusterAggregated {
                round,
                level: 0,
                cluster: 0,
                inputs: proposals.len(),
                quorum: proposals.len(),
            });
        }

        // Dissemination reaches every device that is up (crashed nodes
        // rejoin with the current global on recovery — the model travels
        // with the next round's training broadcast).
        for l in 1..=bottom {
            let per_level = h
                .level(l)
                .clusters
                .iter()
                .flat_map(|c| c.members.iter())
                .filter(|&&m| !inj.crashed(m, round))
                .count() as u64;
            cost.messages += per_level;
            cost.bytes += per_level * model_bytes;
            if telem.enabled() {
                telem.emit(Event::MessagesSent {
                    round,
                    level: l,
                    count: per_level,
                    bytes: per_level * model_bytes,
                });
            }
        }

        global
    }

    /// The arms-race aggregation path (active when the config enables an
    /// adaptive attack, a protocol attack, or the suspicion layer). A
    /// third textually-separate sibling of the clean and faulted paths,
    /// for the same reason those two are separate: the clean path's RNG
    /// stream is the determinism baseline and must not be perturbed.
    ///
    /// Additions over the clean path, all at the bottom level:
    ///
    /// - **Quarantine**: clients the suspicion layer has quarantined are
    ///   excluded from their cluster's inputs — unless that would empty
    ///   the cluster (the defense must not DoS itself).
    /// - **Pivotal withholding**: under [`ProtocolAttack::Withhold`],
    ///   malicious members drop their update exactly when the cluster
    ///   still forms its quorum without them (only possible at φ < 1).
    /// - **Evidence**: after each bottom aggregation,
    ///   [`evidence::judge`] (for BRA) or the consensus exclusion list
    ///   (for CBA) feeds per-client strikes into the suspicion tracker
    ///   and acceptance feedback to the adaptive adversary.
    /// - **Equivocation + echo audit**: malicious, undetected bottom
    ///   leaders under [`ProtocolAttack::Equivocate`] send
    ///   `−flip_scale · partial` upward while echoing the true partial
    ///   to their members; every bottom cluster is audited with 8-byte
    ///   digests ([`hfl_consensus::echo`]), and a convicted leader is
    ///   repaired (behaves honestly) from the next round.
    /// - **Round close**: suspicion transitions become events and
    ///   manifest records; the adversary consumes its feedback and moves
    ///   its magnitude.
    pub fn aggregate_round_armed(
        &self,
        arms: &mut ArmsRace,
        updates: &[Vec<f32>],
        round: usize,
        cost: &mut CostCounters,
        telem: &Telemetry,
        susp_log: &mut Vec<SuspicionRecord>,
    ) -> Vec<f32> {
        let cfg = &self.config;
        let h = &self.hierarchy;
        let bottom = h.bottom_level();
        let d = updates[0].len();
        let model_bytes = (d * 4) as u64;
        let active = self.active_mask(round);
        cost.absent += active.iter().filter(|a| !**a).count() as u64;
        if telem.enabled() {
            for (client, present) in active.iter().enumerate() {
                if !present {
                    telem.emit(Event::ChurnAbsence { round, client });
                }
            }
        }

        arms.feedback = AttackFeedback::default();
        // Echo audits collected this round: (cluster, leader, report).
        let mut audits: Vec<(usize, usize, EchoReport)> = Vec::new();

        let mut carried: Vec<Vec<f32>> = updates.to_vec();

        for l in (1..=bottom).rev() {
            let level = h.level(l);
            let mut next: Vec<Vec<f32>> = carried.clone();
            for (ci, cluster) in level.clusters.iter().enumerate() {
                let mut present: Vec<usize> = (0..cluster.len())
                    .filter(|&mi| l != bottom || active[cluster.members[mi]])
                    .collect();
                if l == bottom {
                    if let Some(tracker) = &arms.suspicion {
                        let kept: Vec<usize> = present
                            .iter()
                            .copied()
                            .filter(|&mi| !tracker.is_quarantined(cluster.members[mi]))
                            .collect();
                        if !kept.is_empty() {
                            cost.quarantined += (present.len() - kept.len()) as u64;
                            present = kept;
                        }
                    }
                    if arms.withhold {
                        let withholding: Vec<usize> = present
                            .iter()
                            .copied()
                            .filter(|&mi| {
                                let dev = cluster.members[mi];
                                self.malicious[dev] && dev != cluster.leader()
                            })
                            .collect();
                        let quorum_all = quorum_size(cfg.quorum, present.len());
                        if !withholding.is_empty()
                            && present.len() - withholding.len() >= quorum_all
                        {
                            cost.withheld += withholding.len() as u64;
                            if telem.enabled() {
                                for &mi in &withholding {
                                    telem.emit(Event::UpdateWithheld {
                                        round,
                                        client: cluster.members[mi],
                                    });
                                }
                            }
                            present.retain(|mi| !withholding.contains(mi));
                        }
                    }
                }
                let mut order = present;
                let mut rng =
                    rng_for_n(cfg.seed, &[round as u64, l as u64, ci as u64, 0xA221]);
                order.shuffle(&mut rng);
                let quorum = quorum_size(cfg.quorum, order.len());
                let kept: Vec<usize> = {
                    let mut k = order[..quorum.min(order.len())].to_vec();
                    k.sort_unstable();
                    k
                };
                let inputs: Vec<&[f32]> = kept
                    .iter()
                    .map(|&mi| carried[cluster.members[mi]].as_slice())
                    .collect();
                let partial = match &cfg.levels[l] {
                    LevelAgg::Bra(kind) => {
                        let count = (quorum + cluster.len()) as u64;
                        cost.messages += count;
                        cost.bytes += count * model_bytes;
                        if telem.enabled() {
                            telem.emit(Event::MessagesSent {
                                round,
                                level: l,
                                count,
                                bytes: count * model_bytes,
                            });
                        }
                        let partial = kind.build().aggregate(&inputs, None);
                        if l == bottom {
                            let verdict = evidence::judge(kind, &inputs);
                            for (pos, &mi) in kept.iter().enumerate() {
                                let dev = cluster.members[mi];
                                if verdict.strikes[pos] > 0.0 {
                                    if let Some(t) = arms.suspicion.as_mut() {
                                        t.strike(dev, verdict.strikes[pos]);
                                    }
                                }
                                if self.malicious[dev] {
                                    arms.feedback.submitted += 1;
                                    if verdict.accepted[pos] {
                                        arms.feedback.accepted += 1;
                                    }
                                }
                            }
                        }
                        partial
                    }
                    LevelAgg::Cba(kind) => {
                        let byz: Vec<bool> = kept
                            .iter()
                            .map(|&mi| self.protocol_byzantine(cluster.members[mi]))
                            .collect();
                        let own: Vec<Vec<f32>> =
                            inputs.iter().map(|i| i.to_vec()).collect();
                        let eval = hfl_consensus::DistanceEvaluator::new(&own);
                        let mech = kind.build();
                        let out = mech.decide(&inputs, &byz, &eval, &mut rng);
                        hfl_consensus::telemetry::record_outcome(
                            telem.registry(),
                            mech.name(),
                            &out,
                        );
                        cost.messages += out.messages;
                        cost.bytes += out.bytes;
                        cost.excluded += out.excluded.len() as u64;
                        if telem.enabled() {
                            telem.emit(Event::MessagesSent {
                                round,
                                level: l,
                                count: out.messages,
                                bytes: out.bytes,
                            });
                            for &proposal in &out.excluded {
                                telem.emit(Event::ProposalExcluded {
                                    round,
                                    level: l,
                                    cluster: ci,
                                    proposal,
                                });
                            }
                        }
                        if l == bottom {
                            for (pos, &mi) in kept.iter().enumerate() {
                                let dev = cluster.members[mi];
                                let excluded = out.excluded.contains(&pos);
                                if excluded {
                                    if let Some(t) = arms.suspicion.as_mut() {
                                        t.strike(dev, evidence::STRIKE_WORST);
                                    }
                                }
                                if self.malicious[dev] {
                                    arms.feedback.submitted += 1;
                                    if !excluded {
                                        arms.feedback.accepted += 1;
                                    }
                                }
                            }
                        }
                        out.decided
                    }
                };
                if telem.enabled() {
                    telem.emit(Event::ClusterAggregated {
                        round,
                        level: l,
                        cluster: ci,
                        inputs: inputs.len(),
                        quorum,
                    });
                }
                if l == bottom {
                    let leader = cluster.leader();
                    let up = match arms.equivocate {
                        Some(flip)
                            if self.malicious[leader] && !arms.detected[leader] =>
                        {
                            partial.iter().map(|x| -flip * x).collect::<Vec<f32>>()
                        }
                        _ => partial.clone(),
                    };
                    // Every member echoes the digest of the partial it
                    // received; the parent collector digests the up-sent
                    // value. 8 bytes per member, negligible next to the
                    // model transfers.
                    let (msgs, bts) = echo_cost(cluster.len());
                    cost.messages += msgs;
                    cost.bytes += bts;
                    audits.push((
                        ci,
                        leader,
                        EchoReport {
                            up_digest: hash_update(&up),
                            member_digests: vec![hash_update(&partial); cluster.len()],
                        },
                    ));
                    next[leader] = up;
                } else {
                    next[cluster.leader()] = partial;
                }
            }
            carried = next;
        }

        // Global aggregation at the top cluster (identical to the clean
        // path — the arms race only acts at the bottom).
        let top = &h.level(0).clusters[0];
        let proposals: Vec<&[f32]> = top
            .members
            .iter()
            .map(|&dev| carried[dev].as_slice())
            .collect();
        let mut rng = rng_for_n(cfg.seed, &[round as u64, 0x601, 0xA221]);
        let global = match &cfg.levels[0] {
            LevelAgg::Bra(kind) => {
                let count = (2 * top.len()) as u64;
                cost.messages += count;
                cost.bytes += count * model_bytes;
                if telem.enabled() {
                    telem.emit(Event::MessagesSent {
                        round,
                        level: 0,
                        count,
                        bytes: count * model_bytes,
                    });
                }
                kind.build().aggregate(&proposals, None)
            }
            LevelAgg::Cba(kind) => {
                let shards = self.task.test.split_even(top.len());
                let eval = AccuracyEvaluator::new(self.template.clone_box(), shards);
                let byz: Vec<bool> = top
                    .members
                    .iter()
                    .map(|&dev| self.protocol_byzantine(dev))
                    .collect();
                let mech = kind.build();
                let out = mech.decide(&proposals, &byz, &eval, &mut rng);
                hfl_consensus::telemetry::record_outcome(telem.registry(), mech.name(), &out);
                cost.messages += out.messages;
                cost.bytes += out.bytes;
                cost.excluded += out.excluded.len() as u64;
                if telem.enabled() {
                    telem.emit(Event::MessagesSent {
                        round,
                        level: 0,
                        count: out.messages,
                        bytes: out.bytes,
                    });
                    for &proposal in &out.excluded {
                        telem.emit(Event::ProposalExcluded {
                            round,
                            level: 0,
                            cluster: 0,
                            proposal,
                        });
                    }
                }
                out.decided
            }
        };
        if telem.enabled() {
            telem.emit(Event::ClusterAggregated {
                round,
                level: 0,
                cluster: 0,
                inputs: proposals.len(),
                quorum: proposals.len(),
            });
        }

        // Dissemination, as in the clean path.
        for l in 1..=bottom {
            let per_level = h.level(l).num_nodes() as u64;
            cost.messages += per_level;
            cost.bytes += per_level * model_bytes;
            if telem.enabled() {
                telem.emit(Event::MessagesSent {
                    round,
                    level: l,
                    count: per_level,
                    bytes: per_level * model_bytes,
                });
            }
        }

        // Round close, phase 1: the echo audit convicts equivocators.
        // Detection latency is one round by construction — the corrupt
        // partial already propagated — and repair applies from the next.
        for (ci, leader, report) in audits {
            if report.equivocated() {
                arms.detected[leader] = true;
                telem
                    .registry()
                    .counter("hfl_equivocations_total", &[])
                    .inc(1);
                if telem.enabled() {
                    telem.emit(Event::EquivocationDetected {
                        round,
                        level: bottom,
                        cluster: ci,
                        leader,
                    });
                }
                if let Some(t) = arms.suspicion.as_mut() {
                    t.strike(leader, 3.0 * evidence::STRIKE_WORST);
                }
                susp_log.push(SuspicionRecord {
                    round,
                    kind: "equivocation".into(),
                    client: leader,
                    score: arms
                        .suspicion
                        .as_ref()
                        .map(|t| t.score(leader))
                        .unwrap_or(0.0),
                });
            }
        }

        // Phase 2: the suspicion layer closes its round.
        if let Some(t) = arms.suspicion.as_mut() {
            for change in t.end_round() {
                match change {
                    SuspicionChange::Quarantined { client, score } => {
                        if telem.enabled() {
                            telem.emit(Event::ClientQuarantined { round, client, score });
                        }
                        susp_log.push(SuspicionRecord {
                            round,
                            kind: "quarantined".into(),
                            client,
                            score,
                        });
                    }
                    SuspicionChange::Released { client, score } => {
                        if telem.enabled() {
                            telem.emit(Event::ClientReleased { round, client, score });
                        }
                        susp_log.push(SuspicionRecord {
                            round,
                            kind: "released".into(),
                            client,
                            score,
                        });
                    }
                }
            }
        }

        // Phase 3: the adversary consumes its feedback and adapts.
        if let Some(adv) = arms.adversary.as_mut() {
            let fb = arms.feedback;
            if telem.enabled() {
                telem.emit(Event::AttackAdapted {
                    round,
                    magnitude: f64::from(adv.magnitude()),
                    submitted: fb.submitted,
                    accepted: fb.accepted,
                });
            }
            adv.observe(round, fb);
        }

        global
    }

    /// Test accuracy of a parameter vector.
    pub fn evaluate(&self, params: &[f32]) -> f64 {
        let mut model = self.template.clone_box();
        model.set_params(params);
        hfl_ml::metrics::accuracy_parallel(
            model.as_ref(),
            &self.task.test,
            hfl_parallel::default_threads(),
        )
    }
}

/// Runs the full ABD-HFL training loop described by `cfg`.
pub fn run_abd_hfl(cfg: &HflConfig) -> RunResult {
    run_abd_hfl_with(cfg, &Telemetry::disabled()).result
}

/// [`run_abd_hfl`] with telemetry: returns the result together with the
/// run's [`RunManifest`].
pub fn run_abd_hfl_with(cfg: &HflConfig, telem: &Telemetry) -> InstrumentedRun {
    let exp = Experiment::prepare(cfg);
    run_prepared_with(&exp, telem)
}

/// Runs a prepared experiment (exposed so harnesses can reuse the
/// preparation across repetitions).
pub fn run_prepared(exp: &Experiment) -> RunResult {
    run_prepared_with(exp, &Telemetry::disabled()).result
}

/// [`run_prepared`] with telemetry: emits round lifecycle events, keeps
/// the `hfl_*` counters, and assembles the run's [`RunManifest`]
/// (per-round time series, totals, final registry snapshot).
///
/// Determinism: in default (no `wall-clock`) builds the manifest is a
/// pure function of the config — identical seeds give byte-identical
/// `manifest.to_json()` output.
pub fn run_prepared_with(exp: &Experiment, telem: &Telemetry) -> InstrumentedRun {
    let cfg = exp.config();
    let mut global = exp.template.params().to_vec();
    let mut cost = CostCounters::default();
    let mut accuracy = Vec::new();
    let mut manifest = RunManifest::new(
        "abd-hfl",
        cfg.seed,
        fnv1a_hex(format!("{cfg:?}").as_bytes()),
    );

    let messages_c = telem.registry().counter("hfl_messages_total", &[]);
    let bytes_c = telem.registry().counter("hfl_bytes_total", &[]);
    let excluded_c = telem.registry().counter("hfl_excluded_total", &[]);
    let absent_c = telem.registry().counter("hfl_absent_total", &[]);
    let faulted_c = telem.registry().counter("hfl_faulted_total", &[]);
    let quarantined_c = telem.registry().counter("hfl_quarantined_total", &[]);
    let withheld_c = telem.registry().counter("hfl_withheld_total", &[]);
    let accuracy_g = telem.registry().gauge("hfl_accuracy", &[]);

    // Arms-race state (adaptive adversary, suspicion tracker, protocol
    // attacks). `None` for plain configs, which then take the exact
    // pre-existing clean/faulted paths.
    let mut arms = ArmsRace::for_experiment(exp);
    let mut susp_records: Vec<SuspicionRecord> = Vec::new();

    // Outside strict mode, a Krum/Multi-Krum level whose smallest
    // cluster violates n ≥ 2f + 3 is allowed (the paper's own defaults
    // do this) but flagged once at run start.
    if !cfg.strict_guarantees && telem.enabled() {
        for (level, agg) in cfg.levels.iter().enumerate() {
            let f = match agg {
                LevelAgg::Bra(AggregatorKind::Krum { f })
                | LevelAgg::Bra(AggregatorKind::MultiKrum { f, .. }) => *f,
                _ => continue,
            };
            let n_min = exp
                .hierarchy
                .level(level)
                .clusters
                .iter()
                .map(|c| c.len())
                .min()
                .unwrap_or(0);
            if !Krum::guarantee_holds(f, n_min) {
                telem.emit(Event::Anomaly {
                    kind: "krum_guarantee_degraded".into(),
                    detail: format!(
                        "level {level}: Krum assumes n >= 2f + 3 but the smallest \
                         cluster has n = {n_min} with f = {f}; selection still runs \
                         but its Byzantine guarantee does not hold"
                    ),
                });
            }
        }
    }

    for round in 0..cfg.rounds {
        if telem.enabled() {
            telem.emit(Event::RoundStarted { round });
        }
        let before = cost;
        // Scheduled faults activating this round go into the log first,
        // then whatever the aggregation path observes (failover,
        // degraded quorums) is appended in order.
        let mut fault_log: Vec<FaultRecord> = Vec::new();
        if let Some(inj) = exp.injector() {
            for ev in inj.faults_at(round) {
                fault_log.push(FaultRecord {
                    round,
                    kind: ev.kind.clone(),
                    detail: ev.detail.clone(),
                });
                if telem.enabled() {
                    telem.emit(Event::FaultInjected {
                        round,
                        kind: ev.kind.clone(),
                        detail: ev.detail.clone(),
                    });
                }
            }
        }
        let adaptive = arms.as_ref().and_then(ArmsRace::current_attack);
        let updates = exp.train_round_with(&global, round, adaptive.as_ref(), telem);
        global = match arms.as_mut() {
            Some(a) => exp.aggregate_round_armed(
                a,
                &updates,
                round,
                &mut cost,
                telem,
                &mut susp_records,
            ),
            None => {
                exp.aggregate_round_logged(&updates, round, &mut cost, telem, &mut fault_log)
            }
        };
        let delta = CostCounters {
            messages: cost.messages - before.messages,
            bytes: cost.bytes - before.bytes,
            excluded: cost.excluded - before.excluded,
            absent: cost.absent - before.absent,
            faulted: cost.faulted - before.faulted,
            quarantined: cost.quarantined - before.quarantined,
            withheld: cost.withheld - before.withheld,
        };
        messages_c.inc(delta.messages);
        bytes_c.inc(delta.bytes);
        excluded_c.inc(delta.excluded);
        absent_c.inc(delta.absent);
        faulted_c.inc(delta.faulted);
        quarantined_c.inc(delta.quarantined);
        withheld_c.inc(delta.withheld);
        manifest.faults.extend(fault_log);

        let mut round_accuracy = None;
        if (round + 1) % cfg.eval_every == 0 || round + 1 == cfg.rounds {
            let a = exp.evaluate(&global);
            accuracy.push((round + 1, a));
            accuracy_g.set(a);
            round_accuracy = Some(a);
            if telem.enabled() {
                telem.emit(Event::Evaluated { round, accuracy: a });
            }
        }
        if telem.enabled() {
            telem.emit(Event::RoundFinished {
                round,
                messages: delta.messages,
                bytes: delta.bytes,
                excluded: delta.excluded,
                absent: delta.absent,
            });
        }
        manifest.rounds.push(RoundRecord {
            round: round + 1,
            accuracy: round_accuracy,
            messages: delta.messages,
            bytes: delta.bytes,
            excluded: delta.excluded,
            absent: delta.absent,
        });
    }
    let final_accuracy = accuracy.last().map(|(_, a)| *a).unwrap_or(0.0);
    manifest.totals = RunTotals {
        messages: cost.messages,
        bytes: cost.bytes,
        excluded: cost.excluded,
        absent: cost.absent,
    };
    manifest.final_accuracy = final_accuracy;
    // The suspicion section appears iff the suspicion layer ran (or a
    // protocol attack produced records): absent keys keep pre-v3
    // manifests byte-identical for unchanged configs.
    let suspicion_ran = arms
        .as_ref()
        .is_some_and(|a| a.suspicion.is_some());
    if suspicion_ran || !susp_records.is_empty() {
        let final_scores = arms
            .as_ref()
            .and_then(|a| a.suspicion.as_ref())
            .map(|t| {
                t.scores()
                    .iter()
                    .enumerate()
                    .filter(|&(c, &s)| s > 0.0 || t.is_quarantined(c))
                    .map(|(c, &s)| ClientScore {
                        client: c,
                        score: s,
                        quarantined: t.is_quarantined(c),
                    })
                    .collect()
            })
            .unwrap_or_default();
        manifest.suspicion = Some(SuspicionSection {
            events: susp_records,
            final_scores,
        });
    }
    manifest.metrics = telem.registry().snapshot();

    InstrumentedRun {
        result: RunResult {
            accuracy,
            final_accuracy,
            messages: cost.messages,
            bytes: cost.bytes,
            excluded_total: cost.excluded,
            absent_total: cost.absent,
            faulted_total: cost.faulted,
            quarantined_total: cost.quarantined,
            withheld_total: cost.withheld,
        },
        manifest,
    }
}

/// Convenience for the repeated-runs protocol of the paper (5 runs,
/// seeds `seed + k`): returns the per-run results.
pub fn run_repeated(cfg: &HflConfig, repetitions: usize) -> Vec<RunResult> {
    assert!(repetitions > 0, "need at least one repetition");
    (0..repetitions)
        .map(|k| {
            let mut c = cfg.clone();
            c.seed = hfl_ml::rng::derive_seed(cfg.seed, 0x2E9 + k as u64);
            run_abd_hfl(&c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HflConfig;
    use hfl_attacks::{DataAttack, Placement};

    fn quick(attack: AttackCfg, seed: u64) -> HflConfig {
        let mut cfg = HflConfig::quick(attack, seed);
        cfg.rounds = 25;
        cfg.eval_every = 25;
        cfg
    }

    #[test]
    fn honest_run_learns() {
        let r = run_abd_hfl(&quick(AttackCfg::None, 1));
        assert!(
            r.final_accuracy > 0.75,
            "clean accuracy only {}",
            r.final_accuracy
        );
        assert!(r.messages > 0 && r.bytes > 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = run_abd_hfl(&quick(AttackCfg::None, 7));
        let b = run_abd_hfl(&quick(AttackCfg::None, 7));
        assert_eq!(a.final_accuracy, b.final_accuracy);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn survives_30_percent_type_i_poisoning() {
        let attack = AttackCfg::Data {
            attack: DataAttack::type_i(),
            proportion: 0.3,
            placement: Placement::Prefix,
        };
        let r = run_abd_hfl(&quick(attack, 2));
        assert!(
            r.final_accuracy > 0.7,
            "ABD-HFL collapsed at 30 %: {}",
            r.final_accuracy
        );
    }

    #[test]
    fn consensus_excludes_poisoned_proposals() {
        let attack = AttackCfg::Data {
            attack: DataAttack::type_i(),
            proportion: 0.25,
            placement: Placement::Prefix,
        };
        let r = run_abd_hfl(&quick(attack, 3));
        // One proposal excluded per round by the vote.
        assert!(r.excluded_total > 0);
    }

    #[test]
    fn quorum_below_one_still_converges() {
        let mut cfg = quick(AttackCfg::None, 4);
        cfg.quorum = 0.75;
        let r = run_abd_hfl(&cfg);
        assert!(r.final_accuracy > 0.7, "quorum run: {}", r.final_accuracy);
    }

    #[test]
    fn repeated_runs_vary_but_agree_roughly() {
        let runs = run_repeated(&quick(AttackCfg::None, 5), 2);
        assert_eq!(runs.len(), 2);
        assert_ne!(runs[0].final_accuracy, runs[1].final_accuracy);
        assert!((runs[0].final_accuracy - runs[1].final_accuracy).abs() < 0.15);
    }

    #[test]
    fn churn_is_tolerated() {
        // 20 % of non-leader clients absent per round (Assumption 3):
        // learning still converges and absences are counted.
        let mut cfg = quick(AttackCfg::None, 11);
        cfg.churn_leave_prob = 0.2;
        let r = run_abd_hfl(&cfg);
        assert!(r.final_accuracy > 0.7, "churn run: {}", r.final_accuracy);
        // ≈ 0.2 × 48 non-leaders × 25 rounds = 240 expected absences.
        assert!(
            r.absent_total > 120 && r.absent_total < 400,
            "absences: {}",
            r.absent_total
        );
    }

    #[test]
    fn zero_churn_has_zero_absences() {
        let r = run_abd_hfl(&quick(AttackCfg::None, 12));
        assert_eq!(r.absent_total, 0);
    }

    #[test]
    fn leaders_never_churn() {
        let mut cfg = quick(AttackCfg::None, 13);
        cfg.churn_leave_prob = 0.9;
        let exp = Experiment::prepare(&cfg);
        let bottom = exp.hierarchy.bottom_level();
        for round in 0..5 {
            let active = exp.active_mask(round);
            for cluster in &exp.hierarchy.level(bottom).clusters {
                assert!(active[cluster.leader()], "leader churned out");
            }
        }
    }

    #[test]
    fn accuracy_series_has_eval_points() {
        let mut cfg = quick(AttackCfg::None, 6);
        cfg.rounds = 10;
        cfg.eval_every = 2;
        let r = run_abd_hfl(&cfg);
        assert_eq!(r.accuracy.len(), 5);
        assert_eq!(r.accuracy.last().unwrap().0, 10);
    }

    fn tiny(seed: u64) -> HflConfig {
        let mut cfg = HflConfig::quick(AttackCfg::None, seed);
        cfg.rounds = 3;
        cfg.eval_every = 3;
        cfg
    }

    #[test]
    fn manifest_is_byte_identical_across_equal_seeds() {
        let cfg = tiny(21);
        let a = run_abd_hfl_with(&cfg, &Telemetry::disabled());
        let b = run_abd_hfl_with(&cfg, &Telemetry::disabled());
        assert_eq!(a.manifest.to_json(), b.manifest.to_json());
        // And a different seed is visible in the manifest.
        let mut other = cfg.clone();
        other.seed = 22;
        let c = run_abd_hfl_with(&other, &Telemetry::disabled());
        assert_ne!(a.manifest.to_json(), c.manifest.to_json());
        assert_ne!(a.manifest.config_hash, c.manifest.config_hash);
    }

    #[test]
    fn manifest_roundtrips_and_matches_result() {
        let run = run_abd_hfl_with(&tiny(23), &Telemetry::disabled());
        let m = &run.manifest;
        assert_eq!(m.label, "abd-hfl");
        assert_eq!(m.seed, 23);
        assert_eq!(m.rounds.len(), 3);
        assert_eq!(m.totals.messages, run.result.messages);
        assert_eq!(m.totals.bytes, run.result.bytes);
        assert_eq!(
            m.rounds.iter().map(|r| r.messages).sum::<u64>(),
            run.result.messages
        );
        assert_eq!(m.final_accuracy, run.result.final_accuracy);
        // Only the last round is an eval point under eval_every = rounds.
        assert!(m.rounds[0].accuracy.is_none());
        assert!(m.rounds[2].accuracy.is_some());
        let back = hfl_telemetry::RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(&back, m);
    }

    #[test]
    fn instrumented_run_matches_uninstrumented() {
        let cfg = tiny(24);
        let plain = run_abd_hfl(&cfg);
        let (telem, _rec) = Telemetry::recording();
        let inst = run_abd_hfl_with(&cfg, &telem);
        assert_eq!(plain.final_accuracy, inst.result.final_accuracy);
        assert_eq!(plain.messages, inst.result.messages);
        assert_eq!(plain.bytes, inst.result.bytes);
    }

    #[test]
    fn events_cover_the_round_lifecycle() {
        let cfg = tiny(25);
        let (telem, rec) = Telemetry::recording();
        let inst = run_abd_hfl_with(&cfg, &telem);
        let events = rec.events();
        let starts = events
            .iter()
            .filter(|e| matches!(e, Event::RoundStarted { .. }))
            .count();
        let finishes = events
            .iter()
            .filter(|e| matches!(e, Event::RoundFinished { .. }))
            .count();
        assert_eq!(starts, cfg.rounds);
        assert_eq!(finishes, cfg.rounds);
        // Every message accounted in the result is also visible as a
        // MessagesSent event.
        let event_messages: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::MessagesSent { count, .. } => Some(*count),
                _ => None,
            })
            .sum();
        assert_eq!(event_messages, inst.result.messages);
        // And the registry counter agrees.
        assert_eq!(
            telem.registry().counter("hfl_messages_total", &[]).get(),
            inst.result.messages
        );
    }
}
