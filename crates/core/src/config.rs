//! Experiment configuration: everything needed to reproduce a run from a
//! single seed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use hfl_attacks::{AdaptiveAttack, DataAttack, ModelAttack, Placement, ProtocolAttack};
use hfl_consensus::ConsensusKind;
use hfl_faults::{FaultPlan, FaultPlanError};
use hfl_ml::synth::SynthConfig;
use hfl_ml::{LinearSoftmax, Mlp, Model, SgdConfig};
use hfl_robust::{AggregatorKind, Krum, SuspicionConfig};
use hfl_simnet::{DelayModel, Hierarchy};

use crate::correction::CorrectionPolicy;

/// Which hierarchy to build.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TopologyCfg {
    /// Equal Cluster Size Model: `total_levels` levels, cluster size `m`,
    /// `n_top` top nodes (the paper's evaluation: 3 / 4 / 4 → 64 clients).
    Ecsm {
        /// Total levels `L + 1`.
        total_levels: usize,
        /// Cluster size `m`.
        m: usize,
        /// Top-level node count `N_t`.
        n_top: usize,
    },
    /// Arbitrary Cluster Size Model with random cluster sizes.
    AcsmRandom {
        /// Bottom-level client count.
        n_bottom: usize,
        /// Total levels.
        total_levels: usize,
        /// Minimum cluster size.
        min_size: usize,
        /// Maximum cluster size.
        max_size: usize,
    },
}

impl TopologyCfg {
    /// The paper's evaluation topology.
    pub fn paper() -> Self {
        TopologyCfg::Ecsm {
            total_levels: 3,
            m: 4,
            n_top: 4,
        }
    }

    /// Builds the hierarchy (ACSM uses `seed`).
    pub fn build(&self, seed: u64) -> Hierarchy {
        match *self {
            TopologyCfg::Ecsm {
                total_levels,
                m,
                n_top,
            } => Hierarchy::ecsm(total_levels, m, n_top),
            TopologyCfg::AcsmRandom {
                n_bottom,
                total_levels,
                min_size,
                max_size,
            } => Hierarchy::acsm_random(n_bottom, total_levels, min_size, max_size, seed),
        }
    }
}

/// Model architecture.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ModelCfg {
    /// Multinomial logistic regression.
    Linear,
    /// One-hidden-layer MLP ("DNN" in the paper's terms).
    Mlp {
        /// Hidden width.
        hidden: usize,
    },
}

impl ModelCfg {
    /// Instantiates the model for a `dim`-dimensional `classes`-way task.
    pub fn build(&self, dim: usize, classes: usize, seed: u64) -> Box<dyn Model> {
        match *self {
            ModelCfg::Linear => Box::new(LinearSoftmax::new(dim, classes)),
            ModelCfg::Mlp { hidden } => {
                let mut rng = StdRng::seed_from_u64(seed);
                Box::new(Mlp::new(dim, hidden, classes, &mut rng))
            }
        }
    }
}

/// Client data distribution (paper Appendix D).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DataDistribution {
    /// IID: label-shuffled equal shards.
    Iid,
    /// Extreme non-IID: `labels_per_client` labels each, with the honest
    /// coverage guarantee.
    NonIid {
        /// Distinct labels per client (the paper uses 2).
        labels_per_client: usize,
    },
    /// Dirichlet-α non-IID (Hsu et al.): per label, client shares drawn
    /// from a symmetric `Dirichlet(alpha)` — the benchmark-suite
    /// heterogeneity dial. Small α (0.1) concentrates labels on few
    /// clients; large α approaches IID.
    Dirichlet {
        /// Concentration parameter, finite and positive.
        alpha: f64,
    },
}

/// Per-client compute/bandwidth heterogeneity profiles: every client
/// draws a compute factor in `[1, compute_spread]` and a bandwidth
/// factor in `[1, bandwidth_spread]` from a dedicated seeded stream at
/// preparation time. Under deadline-driven collection
/// ([`HflConfig::async_rounds`]) a member's synthesized arrival delay is
/// stretched by the product of its two factors — slow compute delays
/// upload readiness, thin bandwidth stretches the transfer — composing
/// multiplicatively with fault-plan straggler windows. The synchronous
/// barrier waits for everyone, so profiles change nothing there (and
/// absent profiles change nothing anywhere).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneityCfg {
    /// Largest compute slowdown, ≥ 1 (1 = homogeneous compute).
    pub compute_spread: f64,
    /// Largest bandwidth slowdown, ≥ 1 (1 = homogeneous links).
    pub bandwidth_spread: f64,
}

impl HeterogeneityCfg {
    /// A moderate mixed-device profile: up to 4× slower compute, up to
    /// 2× thinner links.
    pub fn mixed_devices() -> Self {
        Self {
            compute_spread: 4.0,
            bandwidth_spread: 2.0,
        }
    }
}

/// How a round's cohort is drawn from the client population.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingScheme {
    /// Uniform without replacement over the whole population.
    Uniform,
    /// One uniform pick per contiguous population stratum: slot `i`
    /// draws from `[i·n/m, (i+1)·n/m)`, so every region of the client
    /// id space is represented every round.
    Stratified,
}

/// Per-round client sampling — the cross-device execution model
/// (DESIGN.md §14). The hierarchy's bottom level describes the *cohort*:
/// the `cohort_size` slots that actually train and aggregate in a round.
/// Each round a dedicated seeded stream binds those slots, in ascending
/// client order, to `cohort_size` distinct clients out of a population
/// of `population ≥ cohort_size`. Identity-bound state (malicious
/// flags, data shards, suspicion scores, detection flags, heterogeneity
/// profiles) lives on *global* client ids and survives across rounds;
/// everything topological (clusters, leaders, churn, fault schedules)
/// stays on cohort slots. `None` (the default) binds slot `i` to client
/// `i` every round and keeps runs byte-identical to configs predating
/// this field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingCfg {
    /// Total client population n, ≥ `cohort_size`.
    pub population: usize,
    /// Clients sampled per round m; must equal the hierarchy's
    /// bottom-level client count (the hierarchy describes the cohort).
    pub cohort_size: usize,
    /// The draw scheme.
    pub scheme: SamplingScheme,
}

impl SamplingCfg {
    /// Uniform sampling of `cohort_size` from `population`.
    pub fn uniform(population: usize, cohort_size: usize) -> Self {
        Self {
            population,
            cohort_size,
            scheme: SamplingScheme::Uniform,
        }
    }

    /// Stratified sampling of `cohort_size` from `population`.
    pub fn stratified(population: usize, cohort_size: usize) -> Self {
        Self {
            population,
            cohort_size,
            scheme: SamplingScheme::Stratified,
        }
    }
}

/// Byzantine attack configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttackCfg {
    /// All clients honest.
    None,
    /// Data poisoning: malicious clients train honestly on poisoned data.
    Data {
        /// The poisoning transformation.
        attack: DataAttack,
        /// Fraction of bottom-level clients poisoned.
        proportion: f64,
        /// Which clients are poisoned.
        placement: Placement,
    },
    /// Model poisoning: malicious clients replace their trained update
    /// with a crafted vector (colluding, omniscient within their cluster).
    Model {
        /// The update-crafting attack.
        attack: ModelAttack,
        /// Fraction of bottom-level clients malicious.
        proportion: f64,
        /// Which clients are malicious.
        placement: Placement,
    },
    /// Adaptive model poisoning: the coalition tunes its attack magnitude
    /// each round from defense feedback (`hfl_attacks::adaptive`),
    /// bisecting toward the defense's acceptance boundary.
    Adaptive {
        /// The tunable attack family and its magnitude bounds.
        attack: AdaptiveAttack,
        /// Fraction of bottom-level clients malicious.
        proportion: f64,
        /// Which clients are malicious.
        placement: Placement,
    },
}

impl AttackCfg {
    /// The malicious fraction (0 for `None`).
    pub fn proportion(&self) -> f64 {
        match self {
            AttackCfg::None => 0.0,
            AttackCfg::Data { proportion, .. }
            | AttackCfg::Model { proportion, .. }
            | AttackCfg::Adaptive { proportion, .. } => *proportion,
        }
    }

    /// The placement strategy (`Prefix` for `None`, matching the paper).
    pub fn placement(&self) -> Placement {
        match self {
            AttackCfg::None => Placement::Prefix,
            AttackCfg::Data { placement, .. }
            | AttackCfg::Model { placement, .. }
            | AttackCfg::Adaptive { placement, .. } => *placement,
        }
    }
}

/// Deadline-driven asynchronous collection (DESIGN.md §12): every
/// aggregation point opens a buffer, admits updates as they arrive,
/// and closes on first-of `{quorum reached, deadline fires}`. Late
/// arrivals within the staleness bound τ are admitted at a
/// staleness-discounted weight; later ones are dropped with a
/// `StaleUpdateDropped` event. All decisions are integer sim-time
/// comparisons over seeded arrival draws, so runs stay
/// bit-reproducible; `HflConfig::async_rounds = None` is the
/// synchronous barrier (deadline = ∞), byte-identical to configs
/// predating this field.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AsyncRoundCfg {
    /// Collection deadline per aggregation buffer, in simulated µs
    /// from buffer open. The buffer closes at
    /// `min(deadline, quorum arrival time)`.
    pub deadline_us: u64,
    /// Staleness bound τ, in µs past buffer close: a late update with
    /// `lateness ≤ τ` is admitted at discounted weight, one with
    /// `lateness > τ` is rejected.
    pub staleness_bound_us: u64,
    /// Link-delay distribution synthesizing each member's arrival
    /// offset (scaled by its straggler factor when a fault plan is
    /// active).
    pub link_delay: DelayModel,
    /// Per-tier deadline overrides as `(level, deadline_us)` pairs
    /// (level 0 = top). Levels not listed use `deadline_us`.
    #[serde(default)]
    pub tier_deadlines: Vec<(usize, u64)>,
}

impl AsyncRoundCfg {
    /// A moderate default: LAN-ish uniform link delays with a deadline
    /// that a healthy quorum beats comfortably and τ of half a
    /// deadline.
    pub fn lan() -> Self {
        Self {
            deadline_us: 50_000,
            staleness_bound_us: 25_000,
            link_delay: DelayModel::Uniform { lo: 500, hi: 5_000 },
            tier_deadlines: Vec::new(),
        }
    }

    /// The effective deadline for an aggregation buffer at `level`.
    pub fn deadline_for(&self, level: usize) -> u64 {
        self.tier_deadlines
            .iter()
            .find(|(l, _)| *l == level)
            .map(|(_, d)| *d)
            .unwrap_or(self.deadline_us)
    }
}

/// Per-level aggregation choice (Algorithm 3's `BRA` / `CBA` switch).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LevelAgg {
    /// Byzantine-robust aggregation: the cluster leader collects and
    /// aggregates.
    Bra(AggregatorKind),
    /// Consensus-based aggregation: cluster members agree with no trusted
    /// leader.
    Cba(ConsensusKind),
}

/// Full experiment configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HflConfig {
    /// Hierarchy shape.
    pub topology: TopologyCfg,
    /// Global rounds `R` (paper: 200).
    pub rounds: usize,
    /// Local iterations `T` per round (paper: 5).
    pub local_iters: usize,
    /// SGD hyper-parameters.
    pub sgd: SgdConfig,
    /// Model architecture.
    pub model: ModelCfg,
    /// Synthetic-task generator settings.
    pub data: SynthConfig,
    /// Client data distribution.
    pub distribution: DataDistribution,
    /// Aggregation rule per level, index = level (0 = top/global). Length
    /// must equal the hierarchy's level count.
    pub levels: Vec<LevelAgg>,
    /// Collection quorum φ: the fraction of a cluster's models a leader
    /// waits for before aggregating (Algorithm 4). The synchronous driver
    /// uses all models when φ = 1.
    pub quorum: f64,
    /// Byzantine attack.
    pub attack: AttackCfg,
    /// Correction-factor policy (used by the asynchronous driver).
    pub correction: CorrectionPolicy,
    /// Flag level ℓ_F (used by the asynchronous driver; must be in
    /// `1..=L−1`, or `1` for the paper's 3-level structure... any
    /// intermediate level).
    pub flag_level: usize,
    /// Evaluate test accuracy every this many rounds (1 = every round).
    pub eval_every: usize,
    /// Master seed.
    pub seed: u64,
    /// Explicit malicious mask overriding `attack`'s proportion/placement
    /// (used by the Theorem 2 / Definition 4 experiments, which place
    /// adversaries structurally). Length must equal the client count.
    #[serde(default)]
    pub malicious_override: Option<Vec<bool>>,
    /// Client churn (Assumption 3: nodes join/leave clusters, clusters
    /// never split or merge): per round, each non-leader bottom client is
    /// absent with this probability — its update never reaches its
    /// leader. Leaders stay (they are the cluster's infrastructure role).
    #[serde(default)]
    pub churn_leave_prob: f64,
    /// Scheduled fault injection (`hfl-faults`): crashes, leader kills,
    /// stragglers, loss bursts, partitions, churn overrides. `None`
    /// (the default) runs fault-free and leaves the aggregation path
    /// byte-identical to configs predating this field.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
    /// Defense-side suspicion layer (`hfl_robust::suspicion`): per-client
    /// decayed scores fed by aggregator evidence, quarantine above a
    /// threshold. `None` (the default) keeps the memoryless defense and
    /// the aggregation path byte-identical to configs predating this
    /// field.
    #[serde(default)]
    pub suspicion: Option<SuspicionConfig>,
    /// Protocol-level Byzantine behavior of malicious nodes (leader
    /// equivocation, selective withholding) on top of whatever `attack`
    /// does to updates. `None` (the default) keeps malicious nodes
    /// protocol-honest.
    #[serde(default)]
    pub protocol_attack: Option<ProtocolAttack>,
    /// When true, a Krum/Multi-Krum level whose smallest cluster violates
    /// the `n ≥ 2f + 3` guarantee bound is a [`ConfigError::KrumUnsound`]
    /// at validation time. Off by default because the paper's own
    /// evaluation (f = 1 on clusters of 4) violates the strict bound —
    /// default mode records the degradation as a telemetry anomaly
    /// instead.
    #[serde(default)]
    pub strict_guarantees: bool,
    /// Deadline-driven asynchronous collection buffers (DESIGN.md §12).
    /// `None` (the default) keeps the synchronous barrier — the
    /// `deadline = ∞` special case — and the aggregation path
    /// byte-identical to configs predating this field.
    #[serde(default)]
    pub async_rounds: Option<AsyncRoundCfg>,
    /// Per-client compute/bandwidth heterogeneity profiles feeding the
    /// deadline-buffer arrival synthesis. `None` (the default) keeps
    /// every client homogeneous and the run byte-identical to configs
    /// predating this field.
    #[serde(default)]
    pub heterogeneity: Option<HeterogeneityCfg>,
    /// Per-round client sampling over a population larger than the
    /// hierarchy (DESIGN.md §14). `None` (the default) binds cohort slot
    /// `i` to client `i` every round — the `population == cohort` special
    /// case — and keeps the run byte-identical to configs predating this
    /// field.
    #[serde(default)]
    pub sampling: Option<SamplingCfg>,
}

impl HflConfig {
    /// The paper's Table V / Figure 3 configuration at a given attack:
    /// 3 levels, m = 4, 4 top nodes, 200 rounds, 5 local iterations,
    /// Scheme 1 (Multi-Krum partials at 25 % assumed malicious,
    /// validation-vote consensus at the top).
    pub fn paper_iid(attack: AttackCfg, seed: u64) -> Self {
        Self {
            topology: TopologyCfg::paper(),
            rounds: 200,
            local_iters: 5,
            sgd: SgdConfig::default(),
            model: ModelCfg::Linear,
            data: SynthConfig::default(),
            distribution: DataDistribution::Iid,
            levels: vec![
                // Top: consensus (Scheme 1).
                LevelAgg::Cba(ConsensusKind::VoteMajority),
                // Intermediate + bottom-cluster aggregation: Multi-Krum
                // with the paper's assumed 25 % malicious (f = 1 of 4,
                // averaging the best 3).
                LevelAgg::Bra(AggregatorKind::MultiKrum { f: 1, m: 3 }),
                LevelAgg::Bra(AggregatorKind::MultiKrum { f: 1, m: 3 }),
            ],
            quorum: 1.0,
            attack,
            correction: CorrectionPolicy::default(),
            flag_level: 1,
            eval_every: 1,
            seed,
            malicious_override: None,
            churn_leave_prob: 0.0,
            faults: None,
            suspicion: None,
            protocol_attack: None,
            strict_guarantees: false,
            async_rounds: None,
            heterogeneity: None,
            sampling: None,
        }
    }

    /// The paper's non-IID configuration: Median partial aggregation.
    pub fn paper_noniid(attack: AttackCfg, seed: u64) -> Self {
        Self {
            distribution: DataDistribution::NonIid {
                labels_per_client: 2,
            },
            levels: vec![
                LevelAgg::Cba(ConsensusKind::VoteMajority),
                LevelAgg::Bra(AggregatorKind::Median),
                LevelAgg::Bra(AggregatorKind::Median),
            ],
            ..Self::paper_iid(attack, seed)
        }
    }

    /// A fast configuration for tests and examples: 3 levels but a small
    /// synthetic task and few rounds.
    pub fn quick(attack: AttackCfg, seed: u64) -> Self {
        Self {
            rounds: 30,
            data: SynthConfig {
                train_samples: 6_400,
                test_samples: 1_000,
                ..SynthConfig::default()
            },
            eval_every: 5,
            ..Self::paper_iid(attack, seed)
        }
    }

    /// Validates internal consistency against the built hierarchy,
    /// reporting the first inconsistency instead of panicking — the
    /// entry point for sweep harnesses where one bad cell must not
    /// abort the whole sweep.
    pub fn try_validate(&self, hierarchy: &Hierarchy) -> Result<(), ConfigError> {
        if self.rounds == 0 {
            return Err(ConfigError::ZeroRounds);
        }
        if self.local_iters == 0 {
            return Err(ConfigError::ZeroLocalIters);
        }
        if self.eval_every == 0 {
            return Err(ConfigError::ZeroEvalEvery);
        }
        if !(self.quorum > 0.0 && self.quorum <= 1.0) {
            return Err(ConfigError::QuorumOutOfRange {
                quorum: self.quorum,
            });
        }
        if self.levels.len() != hierarchy.num_levels() {
            return Err(ConfigError::LevelsLengthMismatch {
                got: self.levels.len(),
                expected: hierarchy.num_levels(),
            });
        }
        if !(self.flag_level >= 1 && self.flag_level < hierarchy.num_levels()) {
            return Err(ConfigError::FlagLevelOutOfRange {
                flag_level: self.flag_level,
                levels: hierarchy.num_levels(),
            });
        }
        if self.attack.proportion() > 1.0 {
            return Err(ConfigError::AttackProportionOutOfRange {
                proportion: self.attack.proportion(),
            });
        }
        if let Some(s) = &self.sampling {
            if s.cohort_size == 0 {
                return Err(ConfigError::SamplingOutOfRange {
                    what: "cohort_size",
                    value: 0.0,
                });
            }
            if s.population < s.cohort_size {
                return Err(ConfigError::SamplingOutOfRange {
                    what: "population (below cohort_size)",
                    value: s.population as f64,
                });
            }
            // The hierarchy's bottom level *is* the cohort: every slot
            // must be bound to a sampled client each round.
            if s.cohort_size != hierarchy.num_clients() {
                return Err(ConfigError::SamplingCohortMismatch {
                    cohort_size: s.cohort_size,
                    clients: hierarchy.num_clients(),
                });
            }
        }
        if let Some(mask) = &self.malicious_override {
            // Malicious flags are identity-bound: under sampling the mask
            // covers the whole population, not just one round's cohort.
            let expected = self
                .sampling
                .as_ref()
                .map_or(hierarchy.num_clients(), |s| s.population);
            if mask.len() != expected {
                return Err(ConfigError::MaliciousMaskLengthMismatch {
                    got: mask.len(),
                    expected,
                });
            }
        }
        if !(0.0..1.0).contains(&self.churn_leave_prob) {
            return Err(ConfigError::ChurnOutOfRange {
                prob: self.churn_leave_prob,
            });
        }
        if let AttackCfg::Adaptive { attack, .. } = &self.attack {
            let (init, max) = attack.bounds();
            if !(init > 0.0 && init.is_finite()) {
                return Err(ConfigError::AdaptiveAttackOutOfRange {
                    what: "init magnitude",
                    value: f64::from(init),
                });
            }
            if !(max.is_finite() && max >= init) {
                return Err(ConfigError::AdaptiveAttackOutOfRange {
                    what: "max magnitude",
                    value: f64::from(max),
                });
            }
        }
        if let AttackCfg::Model { attack, .. } = &self.attack {
            if let Some((what, value)) = invalid_model_attack_param(attack) {
                return Err(ConfigError::ModelAttackOutOfRange { what, value });
            }
        }
        if let DataDistribution::Dirichlet { alpha } = self.distribution {
            if !(alpha.is_finite() && alpha > 0.0) {
                return Err(ConfigError::DirichletAlphaOutOfRange { alpha });
            }
        }
        for (level, agg) in self.levels.iter().enumerate() {
            if let LevelAgg::Bra(kind) = agg {
                validate_aggregator(level, kind, false)?;
            }
        }
        if let Some(het) = &self.heterogeneity {
            for (what, value) in [
                ("compute_spread", het.compute_spread),
                ("bandwidth_spread", het.bandwidth_spread),
            ] {
                if !(value.is_finite() && value >= 1.0) {
                    return Err(ConfigError::HeterogeneityOutOfRange { what, value });
                }
            }
        }
        if let Some(s) = &self.suspicion {
            if let Some((what, value)) = s.invalid_param() {
                return Err(ConfigError::SuspicionOutOfRange { what, value });
            }
        }
        if let Some(ProtocolAttack::Equivocate { flip_scale }) = &self.protocol_attack {
            if !(flip_scale.is_finite() && *flip_scale > 0.0) {
                return Err(ConfigError::ProtocolAttackOutOfRange {
                    value: f64::from(*flip_scale),
                });
            }
        }
        if self.strict_guarantees {
            for (level, agg) in self.levels.iter().enumerate() {
                let (f, bucket_cap) = match agg {
                    LevelAgg::Bra(AggregatorKind::Krum { f })
                    | LevelAgg::Bra(AggregatorKind::MultiKrum { f, .. }) => (*f, usize::MAX),
                    // SampledKrum runs Krum over at most `m` bucket
                    // means, so `m` caps the effective input count the
                    // guarantee sees.
                    LevelAgg::Bra(AggregatorKind::SampledKrum { f, m }) => (*f, *m),
                    _ => continue,
                };
                // The inputs a level-l cluster aggregates come from its
                // own members (level-(l+1) leaders or bottom clients), so
                // its own size bounds n.
                let n_min = hierarchy
                    .level(level)
                    .clusters
                    .iter()
                    .map(|c| c.len())
                    .min()
                    .unwrap_or(0)
                    .min(bucket_cap);
                if !Krum::guarantee_holds(f, n_min) {
                    return Err(ConfigError::KrumUnsound { level, f, n_min });
                }
            }
        }
        if let Some(plan) = &self.faults {
            plan.validate(hierarchy).map_err(ConfigError::Faults)?;
        }
        if let Some(a) = &self.async_rounds {
            if a.deadline_us == 0 {
                return Err(ConfigError::AsyncOutOfRange {
                    what: "deadline_us",
                    value: 0.0,
                });
            }
            for &(level, d) in &a.tier_deadlines {
                if level >= hierarchy.num_levels() {
                    return Err(ConfigError::AsyncTierOutOfRange {
                        level,
                        levels: hierarchy.num_levels(),
                    });
                }
                if d == 0 {
                    return Err(ConfigError::AsyncOutOfRange {
                        what: "tier deadline",
                        value: level as f64,
                    });
                }
            }
            if let DelayModel::Uniform { lo, hi } = &a.link_delay {
                if lo > hi {
                    return Err(ConfigError::AsyncOutOfRange {
                        what: "link_delay bounds (lo > hi)",
                        value: *lo as f64,
                    });
                }
            }
            if matches!(self.protocol_attack, Some(ProtocolAttack::StalenessExploit))
                && a.staleness_bound_us == 0
            {
                // A staleness exploit stalls until *just inside* τ;
                // with τ = 0 there is no inside and the attack
                // degenerates to Withhold — reject the ambiguity.
                return Err(ConfigError::AsyncOutOfRange {
                    what: "staleness_bound_us under StalenessExploit",
                    value: 0.0,
                });
            }
        } else if matches!(self.protocol_attack, Some(ProtocolAttack::StalenessExploit)) {
            // The exploit is defined relative to an async close time.
            return Err(ConfigError::StalenessExploitNeedsAsync);
        }
        Ok(())
    }

    /// True when this config engages the arms race: an adaptive attack,
    /// a protocol attack, or the suspicion layer. The round engine
    /// stacks its defense and adversary layers exactly when this holds;
    /// faults compose freely with all of it.
    #[must_use]
    pub fn arms_race(&self) -> bool {
        self.suspicion.is_some()
            || self.protocol_attack.is_some()
            || matches!(self.attack, AttackCfg::Adaptive { .. })
    }

    /// Validates internal consistency against the built hierarchy.
    ///
    /// # Panics
    /// On inconsistency (wrong `levels` length, flag level out of range,
    /// quorum out of `(0, 1]`, zero rounds...). Use
    /// [`HflConfig::try_validate`] where a bad config is recoverable.
    pub fn validate(&self, hierarchy: &Hierarchy) {
        if let Err(e) = self.try_validate(hierarchy) {
            panic!("{e}");
        }
    }
}

/// Validation-time parameter check for static model attacks, mirroring
/// the assertions `ModelAttack::craft` makes at run time so a bad knob
/// fails a sweep cell instead of panicking mid-run.
fn invalid_model_attack_param(attack: &ModelAttack) -> Option<(&'static str, f64)> {
    match attack {
        ModelAttack::SignFlip { scale } if !(scale.is_finite() && *scale > 0.0) => {
            Some(("sign-flip scale", f64::from(*scale)))
        }
        ModelAttack::GaussianNoise { std } if !(std.is_finite() && *std >= 0.0) => {
            Some(("noise std", f64::from(*std)))
        }
        ModelAttack::Alie { z } if !z.is_finite() => Some(("ALIE z", f64::from(*z))),
        ModelAttack::Ipm { epsilon } if !(epsilon.is_finite() && *epsilon > 0.0) => {
            Some(("IPM epsilon", f64::from(*epsilon)))
        }
        ModelAttack::Scaling { factor } if !(factor.is_finite() && *factor != 0.0) => {
            Some(("scaling factor", f64::from(*factor)))
        }
        _ => None,
    }
}

/// Validates one configured aggregation rule's parameters (the checks
/// the rule constructors enforce by panicking, surfaced as
/// [`ConfigError`]s), recursing one layer into pre-aggregation
/// compositions. `nested` marks the recursive call: a pre-aggregation
/// inside a pre-aggregation is rejected — the composition contract is
/// single-layer (DESIGN.md §13).
fn validate_aggregator(
    level: usize,
    kind: &AggregatorKind,
    nested: bool,
) -> Result<(), ConfigError> {
    let bad = |what: &'static str, value: f64| {
        Err(ConfigError::AggregatorOutOfRange { level, what, value })
    };
    match kind {
        AggregatorKind::CenteredClip { tau, iters } => {
            if !(tau.is_finite() && *tau > 0.0) {
                return bad("centered-clip tau", *tau);
            }
            if *iters == 0 {
                return bad("centered-clip iters", 0.0);
            }
        }
        AggregatorKind::TrimmedMean { ratio }
            if !(ratio.is_finite() && (0.0..0.5).contains(ratio)) =>
        {
            return bad("trimmed-mean ratio", *ratio);
        }
        AggregatorKind::Bucketing { s, inner } => {
            if nested {
                return Err(ConfigError::NestedPreAggregation { level });
            }
            if *s == 0 {
                return bad("bucketing s", 0.0);
            }
            validate_aggregator(level, inner, true)?;
        }
        AggregatorKind::Nnm { k, inner } => {
            if nested {
                return Err(ConfigError::NestedPreAggregation { level });
            }
            if *k == 0 {
                return bad("nnm k", 0.0);
            }
            validate_aggregator(level, inner, true)?;
        }
        AggregatorKind::StreamingMedian { exact_threshold } if *exact_threshold == 0 => {
            return bad("streaming-median exact_threshold", 0.0);
        }
        AggregatorKind::StreamingTrimmedMean {
            ratio,
            exact_threshold,
        } => {
            if !(ratio.is_finite() && (0.0..0.5).contains(ratio)) {
                return bad("streaming-trimmed-mean ratio", *ratio);
            }
            if *exact_threshold == 0 {
                return bad("streaming-trimmed-mean exact_threshold", 0.0);
            }
        }
        AggregatorKind::SampledKrum { m, .. } if *m == 0 => {
            return bad("sampled-krum m", 0.0);
        }
        _ => {}
    }
    Ok(())
}

/// Why an [`HflConfig`] is internally inconsistent. `Display` renders
/// the exact invariant messages `validate` panics with.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `rounds` is zero.
    ZeroRounds,
    /// `local_iters` is zero.
    ZeroLocalIters,
    /// `eval_every` is zero.
    ZeroEvalEvery,
    /// `quorum` outside `(0, 1]`.
    QuorumOutOfRange {
        /// The offending quorum.
        quorum: f64,
    },
    /// `levels` length differs from the hierarchy's level count.
    LevelsLengthMismatch {
        /// Configured length.
        got: usize,
        /// Hierarchy depth.
        expected: usize,
    },
    /// `flag_level` is not an intermediate-or-bottom level.
    FlagLevelOutOfRange {
        /// The offending flag level.
        flag_level: usize,
        /// Hierarchy depth.
        levels: usize,
    },
    /// Attack proportion above 1.
    AttackProportionOutOfRange {
        /// The offending proportion.
        proportion: f64,
    },
    /// `malicious_override` length differs from the client count.
    MaliciousMaskLengthMismatch {
        /// Mask length.
        got: usize,
        /// Client count.
        expected: usize,
    },
    /// Churn leave probability outside `[0, 1)`.
    ChurnOutOfRange {
        /// The offending probability.
        prob: f64,
    },
    /// The fault plan doesn't fit the hierarchy.
    Faults(FaultPlanError),
    /// Adaptive attack magnitude bounds are unusable.
    AdaptiveAttackOutOfRange {
        /// Which bound is bad.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A suspicion-layer parameter is out of range.
    SuspicionOutOfRange {
        /// Which parameter is bad.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Equivocation flip scale must be finite and positive.
    ProtocolAttackOutOfRange {
        /// The offending flip scale.
        value: f64,
    },
    /// An asynchronous-round parameter is unusable.
    AsyncOutOfRange {
        /// Which parameter is bad.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A per-tier deadline override names a level the hierarchy lacks.
    AsyncTierOutOfRange {
        /// The offending level.
        level: usize,
        /// Hierarchy depth.
        levels: usize,
    },
    /// `ProtocolAttack::StalenessExploit` without `async_rounds`: the
    /// attack stalls relative to an async buffer close, which the
    /// synchronous barrier does not have.
    StalenessExploitNeedsAsync,
    /// A static model attack carries an unusable parameter.
    ModelAttackOutOfRange {
        /// Which parameter is bad.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Dirichlet concentration must be finite and positive.
    DirichletAlphaOutOfRange {
        /// The offending alpha.
        alpha: f64,
    },
    /// A configured aggregation rule carries an unusable parameter.
    AggregatorOutOfRange {
        /// The offending level.
        level: usize,
        /// Which parameter is bad.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A pre-aggregation transform wraps another pre-aggregation — the
    /// composition contract is single-layer.
    NestedPreAggregation {
        /// The offending level.
        level: usize,
    },
    /// A heterogeneity spread is unusable (must be finite and ≥ 1).
    HeterogeneityOutOfRange {
        /// Which spread is bad.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A sampling parameter is unusable.
    SamplingOutOfRange {
        /// Which parameter is bad.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `sampling.cohort_size` differs from the hierarchy's client count —
    /// the hierarchy's bottom level *is* the cohort.
    SamplingCohortMismatch {
        /// Configured cohort size.
        cohort_size: usize,
        /// Hierarchy client count.
        clients: usize,
    },
    /// With `strict_guarantees`, a Krum/Multi-Krum level whose smallest
    /// cluster violates `n ≥ 2f + 3`.
    KrumUnsound {
        /// The offending level.
        level: usize,
        /// Configured Byzantine count.
        f: usize,
        /// Smallest cluster size at that level.
        n_min: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroRounds => write!(f, "rounds must be positive"),
            ConfigError::ZeroLocalIters => write!(f, "local_iters must be positive"),
            ConfigError::ZeroEvalEvery => write!(f, "eval_every must be positive"),
            ConfigError::QuorumOutOfRange { quorum } => {
                write!(f, "quorum must be in (0, 1], got {quorum}")
            }
            ConfigError::LevelsLengthMismatch { got, expected } => write!(
                f,
                "levels config length must match hierarchy depth (config has {got}, hierarchy has {expected})"
            ),
            ConfigError::FlagLevelOutOfRange { flag_level, levels } => write!(
                f,
                "flag level must be an intermediate-or-bottom aggregation level (got {flag_level} of {levels} levels)"
            ),
            ConfigError::AttackProportionOutOfRange { proportion } => {
                write!(f, "attack proportion out of range ({proportion})")
            }
            ConfigError::MaliciousMaskLengthMismatch { got, expected } => write!(
                f,
                "malicious override mask length must equal client count (mask has {got}, hierarchy has {expected})"
            ),
            ConfigError::ChurnOutOfRange { prob } => {
                write!(f, "churn leave probability must be in [0, 1), got {prob}")
            }
            ConfigError::Faults(e) => write!(f, "{e}"),
            ConfigError::AdaptiveAttackOutOfRange { what, value } => {
                write!(f, "adaptive attack {what} out of range ({value})")
            }
            ConfigError::SuspicionOutOfRange { what, value } => {
                write!(f, "suspicion {what} out of range ({value})")
            }
            ConfigError::ProtocolAttackOutOfRange { value } => {
                write!(f, "equivocation flip scale must be finite and positive, got {value}")
            }
            ConfigError::AsyncOutOfRange { what, value } => {
                write!(f, "async rounds {what} out of range ({value})")
            }
            ConfigError::AsyncTierOutOfRange { level, levels } => write!(
                f,
                "async tier deadline names level {level}, hierarchy has {levels} levels"
            ),
            ConfigError::StalenessExploitNeedsAsync => write!(
                f,
                "StalenessExploit requires async_rounds (it stalls relative to a buffer close)"
            ),
            ConfigError::ModelAttackOutOfRange { what, value } => {
                write!(f, "model attack {what} out of range ({value})")
            }
            ConfigError::DirichletAlphaOutOfRange { alpha } => {
                write!(f, "dirichlet alpha must be finite and positive, got {alpha}")
            }
            ConfigError::AggregatorOutOfRange { level, what, value } => {
                write!(f, "aggregator {what} out of range at level {level} ({value})")
            }
            ConfigError::NestedPreAggregation { level } => write!(
                f,
                "pre-aggregation composition is single-layer: level {level} nests a \
                 bucketing/nnm transform inside another"
            ),
            ConfigError::HeterogeneityOutOfRange { what, value } => {
                write!(f, "heterogeneity {what} must be finite and >= 1, got {value}")
            }
            ConfigError::SamplingOutOfRange { what, value } => {
                write!(f, "sampling {what} out of range ({value})")
            }
            ConfigError::SamplingCohortMismatch { cohort_size, clients } => write!(
                f,
                "sampling cohort_size must equal the hierarchy's client count (cohort is {cohort_size}, hierarchy has {clients})"
            ),
            ConfigError::KrumUnsound { level, f: byz, n_min } => write!(
                f,
                "Krum guarantee n >= 2f + 3 violated at level {level}: f = {byz} needs clusters of at least {}, smallest has {n_min}",
                2 * byz + 3
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_consistent() {
        let cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        let h = cfg.topology.build(cfg.seed);
        cfg.validate(&h);
        assert_eq!(h.num_clients(), 64);
        assert_eq!(cfg.rounds, 200);
        assert_eq!(cfg.local_iters, 5);
    }

    #[test]
    fn noniid_uses_median() {
        let cfg = HflConfig::paper_noniid(AttackCfg::None, 0);
        assert!(matches!(
            cfg.levels[1],
            LevelAgg::Bra(AggregatorKind::Median)
        ));
        assert!(matches!(
            cfg.distribution,
            DataDistribution::NonIid {
                labels_per_client: 2
            }
        ));
    }

    #[test]
    fn model_cfg_builds_both_architectures() {
        let lin = ModelCfg::Linear.build(8, 10, 0);
        assert_eq!(lin.param_len(), 8 * 10 + 10);
        let mlp = ModelCfg::Mlp { hidden: 16 }.build(8, 10, 0);
        assert_eq!(mlp.param_len(), 16 * 8 + 16 + 10 * 16 + 10);
    }

    #[test]
    fn attack_cfg_accessors() {
        assert_eq!(AttackCfg::None.proportion(), 0.0);
        let a = AttackCfg::Data {
            attack: DataAttack::type_i(),
            proportion: 0.3,
            placement: Placement::Random,
        };
        assert_eq!(a.proportion(), 0.3);
        assert_eq!(a.placement(), Placement::Random);
    }

    #[test]
    #[should_panic(expected = "levels config length")]
    fn wrong_levels_length_panics() {
        let mut cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        cfg.levels.pop();
        let h = cfg.topology.build(0);
        cfg.validate(&h);
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn zero_quorum_panics() {
        let mut cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        cfg.quorum = 0.0;
        let h = cfg.topology.build(0);
        cfg.validate(&h);
    }

    #[test]
    fn try_validate_reports_instead_of_panicking() {
        let mut cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        let h = cfg.topology.build(0);
        assert_eq!(cfg.try_validate(&h), Ok(()));
        cfg.quorum = 2.0;
        let err = cfg.try_validate(&h).unwrap_err();
        assert!(matches!(err, ConfigError::QuorumOutOfRange { .. }));
        assert!(err.to_string().contains("quorum must be in (0, 1]"));
    }

    #[test]
    fn strict_guarantees_rejects_paper_krum_but_default_accepts() {
        // Paper default: Multi-Krum f = 1 on clusters of 4 — violates the
        // strict n >= 2f + 3 bound but is accepted in default mode.
        let mut cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        let h = cfg.topology.build(0);
        assert_eq!(cfg.try_validate(&h), Ok(()));
        cfg.strict_guarantees = true;
        let err = cfg.try_validate(&h).unwrap_err();
        assert!(
            matches!(err, ConfigError::KrumUnsound { f: 1, n_min: 4, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("2f + 3"), "{err}");
        // A sound configuration passes even strictly: f = 1 needs n >= 5.
        cfg.topology = TopologyCfg::Ecsm {
            total_levels: 3,
            m: 5,
            n_top: 5,
        };
        let h5 = cfg.topology.build(0);
        assert_eq!(cfg.try_validate(&h5), Ok(()));
    }

    #[test]
    fn sampling_cfg_is_validated() {
        let mut cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        let h = cfg.topology.build(0);
        // Well-formed: cohort matches the hierarchy, population above it.
        cfg.sampling = Some(SamplingCfg::uniform(100_000, h.num_clients()));
        assert_eq!(cfg.try_validate(&h), Ok(()));
        cfg.sampling = Some(SamplingCfg::stratified(100_000, h.num_clients()));
        assert_eq!(cfg.try_validate(&h), Ok(()));
        // Cohort must equal the hierarchy's client count.
        cfg.sampling = Some(SamplingCfg::uniform(100_000, 32));
        assert!(matches!(
            cfg.try_validate(&h).unwrap_err(),
            ConfigError::SamplingCohortMismatch {
                cohort_size: 32,
                clients: 64
            }
        ));
        // Population below the cohort cannot fill a round.
        cfg.sampling = Some(SamplingCfg::uniform(10, h.num_clients()));
        assert!(matches!(
            cfg.try_validate(&h).unwrap_err(),
            ConfigError::SamplingOutOfRange { .. }
        ));
        // Empty cohort is rejected before the mismatch check.
        cfg.sampling = Some(SamplingCfg::uniform(100, 0));
        assert!(matches!(
            cfg.try_validate(&h).unwrap_err(),
            ConfigError::SamplingOutOfRange { .. }
        ));
    }

    #[test]
    fn malicious_mask_covers_the_population_under_sampling() {
        let mut cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        let h = cfg.topology.build(0);
        cfg.sampling = Some(SamplingCfg::uniform(1_000, h.num_clients()));
        // A cohort-sized mask is wrong once the population is larger...
        cfg.malicious_override = Some(vec![false; h.num_clients()]);
        assert!(matches!(
            cfg.try_validate(&h).unwrap_err(),
            ConfigError::MaliciousMaskLengthMismatch {
                got: 64,
                expected: 1_000
            }
        ));
        // ...a population-sized mask is right.
        cfg.malicious_override = Some(vec![false; 1_000]);
        assert_eq!(cfg.try_validate(&h), Ok(()));
    }

    #[test]
    fn streaming_aggregator_params_are_range_checked() {
        let mut cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        let h = cfg.topology.build(0);
        for bad in [
            AggregatorKind::StreamingMedian { exact_threshold: 0 },
            AggregatorKind::StreamingTrimmedMean {
                ratio: 0.5,
                exact_threshold: 256,
            },
            AggregatorKind::StreamingTrimmedMean {
                ratio: 0.2,
                exact_threshold: 0,
            },
            AggregatorKind::SampledKrum { f: 1, m: 0 },
        ] {
            cfg.levels[2] = LevelAgg::Bra(bad);
            assert!(matches!(
                cfg.try_validate(&h).unwrap_err(),
                ConfigError::AggregatorOutOfRange { level: 2, .. }
            ));
        }
        cfg.levels[2] = LevelAgg::Bra(AggregatorKind::StreamingTrimmedMean {
            ratio: 0.2,
            exact_threshold: 256,
        });
        assert_eq!(cfg.try_validate(&h), Ok(()));
    }

    #[test]
    fn strict_guarantees_caps_sampled_krum_at_its_bucket_budget() {
        // Clusters of 5 satisfy n >= 2f + 3 for f = 1, but SampledKrum
        // with m = 4 buckets only ever feeds Krum 4 inputs — strict mode
        // must judge the guarantee at min(cluster, m).
        let mut cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        cfg.topology = TopologyCfg::Ecsm {
            total_levels: 3,
            m: 5,
            n_top: 5,
        };
        cfg.levels[2] = LevelAgg::Bra(AggregatorKind::SampledKrum { f: 1, m: 4 });
        cfg.strict_guarantees = true;
        let h = cfg.topology.build(0);
        assert!(matches!(
            cfg.try_validate(&h).unwrap_err(),
            ConfigError::KrumUnsound { f: 1, n_min: 4, .. }
        ));
        cfg.levels[2] = LevelAgg::Bra(AggregatorKind::SampledKrum { f: 1, m: 5 });
        assert_eq!(cfg.try_validate(&h), Ok(()));
    }

    #[test]
    fn adaptive_and_suspicion_params_are_range_checked() {
        let mut cfg = HflConfig::paper_iid(
            AttackCfg::Adaptive {
                attack: AdaptiveAttack::alie_default(),
                proportion: 0.25,
                placement: Placement::Prefix,
            },
            0,
        );
        let h = cfg.topology.build(0);
        assert_eq!(cfg.try_validate(&h), Ok(()));

        cfg.attack = AttackCfg::Adaptive {
            attack: AdaptiveAttack::Alie {
                z_init: 2.0,
                z_max: 1.0, // max below init
            },
            proportion: 0.25,
            placement: Placement::Prefix,
        };
        assert!(matches!(
            cfg.try_validate(&h),
            Err(ConfigError::AdaptiveAttackOutOfRange { .. })
        ));

        cfg.attack = AttackCfg::None;
        cfg.suspicion = Some(SuspicionConfig {
            decay: 1.5,
            ..SuspicionConfig::default()
        });
        assert!(matches!(
            cfg.try_validate(&h),
            Err(ConfigError::SuspicionOutOfRange { what: "decay", .. })
        ));
        cfg.suspicion = Some(SuspicionConfig::default());
        assert_eq!(cfg.try_validate(&h), Ok(()));

        cfg.protocol_attack = Some(ProtocolAttack::Equivocate { flip_scale: 0.0 });
        assert!(matches!(
            cfg.try_validate(&h),
            Err(ConfigError::ProtocolAttackOutOfRange { .. })
        ));
        cfg.protocol_attack = Some(ProtocolAttack::Withhold);
        assert_eq!(cfg.try_validate(&h), Ok(()));
    }

    #[test]
    fn centered_clip_is_reachable_and_range_checked() {
        let mut cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        let h = cfg.topology.build(0);
        cfg.levels[1] = LevelAgg::Bra(AggregatorKind::CenteredClip { tau: 1.0, iters: 3 });
        cfg.levels[2] = LevelAgg::Bra(AggregatorKind::CenteredClip { tau: 1.0, iters: 3 });
        assert_eq!(cfg.try_validate(&h), Ok(()));

        cfg.levels[1] = LevelAgg::Bra(AggregatorKind::CenteredClip { tau: 0.0, iters: 3 });
        let err = cfg.try_validate(&h).unwrap_err();
        assert!(
            matches!(err, ConfigError::AggregatorOutOfRange { level: 1, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("centered-clip tau"), "{err}");

        cfg.levels[1] = LevelAgg::Bra(AggregatorKind::CenteredClip { tau: 1.0, iters: 0 });
        let err = cfg.try_validate(&h).unwrap_err();
        assert!(err.to_string().contains("centered-clip iters"), "{err}");
    }

    #[test]
    fn pre_aggregation_is_validated_single_layer() {
        let mut cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        let h = cfg.topology.build(0);
        cfg.levels[1] = LevelAgg::Bra(AggregatorKind::Bucketing {
            s: 2,
            inner: Box::new(AggregatorKind::Median),
        });
        cfg.levels[2] = LevelAgg::Bra(AggregatorKind::Nnm {
            k: 2,
            inner: Box::new(AggregatorKind::Krum { f: 1 }),
        });
        assert_eq!(cfg.try_validate(&h), Ok(()));

        cfg.levels[1] = LevelAgg::Bra(AggregatorKind::Bucketing {
            s: 0,
            inner: Box::new(AggregatorKind::Median),
        });
        assert!(matches!(
            cfg.try_validate(&h),
            Err(ConfigError::AggregatorOutOfRange { level: 1, .. })
        ));

        cfg.levels[1] = LevelAgg::Bra(AggregatorKind::Nnm {
            k: 2,
            inner: Box::new(AggregatorKind::Bucketing {
                s: 2,
                inner: Box::new(AggregatorKind::Median),
            }),
        });
        let err = cfg.try_validate(&h).unwrap_err();
        assert!(matches!(
            err,
            ConfigError::NestedPreAggregation { level: 1 }
        ));
        assert!(err.to_string().contains("single-layer"), "{err}");
    }

    #[test]
    fn dirichlet_and_heterogeneity_are_range_checked() {
        let mut cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        let h = cfg.topology.build(0);
        cfg.distribution = DataDistribution::Dirichlet { alpha: 0.3 };
        assert_eq!(cfg.try_validate(&h), Ok(()));
        cfg.distribution = DataDistribution::Dirichlet { alpha: 0.0 };
        assert!(matches!(
            cfg.try_validate(&h),
            Err(ConfigError::DirichletAlphaOutOfRange { .. })
        ));
        cfg.distribution = DataDistribution::Iid;

        cfg.heterogeneity = Some(HeterogeneityCfg::mixed_devices());
        assert_eq!(cfg.try_validate(&h), Ok(()));
        cfg.heterogeneity = Some(HeterogeneityCfg {
            compute_spread: 0.5,
            bandwidth_spread: 2.0,
        });
        let err = cfg.try_validate(&h).unwrap_err();
        assert!(
            matches!(
                err,
                ConfigError::HeterogeneityOutOfRange {
                    what: "compute_spread",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn static_model_attack_params_are_range_checked() {
        let mut cfg = HflConfig::paper_iid(
            AttackCfg::Model {
                attack: ModelAttack::Scaling { factor: -1.5 },
                proportion: 0.25,
                placement: Placement::Prefix,
            },
            0,
        );
        let h = cfg.topology.build(0);
        assert_eq!(cfg.try_validate(&h), Ok(()));
        cfg.attack = AttackCfg::Model {
            attack: ModelAttack::Scaling { factor: 0.0 },
            proportion: 0.25,
            placement: Placement::Prefix,
        };
        let err = cfg.try_validate(&h).unwrap_err();
        assert!(matches!(err, ConfigError::ModelAttackOutOfRange { .. }));
        assert!(err.to_string().contains("scaling factor"), "{err}");
        // The parameterless AGR attacks always validate.
        for attack in [ModelAttack::MinMax, ModelAttack::MinSum] {
            cfg.attack = AttackCfg::Model {
                attack,
                proportion: 0.25,
                placement: Placement::Prefix,
            };
            assert_eq!(cfg.try_validate(&h), Ok(()));
        }
    }

    #[test]
    fn faults_compose_with_arms_race() {
        let mut cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        let h = cfg.topology.build(0);
        assert!(!cfg.arms_race());
        cfg.faults = Some(hfl_faults::FaultPlan::new().crash_stop(5, 3));
        cfg.suspicion = Some(SuspicionConfig::default());
        assert!(cfg.arms_race());
        assert_eq!(cfg.try_validate(&h), Ok(()));
        cfg.protocol_attack = Some(ProtocolAttack::Withhold);
        assert_eq!(cfg.try_validate(&h), Ok(()));
    }

    #[test]
    fn try_validate_checks_fault_plans() {
        let mut cfg = HflConfig::paper_iid(AttackCfg::None, 0);
        let h = cfg.topology.build(0);
        cfg.faults = Some(hfl_faults::FaultPlan::new().crash_stop(5, 3));
        assert_eq!(cfg.try_validate(&h), Ok(()));
        // Node 999 doesn't exist in the 64-client paper topology.
        cfg.faults = Some(hfl_faults::FaultPlan::new().crash_stop(5, 999));
        let err = cfg.try_validate(&h).unwrap_err();
        assert!(matches!(err, ConfigError::Faults(_)));
        assert!(err.to_string().contains("node 999"), "{err}");
    }
}
