//! The four Byzantine-setting combinations of Table III, with the
//! applicability guidance of Table IV.

use serde::{Deserialize, Serialize};

use hfl_consensus::ConsensusKind;
use hfl_robust::AggregatorKind;

use crate::config::LevelAgg;

/// Table III: which family (BRA / CBA) runs at the partial- and
/// global-aggregation phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheme {
    /// BRA partials + consensus global — "suitable for FL with mass
    /// devices" (the paper's evaluated configuration).
    Scheme1,
    /// Consensus partials + BRA global — small, sensitive deployments.
    Scheme2,
    /// BRA everywhere — fastest, intermediate robustness.
    Scheme3,
    /// Consensus everywhere — highest robustness, highest cost.
    Scheme4,
}

impl Scheme {
    /// All four schemes, for sweeps.
    pub const ALL: [Scheme; 4] = [
        Scheme::Scheme1,
        Scheme::Scheme2,
        Scheme::Scheme3,
        Scheme::Scheme4,
    ];

    /// Builds the per-level aggregation vector for a hierarchy of
    /// `total_levels` levels, using `bra` for the Byzantine-robust slots
    /// and `cba` for the consensus slots.
    pub fn level_aggs(
        &self,
        total_levels: usize,
        bra: AggregatorKind,
        cba: ConsensusKind,
    ) -> Vec<LevelAgg> {
        assert!(total_levels >= 2, "need at least top + bottom levels");
        let (partial, global) = match self {
            Scheme::Scheme1 => (LevelAgg::Bra(bra), LevelAgg::Cba(cba)),
            Scheme::Scheme2 => (LevelAgg::Cba(cba), LevelAgg::Bra(bra)),
            Scheme::Scheme3 => (LevelAgg::Bra(bra.clone()), LevelAgg::Bra(bra)),
            Scheme::Scheme4 => (LevelAgg::Cba(cba.clone()), LevelAgg::Cba(cba)),
        };
        let mut out = vec![global];
        out.extend(std::iter::repeat_n(partial, total_levels - 1));
        out
    }

    /// Table IV's qualitative robustness ranking (higher = more robust).
    pub fn robustness_rank(&self) -> u8 {
        match self {
            Scheme::Scheme3 => 1,
            Scheme::Scheme1 | Scheme::Scheme2 => 2,
            Scheme::Scheme4 => 3,
        }
    }

    /// Table IV's qualitative communication-cost ranking (higher = more
    /// expensive).
    pub fn cost_rank(&self) -> u8 {
        match self {
            Scheme::Scheme3 => 1,
            Scheme::Scheme1 | Scheme::Scheme2 => 2,
            Scheme::Scheme4 => 3,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Scheme1 => "scheme-1 (BRA partial / CBA global)",
            Scheme::Scheme2 => "scheme-2 (CBA partial / BRA global)",
            Scheme::Scheme3 => "scheme-3 (BRA everywhere)",
            Scheme::Scheme4 => "scheme-4 (CBA everywhere)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bra() -> AggregatorKind {
        AggregatorKind::MultiKrum { f: 1, m: 3 }
    }

    fn cba() -> ConsensusKind {
        ConsensusKind::VoteMajority
    }

    #[test]
    fn scheme1_matches_paper_evaluation() {
        let aggs = Scheme::Scheme1.level_aggs(3, bra(), cba());
        assert_eq!(aggs.len(), 3);
        assert!(matches!(aggs[0], LevelAgg::Cba(_)));
        assert!(matches!(aggs[1], LevelAgg::Bra(_)));
        assert!(matches!(aggs[2], LevelAgg::Bra(_)));
    }

    #[test]
    fn scheme2_swaps_phases() {
        let aggs = Scheme::Scheme2.level_aggs(3, bra(), cba());
        assert!(matches!(aggs[0], LevelAgg::Bra(_)));
        assert!(matches!(aggs[1], LevelAgg::Cba(_)));
    }

    #[test]
    fn scheme3_is_bra_everywhere() {
        let aggs = Scheme::Scheme3.level_aggs(4, bra(), cba());
        assert!(aggs.iter().all(|a| matches!(a, LevelAgg::Bra(_))));
    }

    #[test]
    fn scheme4_is_cba_everywhere() {
        let aggs = Scheme::Scheme4.level_aggs(4, bra(), cba());
        assert!(aggs.iter().all(|a| matches!(a, LevelAgg::Cba(_))));
    }

    #[test]
    fn table_iv_rankings() {
        // Scheme 4 most robust and most expensive; Scheme 3 cheapest and
        // least robust.
        assert!(Scheme::Scheme4.robustness_rank() > Scheme::Scheme1.robustness_rank());
        assert!(Scheme::Scheme1.robustness_rank() > Scheme::Scheme3.robustness_rank());
        assert!(Scheme::Scheme4.cost_rank() > Scheme::Scheme3.cost_rank());
    }
}
