//! The unified run entry point: one options builder in front of both
//! drivers, replacing the old `run_abd_hfl`/`run_abd_hfl_with` and
//! `run_pipeline`/`run_pipeline_with` function pairs (which remain as
//! thin deprecated shims).
//!
//! ```no_run
//! use abd_hfl_core::config::{AttackCfg, HflConfig};
//! use abd_hfl_core::run::{run, RunOptions};
//! use hfl_telemetry::Telemetry;
//!
//! let cfg = HflConfig::quick(AttackCfg::None, 42);
//! // The common case: synchronous driver, no telemetry.
//! let result = run(&cfg);
//!
//! // Instrumented: same driver, recording events and a manifest.
//! let (telem, _rec) = Telemetry::recording();
//! let out = RunOptions::new().telemetry(&telem).run(&cfg);
//! assert_eq!(out.manifest().final_accuracy, result.final_accuracy);
//! ```

use hfl_snapshot::EngineSnapshot;
use hfl_telemetry::{RunManifest, Telemetry};

use crate::config::{ConfigError, HflConfig};
use crate::pipeline::{PipelineConfig, PipelineResult};
use crate::runner::{
    resume_prepared_with, run_prepared_with, Experiment, InstrumentedRun, ResumeError, RunResult,
};

/// Which driver executes the run.
#[derive(Clone, Debug, Default)]
pub enum Driver {
    /// The synchronous-round reference driver ([`crate::runner`]) —
    /// the paper's own evaluation mode, and the only driver with the
    /// full fault/defense/adversary layer stack.
    #[default]
    Sync,
    /// The asynchronous pipeline driver ([`crate::pipeline`]) under
    /// this timing model — measures the efficiency indicator ν;
    /// arms-race configs degrade to static attacks there.
    Pipeline(PipelineConfig),
}

/// Options for one training run: driver choice plus optional telemetry.
#[derive(Clone, Default)]
pub struct RunOptions<'r> {
    driver: Driver,
    telem: Option<&'r Telemetry>,
}

/// What a run produced: always a [`RunManifest`], plus the
/// driver-specific outcome shape.
#[derive(Clone, Debug)]
pub enum RunOutput {
    /// Outcome of the synchronous driver.
    Sync(InstrumentedRun),
    /// Outcome of the pipeline driver.
    Pipeline {
        /// Timing decomposition and final accuracy.
        result: PipelineResult,
        /// The run's manifest (label `"pipeline"`).
        manifest: RunManifest,
    },
}

impl RunOutput {
    /// The run's manifest, whichever driver produced it.
    pub fn manifest(&self) -> &RunManifest {
        match self {
            RunOutput::Sync(run) => &run.manifest,
            RunOutput::Pipeline { manifest, .. } => manifest,
        }
    }

    /// Test accuracy of the final global model.
    pub fn final_accuracy(&self) -> f64 {
        match self {
            RunOutput::Sync(run) => run.result.final_accuracy,
            RunOutput::Pipeline { result, .. } => result.final_accuracy,
        }
    }

    /// The synchronous outcome.
    ///
    /// # Panics
    /// When the run used [`Driver::Pipeline`].
    pub fn into_sync(self) -> InstrumentedRun {
        match self {
            RunOutput::Sync(run) => run,
            RunOutput::Pipeline { .. } => {
                panic!("run used the pipeline driver; use into_pipeline()")
            }
        }
    }

    /// The pipeline outcome.
    ///
    /// # Panics
    /// When the run used [`Driver::Sync`].
    pub fn into_pipeline(self) -> (PipelineResult, RunManifest) {
        match self {
            RunOutput::Pipeline { result, manifest } => (result, manifest),
            RunOutput::Sync(_) => {
                panic!("run used the synchronous driver; use into_sync()")
            }
        }
    }
}

impl<'r> RunOptions<'r> {
    /// Synchronous driver, telemetry disabled.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pipeline driver under `pcfg`, telemetry disabled.
    #[must_use]
    pub fn pipeline(pcfg: &PipelineConfig) -> Self {
        Self {
            driver: Driver::Pipeline(pcfg.clone()),
            telem: None,
        }
    }

    /// Selects the driver.
    #[must_use]
    pub fn driver(mut self, driver: Driver) -> Self {
        self.driver = driver;
        self
    }

    /// Attaches a telemetry bundle: structured events, `hfl_*`/`sim_*`
    /// metrics, and a fuller manifest.
    #[must_use]
    pub fn telemetry(mut self, telem: &'r Telemetry) -> Self {
        self.telem = Some(telem);
        self
    }

    /// Executes the run.
    ///
    /// # Panics
    /// On an inconsistent config; [`RunOptions::try_run`] reports
    /// instead.
    pub fn run(&self, cfg: &HflConfig) -> RunOutput {
        match self.try_run(cfg) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`RunOptions::run`] returning the config inconsistency (if any)
    /// instead of panicking.
    pub fn try_run(&self, cfg: &HflConfig) -> Result<RunOutput, ConfigError> {
        let disabled = Telemetry::disabled();
        let telem = self.telem.unwrap_or(&disabled);
        match &self.driver {
            Driver::Sync => {
                let exp = Experiment::try_prepare(cfg)?;
                Ok(RunOutput::Sync(run_prepared_with(&exp, telem)))
            }
            Driver::Pipeline(pcfg) => {
                // Surface config errors the same way the sync driver
                // does; preparation inside the pipeline then re-checks.
                cfg.try_validate(&cfg.topology.build(cfg.seed))?;
                let (result, manifest) = crate::pipeline::pipeline_run(cfg, pcfg, telem);
                Ok(RunOutput::Pipeline { result, manifest })
            }
        }
    }
}

/// The common case in one call: synchronous driver, telemetry disabled.
///
/// # Panics
/// On an inconsistent config; see [`try_run`].
pub fn run(cfg: &HflConfig) -> RunResult {
    RunOptions::new().run(cfg).into_sync().result
}

/// [`run`] returning the config inconsistency (if any) instead of
/// panicking.
pub fn try_run(cfg: &HflConfig) -> Result<RunResult, ConfigError> {
    Ok(RunOptions::new().try_run(cfg)?.into_sync().result)
}

/// Continues a checkpointed run through rounds
/// `snapshot.round..cfg.rounds` on the synchronous driver,
/// byte-identically to straight-through execution of `cfg`. The config
/// must be a horizon-extension of the one the snapshot was captured
/// under (same [`crate::runner::base_config_hash`]; only `rounds` and
/// `eval_every` may differ).
pub fn resume(snapshot: &EngineSnapshot, cfg: &HflConfig) -> Result<RunResult, ResumeError> {
    Ok(resume_with(snapshot, cfg, &Telemetry::disabled())?.result)
}

/// [`resume`] with telemetry: the snapshot's metric accumulators are
/// seeded into the (fresh) bundle's registry, so the final manifest
/// matches a straight-through instrumented run.
pub fn resume_with(
    snapshot: &EngineSnapshot,
    cfg: &HflConfig,
    telem: &Telemetry,
) -> Result<InstrumentedRun, ResumeError> {
    let exp = Experiment::try_prepare(cfg).map_err(|e| ResumeError::ConfigMismatch {
        detail: e.to_string(),
    })?;
    resume_prepared_with(&exp, telem, snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttackCfg;

    fn tiny(seed: u64) -> HflConfig {
        let mut cfg = HflConfig::quick(AttackCfg::None, seed);
        cfg.rounds = 3;
        cfg.eval_every = 3;
        cfg
    }

    #[test]
    fn unified_sync_matches_legacy_entry_point() {
        let cfg = tiny(31);
        let unified = run(&cfg);
        #[allow(deprecated)]
        let legacy = crate::runner::run_abd_hfl(&cfg);
        assert_eq!(unified.final_accuracy, legacy.final_accuracy);
        assert_eq!(unified.messages, legacy.messages);
        assert_eq!(unified.bytes, legacy.bytes);
    }

    #[test]
    fn unified_pipeline_matches_legacy_entry_point() {
        let cfg = tiny(32);
        let pcfg = PipelineConfig {
            rounds: 2,
            ..PipelineConfig::default()
        };
        let out = RunOptions::pipeline(&pcfg).run(&cfg);
        assert!(matches!(out, RunOutput::Pipeline { .. }));
        #[allow(deprecated)]
        let legacy = crate::pipeline::run_pipeline(&cfg, &pcfg);
        let (result, manifest) = out.into_pipeline();
        assert_eq!(result.final_accuracy, legacy.final_accuracy);
        assert_eq!(result.messages, legacy.messages);
        assert_eq!(manifest.label, "pipeline");
    }

    #[test]
    fn try_run_reports_bad_configs() {
        let mut cfg = tiny(33);
        cfg.rounds = 0;
        assert_eq!(try_run(&cfg).unwrap_err(), ConfigError::ZeroRounds);
        let pcfg = PipelineConfig {
            rounds: 1,
            ..PipelineConfig::default()
        };
        let err = RunOptions::pipeline(&pcfg).try_run(&cfg).unwrap_err();
        assert_eq!(err, ConfigError::ZeroRounds);
    }

    #[test]
    fn instrumented_output_carries_a_manifest() {
        let cfg = tiny(34);
        let (telem, rec) = hfl_telemetry::Telemetry::recording();
        let out = RunOptions::new().telemetry(&telem).run(&cfg);
        assert_eq!(out.manifest().rounds.len(), 3);
        assert!(out.final_accuracy() > 0.0);
        assert!(!rec.events().is_empty());
    }
}
