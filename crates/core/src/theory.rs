//! The Byzantine-tolerance theory of ABD-HFL (paper §IV-B and Appendices
//! B–C), as executable, unit- and property-tested functions.
//!
//! Level indices follow the paper: `ℓ = 0` is the top, larger `ℓ` is
//! further down; in an `L+1`-level structure the bottom is `ℓ = L`.

/// Theorem 1 — in a *p*-ratio two-type complete *m*-ary tree of depth L,
/// level `ℓ` (`0 ≤ ℓ < L`... the root being level 0) contains `(p·m)^ℓ`
/// type-I nodes.
pub fn theorem1_type1_count(p: f64, m: usize, level: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a proportion");
    (p * m as f64).powi(level as i32)
}

/// Theorem 1 (second clause) — the *proportion* of type-I nodes at level
/// `ℓ` is `p^ℓ`.
pub fn theorem1_type1_ratio(p: f64, level: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a proportion");
    p.powi(level as i32)
}

/// Corollary 1 — a *p*-ratio ABD-HFL with `n_top` top nodes has
/// `n_top · m^ℓ` nodes at level `ℓ`.
pub fn corollary1_level_size(n_top: usize, m: usize, level: usize) -> usize {
    n_top * m.pow(level as u32)
}

/// Theorem 2 (count form) — the maximum number of Byzantine nodes
/// tolerated at level `ℓ` of a γ₁-γ₂ structure:
/// `N_t·m^ℓ − (1−γ₁)·N_t·[(1−γ₂)·m]^ℓ`.
pub fn theorem2_max_byzantine_count(
    n_top: usize,
    m: usize,
    gamma1: f64,
    gamma2: f64,
    level: usize,
) -> f64 {
    check_gamma(gamma1);
    check_gamma(gamma2);
    let nt = n_top as f64;
    let mf = m as f64;
    nt * mf.powi(level as i32)
        - (1.0 - gamma1) * nt * ((1.0 - gamma2) * mf).powi(level as i32)
}

/// Theorem 2 (proportion form) — the maximum tolerated Byzantine
/// *proportion* at level `ℓ`: `1 − (1−γ₁)(1−γ₂)^ℓ`.
///
/// For the paper's evaluation (γ₁ = γ₂ = 25 %, bottom ℓ = 2) this is
/// 57.8125 %.
pub fn theorem2_max_byzantine_ratio(gamma1: f64, gamma2: f64, level: usize) -> f64 {
    check_gamma(gamma1);
    check_gamma(gamma2);
    1.0 - (1.0 - gamma1) * (1.0 - gamma2).powi(level as i32)
}

/// Corollary 2 — a lower level tolerates a strictly greater Byzantine
/// proportion than its upper level (for γ₂ ∈ (0,1)). Returns the pair
/// `(upper, lower)` for inspection; asserts the monotonicity.
pub fn corollary2_monotone(gamma1: f64, gamma2: f64, level: usize) -> (f64, f64) {
    let upper = theorem2_max_byzantine_ratio(gamma1, gamma2, level);
    let lower = theorem2_max_byzantine_ratio(gamma1, gamma2, level + 1);
    if gamma2 > 0.0 && gamma2 < 1.0 && gamma1 < 1.0 {
        assert!(lower > upper, "Corollary 2 violated: {lower} <= {upper}");
    }
    (upper, lower)
}

/// Corollary 3 — with the bottom-level client count fixed, a structure
/// with more levels tolerates a greater Byzantine proportion at the
/// bottom. Returns the bottom-level tolerance of an `levels`-level
/// structure (`levels ≥ 2`), i.e. Theorem 2 at `ℓ = levels − 1`.
pub fn corollary3_bottom_tolerance(gamma1: f64, gamma2: f64, levels: usize) -> f64 {
    assert!(levels >= 2, "need at least top + bottom");
    theorem2_max_byzantine_ratio(gamma1, gamma2, levels - 1)
}

/// Appendix C, Definition 7 — the *relative reliable number* ψℓ: the
/// fraction of a level's nodes that live in honest clusters.
///
/// `cluster_sizes[i]` and `honest_cluster[i]` describe the level's
/// clusters.
pub fn relative_reliable_number(cluster_sizes: &[usize], honest_cluster: &[bool]) -> f64 {
    assert_eq!(cluster_sizes.len(), honest_cluster.len());
    assert!(!cluster_sizes.is_empty(), "level with no clusters");
    let total: usize = cluster_sizes.iter().sum();
    assert!(total > 0, "level with no nodes");
    let honest: usize = cluster_sizes
        .iter()
        .zip(honest_cluster)
        .filter(|(_, h)| **h)
        .map(|(s, _)| *s)
        .sum();
    honest as f64 / total as f64
}

/// Theorem 3 (ACSM) — the maximum tolerated Byzantine proportion at a
/// level with relative reliable number ψℓ is `1 − (1−γ₂)·ψℓ` (at the top
/// level, `1 − ψ₀`).
pub fn theorem3_max_byzantine_ratio(gamma2: f64, psi: f64, is_top: bool) -> f64 {
    check_gamma(gamma2);
    assert!((0.0..=1.0).contains(&psi), "psi must be a proportion");
    if is_top {
        1.0 - psi
    } else {
        1.0 - (1.0 - gamma2) * psi
    }
}

/// The paper's §V-A worked example: γ₁ = γ₂ = 25 %, 3 levels (bottom
/// ℓ = 2) → 57.8125 %.
pub fn paper_tolerance_bound() -> f64 {
    theorem2_max_byzantine_ratio(0.25, 0.25, 2)
}

/// Definition 4 adversary placement: builds the bottom-level Byzantine
/// mask of a *p-ratio ABD-HFL structure*.
///
/// * `top_byzantine` top nodes root fully-Byzantine subtrees (the last
///   ones, so device 0's subtree stays honest);
/// * inside every honest subtree, the **last** `per_cluster_byzantine`
///   members of each cluster are type-II (Byzantine), and a type-II
///   node's entire subtree is Byzantine — exactly the two-type tree of
///   Definition 2 (the leader, `members[0]`, inherits its parent's
///   honesty, keeping the structure consistent with leaders ascending).
///
/// The resulting bottom-level Byzantine proportion realizes the Theorem 2
/// maximum for `γ₁ = top_byzantine/N_t`, `γ₂ = per_cluster_byzantine/m`.
///
/// # Panics
/// If counts exceed the respective cluster sizes.
pub fn definition4_placement(
    h: &hfl_simnet::Hierarchy,
    top_byzantine: usize,
    per_cluster_byzantine: usize,
) -> Vec<bool> {
    let top = &h.level(0).clusters[0];
    assert!(
        top_byzantine <= top.len(),
        "more Byzantine top nodes than top nodes"
    );
    let bottom = h.bottom_level();
    // byz[level][device present at that level] — track per level because
    // type is a property of the tree position; we propagate down.
    let mut byz_at: Vec<std::collections::HashSet<usize>> =
        vec![std::collections::HashSet::new(); h.num_levels()];
    for &dev in top.members.iter().rev().take(top_byzantine) {
        byz_at[0].insert(dev);
    }
    for l in 0..bottom {
        let byz_parents = byz_at[l].clone();
        for cluster in &h.level(l + 1).clusters {
            assert!(
                per_cluster_byzantine < cluster.len(),
                "per-cluster Byzantine count must leave the leader honest"
            );
            let parent = cluster.leader();
            if byz_parents.contains(&parent) {
                // Type-II parent: all children type-II.
                for &m in &cluster.members {
                    byz_at[l + 1].insert(m);
                }
            } else {
                // Type-I parent: last `per_cluster_byzantine` children
                // are type-II.
                for &m in cluster.members.iter().rev().take(per_cluster_byzantine) {
                    byz_at[l + 1].insert(m);
                }
            }
        }
    }
    (0..h.num_clients())
        .map(|c| byz_at[bottom].contains(&c))
        .collect()
}

fn check_gamma(g: f64) {
    assert!((0.0..=1.0).contains(&g), "gamma must be a proportion");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bound_is_57_8125_percent() {
        assert!((paper_tolerance_bound() - 0.578125).abs() < 1e-12);
    }

    #[test]
    fn theorem1_base_cases() {
        // Root level: exactly one type-I node, ratio 1.
        assert_eq!(theorem1_type1_count(0.75, 4, 0), 1.0);
        assert_eq!(theorem1_type1_ratio(0.75, 0), 1.0);
        // First level: p·m type-I of m, ratio p.
        assert_eq!(theorem1_type1_count(0.75, 4, 1), 3.0);
        assert_eq!(theorem1_type1_ratio(0.75, 1), 0.75);
    }

    #[test]
    fn theorem1_inductive_step() {
        // count(ℓ+1) = count(ℓ) · p·m for several (p, m, ℓ).
        for (p, m) in [(0.5, 2usize), (0.75, 4), (1.0, 3)] {
            for l in 0..5 {
                let a = theorem1_type1_count(p, m, l);
                let b = theorem1_type1_count(p, m, l + 1);
                assert!((b - a * p * m as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn corollary1_matches_paper_topology() {
        assert_eq!(corollary1_level_size(4, 4, 0), 4);
        assert_eq!(corollary1_level_size(4, 4, 1), 16);
        assert_eq!(corollary1_level_size(4, 4, 2), 64);
    }

    #[test]
    fn theorem2_count_and_ratio_agree() {
        // count / level_size == ratio.
        for level in 0..4 {
            let count = theorem2_max_byzantine_count(4, 4, 0.25, 0.25, level);
            let size = corollary1_level_size(4, 4, level) as f64;
            let ratio = theorem2_max_byzantine_ratio(0.25, 0.25, level);
            assert!((count / size - ratio).abs() < 1e-12, "level {level}");
        }
    }

    #[test]
    fn theorem2_top_level_is_gamma1() {
        assert!((theorem2_max_byzantine_ratio(0.3, 0.9, 0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn theorem2_equal_gammas_collapse() {
        // With γ1 = γ2 = γ the ratio is 1 − (1−γ)^(ℓ+1).
        let g: f64 = 0.2;
        for l in 0..4 {
            let want = 1.0 - (1.0 - g).powi(l as i32 + 1);
            assert!((theorem2_max_byzantine_ratio(g, g, l) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn corollary2_lower_levels_tolerate_more() {
        for l in 0..5 {
            let (u, lo) = corollary2_monotone(0.25, 0.25, l);
            assert!(lo > u);
        }
    }

    #[test]
    fn corollary3_more_levels_tolerate_more() {
        let t3 = corollary3_bottom_tolerance(0.25, 0.25, 3);
        let t4 = corollary3_bottom_tolerance(0.25, 0.25, 4);
        let t5 = corollary3_bottom_tolerance(0.25, 0.25, 5);
        assert!(t4 > t3 && t5 > t4);
        // And with enough levels the bound approaches 1.
        assert!(corollary3_bottom_tolerance(0.25, 0.25, 40) > 0.99);
    }

    #[test]
    fn psi_counts_honest_cluster_mass() {
        let psi = relative_reliable_number(&[4, 4, 8], &[true, false, true]);
        assert!((psi - 12.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn theorem3_reduces_to_theorem2_in_ecsm() {
        // In ECSM with all clusters honest at minimum honesty, ψℓ of the
        // level equals (1−γ1)(1−γ2)^(ℓ−1) mass... sanity-check the simple
        // identity at the top: P0 = 1 − ψ0.
        assert!((theorem3_max_byzantine_ratio(0.25, 0.75, true) - 0.25).abs() < 1e-12);
        // Non-top: P = 1 − (1−γ2)·ψ.
        let p = theorem3_max_byzantine_ratio(0.25, 0.8, false);
        assert!((p - (1.0 - 0.75 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn theorem3_inverse_monotone_in_psi() {
        // Larger reliable mass → smaller tolerated Byzantine share.
        let hi = theorem3_max_byzantine_ratio(0.25, 0.9, false);
        let lo = theorem3_max_byzantine_ratio(0.25, 0.5, false);
        assert!(hi < lo);
    }

    #[test]
    #[should_panic(expected = "gamma must be a proportion")]
    fn bad_gamma_panics() {
        theorem2_max_byzantine_ratio(1.5, 0.2, 1);
    }

    #[test]
    fn definition4_realizes_theorem2_proportion() {
        // Paper topology: 3 levels, m = 4, Nt = 4, γ1 = γ2 = 25 %.
        let h = hfl_simnet::Hierarchy::ecsm(3, 4, 4);
        let mask = definition4_placement(&h, 1, 1);
        let bad = mask.iter().filter(|b| **b).count();
        // Theorem 2 at the bottom: 57.8125 % of 64 = 37 clients.
        assert_eq!(bad, 37, "bound placement must saturate Theorem 2");
        let ratio = bad as f64 / 64.0;
        assert!((ratio - paper_tolerance_bound()).abs() < 0.01);
    }

    #[test]
    fn definition4_every_honest_cluster_within_gamma2() {
        let h = hfl_simnet::Hierarchy::ecsm(3, 4, 4);
        let mask = definition4_placement(&h, 1, 1);
        // In every bottom cluster whose leader chain is honest, at most 1
        // member (25 %) is Byzantine.
        for cluster in &h.level(2).clusters {
            let bad = cluster.members.iter().filter(|m| mask[**m]).count();
            assert!(bad == cluster.len() || bad <= 1, "cluster had {bad} bad");
        }
    }

    #[test]
    fn definition4_zero_byzantine_is_all_honest() {
        let h = hfl_simnet::Hierarchy::ecsm(3, 4, 4);
        let mask = definition4_placement(&h, 0, 0);
        assert!(mask.iter().all(|b| !b));
    }

    #[test]
    fn definition4_deeper_tolerates_more() {
        // Corollary 3 realized: same 64 clients, deeper structure ⇒ a
        // larger at-bound Byzantine count.
        let shallow = hfl_simnet::Hierarchy::ecsm(2, 16, 4);
        let deep = hfl_simnet::Hierarchy::ecsm(3, 4, 4);
        let bad_shallow = definition4_placement(&shallow, 1, 4)
            .iter()
            .filter(|b| **b)
            .count();
        let bad_deep = definition4_placement(&deep, 1, 1)
            .iter()
            .filter(|b| **b)
            .count();
        assert!(bad_deep > bad_shallow, "{bad_deep} <= {bad_shallow}");
    }
}
