//! Vanilla FL: the star-topology baseline the paper compares against —
//! one central server aggregating all clients directly with a single
//! (possibly Byzantine-robust) rule.

use hfl_robust::AggregatorKind;
use hfl_telemetry::{fnv1a_hex, Event, RoundRecord, RunManifest, RunTotals, Telemetry};

use crate::config::HflConfig;
use crate::runner::{Experiment, InstrumentedRun, RunResult};

/// Runs vanilla FL with the same task, clients, attack and training
/// hyper-parameters as `cfg`, but a central server applying `aggregator`
/// to all client updates each round.
///
/// Reuses [`Experiment::prepare`], so the data, poisoning and per-round
/// client updates are *identical* to the ABD-HFL run with the same seed —
/// the comparison isolates the topology.
pub fn run_vanilla(cfg: &HflConfig, aggregator: AggregatorKind) -> RunResult {
    run_vanilla_with(cfg, aggregator, &Telemetry::disabled()).result
}

/// [`run_vanilla`] with telemetry: returns the result together with the
/// run's [`RunManifest`] (label `"vanilla"`), so the baseline reports
/// through the same manifest pipeline as ABD-HFL.
pub fn run_vanilla_with(
    cfg: &HflConfig,
    aggregator: AggregatorKind,
    telem: &Telemetry,
) -> InstrumentedRun {
    let exp = Experiment::prepare(cfg);
    run_vanilla_prepared_with(&exp, aggregator, telem)
}

/// Vanilla run over an already-prepared experiment.
pub fn run_vanilla_prepared(exp: &Experiment, aggregator: AggregatorKind) -> RunResult {
    run_vanilla_prepared_with(exp, aggregator, &Telemetry::disabled()).result
}

/// [`run_vanilla_prepared`] with telemetry.
pub fn run_vanilla_prepared_with(
    exp: &Experiment,
    aggregator: AggregatorKind,
    telem: &Telemetry,
) -> InstrumentedRun {
    let cfg = exp.config();
    let agg = aggregator.build();
    let n = exp.hierarchy.num_clients();
    let mut global = exp.template.params().to_vec();
    let d = global.len();
    let model_bytes = (d * 4) as u64;
    let mut messages = 0u64;
    let mut bytes = 0u64;
    let mut accuracy = Vec::new();
    let mut manifest = RunManifest::new(
        "vanilla",
        cfg.seed,
        fnv1a_hex(format!("{cfg:?}").as_bytes()),
    );
    let messages_c = telem.registry().counter("hfl_messages_total", &[]);
    let bytes_c = telem.registry().counter("hfl_bytes_total", &[]);
    let absent_c = telem.registry().counter("hfl_absent_total", &[]);
    let accuracy_g = telem.registry().gauge("hfl_accuracy", &[]);

    let mut absent_total = 0u64;
    for round in 0..cfg.rounds {
        if telem.enabled() {
            telem.emit(Event::RoundStarted { round });
        }
        let updates = exp.train_round(&global, round);
        // Churn applies identically: absent clients' updates never reach
        // the server.
        let active = exp.active_mask(round);
        let absent = active.iter().filter(|a| !**a).count() as u64;
        absent_total += absent;
        absent_c.inc(absent);
        let refs: Vec<&[f32]> = updates
            .iter()
            .zip(&active)
            .filter(|(_, a)| **a)
            .map(|(u, _)| u.as_slice())
            .collect();
        global = agg.aggregate(&refs, None);
        // n uploads + n downloads through the central server.
        let round_messages = 2 * n as u64;
        let round_bytes = round_messages * model_bytes;
        messages += round_messages;
        bytes += round_bytes;
        messages_c.inc(round_messages);
        bytes_c.inc(round_bytes);
        let mut round_accuracy = None;
        if (round + 1) % cfg.eval_every == 0 || round + 1 == cfg.rounds {
            let a = exp.evaluate(&global);
            accuracy.push((round + 1, a));
            accuracy_g.set(a);
            round_accuracy = Some(a);
            if telem.enabled() {
                telem.emit(Event::Evaluated { round, accuracy: a });
            }
        }
        if telem.enabled() {
            telem.emit(Event::MessagesSent {
                round,
                level: 0,
                count: round_messages,
                bytes: round_bytes,
            });
            telem.emit(Event::RoundFinished {
                round,
                messages: round_messages,
                bytes: round_bytes,
                excluded: 0,
                absent,
            });
        }
        manifest.rounds.push(RoundRecord {
            round: round + 1,
            accuracy: round_accuracy,
            messages: round_messages,
            bytes: round_bytes,
            excluded: 0,
            absent,
        });
    }
    let final_accuracy = accuracy.last().map(|(_, a)| *a).unwrap_or(0.0);
    manifest.totals = RunTotals {
        messages,
        bytes,
        excluded: 0,
        absent: absent_total,
    };
    manifest.final_accuracy = final_accuracy;
    manifest.metrics = telem.registry().snapshot();

    InstrumentedRun {
        result: RunResult {
            accuracy,
            final_accuracy,
            messages,
            bytes,
            excluded_total: 0,
            absent_total,
            faulted_total: 0,
            quarantined_total: 0,
            withheld_total: 0,
        },
        manifest,
    }
}

/// The paper's vanilla aggregation choices: Multi-Krum with an assumed
/// 25 % malicious for IID runs, Median for non-IID.
pub fn paper_vanilla_aggregator(iid: bool, n_clients: usize) -> AggregatorKind {
    if iid {
        let f = n_clients / 4;
        AggregatorKind::MultiKrum {
            f,
            m: n_clients - f,
        }
    } else {
        AggregatorKind::Median
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttackCfg;
    use hfl_attacks::{DataAttack, Placement};

    fn quick(attack: AttackCfg, seed: u64) -> HflConfig {
        let mut cfg = HflConfig::quick(attack, seed);
        cfg.rounds = 25;
        cfg.eval_every = 25;
        cfg
    }

    #[test]
    fn vanilla_learns_when_honest() {
        let cfg = quick(AttackCfg::None, 1);
        let r = run_vanilla(&cfg, paper_vanilla_aggregator(true, 64));
        assert!(r.final_accuracy > 0.75, "got {}", r.final_accuracy);
    }

    #[test]
    fn vanilla_mean_collapses_under_type_i_majority() {
        let attack = AttackCfg::Data {
            attack: DataAttack::type_i(),
            proportion: 0.6,
            placement: Placement::Prefix,
        };
        let cfg = quick(attack, 2);
        let r = run_vanilla(&cfg, AggregatorKind::FedAvg);
        assert!(
            r.final_accuracy < 0.5,
            "plain mean should collapse: {}",
            r.final_accuracy
        );
    }

    #[test]
    fn vanilla_multikrum_breaks_above_its_tolerance() {
        // 50 % malicious > Multi-Krum's assumed 25 % ⇒ vanilla collapses
        // (the paper's headline contrast at 50 %: 10.1 % vs ABD-HFL 89.9 %).
        let attack = AttackCfg::Data {
            attack: DataAttack::type_i(),
            proportion: 0.5,
            placement: Placement::Prefix,
        };
        let cfg = quick(attack, 3);
        let r = run_vanilla(&cfg, paper_vanilla_aggregator(true, 64));
        assert!(
            r.final_accuracy < 0.6,
            "vanilla Multi-Krum should degrade at 50 %: {}",
            r.final_accuracy
        );
    }

    #[test]
    fn paper_aggregator_choices() {
        assert_eq!(
            paper_vanilla_aggregator(true, 64),
            AggregatorKind::MultiKrum { f: 16, m: 48 }
        );
        assert_eq!(paper_vanilla_aggregator(false, 64), AggregatorKind::Median);
    }

    #[test]
    fn message_cost_is_linear_in_clients() {
        let cfg = quick(AttackCfg::None, 4);
        let r = run_vanilla(&cfg, AggregatorKind::FedAvg);
        assert_eq!(r.messages, (cfg.rounds * 2 * 64) as u64);
    }

    #[test]
    fn vanilla_manifest_is_deterministic_and_labelled() {
        let mut cfg = quick(AttackCfg::None, 5);
        cfg.rounds = 3;
        cfg.eval_every = 3;
        let a = run_vanilla_with(&cfg, AggregatorKind::FedAvg, &Telemetry::disabled());
        let b = run_vanilla_with(&cfg, AggregatorKind::FedAvg, &Telemetry::disabled());
        assert_eq!(a.manifest.to_json(), b.manifest.to_json());
        assert_eq!(a.manifest.label, "vanilla");
        assert_eq!(a.manifest.totals.messages, a.result.messages);
        assert_eq!(a.manifest.rounds.len(), 3);
    }
}
