//! Integration tests for the Scheme 1–4 presets and model variants
//! running through the synchronous driver.

use abd_hfl_core::config::{AttackCfg, HflConfig, ModelCfg};
use abd_hfl_core::run::run;
use abd_hfl_core::scheme::Scheme;
use hfl_attacks::{DataAttack, Placement};
use hfl_consensus::ConsensusKind;
use hfl_ml::synth::SynthConfig;
use hfl_robust::AggregatorKind;

fn fast(attack: AttackCfg, seed: u64) -> HflConfig {
    let mut cfg = HflConfig::quick(attack, seed);
    cfg.rounds = 15;
    cfg.eval_every = 15;
    cfg.data = SynthConfig {
        train_samples: 3_200,
        test_samples: 500,
        ..SynthConfig::default()
    };
    cfg
}

#[test]
fn every_scheme_trains_cleanly() {
    for scheme in Scheme::ALL {
        let mut cfg = fast(AttackCfg::None, 21);
        cfg.levels = scheme.level_aggs(
            3,
            AggregatorKind::MultiKrum { f: 1, m: 3 },
            ConsensusKind::VoteMajority,
        );
        let r = run(&cfg);
        assert!(
            r.final_accuracy > 0.6,
            "{} clean run failed: {}",
            scheme.name(),
            r.final_accuracy
        );
    }
}

#[test]
fn scheme1_beats_scheme3_under_heavy_attack() {
    // Table IV: Scheme 3 (BRA everywhere) offers only intermediate
    // robustness; Scheme 1's consensus top rescues the heavy-attack case.
    let attack = AttackCfg::Data {
        attack: DataAttack::type_i(),
        proportion: 0.45,
        placement: Placement::Prefix,
    };
    let run_scheme = |scheme: Scheme| {
        let mut cfg = fast(attack.clone(), 22);
        cfg.levels = scheme.level_aggs(
            3,
            AggregatorKind::MultiKrum { f: 1, m: 3 },
            ConsensusKind::VoteMajority,
        );
        run(&cfg).final_accuracy
    };
    let s1 = run_scheme(Scheme::Scheme1);
    let s3 = run_scheme(Scheme::Scheme3);
    assert!(s1 > s3 + 0.15, "scheme1 {} vs scheme3 {}", s1, s3);
}

#[test]
fn scheme4_pays_more_messages_than_scheme3() {
    let bytes_of = |scheme: Scheme| {
        let mut cfg = fast(AttackCfg::None, 23);
        cfg.rounds = 3;
        cfg.eval_every = 3;
        cfg.levels = scheme.level_aggs(
            3,
            AggregatorKind::MultiKrum { f: 1, m: 3 },
            ConsensusKind::VoteMajority,
        );
        run(&cfg).bytes
    };
    assert!(
        bytes_of(Scheme::Scheme4) > bytes_of(Scheme::Scheme3),
        "Table IV cost ranking violated"
    );
}

#[test]
fn mlp_model_runs_through_the_full_stack() {
    let mut cfg = fast(AttackCfg::None, 24);
    cfg.model = ModelCfg::Mlp { hidden: 16 };
    cfg.sgd.lr = 0.3;
    let r = run(&cfg);
    assert!(r.final_accuracy > 0.5, "MLP run: {}", r.final_accuracy);
}

#[test]
fn mlp_survives_type_i_attack() {
    let attack = AttackCfg::Data {
        attack: DataAttack::type_i(),
        proportion: 0.3,
        placement: Placement::Prefix,
    };
    let mut cfg = fast(attack, 25);
    cfg.rounds = 20;
    cfg.eval_every = 20;
    cfg.model = ModelCfg::Mlp { hidden: 16 };
    cfg.sgd.lr = 0.3;
    let r = run(&cfg);
    assert!(
        r.final_accuracy > 0.5,
        "MLP attacked run: {}",
        r.final_accuracy
    );
}

#[test]
fn stake_vote_top_level_works() {
    let mut cfg = fast(AttackCfg::None, 26);
    cfg.levels[0] = abd_hfl_core::config::LevelAgg::Cba(ConsensusKind::StakeVote {
        stakes: vec![1.0, 2.0, 3.0, 4.0],
    });
    let r = run(&cfg);
    assert!(
        r.final_accuracy > 0.6,
        "stake-vote run: {}",
        r.final_accuracy
    );
}

#[test]
fn autogm_partials_work_under_attack() {
    let attack = AttackCfg::Data {
        attack: DataAttack::type_i(),
        proportion: 0.25,
        placement: Placement::Spread,
    };
    let mut cfg = fast(attack, 27);
    cfg.levels[1] = abd_hfl_core::config::LevelAgg::Bra(AggregatorKind::AutoGm { kappa: 3.0 });
    cfg.levels[2] = abd_hfl_core::config::LevelAgg::Bra(AggregatorKind::AutoGm { kappa: 3.0 });
    let r = run(&cfg);
    assert!(r.final_accuracy > 0.6, "AutoGM run: {}", r.final_accuracy);
}
