//! Integration tests for the asynchronous pipeline driver: trace
//! consistency, topology generality, and agreement with the synchronous
//! reference driver on what is learned.

use abd_hfl_core::config::{AttackCfg, HflConfig, LevelAgg, TopologyCfg};
use abd_hfl_core::pipeline::{PipelineConfig, PipelineResult};
use abd_hfl_core::run::{run as run_abd_hfl, RunOptions};
use hfl_consensus::ConsensusKind;
use hfl_ml::synth::SynthConfig;
use hfl_robust::AggregatorKind;
use hfl_simnet::DelayModel;

fn run_pipeline(cfg: &HflConfig, pcfg: &PipelineConfig) -> PipelineResult {
    RunOptions::pipeline(pcfg).run(cfg).into_pipeline().0
}

fn small_cfg(seed: u64) -> HflConfig {
    let mut cfg = HflConfig::quick(AttackCfg::None, seed);
    cfg.data = SynthConfig {
        train_samples: 3_200,
        test_samples: 500,
        ..SynthConfig::default()
    };
    cfg
}

fn pcfg(rounds: usize) -> PipelineConfig {
    PipelineConfig {
        rounds,
        ..PipelineConfig::default()
    }
}

#[test]
fn every_round_has_complete_timing() {
    let res = run_pipeline(&small_cfg(1), &pcfg(5));
    assert_eq!(res.rounds.len(), 5, "missing round timings");
    for (i, rt) in res.rounds.iter().enumerate() {
        assert_eq!(rt.round, i);
        assert!(rt.sigma > 0.0 && rt.sigma_w >= 0.0);
        assert!(rt.sigma_pg <= rt.sigma + 1e-12);
    }
}

#[test]
fn corrections_are_applied_in_the_pipeline() {
    let res = run_pipeline(&small_cfg(2), &pcfg(5));
    assert!(
        res.corrections_applied > 0,
        "Eq. (1) merge path never executed"
    );
}

#[test]
fn pipeline_works_on_two_level_hierarchy() {
    let mut cfg = small_cfg(3);
    cfg.topology = TopologyCfg::Ecsm {
        total_levels: 2,
        m: 8,
        n_top: 4,
    };
    cfg.levels = vec![
        LevelAgg::Cba(ConsensusKind::VoteMajority),
        LevelAgg::Bra(AggregatorKind::Median),
    ];
    cfg.flag_level = 1;
    let res = run_pipeline(&cfg, &pcfg(3));
    assert!(!res.rounds.is_empty());
    assert!(res.final_accuracy > 0.3, "acc {}", res.final_accuracy);
}

#[test]
fn pipeline_works_on_four_level_hierarchy() {
    let mut cfg = small_cfg(4);
    cfg.topology = TopologyCfg::Ecsm {
        total_levels: 4,
        m: 2,
        n_top: 8,
    };
    cfg.levels = vec![
        LevelAgg::Cba(ConsensusKind::VoteMajority),
        LevelAgg::Bra(AggregatorKind::Median),
        LevelAgg::Bra(AggregatorKind::Median),
        LevelAgg::Bra(AggregatorKind::Median),
    ];
    cfg.flag_level = 2;
    let res = run_pipeline(&cfg, &pcfg(3));
    assert!(!res.rounds.is_empty());
}

#[test]
fn async_and_sync_drivers_learn_comparable_models() {
    // The pipeline is a *scheduling* change; what is learned per unit of
    // training should be comparable to the synchronous driver on the
    // same task (within a generous band — the async run sees fewer
    // effective global combinations).
    let mut cfg = small_cfg(5);
    cfg.rounds = 12;
    cfg.eval_every = 12;
    let sync = run_abd_hfl(&cfg);
    let asyn = run_pipeline(&cfg, &pcfg(12));
    assert!(
        (sync.final_accuracy - asyn.final_accuracy).abs() < 0.25,
        "drivers diverge: sync {} vs async {}",
        sync.final_accuracy,
        asyn.final_accuracy
    );
}

#[test]
fn slow_network_degrades_nu() {
    // When the network dominates, σw grows and the efficiency indicator
    // drops — Eq. (3)'s qualitative content.
    let cfg = small_cfg(6);
    let fast = run_pipeline(
        &cfg,
        &PipelineConfig {
            net_delay: DelayModel::Constant { micros: 100 },
            ..pcfg(4)
        },
    );
    let slow = run_pipeline(
        &cfg,
        &PipelineConfig {
            net_delay: DelayModel::Constant { micros: 30_000 },
            ..pcfg(4)
        },
    );
    let mean_w = |r: &abd_hfl_core::pipeline::PipelineResult| {
        r.rounds.iter().map(|t| t.sigma_w).sum::<f64>() / r.rounds.len() as f64
    };
    assert!(
        mean_w(&slow) > mean_w(&fast),
        "slow network should increase waiting"
    );
}

#[test]
fn message_volume_scales_with_rounds() {
    let a = run_pipeline(&small_cfg(7), &pcfg(2));
    let b = run_pipeline(&small_cfg(7), &pcfg(6));
    assert!(
        b.messages > 2 * a.messages,
        "messages must grow with rounds: {} vs {}",
        a.messages,
        b.messages
    );
}
