//! Property-based tests for topology builders and the event engine.

use proptest::prelude::*;

use hfl_simnet::engine::{Actor, Ctx, NodeId, Simulation};
use hfl_simnet::{DelayModel, Hierarchy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ecsm_satisfies_corollary_1(
        levels in 2usize..5,
        m in 1usize..5,
        n_top in 1usize..5,
    ) {
        let h = Hierarchy::ecsm(levels, m, n_top);
        h.validate();
        for l in 0..levels {
            prop_assert_eq!(h.level(l).num_nodes(), n_top * m.pow(l as u32));
        }
        prop_assert_eq!(h.num_clients(), n_top * m.pow((levels - 1) as u32));
    }

    #[test]
    fn ecsm_every_device_has_bottom_position(
        levels in 2usize..4,
        m in 1usize..5,
        n_top in 1usize..4,
    ) {
        let h = Hierarchy::ecsm(levels, m, n_top);
        let bottom = h.bottom_level();
        for dev in 0..h.num_clients() {
            prop_assert!(h.position(bottom, dev).is_some());
        }
    }

    #[test]
    fn ecsm_descendants_partition_the_bottom(
        levels in 2usize..4,
        m in 2usize..4,
        n_top in 1usize..4,
    ) {
        let h = Hierarchy::ecsm(levels, m, n_top);
        for l in 0..h.num_levels() {
            let mut all: Vec<usize> = Vec::new();
            for c in 0..h.level(l).num_clusters() {
                all.extend(h.descendants(l, c));
            }
            all.sort_unstable();
            prop_assert_eq!(all, (0..h.num_clients()).collect::<Vec<_>>(),
                "descendants of level {} do not partition the bottom", l);
        }
    }

    #[test]
    fn acsm_random_always_validates(
        n in 10usize..80,
        levels in 2usize..4,
        min in 2usize..4,
        extra in 0usize..5,
        seed in 0u64..500,
    ) {
        let h = Hierarchy::acsm_random(n, levels, min, min + extra, seed);
        h.validate();
        prop_assert_eq!(h.num_clients(), n);
        prop_assert_eq!(h.num_levels(), levels);
    }

    #[test]
    fn delay_samples_are_finite_and_deterministic(
        seed in 0u64..1000,
        mean in 1.0f64..1e6,
    ) {
        use rand::SeedableRng;
        let model = DelayModel::Exponential { mean };
        let mut a = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            let x = model.sample(&mut a);
            let y = model.sample(&mut b);
            prop_assert_eq!(x, y);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wire_roundtrips_arbitrary_messages(
        kind_sel in 0u8..3,
        round in any::<u32>(),
        level in any::<u16>(),
        cluster in any::<u16>(),
        params in prop::collection::vec(-1e6f32..1e6, 0..256),
    ) {
        use hfl_simnet::wire::{decode, encode, WireKind, WireMessage};
        let kind = [WireKind::Update, WireKind::Flag, WireKind::Global][kind_sel as usize];
        let msg = WireMessage { kind, round, level, cluster, params };
        let decoded = decode(encode(&msg)).expect("roundtrip failed");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn wire_decode_never_panics_on_garbage(raw in prop::collection::vec(any::<u8>(), 0..128)) {
        // Byzantine peers send arbitrary bytes; decode must return None
        // or a valid message, never panic.
        let _ = hfl_simnet::wire::decode(bytes::Bytes::from(raw));
    }

    #[test]
    fn wire_single_bitflips_never_panic(
        params in prop::collection::vec(-10.0f32..10.0, 1..32),
        byte_idx in 0usize..64,
        bit in 0u8..8,
    ) {
        use hfl_simnet::wire::{encode, WireKind, WireMessage};
        let msg = WireMessage {
            kind: WireKind::Update,
            round: 3,
            level: 1,
            cluster: 2,
            params,
        };
        let mut raw = encode(&msg).to_vec();
        let idx = byte_idx % raw.len();
        raw[idx] ^= 1 << bit;
        // Either rejected or decoded to *something*; no panic.
        let _ = hfl_simnet::wire::decode(bytes::Bytes::from(raw));
    }
}

/// A broadcast-and-count actor: node 0 broadcasts one message to all;
/// everyone acknowledges; deterministic message count = 2(n−1).
struct Broadcaster {
    n: usize,
    acks: usize,
}

impl Actor<u8> for Broadcaster {
    fn on_start(&mut self, ctx: &mut Ctx<u8>) {
        if ctx.me() == 0 {
            for dst in 1..self.n {
                ctx.send(dst, 0);
            }
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<u8>, src: NodeId, msg: u8) {
        if msg == 0 {
            ctx.send(src, 1);
        } else {
            self.acks += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn engine_message_conservation(n in 2usize..20, seed in 0u64..100) {
        let actors: Vec<Broadcaster> = (0..n).map(|_| Broadcaster { n, acks: 0 }).collect();
        let mut sim = Simulation::new(
            actors,
            DelayModel::Uniform { lo: 1, hi: 1000 },
            seed,
            |_| 1,
        );
        let stats = sim.run(100_000);
        prop_assert_eq!(stats.messages, 2 * (n as u64 - 1));
        prop_assert_eq!(sim.actors()[0].acks, n - 1);
    }
}
