//! Simulated time, in integer microseconds.
//!
//! Integer time makes the event queue total order exact (no float
//! comparison hazards) and keeps runs bit-reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// From seconds (saturating, rounding down).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimTime((s * 1e6) as u64)
    }

    /// Microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Saturating sum, spelled out for call sites that want the
    /// clamping to be visible (`+` saturates too).
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Scales by a non-negative factor, saturating at `u64::MAX` so a
    /// huge straggler multiplier can never wrap the event-queue order.
    /// NaN and negative factors are treated as 0 (a degenerate factor
    /// must not produce a time in the past or a panic mid-simulation).
    pub fn saturating_scale(self, factor: f64) -> SimTime {
        if factor.is_nan() || factor <= 0.0 {
            return SimTime::ZERO;
        }
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimTime(u64::MAX)
        } else {
            SimTime(scaled as u64)
        }
    }

    /// The far-future sentinel: no event is scheduled later. Used as
    /// the "deadline = ∞" encoding for synchronous rounds.
    pub const INFINITY: SimTime = SimTime(u64::MAX);
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        // Saturating: timer arithmetic near SimTime::INFINITY (the
        // deadline = ∞ encoding) must stay ordered, not wrap to 0.
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_micros(), 500_000);
        assert!((SimTime::from_micros(1_500_000).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!(a + b, SimTime::from_micros(14));
        assert_eq!(a - b, SimTime::from_micros(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
    }

    #[test]
    fn add_saturates_at_infinity() {
        let inf = SimTime::INFINITY;
        assert_eq!(inf + SimTime::from_micros(1), inf);
        let mut t = SimTime(u64::MAX - 1);
        t += SimTime::from_micros(10);
        assert_eq!(t, inf);
    }

    #[test]
    fn scale_basics() {
        let t = SimTime::from_micros(1_000);
        assert_eq!(t.saturating_scale(2.0), SimTime::from_micros(2_000));
        assert_eq!(t.saturating_scale(0.5), SimTime::from_micros(500));
        assert_eq!(t.saturating_scale(0.0), SimTime::ZERO);
        assert_eq!(t.saturating_scale(-3.0), SimTime::ZERO);
        assert_eq!(t.saturating_scale(f64::NAN), SimTime::ZERO);
        assert_eq!(t.saturating_scale(f64::INFINITY), SimTime::INFINITY);
        assert_eq!(SimTime(u64::MAX).saturating_scale(8.0), SimTime::INFINITY);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `+` never wraps: the sum is ≥ both operands.
            #[test]
            fn add_is_monotone(a in any::<u64>(), b in any::<u64>()) {
                let s = SimTime(a) + SimTime(b);
                prop_assert!(s >= SimTime(a));
                prop_assert!(s >= SimTime(b));
                prop_assert_eq!(s.0, a.saturating_add(b));
            }

            /// Scaling preserves order: t1 ≤ t2 ⇒ scale(t1) ≤ scale(t2)
            /// for any shared non-negative factor.
            #[test]
            fn scale_preserves_order(
                a in any::<u64>(),
                b in any::<u64>(),
                f in 0.0f64..1e12,
            ) {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(
                    SimTime(lo).saturating_scale(f) <= SimTime(hi).saturating_scale(f)
                );
            }

            /// Factor 1.0 round-trips exactly for values that fit in an
            /// f64 mantissa (straggler factors only multiply delay-model
            /// samples, which are well under 2^53 µs ≈ 285 years).
            #[test]
            fn scale_by_one_roundtrips(us in 0u64..(1 << 53)) {
                prop_assert_eq!(SimTime(us).saturating_scale(1.0), SimTime(us));
            }

            /// add then saturating_sub round-trips when no saturation
            /// occurred.
            #[test]
            fn add_sub_roundtrip(a in 0u64..(u64::MAX / 2), b in 0u64..(u64::MAX / 2)) {
                let t = SimTime(a) + SimTime(b);
                prop_assert_eq!(t.saturating_sub(SimTime(b)), SimTime(a));
            }

            /// Scaling never panics and never produces a value above
            /// INFINITY, for arbitrary (even hostile) factors.
            #[test]
            fn scale_total(us in any::<u64>(), f in any::<f64>()) {
                let t = SimTime(us).saturating_scale(f);
                prop_assert!(t <= SimTime::INFINITY);
            }
        }
    }
}
