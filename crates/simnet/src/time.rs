//! Simulated time, in integer microseconds.
//!
//! Integer time makes the event queue total order exact (no float
//! comparison hazards) and keeps runs bit-reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// From seconds (saturating, rounding down).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimTime((s * 1e6) as u64)
    }

    /// Microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_micros(), 500_000);
        assert!((SimTime::from_micros(1_500_000).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!(a + b, SimTime::from_micros(14));
        assert_eq!(a - b, SimTime::from_micros(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
    }
}
