//! Hierarchy builders: ECSM and ACSM (paper §III-A, §IV-B, Appendix C).
//!
//! ABD-HFL is "a collection of tree structures derived upwards from
//! leaves": all physical devices sit at the bottom level; the leader of
//! each cluster at level `ℓ` *also* occupies a position at level `ℓ−1`.
//! A `Hierarchy` therefore indexes the same device ids at multiple levels.
//!
//! * **ECSM** (Equal Cluster Size Model): every cluster below the top has
//!   exactly `m` members; each top node is the root of a complete m-ary
//!   tree — the structure Theorems 1–2 quantify over.
//! * **ACSM** (Arbitrary Cluster Size Model): cluster sizes vary freely
//!   (Appendix C / Theorem 3); built here by random bottom-up clustering.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Physical device identifier (a bottom-level client id).
pub type DeviceId = usize;

/// A cluster: an ordered member list; the leader is `members[0]`
/// ("the leader of each cluster is assigned virtually" — Appendix D).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// Device ids of the members; `members[0]` is the leader `A_{ℓ,i}`.
    pub members: Vec<DeviceId>,
}

impl Cluster {
    /// The cluster leader.
    pub fn leader(&self) -> DeviceId {
        self.members[0]
    }

    /// Member count `C_{ℓ,i}`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the cluster has no members (never valid in a built
    /// hierarchy; exists for the `len`/`is_empty` idiom).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// One hierarchy level: its clusters in index order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Level {
    /// Clusters `C_{ℓ,0} .. C_{ℓ,|C_ℓ|-1}`.
    pub clusters: Vec<Cluster>,
}

impl Level {
    /// Total nodes at this level `N_ℓ`.
    pub fn num_nodes(&self) -> usize {
        self.clusters.iter().map(Cluster::len).sum()
    }

    /// Number of clusters `C_ℓ`.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }
}

/// The full ABD-HFL structure. `levels[0]` is the top `L_0`,
/// `levels[L]` the bottom `L_L`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hierarchy {
    levels: Vec<Level>,
}

impl Hierarchy {
    /// Builds the Equal Cluster Size Model.
    ///
    /// `total_levels` = `L + 1` (the paper's evaluation uses 3);
    /// `m` = cluster size; `n_top` = top-level node count. The bottom
    /// level then holds `n_top · m^L` clients with consecutive ids.
    ///
    /// # Panics
    /// If any argument is zero or `total_levels < 2`.
    pub fn ecsm(total_levels: usize, m: usize, n_top: usize) -> Self {
        assert!(total_levels >= 2, "need at least top + bottom levels");
        assert!(m >= 1 && n_top >= 1, "cluster size and top count must be positive");
        let depth = total_levels - 1; // the paper's L
        let mut levels = Vec::with_capacity(total_levels);
        // Level ℓ has n_top·m^ℓ nodes; node p at level ℓ is device
        // p · m^(L−ℓ) (leaders are the first members of their clusters).
        for l in 0..total_levels {
            let nodes = n_top * m.pow(l as u32);
            let stride = m.pow((depth - l) as u32);
            let cluster_size = if l == 0 { n_top } else { m };
            let clusters = (0..nodes / cluster_size)
                .map(|c| Cluster {
                    members: (0..cluster_size)
                        .map(|k| (c * cluster_size + k) * stride)
                        .collect(),
                })
                .collect();
            levels.push(Level { clusters });
        }
        let h = Self { levels };
        h.validate();
        h
    }

    /// Builds a random Arbitrary Cluster Size Model: bottom clients
    /// `0..n_bottom` are grouped bottom-up `total_levels − 1` times into
    /// clusters of size drawn uniformly from `[min_size, max_size]`
    /// (the final grouping becomes the single top cluster).
    ///
    /// # Panics
    /// If sizes are inconsistent or the hierarchy would degenerate
    /// (a level with zero clusters).
    pub fn acsm_random(
        n_bottom: usize,
        total_levels: usize,
        min_size: usize,
        max_size: usize,
        seed: u64,
    ) -> Self {
        assert!(total_levels >= 2, "need at least top + bottom levels");
        assert!(min_size >= 1 && min_size <= max_size, "bad cluster size range");
        assert!(n_bottom >= min_size, "not enough clients for one cluster");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut levels_rev: Vec<Level> = Vec::new(); // bottom first
        let mut current: Vec<DeviceId> = (0..n_bottom).collect();
        // One clustering per level below the top: the loop emits levels
        // L, L−1, ..., 1; the remaining leaders become the top cluster.
        for _ in 0..total_levels - 1 {
            let mut clusters = Vec::new();
            let mut i = 0;
            while i < current.len() {
                let remaining = current.len() - i;
                let size = if remaining <= max_size {
                    remaining
                } else {
                    // Keep at least min_size for the final chunk.
                    let hi = max_size.min(remaining - min_size).max(min_size);
                    rng.gen_range(min_size..=hi)
                };
                clusters.push(Cluster {
                    members: current[i..i + size].to_vec(),
                });
                i += size;
            }
            assert!(!clusters.is_empty(), "level degenerated to zero clusters");
            current = clusters.iter().map(Cluster::leader).collect();
            levels_rev.push(Level { clusters });
        }
        // Top level: all remaining leaders in one cluster.
        levels_rev.push(Level {
            clusters: vec![Cluster { members: current }],
        });
        let levels: Vec<Level> = levels_rev.into_iter().rev().collect();
        let h = Self { levels };
        h.validate();
        h
    }

    /// Checks structural invariants; called by the builders and available
    /// to property tests:
    /// 1. every cluster is non-empty,
    /// 2. the top level is a single cluster,
    /// 3. for `ℓ ≥ 1`, the leaders of level `ℓ` are exactly the nodes of
    ///    level `ℓ−1` (the defining ABD-HFL property),
    /// 4. within a level, no device appears twice.
    ///
    /// # Panics
    /// On any violation.
    pub fn validate(&self) {
        assert!(self.levels.len() >= 2, "hierarchy needs >= 2 levels");
        assert_eq!(
            self.levels[0].num_clusters(),
            1,
            "top level must be a single cluster"
        );
        for (l, level) in self.levels.iter().enumerate() {
            assert!(!level.clusters.is_empty(), "level {l} has no clusters");
            let mut seen = std::collections::HashSet::new();
            for c in &level.clusters {
                assert!(!c.is_empty(), "empty cluster at level {l}");
                for m in &c.members {
                    assert!(seen.insert(*m), "device {m} duplicated at level {l}");
                }
            }
        }
        for l in 1..self.levels.len() {
            let leaders: Vec<DeviceId> = self.levels[l]
                .clusters
                .iter()
                .map(Cluster::leader)
                .collect();
            let upper: Vec<DeviceId> = self.levels[l - 1]
                .clusters
                .iter()
                .flat_map(|c| c.members.iter().copied())
                .collect();
            let mut a = leaders.clone();
            let mut b = upper.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(
                a, b,
                "leaders of level {l} must form level {} exactly",
                l - 1
            );
        }
    }

    /// Number of levels `L + 1`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Index of the bottom level `L`.
    pub fn bottom_level(&self) -> usize {
        self.levels.len() - 1
    }

    /// The level structure at `ℓ`.
    pub fn level(&self, l: usize) -> &Level {
        &self.levels[l]
    }

    /// Total bottom-level clients.
    pub fn num_clients(&self) -> usize {
        self.levels[self.bottom_level()].num_nodes()
    }

    /// Locates `device` at level `ℓ`: `(cluster index, member index)`.
    pub fn position(&self, l: usize, device: DeviceId) -> Option<(usize, usize)> {
        for (ci, c) in self.levels[l].clusters.iter().enumerate() {
            if let Some(mi) = c.members.iter().position(|m| *m == device) {
                return Some((ci, mi));
            }
        }
        None
    }

    /// The cluster at level `ℓ+1` that `device` (a node of level `ℓ`)
    /// leads, as a cluster index — every non-bottom node leads exactly
    /// one cluster below it.
    pub fn led_cluster(&self, l: usize, device: DeviceId) -> Option<usize> {
        if l + 1 >= self.levels.len() {
            return None;
        }
        self.levels[l + 1]
            .clusters
            .iter()
            .position(|c| c.leader() == device)
    }

    /// All bottom-level clients in the subtree of cluster `(ℓ, i)` —
    /// the recipients of a flag model disseminated from that cluster.
    pub fn descendants(&self, l: usize, cluster: usize) -> Vec<DeviceId> {
        let bottom = self.bottom_level();
        let mut frontier: Vec<DeviceId> =
            self.levels[l].clusters[cluster].members.clone();
        for cur in l..bottom {
            let mut next = Vec::new();
            for device in &frontier {
                if let Some(ci) = self.led_cluster(cur, *device) {
                    next.extend(self.levels[cur + 1].clusters[ci].members.iter().copied());
                }
            }
            frontier = next;
        }
        frontier.sort_unstable();
        frontier
    }

    /// Per-level node counts `[N_0, N_1, ..., N_L]`.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(Level::num_nodes).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's evaluation topology: 3 levels, m = 4, 4 top nodes.
    fn paper() -> Hierarchy {
        Hierarchy::ecsm(3, 4, 4)
    }

    #[test]
    fn paper_topology_shape() {
        let h = paper();
        assert_eq!(h.num_levels(), 3);
        assert_eq!(h.level_sizes(), vec![4, 16, 64]);
        assert_eq!(h.level(0).num_clusters(), 1);
        assert_eq!(h.level(1).num_clusters(), 4);
        assert_eq!(h.level(2).num_clusters(), 16);
        assert_eq!(h.num_clients(), 64);
    }

    #[test]
    fn ecsm_matches_corollary_1() {
        // Corollary 1: level ℓ has Nt·m^ℓ nodes.
        for (levels, m, nt) in [(3usize, 4usize, 4usize), (4, 3, 2), (2, 5, 7)] {
            let h = Hierarchy::ecsm(levels, m, nt);
            for l in 0..levels {
                assert_eq!(h.level(l).num_nodes(), nt * m.pow(l as u32));
            }
        }
    }

    #[test]
    fn bottom_ids_are_consecutive() {
        let h = paper();
        let bottom = h.level(2);
        let mut ids: Vec<usize> = bottom
            .clusters
            .iter()
            .flat_map(|c| c.members.iter().copied())
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn leaders_ascend() {
        let h = paper();
        // Bottom cluster 0 = {0,1,2,3}, leader 0; its leader appears at L1.
        assert_eq!(h.level(2).clusters[0].members, vec![0, 1, 2, 3]);
        assert_eq!(h.level(2).clusters[0].leader(), 0);
        assert!(h.position(1, 0).is_some());
        // Top nodes are multiples of 16.
        assert_eq!(h.level(0).clusters[0].members, vec![0, 16, 32, 48]);
    }

    #[test]
    fn led_cluster_roundtrip() {
        let h = paper();
        // Device 16 sits at the top and leads L1 cluster 1.
        let led = h.led_cluster(0, 16).expect("16 leads an L1 cluster");
        assert_eq!(h.level(1).clusters[led].leader(), 16);
        // Bottom nodes lead nothing.
        assert_eq!(h.led_cluster(2, 1), None);
    }

    #[test]
    fn descendants_of_top_cluster_is_everyone() {
        let h = paper();
        assert_eq!(h.descendants(0, 0), (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn descendants_of_l1_cluster_is_16_clients() {
        let h = paper();
        let d = h.descendants(1, 0);
        assert_eq!(d.len(), 16);
        assert_eq!(d, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn two_level_degenerate_hierarchy() {
        // L=1: top nodes directly lead bottom clusters.
        let h = Hierarchy::ecsm(2, 8, 3);
        assert_eq!(h.level_sizes(), vec![3, 24]);
        assert_eq!(h.level(1).num_clusters(), 3);
    }

    #[test]
    fn acsm_random_is_valid_and_deterministic() {
        let a = Hierarchy::acsm_random(100, 4, 2, 6, 11);
        let b = Hierarchy::acsm_random(100, 4, 2, 6, 11);
        assert_eq!(a, b);
        a.validate();
        assert_eq!(a.num_levels(), 4);
        assert_eq!(a.num_clients(), 100);
        // Cluster sizes within bounds below the top.
        for l in 1..a.num_levels() {
            for c in &a.level(l).clusters {
                assert!(c.len() >= 2 && c.len() <= 6 + 2, "size {}", c.len());
            }
        }
    }

    #[test]
    fn acsm_different_seeds_differ() {
        let a = Hierarchy::acsm_random(100, 3, 2, 6, 1);
        let b = Hierarchy::acsm_random(100, 3, 2, 6, 2);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least top + bottom")]
    fn one_level_panics() {
        Hierarchy::ecsm(1, 4, 4);
    }
}
