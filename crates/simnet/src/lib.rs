//! # hfl-simnet
//!
//! A discrete-event simulator for partial-synchronous message-passing
//! systems, plus the hierarchical topology builders of ABD-HFL.
//!
//! The paper's Assumption 1 — "message delivery time is arbitrary, finite
//! but unbounded" — is modelled by pluggable per-link [`delay`] models
//! (including heavy-tailed and straggler mixtures). The engine is fully
//! deterministic given a seed: events at equal timestamps are delivered in
//! schedule order.
//!
//! Two layers:
//! * [`engine`] — generic actors, timers, messages, byte/message
//!   accounting and a [`trace`] timeline used to *measure* the pipeline
//!   quantities (τℓ, τ′ℓ, σw, σp, σg, ν of paper §III-D).
//! * [`topology`] — ECSM (equal-cluster-size, complete m-ary trees from
//!   Nt roots) and ACSM (arbitrary cluster sizes) hierarchy builders, the
//!   structures the tolerance theory of §IV-B quantifies over.
//!
//! # Example
//!
//! ```
//! use hfl_simnet::Hierarchy;
//!
//! // The paper's evaluation topology: 3 levels, clusters of 4, 4 roots.
//! let h = Hierarchy::ecsm(3, 4, 4);
//! assert_eq!(h.num_clients(), 64);
//! assert_eq!(h.level(0).num_nodes(), 4);        // the top committee
//! assert_eq!(h.descendants(1, 0).len(), 16);    // one subtree's clients
//! ```

pub mod delay;
pub mod engine;
pub mod time;
pub mod topology;
pub mod trace;
pub mod wire;

pub use delay::DelayModel;
pub use engine::{Actor, Ctx, NodeId, Simulation};
pub use time::SimTime;
pub use topology::{Cluster, Hierarchy, Level};
pub use trace::{Trace, TraceEvent};
