//! Link-delay models realizing partial synchrony (Assumption 1).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A stochastic message-delay distribution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// Fixed delay (synchronous network).
    Constant {
        /// Delay in microseconds.
        micros: u64,
    },
    /// Uniform in `[lo, hi]` microseconds.
    Uniform {
        /// Lower bound (µs).
        lo: u64,
        /// Upper bound (µs), inclusive.
        hi: u64,
    },
    /// Exponential with the given mean — light-tailed asynchrony.
    Exponential {
        /// Mean delay (µs).
        mean: f64,
    },
    /// Log-normal (µ, σ of the underlying normal, in ln-µs) —
    /// heavy-tailed wide-area behaviour.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Std of the underlying normal.
        sigma: f64,
    },
    /// Straggler mixture: with probability `p` the delay is multiplied by
    /// `factor` — the paper's "stragglers in unreliable channels".
    Straggler {
        /// Base distribution.
        base: Box<DelayModel>,
        /// Straggler probability in `[0, 1]`.
        p: f64,
        /// Delay multiplier for stragglers (≥ 1).
        factor: f64,
    },
}

impl DelayModel {
    /// Draws one delay.
    pub fn sample(&self, rng: &mut StdRng) -> SimTime {
        match self {
            DelayModel::Constant { micros } => SimTime::from_micros(*micros),
            DelayModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform delay bounds inverted");
                SimTime::from_micros(rng.gen_range(*lo..=*hi))
            }
            DelayModel::Exponential { mean } => {
                assert!(*mean > 0.0, "exponential mean must be positive");
                let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
                SimTime::from_micros((-mean * u.ln()) as u64)
            }
            DelayModel::LogNormal { mu, sigma } => {
                assert!(*sigma >= 0.0, "lognormal sigma must be non-negative");
                let z = hfl_tensor_normal(rng);
                SimTime::from_micros((mu + sigma * z).exp() as u64)
            }
            DelayModel::Straggler { base, p, factor } => {
                assert!((0.0..=1.0).contains(p), "straggler probability in [0,1]");
                assert!(*factor >= 1.0, "straggler factor must be >= 1");
                let d = base.sample(rng);
                if rng.gen_bool(*p) {
                    SimTime::from_micros((d.as_micros() as f64 * factor) as u64)
                } else {
                    d
                }
            }
        }
    }

    /// Mean delay in microseconds (analytic; used for reporting and for
    /// sanity checks in tests).
    pub fn mean_micros(&self) -> f64 {
        match self {
            DelayModel::Constant { micros } => *micros as f64,
            DelayModel::Uniform { lo, hi } => (*lo + *hi) as f64 / 2.0,
            DelayModel::Exponential { mean } => *mean,
            DelayModel::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            DelayModel::Straggler { base, p, factor } => {
                base.mean_micros() * (1.0 - p + p * factor)
            }
        }
    }

    /// Upper bound on a single draw, in µs — `None` for models with an
    /// unbounded tail. Liveness reasoning (DESIGN.md §12) needs this:
    /// "every buffer closes within `deadline + max link delay`" is only
    /// checkable against a bounded model.
    pub fn max_micros(&self) -> Option<u64> {
        match self {
            DelayModel::Constant { micros } => Some(*micros),
            DelayModel::Uniform { hi, .. } => Some(*hi),
            DelayModel::Exponential { .. } | DelayModel::LogNormal { .. } => None,
            DelayModel::Straggler { base, factor, .. } => base
                .max_micros()
                .map(|m| (m as f64 * factor.max(1.0)) as u64),
        }
    }

    /// A typical LAN-ish edge link: uniform 1–5 ms.
    pub fn lan() -> Self {
        DelayModel::Uniform {
            lo: 1_000,
            hi: 5_000,
        }
    }

    /// A typical WAN link: log-normal centred near 40 ms with heavy tail.
    pub fn wan() -> Self {
        DelayModel::LogNormal {
            mu: (40_000.0f64).ln(),
            sigma: 0.5,
        }
    }
}

/// Standard normal sample (local Box–Muller; avoids a tensor dependency
/// for one helper).
fn hfl_tensor_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mean_of_samples(m: &DelayModel, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(42);
        (0..n)
            .map(|_| m.sample(&mut rng).as_micros() as f64)
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let m = DelayModel::Constant { micros: 123 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng).as_micros(), 123);
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let m = DelayModel::Uniform { lo: 10, hi: 20 };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let d = m.sample(&mut rng).as_micros();
            assert!((10..=20).contains(&d));
        }
    }

    #[test]
    fn empirical_means_match_analytic() {
        for m in [
            DelayModel::Uniform { lo: 0, hi: 1000 },
            DelayModel::Exponential { mean: 500.0 },
            DelayModel::Straggler {
                base: Box::new(DelayModel::Constant { micros: 100 }),
                p: 0.1,
                factor: 10.0,
            },
        ] {
            let emp = mean_of_samples(&m, 20_000);
            let ana = m.mean_micros();
            assert!(
                (emp - ana).abs() / ana < 0.1,
                "{m:?}: empirical {emp} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn straggler_inflates_tail() {
        let base = DelayModel::Constant { micros: 100 };
        let m = DelayModel::Straggler {
            base: Box::new(base),
            p: 0.2,
            factor: 50.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<u64> = (0..1000).map(|_| m.sample(&mut rng).as_micros()).collect();
        let stragglers = samples.iter().filter(|d| **d == 5_000).count();
        assert!(stragglers > 120 && stragglers < 280, "got {stragglers}");
    }

    #[test]
    fn deterministic_in_seed() {
        let m = DelayModel::wan();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..5).map(|_| m.sample(&mut rng).as_micros()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..5).map(|_| m.sample(&mut rng).as_micros()).collect()
        };
        assert_eq!(a, b);
    }
}
