//! Timeline tracing: the measurement substrate for the pipeline-workflow
//! analysis (paper §III-D).
//!
//! Actors record labelled events; the analysis reconstructs per-round,
//! per-cluster durations:
//! * `τℓ`  — first model received → quorum reached (collection),
//! * `τ′ℓ` — quorum reached → aggregate formed (aggregation),
//! * `σw`  — waiting time at the bottom until the flag model arrives,
//! * `σp`, `σg` — pipelined partial/global aggregation time,
//! * `ν = (σp + σg) / σ` — the efficiency indicator (Eq. 3).
//!
//! Queries (`first_time`, `span`, `times_of_kind`) run against a lazily
//! built index over `(round, level, cluster, kind)` instead of scanning
//! the full timeline: the pipeline analysis issues several queries per
//! round × cluster, which was O(rounds² · clusters²) with linear scans.

use std::cell::RefCell;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A labelled point on the simulation timeline.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global training round.
    pub round: usize,
    /// Hierarchy level (0 = top).
    pub level: usize,
    /// Cluster index within the level (0 for the top cluster).
    pub cluster: usize,
    /// What happened.
    pub kind: TraceKind,
}

/// Event labels, matching the paper's timing decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// A leader received the first model of the round from its cluster.
    FirstModelReceived,
    /// The collection quorum (φℓ · Cℓ,i) was reached.
    QuorumReached,
    /// The partial (or global) aggregate is formed.
    AggregateFormed,
    /// The flag model reached a bottom-level cluster.
    FlagModelReceived,
    /// The global model reached a bottom-level cluster.
    GlobalModelReceived,
    /// A bottom-level device finished its local training iterations.
    LocalTrainingDone,
}

/// Query index, rebuilt on demand after any mutation.
#[derive(Clone, Debug, Default)]
struct TraceIndex {
    /// First occurrence time per `(round, level, cluster, kind)`.
    first: HashMap<(usize, usize, usize, TraceKind), SimTime>,
    /// All times per `(round, kind)`, in record (= time) order.
    by_round_kind: HashMap<(usize, TraceKind), Vec<SimTime>>,
}

impl TraceIndex {
    fn build(entries: &[(SimTime, TraceEvent)]) -> Self {
        let mut idx = Self::default();
        for (t, e) in entries {
            idx.first
                .entry((e.round, e.level, e.cluster, e.kind))
                .or_insert(*t);
            idx.by_round_kind
                .entry((e.round, e.kind))
                .or_default()
                .push(*t);
        }
        idx
    }
}

/// An append-only timeline of `(time, event)` pairs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<(SimTime, TraceEvent)>,
    /// Out-of-order records tolerated (clamped) instead of dropped.
    #[serde(default)]
    anomalies: u64,
    #[serde(skip)]
    cache: RefCell<Option<TraceIndex>>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event. Times must be non-decreasing; a record earlier
    /// than the current timeline head is **saturated** to the last seen
    /// time (in all builds, not just debug) and counted in
    /// [`Self::anomalies`] — a quietly reordered timeline would corrupt
    /// every span measurement downstream, so we repair and count rather
    /// than trusting the caller.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        let at = match self.entries.last() {
            Some((last, _)) if at < *last => {
                self.anomalies += 1;
                *last
            }
            _ => at,
        };
        *self.cache.get_mut() = None;
        self.entries.push((at, event));
    }

    /// How many out-of-order records have been saturated.
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }

    /// All entries in time order.
    pub fn entries(&self) -> &[(SimTime, TraceEvent)] {
        &self.entries
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Runs `f` against the (possibly just rebuilt) query index.
    fn with_index<R>(&self, f: impl FnOnce(&TraceIndex) -> R) -> R {
        let mut cache = self.cache.borrow_mut();
        let idx = cache.get_or_insert_with(|| TraceIndex::build(&self.entries));
        f(idx)
    }

    /// First time an event matching the filter occurs.
    pub fn first_time(
        &self,
        round: usize,
        level: usize,
        cluster: usize,
        kind: TraceKind,
    ) -> Option<SimTime> {
        self.with_index(|idx| idx.first.get(&(round, level, cluster, kind)).copied())
    }

    /// Duration between two event kinds within the same (round, level,
    /// cluster) — e.g. `τℓ = QuorumReached − FirstModelReceived`.
    pub fn span(
        &self,
        round: usize,
        level: usize,
        cluster: usize,
        from: TraceKind,
        to: TraceKind,
    ) -> Option<SimTime> {
        let a = self.first_time(round, level, cluster, from)?;
        let b = self.first_time(round, level, cluster, to)?;
        Some(b.saturating_sub(a))
    }

    /// All times of a given kind in a round (any level/cluster).
    pub fn times_of_kind(&self, round: usize, kind: TraceKind) -> Vec<SimTime> {
        self.with_index(|idx| {
            idx.by_round_kind
                .get(&(round, kind))
                .cloned()
                .unwrap_or_default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: usize, level: usize, cluster: usize, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            round,
            level,
            cluster,
            kind,
        }
    }

    #[test]
    fn record_and_query() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(10), ev(0, 2, 3, TraceKind::FirstModelReceived));
        t.record(SimTime::from_micros(25), ev(0, 2, 3, TraceKind::QuorumReached));
        t.record(SimTime::from_micros(30), ev(0, 2, 3, TraceKind::AggregateFormed));
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.first_time(0, 2, 3, TraceKind::QuorumReached),
            Some(SimTime::from_micros(25))
        );
        // τ = 15µs, τ' = 5µs
        assert_eq!(
            t.span(0, 2, 3, TraceKind::FirstModelReceived, TraceKind::QuorumReached),
            Some(SimTime::from_micros(15))
        );
        assert_eq!(
            t.span(0, 2, 3, TraceKind::QuorumReached, TraceKind::AggregateFormed),
            Some(SimTime::from_micros(5))
        );
    }

    #[test]
    fn missing_events_give_none() {
        let t = Trace::new();
        assert_eq!(t.first_time(0, 0, 0, TraceKind::AggregateFormed), None);
        assert!(t.is_empty());
    }

    #[test]
    fn times_of_kind_filters_by_round() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(1), ev(0, 2, 0, TraceKind::FlagModelReceived));
        t.record(SimTime::from_micros(2), ev(0, 2, 1, TraceKind::FlagModelReceived));
        t.record(SimTime::from_micros(3), ev(1, 2, 0, TraceKind::FlagModelReceived));
        assert_eq!(t.times_of_kind(0, TraceKind::FlagModelReceived).len(), 2);
        assert_eq!(t.times_of_kind(1, TraceKind::FlagModelReceived).len(), 1);
    }

    #[test]
    fn out_of_order_record_saturates_and_counts() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(100), ev(0, 0, 0, TraceKind::QuorumReached));
        t.record(SimTime::from_micros(40), ev(0, 0, 0, TraceKind::AggregateFormed));
        assert_eq!(t.anomalies(), 1);
        // Clamped to the timeline head, so spans stay non-negative.
        assert_eq!(
            t.first_time(0, 0, 0, TraceKind::AggregateFormed),
            Some(SimTime::from_micros(100))
        );
        assert_eq!(
            t.span(0, 0, 0, TraceKind::QuorumReached, TraceKind::AggregateFormed),
            Some(SimTime::from_micros(0))
        );
        // In-order records don't count.
        t.record(SimTime::from_micros(200), ev(0, 0, 0, TraceKind::FlagModelReceived));
        assert_eq!(t.anomalies(), 1);
    }

    #[test]
    fn index_is_invalidated_by_later_records() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(5), ev(0, 1, 0, TraceKind::QuorumReached));
        // Build the index via a query...
        assert_eq!(t.times_of_kind(0, TraceKind::QuorumReached).len(), 1);
        // ...then mutate and query again: the index must see the new entry.
        t.record(SimTime::from_micros(9), ev(0, 1, 1, TraceKind::QuorumReached));
        assert_eq!(t.times_of_kind(0, TraceKind::QuorumReached).len(), 2);
        assert_eq!(
            t.first_time(0, 1, 1, TraceKind::QuorumReached),
            Some(SimTime::from_micros(9))
        );
    }

    #[test]
    fn first_time_is_first_not_last() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(3), ev(0, 2, 0, TraceKind::LocalTrainingDone));
        t.record(SimTime::from_micros(7), ev(0, 2, 0, TraceKind::LocalTrainingDone));
        assert_eq!(
            t.first_time(0, 2, 0, TraceKind::LocalTrainingDone),
            Some(SimTime::from_micros(3))
        );
    }

    #[test]
    fn clone_and_serde_preserve_queries() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(10), ev(1, 2, 3, TraceKind::QuorumReached));
        let c = t.clone();
        assert_eq!(
            c.first_time(1, 2, 3, TraceKind::QuorumReached),
            Some(SimTime::from_micros(10))
        );
    }
}
