//! Timeline tracing: the measurement substrate for the pipeline-workflow
//! analysis (paper §III-D).
//!
//! Actors record labelled events; the analysis reconstructs per-round,
//! per-cluster durations:
//! * `τℓ`  — first model received → quorum reached (collection),
//! * `τ′ℓ` — quorum reached → aggregate formed (aggregation),
//! * `σw`  — waiting time at the bottom until the flag model arrives,
//! * `σp`, `σg` — pipelined partial/global aggregation time,
//! * `ν = (σp + σg) / σ` — the efficiency indicator (Eq. 3).

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A labelled point on the simulation timeline.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global training round.
    pub round: usize,
    /// Hierarchy level (0 = top).
    pub level: usize,
    /// Cluster index within the level (0 for the top cluster).
    pub cluster: usize,
    /// What happened.
    pub kind: TraceKind,
}

/// Event labels, matching the paper's timing decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A leader received the first model of the round from its cluster.
    FirstModelReceived,
    /// The collection quorum (φℓ · Cℓ,i) was reached.
    QuorumReached,
    /// The partial (or global) aggregate is formed.
    AggregateFormed,
    /// The flag model reached a bottom-level cluster.
    FlagModelReceived,
    /// The global model reached a bottom-level cluster.
    GlobalModelReceived,
    /// A bottom-level device finished its local training iterations.
    LocalTrainingDone,
}

/// An append-only timeline of `(time, event)` pairs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<(SimTime, TraceEvent)>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event (times must be non-decreasing; the engine
    /// guarantees this).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if let Some((last, _)) = self.entries.last() {
            debug_assert!(*last <= at, "trace times must be non-decreasing");
        }
        self.entries.push((at, event));
    }

    /// All entries in time order.
    pub fn entries(&self) -> &[(SimTime, TraceEvent)] {
        &self.entries
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// First time an event matching the filter occurs.
    pub fn first_time(
        &self,
        round: usize,
        level: usize,
        cluster: usize,
        kind: TraceKind,
    ) -> Option<SimTime> {
        self.entries
            .iter()
            .find(|(_, e)| {
                e.round == round && e.level == level && e.cluster == cluster && e.kind == kind
            })
            .map(|(t, _)| *t)
    }

    /// Duration between two event kinds within the same (round, level,
    /// cluster) — e.g. `τℓ = QuorumReached − FirstModelReceived`.
    pub fn span(
        &self,
        round: usize,
        level: usize,
        cluster: usize,
        from: TraceKind,
        to: TraceKind,
    ) -> Option<SimTime> {
        let a = self.first_time(round, level, cluster, from)?;
        let b = self.first_time(round, level, cluster, to)?;
        Some(b.saturating_sub(a))
    }

    /// All times of a given kind in a round (any level/cluster).
    pub fn times_of_kind(&self, round: usize, kind: TraceKind) -> Vec<SimTime> {
        self.entries
            .iter()
            .filter(|(_, e)| e.round == round && e.kind == kind)
            .map(|(t, _)| *t)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: usize, level: usize, cluster: usize, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            round,
            level,
            cluster,
            kind,
        }
    }

    #[test]
    fn record_and_query() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(10), ev(0, 2, 3, TraceKind::FirstModelReceived));
        t.record(SimTime::from_micros(25), ev(0, 2, 3, TraceKind::QuorumReached));
        t.record(SimTime::from_micros(30), ev(0, 2, 3, TraceKind::AggregateFormed));
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.first_time(0, 2, 3, TraceKind::QuorumReached),
            Some(SimTime::from_micros(25))
        );
        // τ = 15µs, τ' = 5µs
        assert_eq!(
            t.span(0, 2, 3, TraceKind::FirstModelReceived, TraceKind::QuorumReached),
            Some(SimTime::from_micros(15))
        );
        assert_eq!(
            t.span(0, 2, 3, TraceKind::QuorumReached, TraceKind::AggregateFormed),
            Some(SimTime::from_micros(5))
        );
    }

    #[test]
    fn missing_events_give_none() {
        let t = Trace::new();
        assert_eq!(t.first_time(0, 0, 0, TraceKind::AggregateFormed), None);
        assert!(t.is_empty());
    }

    #[test]
    fn times_of_kind_filters_by_round() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(1), ev(0, 2, 0, TraceKind::FlagModelReceived));
        t.record(SimTime::from_micros(2), ev(0, 2, 1, TraceKind::FlagModelReceived));
        t.record(SimTime::from_micros(3), ev(1, 2, 0, TraceKind::FlagModelReceived));
        assert_eq!(t.times_of_kind(0, TraceKind::FlagModelReceived).len(), 2);
        assert_eq!(t.times_of_kind(1, TraceKind::FlagModelReceived).len(), 1);
    }
}
