//! The discrete-event engine: actors, messages, timers, accounting.
//!
//! Determinism contract: given the same actors, delay model and seed, the
//! event sequence is identical run-to-run. Equal-timestamp events are
//! ordered by a monotone sequence number (schedule order).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use hfl_telemetry::{Event, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::delay::DelayModel;
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};

/// Index of a node in the simulation.
pub type NodeId = usize;

#[derive(Debug)]
enum EventKind<P> {
    Deliver { src: NodeId, dst: NodeId, msg: P },
    Timer { node: NodeId, id: u64 },
}

struct Scheduled<P> {
    at: SimTime,
    seq: u64,
    kind: EventKind<P>,
}

impl<P> PartialEq for Scheduled<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P> Eq for Scheduled<P> {}
impl<P> PartialOrd for Scheduled<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Scheduled<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// What an actor can do during a callback: send messages, set timers,
/// read the clock, record trace events, stop the run.
///
/// Effects are buffered and applied by the engine after the callback
/// returns, which keeps the engine entirely safe Rust (no split borrows
/// between the actor vector and the engine state).
pub struct Ctx<P> {
    now: SimTime,
    node: NodeId,
    outbox: Vec<(NodeId, P, Option<SimTime>)>,
    timers: Vec<(SimTime, u64)>,
    trace_buf: Vec<(SimTime, TraceEvent)>,
    stop: bool,
}

impl<P> Ctx<P> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's node id.
    pub fn me(&self) -> NodeId {
        self.node
    }

    /// Sends `msg` to `dst`; delivery delay is drawn from the network's
    /// delay model.
    pub fn send(&mut self, dst: NodeId, msg: P) {
        self.outbox.push((dst, msg, None));
    }

    /// Sends with an explicit delivery delay (overrides the delay model —
    /// used to model local computation handoffs).
    pub fn send_after(&mut self, dst: NodeId, msg: P, delay: SimTime) {
        self.outbox.push((dst, msg, Some(delay)));
    }

    /// Fires `on_timer(id)` on this actor after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, id: u64) {
        self.timers.push((self.now + delay, id));
    }

    /// Appends a trace event at the current time.
    pub fn trace(&mut self, event: TraceEvent) {
        self.trace_buf.push((self.now, event));
    }

    /// Requests the simulation to stop after this callback.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// A protocol participant.
pub trait Actor<P> {
    /// Called once at simulation start (time 0).
    fn on_start(&mut self, ctx: &mut Ctx<P>);

    /// A message from `src` has been delivered.
    fn on_message(&mut self, ctx: &mut Ctx<P>, src: NodeId, msg: P);

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<P>, id: u64) {
        let _ = (ctx, id);
    }
}

/// Aggregate network accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Events processed (messages + timers).
    pub events: u64,
    /// Messages dropped for any reason (never delivered); the sum of
    /// base-channel loss plus every fault class below.
    pub dropped: u64,
    /// Of `dropped`: dropped by an injected loss burst.
    pub dropped_burst: u64,
    /// Of `dropped`: dropped because the link crossed a partition.
    pub dropped_partition: u64,
    /// Of `dropped`: dropped because an endpoint was crashed.
    pub dropped_crash: u64,
}

/// How an injected fault treats one message send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFate {
    /// The message proceeds normally (base channel loss still applies).
    Deliver,
    /// Dropped: an endpoint is crashed.
    DropCrash,
    /// Dropped: source and destination are in different partition groups.
    DropPartition,
    /// Dropped: an active loss burst claimed it.
    DropBurst,
}

/// A fault hook the engine consults on every send, before the base
/// channel loss. Implementations map `(src, dst, now)` onto an injected
/// fault timeline (see `hfl-faults`); stochastic choices must draw from
/// the provided engine RNG so runs stay seed-deterministic.
pub trait LinkFault {
    /// Decides the fate of a message sent `src → dst` at time `now`.
    fn classify(&mut self, src: NodeId, dst: NodeId, now: SimTime, rng: &mut StdRng) -> LinkFate;

    /// Multiplier applied to the sampled network delay of messages sent
    /// by `src` at `now` (straggler modelling). Must be ≥ 1; the
    /// default is no inflation. Not applied to explicit
    /// [`Ctx::send_after`] delays (those model local computation).
    fn delay_factor(&mut self, src: NodeId, now: SimTime) -> f64 {
        let _ = (src, now);
        1.0
    }
}

/// The simulation: a set of actors, a delay model, an event queue.
pub struct Simulation<P, A: Actor<P>> {
    actors: Vec<A>,
    queue: BinaryHeap<Reverse<Scheduled<P>>>,
    delay: DelayModel,
    rng: StdRng,
    now: SimTime,
    seq: u64,
    stats: NetStats,
    trace: Trace,
    payload_bytes: Box<dyn Fn(&P) -> u64>,
    /// Per-message drop probability — the "unreliable communication
    /// channels" of the paper's efficiency discussion. 0 by default.
    loss_prob: f64,
    /// Per-node uplink delay overrides (Appendix E: "bandwidth
    /// difference of each level"). A message from node `src` samples
    /// `uplink[src]` when present, the shared model otherwise.
    uplink: std::collections::HashMap<NodeId, DelayModel>,
    /// Optional telemetry bridge: every trace event is forwarded here as
    /// an [`Event::Sim`] as it is recorded.
    recorder: Option<Arc<dyn Recorder>>,
    /// Optional fault hook consulted on every send (crashes, partitions,
    /// bursts, stragglers), ahead of `loss_prob`.
    link_fault: Option<Box<dyn LinkFault>>,
}

impl<P, A: Actor<P>> Simulation<P, A> {
    /// Builds a simulation over `actors` with one shared delay model.
    ///
    /// `payload_bytes` sizes each payload for byte accounting (e.g.
    /// `4 · param_len` for model messages).
    pub fn new(
        actors: Vec<A>,
        delay: DelayModel,
        seed: u64,
        payload_bytes: impl Fn(&P) -> u64 + 'static,
    ) -> Self {
        assert!(!actors.is_empty(), "simulation needs at least one actor");
        Self {
            actors,
            queue: BinaryHeap::new(),
            delay,
            rng: StdRng::seed_from_u64(seed),
            now: SimTime::ZERO,
            seq: 0,
            stats: NetStats::default(),
            trace: Trace::new(),
            payload_bytes: Box::new(payload_bytes),
            loss_prob: 0.0,
            uplink: std::collections::HashMap::new(),
            recorder: None,
            link_fault: None,
        }
    }

    /// Bridges the simulator's trace stream into a telemetry recorder:
    /// from now on every [`Ctx::trace`] event is also forwarded as an
    /// [`Event::Sim`] (with the simulated time in microseconds). The
    /// forwarding is skipped entirely when the recorder is disabled.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Overrides the delay model for every message *sent by* `node` —
    /// the per-level bandwidth knob of the paper's Appendix E (give all
    /// bottom devices a slow uplink, leaders a fast one, ...).
    pub fn set_uplink_delay(&mut self, node: NodeId, model: DelayModel) {
        assert!(node < self.actors.len(), "unknown node {node}");
        self.uplink.insert(node, model);
    }

    /// Sets the per-message drop probability (in `[0, 1)`). Dropped
    /// messages are counted in [`NetStats::dropped`] and never delivered;
    /// timers are never dropped.
    ///
    /// # Panics
    /// If `p` is not a finite value in `[0, 1)` — a lossless or lossy
    /// channel, never a dead one (a protocol on a channel that drops
    /// everything cannot terminate).
    pub fn set_drop_probability(&mut self, p: f64) {
        assert!(
            p.is_finite() && (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1), got {p}"
        );
        self.loss_prob = p;
    }

    /// Alias for [`Simulation::set_drop_probability`], kept for callers
    /// written against the original name.
    pub fn set_loss(&mut self, p: f64) {
        self.set_drop_probability(p);
    }

    /// Installs a fault hook consulted on every send, before the base
    /// drop probability. See [`LinkFault`].
    pub fn set_link_fault(&mut self, fault: Box<dyn LinkFault>) {
        self.link_fault = Some(fault);
    }

    fn push(&mut self, at: SimTime, kind: EventKind<P>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, kind }));
    }

    fn flush_ctx_effects(
        &mut self,
        node: NodeId,
        outbox: Vec<(NodeId, P, Option<SimTime>)>,
        timers: Vec<(SimTime, u64)>,
    ) {
        for (dst, msg, explicit) in outbox {
            assert!(dst < self.actors.len(), "send to unknown node {dst}");
            if let Some(fault) = self.link_fault.as_mut() {
                match fault.classify(node, dst, self.now, &mut self.rng) {
                    LinkFate::Deliver => {}
                    LinkFate::DropCrash => {
                        self.stats.dropped += 1;
                        self.stats.dropped_crash += 1;
                        continue;
                    }
                    LinkFate::DropPartition => {
                        self.stats.dropped += 1;
                        self.stats.dropped_partition += 1;
                        continue;
                    }
                    LinkFate::DropBurst => {
                        self.stats.dropped += 1;
                        self.stats.dropped_burst += 1;
                        continue;
                    }
                }
            }
            if self.loss_prob > 0.0 && rand::Rng::gen_bool(&mut self.rng, self.loss_prob) {
                self.stats.dropped += 1;
                continue;
            }
            let delay = match explicit {
                Some(d) => d,
                None => {
                    let base = self
                        .uplink
                        .get(&node)
                        .unwrap_or(&self.delay)
                        .sample(&mut self.rng);
                    let factor = self
                        .link_fault
                        .as_mut()
                        .map_or(1.0, |f| f.delay_factor(node, self.now));
                    if factor != 1.0 {
                        SimTime::from_micros((base.as_micros() as f64 * factor).round() as u64)
                    } else {
                        base
                    }
                }
            };
            let at = self.now + delay;
            self.push(
                at,
                EventKind::Deliver {
                    src: node,
                    dst,
                    msg,
                },
            );
        }
        for (at, id) in timers {
            self.push(at, EventKind::Timer { node, id });
        }
    }

    fn run_callback(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut Ctx<P>)) -> bool {
        let mut ctx = Ctx {
            now: self.now,
            node,
            outbox: Vec::new(),
            timers: Vec::new(),
            trace_buf: Vec::new(),
            stop: false,
        };
        f(&mut self.actors[node], &mut ctx);
        let Ctx {
            outbox,
            timers,
            trace_buf,
            stop,
            ..
        } = ctx;
        for (at, event) in trace_buf {
            if let Some(rec) = self.recorder.as_deref() {
                if rec.enabled() {
                    rec.record(&Event::Sim {
                        time_us: at.as_micros(),
                        round: event.round,
                        level: event.level,
                        cluster: event.cluster,
                        kind: format!("{:?}", event.kind),
                    });
                }
            }
            self.trace.record(at, event);
        }
        self.flush_ctx_effects(node, outbox, timers);
        stop
    }

    /// Runs to completion: starts every actor, then processes events until
    /// the queue drains, an actor calls [`Ctx::stop`], or `max_events`
    /// is hit (a runaway-protocol guard).
    ///
    /// Returns the final statistics.
    pub fn run(&mut self, max_events: u64) -> NetStats {
        let n = self.actors.len();
        for node in 0..n {
            if self.run_callback(node, |a, ctx| a.on_start(ctx)) {
                return self.stats;
            }
        }
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.now = ev.at;
            self.stats.events += 1;
            assert!(
                self.stats.events <= max_events,
                "event budget exhausted ({max_events}) — runaway protocol?"
            );
            let stop = match ev.kind {
                EventKind::Deliver { src, dst, msg } => {
                    self.stats.messages += 1;
                    self.stats.bytes += (self.payload_bytes)(&msg);
                    self.run_callback(dst, |a, ctx| a.on_message(ctx, src, msg))
                }
                EventKind::Timer { node, id } => {
                    self.run_callback(node, |a, ctx| a.on_timer(ctx, id))
                }
            };
            if stop {
                break;
            }
        }
        self.stats
    }

    /// Current simulated time (after `run`, the time of the last event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The engine's cross-event mutable state `(now, seq, stats)` — what
    /// a checkpoint of a quiesced simulation must carry. The event queue
    /// is intentionally absent: snapshots are only taken between rounds,
    /// when the queue has drained.
    pub fn snapshot_clock(&self) -> (SimTime, u64, NetStats) {
        (self.now, self.seq, self.stats)
    }

    /// Restores `(now, seq, stats)` captured by [`Self::snapshot_clock`]
    /// on a fresh simulation. Refuses when events are already queued —
    /// in-flight messages cannot be reconstructed from a clock snapshot.
    pub fn restore_clock(&mut self, now: SimTime, seq: u64, stats: NetStats) -> Result<(), String> {
        if !self.queue.is_empty() {
            return Err(format!(
                "cannot restore clock with {} events in flight",
                self.queue.len()
            ));
        }
        self.now = now;
        self.seq = seq;
        self.stats = stats;
        Ok(())
    }

    /// The recorded trace timeline.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The actors, for post-run inspection.
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Mutable access to actors (e.g. to reset between rounds).
    pub fn actors_mut(&mut self) -> &mut [A] {
        &mut self.actors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong: node 0 sends `count` pings to node 1, which echoes.
    struct PingPong {
        id: NodeId,
        remaining: u32,
        received: u32,
    }

    impl Actor<u32> for PingPong {
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            if self.id == 0 {
                ctx.send(1, 0);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<u32>, src: NodeId, msg: u32) {
            self.received += 1;
            if self.id == 0 {
                if self.remaining == 0 {
                    ctx.stop();
                } else {
                    self.remaining -= 1;
                    ctx.send(src, msg + 1);
                }
            } else {
                ctx.send(src, msg + 1);
            }
        }
    }

    fn pingpong_sim(seed: u64) -> Simulation<u32, PingPong> {
        Simulation::new(
            vec![
                PingPong {
                    id: 0,
                    remaining: 10,
                    received: 0,
                },
                PingPong {
                    id: 1,
                    remaining: 0,
                    received: 0,
                },
            ],
            DelayModel::Uniform { lo: 10, hi: 100 },
            seed,
            |_| 4,
        )
    }

    #[test]
    fn pingpong_exchanges_expected_messages() {
        let mut sim = pingpong_sim(1);
        let stats = sim.run(10_000);
        // 0 sends 1 initial + 10 follow-ups; 1 echoes each of its 11.
        assert_eq!(sim.actors()[1].received, 11);
        assert_eq!(stats.messages, 22);
        assert_eq!(stats.bytes, 22 * 4);
    }

    #[test]
    fn time_advances_monotonically() {
        let mut sim = pingpong_sim(2);
        sim.run(10_000);
        assert!(sim.now() > SimTime::ZERO);
        // 22 hops at ≥10µs each
        assert!(sim.now().as_micros() >= 220);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = pingpong_sim(3);
        let mut b = pingpong_sim(3);
        a.run(10_000);
        b.run(10_000);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seed_different_schedule() {
        let mut a = pingpong_sim(4);
        let mut b = pingpong_sim(5);
        a.run(10_000);
        b.run(10_000);
        assert_ne!(a.now(), b.now());
    }

    /// Timer test: an actor that counts timer firings.
    struct TimerActor {
        fired: Vec<u64>,
    }
    impl Actor<()> for TimerActor {
        fn on_start(&mut self, ctx: &mut Ctx<()>) {
            ctx.set_timer(SimTime::from_micros(50), 7);
            ctx.set_timer(SimTime::from_micros(10), 3);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<()>, _src: NodeId, _msg: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<()>, id: u64) {
            self.fired.push(id);
            if self.fired.len() == 2 {
                ctx.stop();
            }
        }
    }

    #[test]
    fn timers_fire_in_time_order() {
        let mut sim = Simulation::new(
            vec![TimerActor { fired: vec![] }],
            DelayModel::Constant { micros: 1 },
            0,
            |_| 0,
        );
        sim.run(100);
        assert_eq!(sim.actors()[0].fired, vec![3, 7]);
        assert_eq!(sim.now(), SimTime::from_micros(50));
    }

    #[test]
    #[should_panic(expected = "event budget exhausted")]
    fn runaway_protocol_is_caught() {
        /// Echoes forever.
        struct Loopy;
        impl Actor<()> for Loopy {
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                ctx.send(0, ());
            }
            fn on_message(&mut self, ctx: &mut Ctx<()>, _src: NodeId, _msg: ()) {
                ctx.send(0, ());
            }
        }
        let mut sim = Simulation::new(vec![Loopy], DelayModel::Constant { micros: 1 }, 0, |_| 0);
        sim.run(100);
    }

    #[test]
    fn uplink_override_slows_one_sender() {
        /// Node 0 and node 1 each send one message to node 2 at start.
        struct OneShot {
            got: Vec<(NodeId, SimTime)>,
        }
        impl Actor<()> for OneShot {
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                if ctx.me() < 2 {
                    ctx.send(2, ());
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<()>, src: NodeId, _msg: ()) {
                self.got.push((src, ctx.now()));
            }
        }
        let mut sim = Simulation::new(
            (0..3).map(|_| OneShot { got: vec![] }).collect(),
            DelayModel::Constant { micros: 10 },
            0,
            |_| 0,
        );
        sim.set_uplink_delay(1, DelayModel::Constant { micros: 5_000 });
        sim.run(100);
        let got = &sim.actors()[2].got;
        assert_eq!(got.len(), 2);
        let t0 = got.iter().find(|(s, _)| *s == 0).unwrap().1;
        let t1 = got.iter().find(|(s, _)| *s == 1).unwrap().1;
        assert_eq!(t0, SimTime::from_micros(10));
        assert_eq!(t1, SimTime::from_micros(5_000));
    }

    #[test]
    fn lossy_channel_drops_messages() {
        /// Node 0 fires 1000 one-way messages to node 1.
        struct Spray {
            received: u32,
        }
        impl Actor<()> for Spray {
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                if ctx.me() == 0 {
                    for _ in 0..1000 {
                        ctx.send(1, ());
                    }
                }
            }
            fn on_message(&mut self, _ctx: &mut Ctx<()>, _src: NodeId, _msg: ()) {
                self.received += 1;
            }
        }
        let mut sim = Simulation::new(
            vec![Spray { received: 0 }, Spray { received: 0 }],
            DelayModel::Constant { micros: 1 },
            3,
            |_| 1,
        );
        sim.set_loss(0.3);
        let stats = sim.run(10_000);
        let delivered = sim.actors()[1].received as u64;
        assert_eq!(delivered + stats.dropped, 1000);
        assert!(
            stats.dropped > 200 && stats.dropped < 400,
            "dropped {}",
            stats.dropped
        );
        assert_eq!(stats.messages, delivered);
    }

    #[test]
    fn zero_loss_delivers_everything() {
        let mut sim = pingpong_sim(6);
        sim.set_loss(0.0);
        let stats = sim.run(10_000);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.messages, 22);
    }

    #[test]
    #[should_panic(expected = "drop probability must be in [0, 1), got 1")]
    fn full_loss_rejected() {
        let mut sim = pingpong_sim(7);
        sim.set_drop_probability(1.0);
    }

    #[test]
    #[should_panic(expected = "drop probability must be in [0, 1), got -0.1")]
    fn negative_loss_rejected() {
        let mut sim = pingpong_sim(7);
        sim.set_drop_probability(-0.1);
    }

    #[test]
    #[should_panic(expected = "drop probability must be in [0, 1), got NaN")]
    fn nan_loss_rejected() {
        let mut sim = pingpong_sim(7);
        sim.set_drop_probability(f64::NAN);
    }

    #[test]
    fn clock_snapshot_round_trips_on_a_fresh_sim() {
        let mut sim = pingpong_sim(9);
        sim.run(10_000);
        let (now, seq, stats) = sim.snapshot_clock();
        assert!(now > SimTime::ZERO);

        let mut fresh = pingpong_sim(9);
        fresh.restore_clock(now, seq, stats).unwrap();
        assert_eq!(fresh.now(), now);
        assert_eq!(fresh.stats(), stats);
        assert_eq!(fresh.snapshot_clock(), (now, seq, stats));
    }

    #[test]
    fn clock_restore_refuses_in_flight_events() {
        let mut sim = pingpong_sim(10);
        sim.queue.push(Reverse(Scheduled {
            at: SimTime::from_micros(5),
            seq: 0,
            kind: EventKind::Deliver {
                src: 0,
                dst: 1,
                msg: 7,
            },
        }));
        let err = sim
            .restore_clock(SimTime::ZERO, 0, NetStats::default())
            .unwrap_err();
        assert!(err.contains("in flight"), "{err}");
    }

    #[test]
    fn set_loss_alias_still_works() {
        let mut sim = pingpong_sim(8);
        sim.set_loss(0.0);
        assert_eq!(sim.run(10_000).dropped, 0);
    }

    /// A hard-coded fault: drops everything toward node 1 as a crash,
    /// everything toward node 2 as a partition, everything toward node 3
    /// as a burst, and slows node 4's sends 10×.
    struct ScriptedFault;
    impl LinkFault for ScriptedFault {
        fn classify(
            &mut self,
            _src: NodeId,
            dst: NodeId,
            _now: SimTime,
            _rng: &mut StdRng,
        ) -> LinkFate {
            match dst {
                1 => LinkFate::DropCrash,
                2 => LinkFate::DropPartition,
                3 => LinkFate::DropBurst,
                _ => LinkFate::Deliver,
            }
        }
        fn delay_factor(&mut self, src: NodeId, _now: SimTime) -> f64 {
            if src == 4 {
                10.0
            } else {
                1.0
            }
        }
    }

    /// Node 0 sends one message to every other node at start; node 4
    /// sends one message to node 5.
    struct FanOut {
        got_at: Option<SimTime>,
    }
    impl Actor<()> for FanOut {
        fn on_start(&mut self, ctx: &mut Ctx<()>) {
            match ctx.me() {
                0 => {
                    for dst in 1..=5 {
                        ctx.send(dst, ());
                    }
                }
                4 => ctx.send(5, ()),
                _ => {}
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<()>, _src: NodeId, _msg: ()) {
            self.got_at = Some(ctx.now());
        }
    }

    #[test]
    fn link_fault_classifies_and_counts_drops() {
        let mut sim = Simulation::new(
            (0..6).map(|_| FanOut { got_at: None }).collect(),
            DelayModel::Constant { micros: 10 },
            0,
            |_| 1,
        );
        sim.set_link_fault(Box::new(ScriptedFault));
        let stats = sim.run(1_000);
        assert_eq!(stats.dropped, 3);
        assert_eq!(stats.dropped_crash, 1);
        assert_eq!(stats.dropped_partition, 1);
        assert_eq!(stats.dropped_burst, 1);
        // 0→4, 0→5, 4→5 delivered.
        assert_eq!(stats.messages, 3);
        assert!(sim.actors()[1].got_at.is_none());
        assert!(sim.actors()[2].got_at.is_none());
        assert!(sim.actors()[3].got_at.is_none());
        assert!(sim.actors()[4].got_at.is_some());
    }

    #[test]
    fn link_fault_delay_factor_inflates_sampled_delay() {
        let mut sim = Simulation::new(
            (0..6).map(|_| FanOut { got_at: None }).collect(),
            DelayModel::Constant { micros: 10 },
            0,
            |_| 1,
        );
        sim.set_link_fault(Box::new(ScriptedFault));
        sim.run(1_000);
        // Node 5 hears from both 0 (10µs) and 4 (100µs): last write wins,
        // so its got_at is the straggler's arrival.
        assert_eq!(sim.actors()[5].got_at, Some(SimTime::from_micros(100)));
        assert_eq!(sim.actors()[4].got_at, Some(SimTime::from_micros(10)));
    }

    #[test]
    fn trace_events_are_bridged_to_recorder() {
        use crate::trace::{TraceEvent, TraceKind};
        use hfl_telemetry::MemoryRecorder;

        /// Records one trace event at start, then stops.
        struct Tracer;
        impl Actor<()> for Tracer {
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                ctx.trace(TraceEvent {
                    round: 2,
                    level: 1,
                    cluster: 4,
                    kind: TraceKind::QuorumReached,
                });
                ctx.stop();
            }
            fn on_message(&mut self, _ctx: &mut Ctx<()>, _src: NodeId, _msg: ()) {}
        }
        let mut sim = Simulation::new(vec![Tracer], DelayModel::Constant { micros: 1 }, 0, |_| 0);
        let rec = Arc::new(MemoryRecorder::new());
        sim.set_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
        sim.run(100);
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0],
            Event::Sim {
                time_us: 0,
                round: 2,
                level: 1,
                cluster: 4,
                kind: "QuorumReached".to_string(),
            }
        );
        // The trace itself still has the event too.
        assert_eq!(sim.trace().len(), 1);
    }

    #[test]
    fn send_after_overrides_delay_model() {
        struct Fixed {
            got_at: Option<SimTime>,
        }
        impl Actor<()> for Fixed {
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                if ctx.me() == 0 {
                    ctx.send_after(1, (), SimTime::from_micros(12345));
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<()>, _src: NodeId, _msg: ()) {
                self.got_at = Some(ctx.now());
                ctx.stop();
            }
        }
        let mut sim = Simulation::new(
            vec![Fixed { got_at: None }, Fixed { got_at: None }],
            DelayModel::Constant { micros: 1 },
            0,
            |_| 0,
        );
        sim.run(100);
        assert_eq!(sim.actors()[1].got_at, Some(SimTime::from_micros(12345)));
    }
}
