//! Wire encoding for model-bearing protocol messages.
//!
//! The simulator's byte accounting and any future real-network transport
//! share one canonical encoding: a fixed 24-byte header (magic, kind,
//! round, level, cluster, payload length) followed by little-endian `f32`
//! parameters. Encoding is infallible; decoding validates everything and
//! returns `None` on malformed input (a Byzantine peer can send garbage —
//! decoding must never panic).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Message kinds on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireKind {
    /// A model travelling up to a leader.
    Update = 1,
    /// A flag partial model travelling down.
    Flag = 2,
    /// A global model travelling down.
    Global = 3,
}

impl WireKind {
    fn from_u8(x: u8) -> Option<Self> {
        match x {
            1 => Some(WireKind::Update),
            2 => Some(WireKind::Flag),
            3 => Some(WireKind::Global),
            _ => None,
        }
    }
}

/// A decoded model message.
#[derive(Clone, Debug, PartialEq)]
pub struct WireMessage {
    /// Message kind.
    pub kind: WireKind,
    /// Global round.
    pub round: u32,
    /// Hierarchy level the message addresses.
    pub level: u16,
    /// Cluster index within the level.
    pub cluster: u16,
    /// Flat model parameters.
    pub params: Vec<f32>,
}

const MAGIC: u32 = 0xABD0_4F1D;
const HEADER_LEN: usize = 4 + 1 + 3 + 4 + 2 + 2 + 8; // magic kind pad round level cluster len

/// Size in bytes of an encoded message carrying `param_len` parameters.
pub const fn encoded_len(param_len: usize) -> usize {
    HEADER_LEN + param_len * 4
}

/// Encodes a message.
pub fn encode(msg: &WireMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(msg.params.len()));
    buf.put_u32_le(MAGIC);
    buf.put_u8(msg.kind as u8);
    buf.put_bytes(0, 3); // padding for alignment
    buf.put_u32_le(msg.round);
    buf.put_u16_le(msg.level);
    buf.put_u16_le(msg.cluster);
    buf.put_u64_le(msg.params.len() as u64);
    for p in &msg.params {
        buf.put_f32_le(*p);
    }
    buf.freeze()
}

/// Decodes a message; `None` on any malformation (bad magic, unknown
/// kind, truncated payload, absurd length).
pub fn decode(mut buf: Bytes) -> Option<WireMessage> {
    if buf.len() < HEADER_LEN {
        return None;
    }
    if buf.get_u32_le() != MAGIC {
        return None;
    }
    let kind = WireKind::from_u8(buf.get_u8())?;
    buf.advance(3);
    let round = buf.get_u32_le();
    let level = buf.get_u16_le();
    let cluster = buf.get_u16_le();
    let len = buf.get_u64_le();
    // Reject absurd lengths before allocating (Byzantine sender).
    if len > (1 << 28) || buf.len() != (len as usize) * 4 {
        return None;
    }
    let mut params = Vec::with_capacity(len as usize);
    for _ in 0..len {
        params.push(buf.get_f32_le());
    }
    Some(WireMessage {
        kind,
        round,
        level,
        cluster,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WireMessage {
        WireMessage {
            kind: WireKind::Flag,
            round: 42,
            level: 2,
            cluster: 7,
            params: vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE],
        }
    }

    #[test]
    fn roundtrip() {
        let msg = sample();
        let decoded = decode(encode(&msg)).expect("roundtrip failed");
        assert_eq!(decoded, msg);
    }

    #[test]
    fn encoded_len_matches() {
        let msg = sample();
        assert_eq!(encode(&msg).len(), encoded_len(4));
    }

    #[test]
    fn empty_params_roundtrip() {
        let msg = WireMessage {
            params: vec![],
            ..sample()
        };
        assert_eq!(decode(encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = encode(&sample()).to_vec();
        raw[0] ^= 0xFF;
        assert!(decode(Bytes::from(raw)).is_none());
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut raw = encode(&sample()).to_vec();
        raw[4] = 99;
        assert!(decode(Bytes::from(raw)).is_none());
    }

    #[test]
    fn truncated_payload_rejected() {
        let raw = encode(&sample());
        let truncated = raw.slice(..raw.len() - 2);
        assert!(decode(truncated).is_none());
    }

    #[test]
    fn length_mismatch_rejected() {
        // Claim more params than present.
        let mut raw = encode(&sample()).to_vec();
        raw[16] = 200; // length field low byte
        assert!(decode(Bytes::from(raw)).is_none());
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(decode(Bytes::from_static(b"hi")).is_none());
    }

    #[test]
    fn special_floats_survive() {
        let msg = WireMessage {
            params: vec![f32::INFINITY, f32::NEG_INFINITY, -0.0, 1e-38],
            ..sample()
        };
        let d = decode(encode(&msg)).unwrap();
        assert_eq!(d.params[0], f32::INFINITY);
        assert_eq!(d.params[1], f32::NEG_INFINITY);
        assert_eq!(d.params[2], -0.0);
    }
}
