//! The fault-plan DSL: *what* goes wrong and *when*, as data.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultSpec`]s — each names a
//! round at which a [`FaultKind`] activates. Plans are plain data
//! (serde-serializable, embeddable in `HflConfig`), are validated
//! against a concrete [`Hierarchy`] before use, and carry no
//! randomness themselves: all stochastic choices (burst-loss draws,
//! churn draws) happen in the compiled
//! [`FaultInjector`](crate::FaultInjector) under the experiment seed,
//! so the same plan + seed always injects the same faults.

use hfl_simnet::topology::Hierarchy;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One class of injected fault.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Node halts permanently (crash-stop): it trains nothing, sends
    /// nothing, and receives nothing from its activation round on.
    CrashStop {
        /// The crashed device (bottom-level client id).
        node: usize,
    },
    /// Node halts, then rejoins at `recover_round` with whatever global
    /// model it is sent (crash-recover).
    CrashRecover {
        /// The crashed device.
        node: usize,
        /// First round the node participates again (exclusive crash
        /// window end; must be `> at_round`).
        recover_round: usize,
    },
    /// Crash the *leader* of a named cluster — resolved to its device id
    /// at compile time so plans can target roles, not raw ids.
    LeaderKill {
        /// Hierarchy level of the cluster (0 = top).
        level: usize,
        /// Cluster index within the level.
        cluster: usize,
        /// `Some(r)`: the leader rejoins at round `r`; `None`: crash-stop.
        recover_round: Option<usize>,
    },
    /// Node's uplink slows down by `factor` (straggler).
    Straggler {
        /// The slow device.
        node: usize,
        /// Delay multiplier (≥ 1).
        factor: f64,
        /// `Some(r)`: back to normal at round `r`; `None`: forever.
        until_round: Option<usize>,
    },
    /// Extra per-message drop probability on every link while active.
    LossBurst {
        /// Drop probability in `[0, 1)`, applied on top of the channel's
        /// base loss.
        prob: f64,
        /// Round the burst ends (exclusive; must be `> at_round`).
        until_round: usize,
    },
    /// The network splits into disjoint groups; traffic between groups
    /// is dropped until the partition heals. Nodes not listed in any
    /// group form an implicit extra group.
    Partition {
        /// Disjoint, non-empty groups of device ids.
        groups: Vec<Vec<usize>>,
        /// Round the partition heals (exclusive; must be `> at_round`).
        heal_round: usize,
    },
    /// Overrides the config's churn: bottom-level clients independently
    /// sit out each round with probability `leave_prob` while active.
    Churn {
        /// Per-round leave probability in `[0, 1)`.
        leave_prob: f64,
        /// `Some(r)`: churn reverts at round `r`; `None`: forever.
        until_round: Option<usize>,
    },
}

impl FaultKind {
    /// Short stable label used in telemetry events and manifests.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::CrashStop { .. } => "crash_stop",
            FaultKind::CrashRecover { .. } => "crash_recover",
            FaultKind::LeaderKill { .. } => "leader_kill",
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::LossBurst { .. } => "loss_burst",
            FaultKind::Partition { .. } => "partition",
            FaultKind::Churn { .. } => "churn",
        }
    }
}

/// A fault plus its activation round.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Round (0-based) at which the fault activates.
    pub at_round: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A whole experiment's fault schedule.
///
/// Built with the chainable constructors:
///
/// ```
/// use hfl_faults::FaultPlan;
/// let plan = FaultPlan::new()
///     .crash_stop(5, 3)
///     .kill_leader(5, 2, 0, Some(12))
///     .partition(4, vec![vec![0, 1, 2, 3]], 8);
/// assert_eq!(plan.specs.len(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The schedule, in insertion order.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    fn with(mut self, at_round: usize, kind: FaultKind) -> Self {
        self.specs.push(FaultSpec { at_round, kind });
        self
    }

    /// Crash-stop `node` at `at_round`.
    pub fn crash_stop(self, at_round: usize, node: usize) -> Self {
        self.with(at_round, FaultKind::CrashStop { node })
    }

    /// Crash `node` at `at_round`, recovering at `recover_round`.
    pub fn crash_recover(self, at_round: usize, node: usize, recover_round: usize) -> Self {
        self.with(
            at_round,
            FaultKind::CrashRecover {
                node,
                recover_round,
            },
        )
    }

    /// Kill the leader of `level`/`cluster` at `at_round`; `recover_round`
    /// as in [`FaultKind::LeaderKill`].
    pub fn kill_leader(
        self,
        at_round: usize,
        level: usize,
        cluster: usize,
        recover_round: Option<usize>,
    ) -> Self {
        self.with(
            at_round,
            FaultKind::LeaderKill {
                level,
                cluster,
                recover_round,
            },
        )
    }

    /// Inflate `node`'s uplink delay by `factor` from `at_round` until
    /// `until_round` (or forever).
    pub fn straggler(
        self,
        at_round: usize,
        node: usize,
        factor: f64,
        until_round: Option<usize>,
    ) -> Self {
        self.with(
            at_round,
            FaultKind::Straggler {
                node,
                factor,
                until_round,
            },
        )
    }

    /// Add a loss burst of probability `prob` over `[at_round, until_round)`.
    pub fn loss_burst(self, at_round: usize, prob: f64, until_round: usize) -> Self {
        self.with(at_round, FaultKind::LossBurst { prob, until_round })
    }

    /// Partition the network into `groups` over `[at_round, heal_round)`.
    pub fn partition(self, at_round: usize, groups: Vec<Vec<usize>>, heal_round: usize) -> Self {
        self.with(at_round, FaultKind::Partition { groups, heal_round })
    }

    /// Override churn to `leave_prob` from `at_round` until `until_round`
    /// (or forever).
    pub fn churn(self, at_round: usize, leave_prob: f64, until_round: Option<usize>) -> Self {
        self.with(
            at_round,
            FaultKind::Churn {
                leave_prob,
                until_round,
            },
        )
    }

    /// Checks every spec against a concrete hierarchy. All errors are
    /// recoverable ([`FaultPlanError`] implements `Display`); a valid
    /// plan compiles into a [`FaultInjector`](crate::FaultInjector).
    pub fn validate(&self, hierarchy: &Hierarchy) -> Result<(), FaultPlanError> {
        let n = hierarchy.num_clients();
        let check_node = |spec: usize, node: usize| {
            if node >= n {
                Err(FaultPlanError::NodeOutOfRange {
                    spec,
                    node,
                    clients: n,
                })
            } else {
                Ok(())
            }
        };
        let check_prob = |spec: usize, what: &'static str, p: f64| {
            if !(0.0..1.0).contains(&p) {
                Err(FaultPlanError::ProbabilityOutOfRange {
                    spec,
                    what,
                    value: p,
                })
            } else {
                Ok(())
            }
        };
        let check_window = |spec: usize, at: usize, end: usize| {
            if end <= at {
                Err(FaultPlanError::EmptyWindow {
                    spec,
                    at_round: at,
                    end_round: end,
                })
            } else {
                Ok(())
            }
        };
        for (i, s) in self.specs.iter().enumerate() {
            match &s.kind {
                FaultKind::CrashStop { node } => check_node(i, *node)?,
                FaultKind::CrashRecover {
                    node,
                    recover_round,
                } => {
                    check_node(i, *node)?;
                    check_window(i, s.at_round, *recover_round)?;
                }
                FaultKind::LeaderKill {
                    level,
                    cluster,
                    recover_round,
                } => {
                    if *level >= hierarchy.num_levels()
                        || *cluster >= hierarchy.level(*level).num_clusters()
                    {
                        return Err(FaultPlanError::NoSuchCluster {
                            spec: i,
                            level: *level,
                            cluster: *cluster,
                        });
                    }
                    if let Some(r) = recover_round {
                        check_window(i, s.at_round, *r)?;
                    }
                }
                FaultKind::Straggler {
                    node,
                    factor,
                    until_round,
                } => {
                    check_node(i, *node)?;
                    if !factor.is_finite() || *factor < 1.0 {
                        return Err(FaultPlanError::BadStragglerFactor {
                            spec: i,
                            factor: *factor,
                        });
                    }
                    if let Some(r) = until_round {
                        check_window(i, s.at_round, *r)?;
                    }
                }
                FaultKind::LossBurst { prob, until_round } => {
                    check_prob(i, "loss burst probability", *prob)?;
                    check_window(i, s.at_round, *until_round)?;
                }
                FaultKind::Partition { groups, heal_round } => {
                    check_window(i, s.at_round, *heal_round)?;
                    if groups.is_empty() || groups.iter().any(Vec::is_empty) {
                        return Err(FaultPlanError::EmptyPartitionGroup { spec: i });
                    }
                    let mut seen = vec![false; n];
                    for g in groups {
                        for &node in g {
                            check_node(i, node)?;
                            if seen[node] {
                                return Err(FaultPlanError::OverlappingPartitionGroups {
                                    spec: i,
                                    node,
                                });
                            }
                            seen[node] = true;
                        }
                    }
                }
                FaultKind::Churn {
                    leave_prob,
                    until_round,
                } => {
                    check_prob(i, "churn leave probability", *leave_prob)?;
                    if let Some(r) = until_round {
                        check_window(i, s.at_round, *r)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Why a [`FaultPlan`] is unusable against a given hierarchy.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultPlanError {
    /// A spec names a device id beyond the client count.
    NodeOutOfRange {
        /// Index of the offending spec in `plan.specs`.
        spec: usize,
        /// The offending node id.
        node: usize,
        /// Number of clients in the hierarchy.
        clients: usize,
    },
    /// A `LeaderKill` names a level/cluster pair that doesn't exist.
    NoSuchCluster {
        /// Index of the offending spec.
        spec: usize,
        /// Named level.
        level: usize,
        /// Named cluster.
        cluster: usize,
    },
    /// A probability fell outside `[0, 1)`.
    ProbabilityOutOfRange {
        /// Index of the offending spec.
        spec: usize,
        /// Which probability.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A window's end round is not after its activation round.
    EmptyWindow {
        /// Index of the offending spec.
        spec: usize,
        /// Activation round.
        at_round: usize,
        /// End round.
        end_round: usize,
    },
    /// A straggler factor below 1 (or non-finite) would *speed up* the node.
    BadStragglerFactor {
        /// Index of the offending spec.
        spec: usize,
        /// The offending factor.
        factor: f64,
    },
    /// A partition listed no groups or an empty group.
    EmptyPartitionGroup {
        /// Index of the offending spec.
        spec: usize,
    },
    /// A node appears in two partition groups.
    OverlappingPartitionGroups {
        /// Index of the offending spec.
        spec: usize,
        /// The node listed twice.
        node: usize,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::NodeOutOfRange { spec, node, clients } => write!(
                f,
                "fault spec {spec}: node {node} out of range (hierarchy has {clients} clients)"
            ),
            FaultPlanError::NoSuchCluster { spec, level, cluster } => write!(
                f,
                "fault spec {spec}: no cluster {cluster} at level {level}"
            ),
            FaultPlanError::ProbabilityOutOfRange { spec, what, value } => write!(
                f,
                "fault spec {spec}: {what} must be in [0, 1), got {value}"
            ),
            FaultPlanError::EmptyWindow { spec, at_round, end_round } => write!(
                f,
                "fault spec {spec}: window end round {end_round} must be after activation round {at_round}"
            ),
            FaultPlanError::BadStragglerFactor { spec, factor } => write!(
                f,
                "fault spec {spec}: straggler factor must be a finite value >= 1, got {factor}"
            ),
            FaultPlanError::EmptyPartitionGroup { spec } => write!(
                f,
                "fault spec {spec}: partition groups must be non-empty"
            ),
            FaultPlanError::OverlappingPartitionGroups { spec, node } => write!(
                f,
                "fault spec {spec}: node {node} appears in more than one partition group"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hierarchy {
        // 3 levels, clusters of 2, 2 top clusters: 8 clients.
        Hierarchy::ecsm(3, 2, 2)
    }

    #[test]
    fn empty_plan_is_valid() {
        assert_eq!(FaultPlan::new().validate(&h()), Ok(()));
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn full_plan_validates() {
        let plan = FaultPlan::new()
            .crash_stop(5, 0)
            .crash_recover(5, 1, 9)
            .kill_leader(3, 2, 1, Some(7))
            .straggler(0, 2, 4.0, Some(10))
            .loss_burst(2, 0.5, 6)
            .partition(4, vec![vec![0, 1], vec![2, 3]], 8)
            .churn(1, 0.3, None);
        assert_eq!(plan.validate(&h()), Ok(()));
    }

    #[test]
    fn node_bounds_checked() {
        let err = FaultPlan::new().crash_stop(0, 99).validate(&h());
        assert!(matches!(
            err,
            Err(FaultPlanError::NodeOutOfRange { node: 99, .. })
        ));
    }

    #[test]
    fn bad_cluster_rejected() {
        let err = FaultPlan::new().kill_leader(0, 9, 0, None).validate(&h());
        assert!(matches!(
            err,
            Err(FaultPlanError::NoSuchCluster { level: 9, .. })
        ));
    }

    #[test]
    fn probabilities_must_stay_below_one() {
        let err = FaultPlan::new().loss_burst(0, 1.0, 5).validate(&h());
        assert!(matches!(
            err,
            Err(FaultPlanError::ProbabilityOutOfRange { value, .. }) if value == 1.0
        ));
    }

    #[test]
    fn windows_must_be_nonempty() {
        let err = FaultPlan::new().crash_recover(5, 0, 5).validate(&h());
        assert!(matches!(err, Err(FaultPlanError::EmptyWindow { .. })));
    }

    #[test]
    fn straggler_speedups_rejected() {
        let err = FaultPlan::new().straggler(0, 0, 0.5, None).validate(&h());
        assert!(matches!(
            err,
            Err(FaultPlanError::BadStragglerFactor { .. })
        ));
    }

    #[test]
    fn overlapping_groups_rejected() {
        let err = FaultPlan::new()
            .partition(0, vec![vec![0, 1], vec![1, 2]], 4)
            .validate(&h());
        assert!(matches!(
            err,
            Err(FaultPlanError::OverlappingPartitionGroups { node: 1, .. })
        ));
    }

    #[test]
    fn errors_render_readably() {
        let err = FaultPlan::new()
            .crash_stop(0, 99)
            .validate(&h())
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("node 99"), "{msg}");
        assert!(msg.contains("clients"), "{msg}");
    }
}
