//! Compiling a [`FaultPlan`] into per-round queries.
//!
//! The injector resolves role-based specs (leader kills) to device ids,
//! indexes every window by round, and answers the questions the runner
//! and simulator ask on the hot path: *is this node crashed now? does
//! this link cross a partition? what's the current burst loss?* All
//! answers are pure functions of `(plan, hierarchy, seed, round)` —
//! no interior mutability, no wall clock — so fault-injected runs stay
//! byte-reproducible.

use std::collections::BTreeMap;

use hfl_simnet::topology::Hierarchy;

use crate::plan::{FaultKind, FaultPlan, FaultPlanError};

/// One manifest-ready fault or recovery occurrence at a known round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Stable kind label (`crash_stop`, `recover`, `partition_heal`, ...).
    pub kind: String,
    /// Deterministic human-readable detail.
    pub detail: String,
}

#[derive(Clone, Debug)]
struct StragglerWindow {
    node: usize,
    from: usize,
    until: Option<usize>,
    factor: f64,
}

#[derive(Clone, Debug)]
struct BurstWindow {
    from: usize,
    until: usize,
    prob: f64,
}

#[derive(Clone, Debug)]
struct PartitionWindow {
    from: usize,
    heal: usize,
    /// `group_of[node]`: partition group id; unlisted nodes share the
    /// implicit last group.
    group_of: Vec<usize>,
}

#[derive(Clone, Debug)]
struct ChurnWindow {
    from: usize,
    until: Option<usize>,
    prob: f64,
}

/// A compiled, queryable fault schedule. Built by [`FaultInjector::compile`].
#[derive(Clone, Debug)]
pub struct FaultInjector {
    seed: u64,
    num_nodes: usize,
    /// Per node: round it crashes, if any (later specs win).
    crash_from: Vec<Option<usize>>,
    /// Per node: round it recovers, if any.
    recover_at: Vec<Option<usize>>,
    stragglers: Vec<StragglerWindow>,
    bursts: Vec<BurstWindow>,
    partitions: Vec<PartitionWindow>,
    churn: Vec<ChurnWindow>,
    records: BTreeMap<usize, Vec<FaultEvent>>,
}

/// SplitMix64: the deterministic per-(seed, coordinates) hash behind
/// burst-loss upload draws. Matches the constants of Steele et al.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from a chain of SplitMix64 rounds over the
/// given words.
fn hash_unit(words: &[u64]) -> f64 {
    let mut acc = 0xABD0_F417_5EED_0001u64;
    for &w in words {
        acc = splitmix64(acc ^ w);
    }
    // 53 mantissa bits, same construction as rand's f64 sampling.
    (acc >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultInjector {
    /// Validates `plan` against `hierarchy` and compiles it. `seed`
    /// drives the injector's own stochastic draws (burst-loss uploads);
    /// use the experiment seed so one seed fixes the whole run.
    pub fn compile(
        plan: &FaultPlan,
        hierarchy: &Hierarchy,
        seed: u64,
    ) -> Result<Self, FaultPlanError> {
        plan.validate(hierarchy)?;
        let n = hierarchy.num_clients();
        let mut inj = FaultInjector {
            seed,
            num_nodes: n,
            crash_from: vec![None; n],
            recover_at: vec![None; n],
            stragglers: Vec::new(),
            bursts: Vec::new(),
            partitions: Vec::new(),
            churn: Vec::new(),
            records: BTreeMap::new(),
        };
        let mut record = |round: usize, kind: &str, detail: String| {
            inj.records.entry(round).or_default().push(FaultEvent {
                kind: kind.to_string(),
                detail,
            });
        };
        // Borrowed mutably by the closure; collect crash bookkeeping
        // separately and merge after.
        let mut crashes: Vec<(usize, usize, Option<usize>)> = Vec::new();
        let mut stragglers = Vec::new();
        let mut bursts = Vec::new();
        let mut partitions = Vec::new();
        let mut churn = Vec::new();
        for spec in &plan.specs {
            let at = spec.at_round;
            match &spec.kind {
                FaultKind::CrashStop { node } => {
                    crashes.push((*node, at, None));
                    record(at, "crash_stop", format!("node {node} crashes"));
                }
                FaultKind::CrashRecover {
                    node,
                    recover_round,
                } => {
                    crashes.push((*node, at, Some(*recover_round)));
                    record(
                        at,
                        "crash_recover",
                        format!("node {node} crashes until round {recover_round}"),
                    );
                    record(*recover_round, "recover", format!("node {node} rejoins"));
                }
                FaultKind::LeaderKill {
                    level,
                    cluster,
                    recover_round,
                } => {
                    let node = hierarchy.level(*level).clusters[*cluster].leader();
                    crashes.push((node, at, *recover_round));
                    record(
                        at,
                        "leader_kill",
                        format!("leader of level {level} cluster {cluster} (node {node}) crashes"),
                    );
                    if let Some(r) = recover_round {
                        record(*r, "recover", format!("node {node} rejoins"));
                    }
                }
                FaultKind::Straggler {
                    node,
                    factor,
                    until_round,
                } => {
                    stragglers.push(StragglerWindow {
                        node: *node,
                        from: at,
                        until: *until_round,
                        factor: *factor,
                    });
                    record(at, "straggler", format!("node {node} slows by {factor}x"));
                    if let Some(r) = until_round {
                        record(*r, "straggler_end", format!("node {node} back to speed"));
                    }
                }
                FaultKind::LossBurst { prob, until_round } => {
                    bursts.push(BurstWindow {
                        from: at,
                        until: *until_round,
                        prob: *prob,
                    });
                    record(
                        at,
                        "loss_burst",
                        format!("drop probability {prob} until round {until_round}"),
                    );
                    record(*until_round, "loss_burst_end", "burst over".to_string());
                }
                FaultKind::Partition { groups, heal_round } => {
                    // Unlisted nodes form the implicit group `groups.len()`.
                    let mut group_of = vec![groups.len(); n];
                    for (g, members) in groups.iter().enumerate() {
                        for &node in members {
                            group_of[node] = g;
                        }
                    }
                    partitions.push(PartitionWindow {
                        from: at,
                        heal: *heal_round,
                        group_of,
                    });
                    record(
                        at,
                        "partition",
                        format!("groups {groups:?} split until round {heal_round}"),
                    );
                    record(
                        *heal_round,
                        "partition_heal",
                        format!("groups {groups:?} rejoined"),
                    );
                }
                FaultKind::Churn {
                    leave_prob,
                    until_round,
                } => {
                    churn.push(ChurnWindow {
                        from: at,
                        until: *until_round,
                        prob: *leave_prob,
                    });
                    record(at, "churn", format!("leave probability {leave_prob}"));
                    if let Some(r) = until_round {
                        record(*r, "churn_end", "churn reverts".to_string());
                    }
                }
            }
        }
        for (node, at, rec) in crashes {
            inj.crash_from[node] = Some(at);
            inj.recover_at[node] = rec;
        }
        inj.stragglers = stragglers;
        inj.bursts = bursts;
        inj.partitions = partitions;
        inj.churn = churn;
        Ok(inj)
    }

    /// Number of devices the injector was compiled against.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// True when `node` is down at `round`.
    pub fn crashed(&self, node: usize, round: usize) -> bool {
        match self.crash_from[node] {
            Some(from) => round >= from && self.recover_at[node].is_none_or(|r| round < r),
            None => false,
        }
    }

    /// Delay multiplier for `node`'s uplink at `round` (≥ 1; the max of
    /// all active straggler windows).
    pub fn straggle_factor(&self, node: usize, round: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|w| w.node == node && round >= w.from && w.until.is_none_or(|u| round < u))
            .map(|w| w.factor)
            .fold(1.0, f64::max)
    }

    /// Extra per-message drop probability at `round` (the max of all
    /// active bursts; 0 when quiet).
    pub fn burst_loss(&self, round: usize) -> f64 {
        self.bursts
            .iter()
            .filter(|b| round >= b.from && round < b.until)
            .map(|b| b.prob)
            .fold(0.0, f64::max)
    }

    /// True when an active partition separates `a` from `b` at `round`.
    pub fn partitioned(&self, a: usize, b: usize, round: usize) -> bool {
        self.partitions
            .iter()
            .filter(|p| round >= p.from && round < p.heal)
            .any(|p| p.group_of[a] != p.group_of[b])
    }

    /// Churn override at `round`: `Some(p)` while a churn window is
    /// active (the latest-declared active window wins), else `None`
    /// (fall back to the config's churn).
    pub fn churn_leave_prob(&self, round: usize) -> Option<f64> {
        self.churn
            .iter()
            .rfind(|c| round >= c.from && c.until.is_none_or(|u| round < u))
            .map(|c| c.prob)
    }

    /// Deterministic burst-loss draw for one upload: does the update
    /// from `member` toward its collector at (`level`, `cluster`) get
    /// dropped at `round`? Same (seed, coordinates) → same answer.
    pub fn drop_upload(&self, round: usize, level: usize, cluster: usize, member: usize) -> bool {
        let p = self.burst_loss(round);
        p > 0.0
            && hash_unit(&[
                self.seed,
                round as u64,
                level as u64,
                cluster as u64,
                member as u64,
            ]) < p
    }

    /// True when the plan injects any fault that suppresses message
    /// delivery (crashes, partitions, loss bursts) — drivers that need
    /// a timeout to survive missing messages check this.
    pub fn has_delivery_faults(&self) -> bool {
        self.crash_from.iter().any(Option::is_some)
            || !self.partitions.is_empty()
            || !self.bursts.is_empty()
    }

    /// Fault and recovery occurrences scheduled exactly at `round`, in
    /// plan order — the manifest's per-round fault log.
    pub fn faults_at(&self, round: usize) -> &[FaultEvent] {
        self.records.get(&round).map_or(&[], Vec::as_slice)
    }

    /// Scheduled occurrences strictly before `round` — the schedule
    /// cursor a checkpoint of a run paused at `round` carries, letting
    /// resume validate it was handed the same fault plan.
    pub fn events_before(&self, round: usize) -> u64 {
        self.records
            .iter()
            .filter(|(&r, _)| r < round)
            .map(|(_, v)| v.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    fn h() -> Hierarchy {
        Hierarchy::ecsm(3, 2, 2)
    }

    fn compile(plan: FaultPlan) -> FaultInjector {
        FaultInjector::compile(&plan, &h(), 42).expect("plan must compile")
    }

    #[test]
    fn crash_stop_never_recovers() {
        let inj = compile(FaultPlan::new().crash_stop(5, 3));
        assert!(!inj.crashed(3, 4));
        assert!(inj.crashed(3, 5));
        assert!(inj.crashed(3, 500));
        assert!(!inj.crashed(2, 5));
    }

    #[test]
    fn crash_recover_window_is_half_open() {
        let inj = compile(FaultPlan::new().crash_recover(5, 3, 9));
        assert!(!inj.crashed(3, 4));
        assert!(inj.crashed(3, 5));
        assert!(inj.crashed(3, 8));
        assert!(!inj.crashed(3, 9));
    }

    #[test]
    fn leader_kill_resolves_to_device() {
        let hier = h();
        let leader = hier.level(1).clusters[1].leader();
        let inj =
            FaultInjector::compile(&FaultPlan::new().kill_leader(2, 1, 1, None), &hier, 0).unwrap();
        assert!(inj.crashed(leader, 2));
    }

    #[test]
    fn straggler_factor_is_max_of_active_windows() {
        let inj = compile(FaultPlan::new().straggler(0, 1, 2.0, Some(10)).straggler(
            3,
            1,
            8.0,
            Some(6),
        ));
        assert_eq!(inj.straggle_factor(1, 0), 2.0);
        assert_eq!(inj.straggle_factor(1, 4), 8.0);
        assert_eq!(inj.straggle_factor(1, 7), 2.0);
        assert_eq!(inj.straggle_factor(1, 10), 1.0);
        assert_eq!(inj.straggle_factor(0, 4), 1.0);
    }

    #[test]
    fn events_before_counts_strictly_earlier_occurrences() {
        let inj = compile(FaultPlan::new().crash_stop(2, 3).loss_burst(4, 0.5, 6));
        assert_eq!(inj.events_before(0), 0);
        assert_eq!(inj.events_before(2), 0);
        assert_eq!(inj.events_before(3), 1); // crash at round 2
        assert_eq!(inj.events_before(5), 2); // + burst onset at round 4
        assert_eq!(inj.events_before(100), inj.events_before(7));
    }

    #[test]
    fn burst_loss_window() {
        let inj = compile(FaultPlan::new().loss_burst(2, 0.5, 6));
        assert_eq!(inj.burst_loss(1), 0.0);
        assert_eq!(inj.burst_loss(2), 0.5);
        assert_eq!(inj.burst_loss(5), 0.5);
        assert_eq!(inj.burst_loss(6), 0.0);
    }

    #[test]
    fn partition_separates_groups_and_heals() {
        let inj = compile(FaultPlan::new().partition(4, vec![vec![0, 1]], 8));
        // 0 and 1 are in the named group; everyone else in the implicit one.
        assert!(!inj.partitioned(0, 2, 3));
        assert!(inj.partitioned(0, 2, 4));
        assert!(inj.partitioned(2, 1, 7));
        assert!(!inj.partitioned(0, 1, 5));
        assert!(!inj.partitioned(2, 3, 5));
        assert!(!inj.partitioned(0, 2, 8));
    }

    #[test]
    fn churn_override_latest_wins() {
        let inj = compile(
            FaultPlan::new()
                .churn(2, 0.3, Some(10))
                .churn(4, 0.6, Some(6)),
        );
        assert_eq!(inj.churn_leave_prob(1), None);
        assert_eq!(inj.churn_leave_prob(2), Some(0.3));
        assert_eq!(inj.churn_leave_prob(5), Some(0.6));
        assert_eq!(inj.churn_leave_prob(7), Some(0.3));
        assert_eq!(inj.churn_leave_prob(10), None);
    }

    #[test]
    fn drop_upload_is_deterministic_and_roughly_calibrated() {
        let inj = compile(FaultPlan::new().loss_burst(0, 0.5, 1));
        let mut dropped = 0;
        for member in 0..1000 {
            let a = inj.drop_upload(0, 2, 0, member);
            let b = inj.drop_upload(0, 2, 0, member);
            assert_eq!(a, b, "same coordinates must draw the same");
            if a {
                dropped += 1;
            }
        }
        assert!(
            (350..650).contains(&dropped),
            "dropped {dropped}/1000 at p=0.5"
        );
        // Quiet round: no drops at all.
        assert!(!inj.drop_upload(1, 2, 0, 0));
    }

    #[test]
    fn records_land_on_their_rounds() {
        let inj = compile(FaultPlan::new().crash_recover(5, 3, 9).partition(
            4,
            vec![vec![0, 1]],
            8,
        ));
        let kinds =
            |r: usize| -> Vec<String> { inj.faults_at(r).iter().map(|e| e.kind.clone()).collect() };
        assert_eq!(kinds(4), vec!["partition"]);
        assert_eq!(kinds(5), vec!["crash_recover"]);
        assert_eq!(kinds(8), vec!["partition_heal"]);
        assert_eq!(kinds(9), vec!["recover"]);
        assert!(inj.faults_at(0).is_empty());
    }

    #[test]
    fn delivery_fault_detection() {
        assert!(!compile(FaultPlan::new().churn(0, 0.2, None)).has_delivery_faults());
        assert!(!compile(FaultPlan::new().straggler(0, 0, 2.0, None)).has_delivery_faults());
        assert!(compile(FaultPlan::new().crash_stop(0, 0)).has_delivery_faults());
        assert!(compile(FaultPlan::new().loss_burst(0, 0.1, 2)).has_delivery_faults());
        assert!(compile(FaultPlan::new().partition(0, vec![vec![0]], 2)).has_delivery_faults());
    }
}
