//! # hfl-faults — deterministic fault injection for ABD-HFL
//!
//! The paper's availability claims (Algorithm 4 collects "until quorum
//! *or Timeout*"; §III-D's pipeline exists because leaders and clients
//! fail or straggle) need a systematic way to make things go wrong —
//! reproducibly. This crate provides it in three layers:
//!
//! 1. [`FaultPlan`] — a declarative schedule of faults as plain data:
//!    crash-stop and crash-recover nodes, leader kills, straggler delay
//!    inflation, message-loss bursts, network partitions with heal
//!    times, and churn overrides. Plans validate against a concrete
//!    hierarchy before use.
//! 2. [`FaultInjector`] — the compiled form: per-round queries
//!    (`crashed`, `partitioned`, `burst_loss`, `straggle_factor`,
//!    `churn_leave_prob`, `drop_upload`) that the synchronous runner
//!    consults every round, plus [`FaultInjector::faults_at`] feeding
//!    the run manifest's fault log.
//! 3. [`TimelineFaults`] — an adapter implementing the simulator's
//!    `LinkFault` hook so the same plan also governs the discrete-event
//!    pipeline: sends from/to crashed nodes are dropped, cross-partition
//!    links are cut, bursts drop stochastically (under the simulation's
//!    seeded RNG), and stragglers' uplink delays inflate.
//!
//! ## Determinism
//!
//! Everything is a pure function of `(plan, hierarchy, seed, round)`.
//! The injector never touches a wall clock or global RNG: burst draws
//! in the synchronous runner use a SplitMix64 hash of the seed and the
//! message coordinates, and the simulator adapter draws from the
//! simulation's own seeded RNG stream. Two runs with identical seeds
//! and plans produce byte-identical manifests.

#![warn(missing_docs)]

pub mod injector;
pub mod netview;
pub mod plan;

pub use injector::{FaultEvent, FaultInjector};
pub use netview::TimelineFaults;
pub use plan::{FaultKind, FaultPlan, FaultPlanError, FaultSpec};
