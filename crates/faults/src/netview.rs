//! Bridging a [`FaultInjector`] into the discrete-event simulator.
//!
//! The injector thinks in *rounds*; the simulator thinks in *simulated
//! time*. [`TimelineFaults`] owns the conversion: the driver declares a
//! nominal round period and every send is classified under the round
//! its send time falls into. The mapping is an approximation (a slow
//! round drifts past its nominal window) but a deterministic one, which
//! is what matters for reproducibility.

use hfl_simnet::engine::{LinkFate, LinkFault, NodeId};
use hfl_simnet::time::SimTime;
use rand::rngs::StdRng;

use crate::injector::FaultInjector;

/// A [`LinkFault`] implementation that evaluates a compiled
/// [`FaultInjector`] on every send, mapping simulated time to rounds
/// by a fixed nominal period.
#[derive(Clone, Debug)]
pub struct TimelineFaults {
    injector: FaultInjector,
    round_period: SimTime,
}

impl TimelineFaults {
    /// Wraps `injector`, treating each `round_period` of simulated time
    /// as one round.
    ///
    /// # Panics
    /// If `round_period` is zero.
    pub fn new(injector: FaultInjector, round_period: SimTime) -> Self {
        assert!(
            round_period.as_micros() > 0,
            "round period must be positive"
        );
        Self {
            injector,
            round_period,
        }
    }

    /// The round that simulated time `now` falls into.
    pub fn round_at(&self, now: SimTime) -> usize {
        (now.as_micros() / self.round_period.as_micros()) as usize
    }

    /// The wrapped injector.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }
}

impl LinkFault for TimelineFaults {
    fn classify(&mut self, src: NodeId, dst: NodeId, now: SimTime, rng: &mut StdRng) -> LinkFate {
        let round = self.round_at(now);
        let n = self.injector.num_nodes();
        // Ids beyond the compiled hierarchy (e.g. auxiliary actors) are
        // never crashed or partitioned, only burst-lossed.
        if (src < n && self.injector.crashed(src, round))
            || (dst < n && self.injector.crashed(dst, round))
        {
            return LinkFate::DropCrash;
        }
        if src < n && dst < n && self.injector.partitioned(src, dst, round) {
            return LinkFate::DropPartition;
        }
        let p = self.injector.burst_loss(round);
        if p > 0.0 && rand::Rng::gen_bool(rng, p) {
            return LinkFate::DropBurst;
        }
        LinkFate::Deliver
    }

    fn delay_factor(&mut self, src: NodeId, now: SimTime) -> f64 {
        if src < self.injector.num_nodes() {
            self.injector.straggle_factor(src, self.round_at(now))
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use hfl_simnet::topology::Hierarchy;
    use rand::SeedableRng;

    fn faults(plan: FaultPlan, period_us: u64) -> TimelineFaults {
        let h = Hierarchy::ecsm(3, 2, 2);
        let inj = FaultInjector::compile(&plan, &h, 7).unwrap();
        TimelineFaults::new(inj, SimTime::from_micros(period_us))
    }

    #[test]
    fn rounds_advance_with_time() {
        let tf = faults(FaultPlan::new(), 1_000);
        assert_eq!(tf.round_at(SimTime::ZERO), 0);
        assert_eq!(tf.round_at(SimTime::from_micros(999)), 0);
        assert_eq!(tf.round_at(SimTime::from_micros(1_000)), 1);
        assert_eq!(tf.round_at(SimTime::from_micros(5_500)), 5);
    }

    #[test]
    fn crashed_endpoint_drops_both_directions() {
        let mut tf = faults(FaultPlan::new().crash_stop(2, 3), 1_000);
        let mut rng = StdRng::seed_from_u64(0);
        let t = SimTime::from_micros(2_500);
        assert_eq!(tf.classify(3, 0, t, &mut rng), LinkFate::DropCrash);
        assert_eq!(tf.classify(0, 3, t, &mut rng), LinkFate::DropCrash);
        assert_eq!(tf.classify(0, 1, t, &mut rng), LinkFate::Deliver);
        // Before the crash round everything flows.
        let early = SimTime::from_micros(500);
        assert_eq!(tf.classify(3, 0, early, &mut rng), LinkFate::Deliver);
    }

    #[test]
    fn partition_blocks_cross_group_links_until_heal() {
        let mut tf = faults(FaultPlan::new().partition(1, vec![vec![0, 1]], 3), 1_000);
        let mut rng = StdRng::seed_from_u64(0);
        let during = SimTime::from_micros(1_500);
        let after = SimTime::from_micros(3_500);
        assert_eq!(tf.classify(0, 4, during, &mut rng), LinkFate::DropPartition);
        assert_eq!(tf.classify(0, 1, during, &mut rng), LinkFate::Deliver);
        assert_eq!(tf.classify(0, 4, after, &mut rng), LinkFate::Deliver);
    }

    #[test]
    fn burst_drops_are_stochastic_but_windowed() {
        let mut tf = faults(FaultPlan::new().loss_burst(0, 0.5, 1), 1_000);
        let mut rng = StdRng::seed_from_u64(1);
        let mut dropped = 0;
        for _ in 0..1000 {
            if tf.classify(0, 1, SimTime::ZERO, &mut rng) == LinkFate::DropBurst {
                dropped += 1;
            }
        }
        assert!((350..650).contains(&dropped), "dropped {dropped}/1000");
        // Outside the window nothing drops.
        for _ in 0..100 {
            assert_eq!(
                tf.classify(0, 1, SimTime::from_micros(1_000), &mut rng),
                LinkFate::Deliver
            );
        }
    }

    #[test]
    fn straggler_inflates_delay_factor() {
        let mut tf = faults(FaultPlan::new().straggler(1, 2, 4.0, Some(3)), 1_000);
        assert_eq!(tf.delay_factor(2, SimTime::from_micros(1_500)), 4.0);
        assert_eq!(tf.delay_factor(2, SimTime::from_micros(3_500)), 1.0);
        assert_eq!(tf.delay_factor(0, SimTime::from_micros(1_500)), 1.0);
    }

    #[test]
    fn out_of_range_ids_pass_through() {
        let mut tf = faults(FaultPlan::new().crash_stop(0, 0), 1_000);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            tf.classify(100, 101, SimTime::from_micros(500), &mut rng),
            LinkFate::Deliver
        );
        assert_eq!(tf.delay_factor(100, SimTime::ZERO), 1.0);
    }

    #[test]
    #[should_panic(expected = "round period must be positive")]
    fn zero_period_rejected() {
        faults(FaultPlan::new(), 0);
    }
}
