//! Adaptive, defense-aware model poisoning: an adversary that persists
//! state across rounds and tunes its attack magnitude from public
//! defense feedback (was the crafted update accepted by the aggregator
//! last round?), plus protocol-level misbehaviors (equivocation,
//! selective withholding) that attack the *hierarchy* rather than the
//! aggregation rule.
//!
//! The magnitude search is a bisection over the acceptance boundary:
//! ALIE's `z` and IPM's `epsilon` trade damage (larger is worse for the
//! defender) against detectability (larger is easier to filter). A
//! static attack picks one point on that trade-off for the whole run;
//! the adaptive adversary walks to the largest magnitude the configured
//! defense still accepts — the attack model of benchmark suites such as
//! Blades and ByzFL, where defense-aware adversaries are the ones that
//! actually separate aggregation rules.
//!
//! Everything here is deterministic: the search consumes no RNG, so an
//! adaptive run stays bit-reproducible from the seed.

use serde::{Deserialize, Serialize};

use crate::model_poison::ModelAttack;

/// An adaptive attack family: which base attack to tune, its starting
/// magnitude, and the largest magnitude the search may probe.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AdaptiveAttack {
    /// Tune ALIE's `z` (honest standard deviations of shift).
    Alie {
        /// Initial `z` before any feedback arrives.
        z_init: f32,
        /// Upper bound of the search interval.
        z_max: f32,
    },
    /// Tune IPM's `epsilon` (negative-scaling factor).
    Ipm {
        /// Initial `epsilon` before any feedback arrives.
        eps_init: f32,
        /// Upper bound of the search interval.
        eps_max: f32,
    },
    /// Tune the scaling / Fall-of-Empires reflection magnitude: at
    /// magnitude `m` the coalition submits `−m · mean(honest)`
    /// ([`ModelAttack::Scaling`] with `factor = −m`), so the search walks
    /// the reflected boundary toward the largest blow-up the defense
    /// still accepts.
    Scaling {
        /// Initial reflection magnitude before any feedback arrives.
        factor_init: f32,
        /// Upper bound of the search interval.
        factor_max: f32,
    },
}

impl AdaptiveAttack {
    /// The paper-default ALIE adaptive family: start at the classic
    /// z = 1.5 and allow the search up to z = 6.
    pub fn alie_default() -> Self {
        AdaptiveAttack::Alie {
            z_init: 1.5,
            z_max: 6.0,
        }
    }

    /// The paper-default IPM adaptive family: start at ε = 0.5 and allow
    /// the search up to ε = 8 (beyond reflection).
    pub fn ipm_default() -> Self {
        AdaptiveAttack::Ipm {
            eps_init: 0.5,
            eps_max: 8.0,
        }
    }

    /// The default adaptive scaling family: start at the pure reflection
    /// m = 1 and allow the search up to m = 10.
    pub fn scaling_default() -> Self {
        AdaptiveAttack::Scaling {
            factor_init: 1.0,
            factor_max: 10.0,
        }
    }

    /// `(init, max)` of the tuned magnitude.
    pub fn bounds(&self) -> (f32, f32) {
        match *self {
            AdaptiveAttack::Alie { z_init, z_max } => (z_init, z_max),
            AdaptiveAttack::Ipm { eps_init, eps_max } => (eps_init, eps_max),
            AdaptiveAttack::Scaling {
                factor_init,
                factor_max,
            } => (factor_init, factor_max),
        }
    }

    /// The concrete [`ModelAttack`] this family crafts with at a given
    /// magnitude.
    pub fn at_magnitude(&self, magnitude: f32) -> ModelAttack {
        match self {
            AdaptiveAttack::Alie { .. } => ModelAttack::Alie { z: magnitude },
            AdaptiveAttack::Ipm { .. } => ModelAttack::Ipm {
                epsilon: magnitude.max(f32::EPSILON),
            },
            AdaptiveAttack::Scaling { .. } => ModelAttack::Scaling {
                // ModelAttack::Scaling asserts factor ≠ 0; keep the
                // reflection strictly negative.
                factor: -magnitude.max(f32::EPSILON),
            },
        }
    }

    /// Stable label for reports (`"alie"` / `"ipm"` / `"scaling"`).
    pub fn name(&self) -> &'static str {
        match self {
            AdaptiveAttack::Alie { .. } => "alie",
            AdaptiveAttack::Ipm { .. } => "ipm",
            AdaptiveAttack::Scaling { .. } => "scaling",
        }
    }
}

/// Public defense feedback one round of aggregation grants the coalition:
/// of the crafted updates it submitted, how many did the configured
/// aggregation rule actually use? (Selection by Krum/Multi-Krum, survival
/// of the trim, inclusion by consensus, ...) This is observable by a real
/// adversary — the disseminated model reveals whether its contribution
/// moved the aggregate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttackFeedback {
    /// Crafted updates the coalition submitted to aggregators this round.
    pub submitted: u64,
    /// Of those, updates the rule accepted (used in the aggregate).
    pub accepted: u64,
}

impl AttackFeedback {
    /// Majority-accepted: the round counts as "inside the acceptance
    /// region". Rounds where nothing was submitted count as accepted
    /// (no evidence of rejection).
    pub fn majority_accepted(&self) -> bool {
        self.submitted == 0 || 2 * self.accepted >= self.submitted
    }
}

/// When the bisection interval has collapsed below this fraction of the
/// full range, the upper bound re-expands to the maximum: defenses with
/// memory (suspicion scores, quarantine) move the acceptance boundary
/// over time, so the search must keep probing.
const REPROBE_FRACTION: f32 = 0.05;

/// The stateful coalition controller: one per run, shared by all
/// malicious clients (they collude). Holds the bisection state over the
/// attack magnitude and a per-round history for reports.
#[derive(Clone, Debug)]
pub struct AdaptiveAdversary {
    attack: AdaptiveAttack,
    /// Largest magnitude known (or assumed) accepted.
    lo: f32,
    /// Smallest magnitude known rejected, or the search maximum.
    hi: f32,
    current: f32,
    max: f32,
    /// `(round, magnitude used, majority-accepted)` per observed round.
    history: Vec<(usize, f32, bool)>,
}

impl AdaptiveAdversary {
    /// A fresh controller starting at the family's initial magnitude.
    pub fn new(attack: AdaptiveAttack) -> Self {
        let (init, max) = attack.bounds();
        let init = init.clamp(0.0, max);
        Self {
            attack,
            lo: 0.0,
            hi: max,
            current: init,
            max,
            history: Vec::new(),
        }
    }

    /// The magnitude the coalition uses this round.
    pub fn magnitude(&self) -> f32 {
        self.current
    }

    /// The concrete attack to craft with this round.
    pub fn current_attack(&self) -> ModelAttack {
        self.attack.at_magnitude(self.current)
    }

    /// The configured family.
    pub fn attack(&self) -> &AdaptiveAttack {
        &self.attack
    }

    /// Per-round `(round, magnitude, majority_accepted)` history.
    pub fn history(&self) -> &[(usize, f32, bool)] {
        &self.history
    }

    /// The full bisection state `(lo, hi, current, history)` for
    /// checkpointing.
    pub fn search_state(&self) -> (f32, f32, f32, &[(usize, f32, bool)]) {
        (self.lo, self.hi, self.current, &self.history)
    }

    /// Overwrites the bisection state from a checkpoint. The window must
    /// be finite and inside `[0, max]` of the configured family.
    pub fn restore_search(
        &mut self,
        lo: f32,
        hi: f32,
        current: f32,
        history: Vec<(usize, f32, bool)>,
    ) -> Result<(), String> {
        if !(lo.is_finite() && hi.is_finite() && current.is_finite()) {
            return Err(format!("non-finite search window ({lo}, {hi}, {current})"));
        }
        if !(0.0 <= lo && lo <= hi && hi <= self.max) {
            return Err(format!(
                "search window ({lo}, {hi}) outside [0, {}]",
                self.max
            ));
        }
        if !(0.0..=self.max).contains(&current) {
            return Err(format!("magnitude {current} outside [0, {}]", self.max));
        }
        self.lo = lo;
        self.hi = hi;
        self.current = current;
        self.history = history;
        Ok(())
    }

    /// Consumes one round of defense feedback and moves the magnitude:
    /// accepted ⇒ the boundary is above `current` (raise `lo`); rejected
    /// ⇒ it is below (lower `hi`); next magnitude is the interval
    /// midpoint. A collapsed interval re-expands its upper bound so the
    /// search tracks non-stationary defenses.
    pub fn observe(&mut self, round: usize, feedback: AttackFeedback) {
        let accepted = feedback.majority_accepted();
        self.history.push((round, self.current, accepted));
        if accepted {
            self.lo = self.current;
        } else {
            self.hi = self.current;
        }
        if self.hi - self.lo < REPROBE_FRACTION * self.max {
            self.hi = self.max;
        }
        self.current = 0.5 * (self.lo + self.hi);
    }
}

/// Protocol-level misbehavior of malicious devices *in their hierarchy
/// role*, orthogonal to how updates are crafted.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ProtocolAttack {
    /// A malicious bottom-cluster leader sends a corrupted partial
    /// aggregate upward while echoing the true partial to its cluster —
    /// equivocation. Defended by the cross-cluster echo/audit digest
    /// check (`hfl_consensus::echo`): once detected, the true (echoed)
    /// value is used and the leader is flagged.
    Equivocate {
        /// The corrupted up-sent value is `−flip_scale · partial`.
        flip_scale: f32,
    },
    /// Malicious members send their update only when the cluster cannot
    /// form its quorum without them (pivotal withholding) — starving
    /// aggregation of their slots while never being *observed* absent
    /// at a quorum decision. Only manifests at φ < 1.
    Withhold,
    /// Malicious members stall their upload until *just inside* the
    /// staleness bound τ of a deadline-driven collection buffer: they
    /// never count toward the quorum (arriving after the close), can
    /// force deadline closes, yet are always admitted — at the worst
    /// staleness discount — so their poisoned updates keep entering
    /// aggregation. Only meaningful under `async_rounds`; defended by
    /// the staleness-discounted admission weight plus staleness
    /// strikes in the acceptance evidence.
    StalenessExploit,
}

impl ProtocolAttack {
    /// Stable label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolAttack::Equivocate { .. } => "equivocate",
            ProtocolAttack::Withhold => "withhold",
            ProtocolAttack::StalenessExploit => "staleness_exploit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(submitted: u64, accepted: u64) -> AttackFeedback {
        AttackFeedback {
            submitted,
            accepted,
        }
    }

    #[test]
    fn starts_at_init_magnitude() {
        let adv = AdaptiveAdversary::new(AdaptiveAttack::alie_default());
        assert_eq!(adv.magnitude(), 1.5);
        assert_eq!(adv.current_attack(), ModelAttack::Alie { z: 1.5 });
    }

    #[test]
    fn acceptance_raises_magnitude_rejection_lowers_it() {
        let mut adv = AdaptiveAdversary::new(AdaptiveAttack::Ipm {
            eps_init: 1.0,
            eps_max: 8.0,
        });
        adv.observe(0, fb(4, 4)); // accepted: lo = 1 → next = (1+8)/2
        assert!(adv.magnitude() > 1.0, "accepted must push up");
        let high = adv.magnitude();
        adv.observe(1, fb(4, 0)); // rejected: hi = high → next < high
        assert!(adv.magnitude() < high, "rejected must pull down");
    }

    #[test]
    fn bisection_converges_to_acceptance_boundary() {
        // Oracle defense: accepts iff magnitude ≤ 3.0 of an 8.0 range.
        let mut adv = AdaptiveAdversary::new(AdaptiveAttack::Ipm {
            eps_init: 4.0,
            eps_max: 8.0,
        });
        for round in 0..16 {
            let m = adv.magnitude();
            let accepted = m <= 3.0;
            adv.observe(round, fb(4, if accepted { 4 } else { 0 }));
        }
        // The re-probe keeps hi bouncing back to max, but the *used*
        // magnitudes must cluster at the boundary from below.
        let late: Vec<f32> = adv.history().iter().skip(8).map(|(_, m, _)| *m).collect();
        let near = late.iter().filter(|m| (**m - 3.0).abs() < 1.0).count();
        assert!(
            near * 2 >= late.len(),
            "late magnitudes should hug the 3.0 boundary: {late:?}"
        );
    }

    #[test]
    fn collapsed_interval_reprobes_upward() {
        let mut adv = AdaptiveAdversary::new(AdaptiveAttack::Alie {
            z_init: 1.0,
            z_max: 6.0,
        });
        // Reject everything: hi collapses toward lo = 0.
        for round in 0..12 {
            adv.observe(round, fb(2, 0));
        }
        // The interval must have re-expanded at least once (magnitude
        // cannot be pinned at ~0 forever).
        assert!(
            adv.history().iter().any(|(_, m, _)| *m > 1.0),
            "re-probe never fired: {:?}",
            adv.history()
        );
    }

    #[test]
    fn no_submissions_counts_as_accepted() {
        assert!(fb(0, 0).majority_accepted());
        assert!(fb(4, 2).majority_accepted());
        assert!(!fb(4, 1).majority_accepted());
    }

    #[test]
    fn search_is_deterministic() {
        let run = |seed_rounds: usize| {
            let mut adv = AdaptiveAdversary::new(AdaptiveAttack::alie_default());
            for round in 0..seed_rounds {
                let acc = round % 3 != 0;
                adv.observe(round, fb(3, if acc { 3 } else { 0 }));
            }
            adv.history().to_vec()
        };
        assert_eq!(run(20), run(20));
    }

    #[test]
    fn magnitudes_stay_in_bounds() {
        let mut adv = AdaptiveAdversary::new(AdaptiveAttack::Ipm {
            eps_init: 2.0,
            eps_max: 5.0,
        });
        for round in 0..40 {
            let m = adv.magnitude();
            assert!((0.0..=5.0).contains(&m), "magnitude {m} escaped [0, 5]");
            adv.observe(round, fb(1, u64::from(round % 2 == 0)));
        }
    }

    #[test]
    fn ipm_magnitude_never_crafts_zero_epsilon() {
        // ModelAttack::Ipm asserts ε > 0; the family must clamp.
        let a = AdaptiveAttack::ipm_default().at_magnitude(0.0);
        assert!(matches!(a, ModelAttack::Ipm { epsilon } if epsilon > 0.0));
    }

    #[test]
    fn scaling_magnitude_crafts_negative_reflection() {
        let fam = AdaptiveAttack::scaling_default();
        assert_eq!(fam.name(), "scaling");
        assert_eq!(fam.bounds(), (1.0, 10.0));
        let a = fam.at_magnitude(2.5);
        assert!(matches!(a, ModelAttack::Scaling { factor } if factor == -2.5));
        // ModelAttack::Scaling asserts factor ≠ 0; the family must clamp.
        let a = fam.at_magnitude(0.0);
        assert!(matches!(a, ModelAttack::Scaling { factor } if factor < 0.0));
    }

    #[test]
    fn scaling_family_bisects_like_the_others() {
        let mut adv = AdaptiveAdversary::new(AdaptiveAttack::scaling_default());
        assert_eq!(adv.magnitude(), 1.0);
        adv.observe(0, fb(3, 3));
        assert!(adv.magnitude() > 1.0, "accepted must push up");
        let high = adv.magnitude();
        adv.observe(1, fb(3, 0));
        assert!(adv.magnitude() < high, "rejected must pull down");
    }

    #[test]
    fn protocol_attack_labels() {
        assert_eq!(
            ProtocolAttack::Equivocate { flip_scale: 1.0 }.name(),
            "equivocate"
        );
        assert_eq!(ProtocolAttack::Withhold.name(), "withhold");
        assert_eq!(ProtocolAttack::StalenessExploit.name(), "staleness_exploit");
    }
}
