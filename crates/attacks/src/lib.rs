//! # hfl-attacks
//!
//! Byzantine attacks against federated learning, implementing the taxonomy
//! of the paper's Table I:
//!
//! | Target | Attack | Module |
//! |---|---|---|
//! | Training data | Label flipping (Type I: all → 9; Type II: random) | [`data_poison`] |
//! | Training data | Feature noise | [`data_poison`] |
//! | Training data | Backdoor trigger | [`data_poison`] |
//! | Model updates | Gaussian noise | [`model_poison`] |
//! | Model updates | Sign flip (SF) | [`model_poison`] |
//! | Model updates | A Little Is Enough (ALIE) | [`model_poison`] |
//! | Model updates | Inner-Product Manipulation (IPM) | [`model_poison`] |
//!
//! [`adversary`] chooses *which* clients are malicious (the paper's
//! evaluation varies the malicious proportion from 0 % to 65 % over
//! clients ordered by id).
//!
//! [`adaptive`] upgrades the model-update attacks from static to
//! defense-aware: a stateful coalition controller bisects ALIE's `z` /
//! IPM's `epsilon` against per-round acceptance feedback, and
//! [`adaptive::ProtocolAttack`] adds hierarchy-level misbehavior
//! (equivocating leaders, pivotal withholding).

pub mod adaptive;
pub mod adversary;
pub mod data_poison;
pub mod model_poison;

pub use adaptive::{AdaptiveAdversary, AdaptiveAttack, AttackFeedback, ProtocolAttack};
pub use adversary::{malicious_mask, Placement};
pub use data_poison::DataAttack;
pub use model_poison::ModelAttack;
