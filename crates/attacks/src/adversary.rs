//! Adversary placement: which clients are Byzantine.
//!
//! The paper's simulation orders clients by id (0..63) and poisons a
//! prefix proportional to the malicious percentage; we also provide
//! random and cluster-spread placements for ablations.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How malicious clients are positioned among client ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Clients `0..k` are malicious (the paper's simulation setting —
    /// clients are "ordered by client id from 0 to 63"). Concentrates
    /// adversaries into the fewest clusters.
    Prefix,
    /// A uniformly random subset of size `k`.
    Random,
    /// Round-robin across the client range, maximally spreading
    /// adversaries across clusters of any contiguous clustering.
    Spread,
}

/// Builds the malicious mask for `n` clients at a given proportion.
///
/// `k = round(proportion · n)` clients are marked malicious, positioned
/// per `placement`. Deterministic in `seed` (only `Random` consumes it).
///
/// # Panics
/// If `proportion` is outside `[0, 1]`.
pub fn malicious_mask(n: usize, proportion: f64, placement: Placement, seed: u64) -> Vec<bool> {
    assert!(
        (0.0..=1.0).contains(&proportion),
        "malicious proportion must be in [0, 1]"
    );
    let k = (proportion * n as f64).round() as usize;
    let k = k.min(n);
    let mut mask = vec![false; n];
    match placement {
        Placement::Prefix => {
            for m in mask.iter_mut().take(k) {
                *m = true;
            }
        }
        Placement::Random => {
            let mut ids: Vec<usize> = (0..n).collect();
            ids.shuffle(&mut StdRng::seed_from_u64(seed));
            for &i in ids.iter().take(k) {
                mask[i] = true;
            }
        }
        Placement::Spread => {
            if k > 0 {
                // Evenly spaced ids: floor(i·n/k) are distinct for i<k.
                for i in 0..k {
                    mask[i * n / k] = true;
                }
            }
        }
    }
    mask
}

/// Count of malicious entries in a mask.
pub fn count_malicious(mask: &[bool]) -> usize {
    mask.iter().filter(|m| **m).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_marks_first_k() {
        let m = malicious_mask(10, 0.3, Placement::Prefix, 0);
        assert_eq!(m[..3], [true, true, true]);
        assert!(m[3..].iter().all(|x| !x));
    }

    #[test]
    fn rounding_matches_paper_grid() {
        // 57.8 % of 64 = 36.99 → 37 clients.
        assert_eq!(
            count_malicious(&malicious_mask(64, 0.578, Placement::Prefix, 0)),
            37
        );
        // 5 % of 64 = 3.2 → 3.
        assert_eq!(
            count_malicious(&malicious_mask(64, 0.05, Placement::Prefix, 0)),
            3
        );
        assert_eq!(
            count_malicious(&malicious_mask(64, 0.65, Placement::Prefix, 0)),
            42
        );
    }

    #[test]
    fn zero_and_full_proportions() {
        assert_eq!(count_malicious(&malicious_mask(8, 0.0, Placement::Random, 1)), 0);
        assert_eq!(count_malicious(&malicious_mask(8, 1.0, Placement::Random, 1)), 8);
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let a = malicious_mask(64, 0.5, Placement::Random, 5);
        let b = malicious_mask(64, 0.5, Placement::Random, 5);
        let c = malicious_mask(64, 0.5, Placement::Random, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(count_malicious(&a), 32);
    }

    #[test]
    fn spread_marks_distinct_even_ids() {
        let m = malicious_mask(8, 0.5, Placement::Spread, 0);
        assert_eq!(count_malicious(&m), 4);
        assert_eq!(m, [true, false, true, false, true, false, true, false]);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bad_proportion_panics() {
        malicious_mask(8, 1.5, Placement::Prefix, 0);
    }
}
