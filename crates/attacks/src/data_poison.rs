//! Data-poisoning attacks: the adversary manipulates its local training
//! dataset and then trains *honestly* on the poisoned data (paper
//! Appendix D: "a malicious node manipulates training data instead of
//! model updates" — a poisoned leader still aggregates honestly).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use hfl_ml::Dataset;

/// A data-poisoning attack applied to a client's local dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DataAttack {
    /// Paper's **Type I**: set every training label to a fixed class
    /// (the evaluation uses 9).
    LabelFlipAll {
        /// The class every sample is relabelled to.
        target: u8,
    },
    /// Paper's **Type II**: relabel every sample uniformly at random over
    /// all classes.
    LabelFlipRandom,
    /// Add i.i.d. Gaussian noise to every feature.
    FeatureNoise {
        /// Noise standard deviation.
        std: f32,
    },
    /// Backdoor: stamp a trigger pattern into a fixed window of feature
    /// coordinates and relabel those samples to `target`. Only a
    /// `fraction` of samples is stamped (stealthiness knob).
    BackdoorTrigger {
        /// First feature coordinate of the trigger window.
        offset: usize,
        /// Number of coordinates the trigger occupies.
        width: usize,
        /// Trigger intensity written into the window.
        value: f32,
        /// Label the stamped samples are flipped to.
        target: u8,
        /// Fraction of the dataset stamped, in `(0, 1]`.
        fraction: f64,
    },
}

impl DataAttack {
    /// The paper's Type I attack (all labels → 9).
    pub fn type_i() -> Self {
        DataAttack::LabelFlipAll { target: 9 }
    }

    /// The paper's Type II attack (uniform-random labels).
    pub fn type_ii() -> Self {
        DataAttack::LabelFlipRandom
    }

    /// Poisons `data` in place. Deterministic given the RNG state.
    ///
    /// # Panics
    /// If a target label is out of range or backdoor geometry exceeds the
    /// feature dimension.
    pub fn apply(&self, data: &mut Dataset, rng: &mut StdRng) {
        match self {
            DataAttack::LabelFlipAll { target } => {
                assert!(
                    (*target as usize) < data.num_classes(),
                    "flip target out of range"
                );
                for i in 0..data.len() {
                    data.set_y(i, *target);
                }
            }
            DataAttack::LabelFlipRandom => {
                let k = data.num_classes() as u8;
                for i in 0..data.len() {
                    data.set_y(i, rng.gen_range(0..k));
                }
            }
            DataAttack::FeatureNoise { std } => {
                assert!(*std >= 0.0, "noise std must be non-negative");
                for i in 0..data.len() {
                    for x in data.x_mut(i) {
                        *x += std * hfl_tensor::init::standard_normal(rng);
                    }
                }
            }
            DataAttack::BackdoorTrigger {
                offset,
                width,
                value,
                target,
                fraction,
            } => {
                assert!(
                    offset + width <= data.dim(),
                    "trigger window exceeds feature dimension"
                );
                assert!(
                    (*target as usize) < data.num_classes(),
                    "backdoor target out of range"
                );
                assert!(*fraction > 0.0 && *fraction <= 1.0, "fraction in (0,1]");
                for i in 0..data.len() {
                    if rng.gen_bool(*fraction) {
                        for x in &mut data.x_mut(i)[*offset..*offset + *width] {
                            *x = *value;
                        }
                        data.set_y(i, *target);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let mut d = Dataset::empty(4, 10);
        for i in 0..100 {
            d.push(&[i as f32, 0.0, 1.0, -1.0], (i % 10) as u8);
        }
        d
    }

    #[test]
    fn type_i_sets_all_labels_to_nine() {
        let mut d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        DataAttack::type_i().apply(&mut d, &mut rng);
        assert!(d.labels().iter().all(|y| *y == 9));
    }

    #[test]
    fn type_ii_randomizes_labels_in_range() {
        let mut d = toy();
        let before = d.labels().to_vec();
        let mut rng = StdRng::seed_from_u64(2);
        DataAttack::type_ii().apply(&mut d, &mut rng);
        assert!(d.labels().iter().all(|y| *y < 10));
        assert_ne!(d.labels(), before.as_slice(), "labels unchanged");
        // Roughly uniform: every class present in 100 samples w.h.p.
        assert!(d.present_labels().len() >= 7);
    }

    #[test]
    fn feature_noise_perturbs_features_not_labels() {
        let mut d = toy();
        let labels_before = d.labels().to_vec();
        let x0_before = d.x(0).to_vec();
        let mut rng = StdRng::seed_from_u64(3);
        DataAttack::FeatureNoise { std: 1.0 }.apply(&mut d, &mut rng);
        assert_eq!(d.labels(), labels_before.as_slice());
        assert_ne!(d.x(0), x0_before.as_slice());
    }

    #[test]
    fn zero_noise_is_identity() {
        let mut d = toy();
        let x0 = d.x(0).to_vec();
        let mut rng = StdRng::seed_from_u64(3);
        DataAttack::FeatureNoise { std: 0.0 }.apply(&mut d, &mut rng);
        assert_eq!(d.x(0), x0.as_slice());
    }

    #[test]
    fn backdoor_stamps_window_and_label() {
        let mut d = toy();
        let mut rng = StdRng::seed_from_u64(4);
        DataAttack::BackdoorTrigger {
            offset: 1,
            width: 2,
            value: 5.0,
            target: 7,
            fraction: 1.0,
        }
        .apply(&mut d, &mut rng);
        for i in 0..d.len() {
            assert_eq!(&d.x(i)[1..3], &[5.0, 5.0]);
            assert_eq!(d.y(i), 7);
        }
    }

    #[test]
    fn backdoor_fraction_stamps_subset() {
        let mut d = toy();
        let mut rng = StdRng::seed_from_u64(5);
        DataAttack::BackdoorTrigger {
            offset: 0,
            width: 1,
            value: 9.0,
            target: 7,
            fraction: 0.3,
        }
        .apply(&mut d, &mut rng);
        let stamped = (0..d.len()).filter(|&i| d.x(i)[0] == 9.0).count();
        assert!(stamped > 10 && stamped < 60, "stamped {stamped} of 100");
    }

    #[test]
    fn attacks_are_deterministic_in_seed() {
        let mut a = toy();
        let mut b = toy();
        DataAttack::type_ii().apply(&mut a, &mut StdRng::seed_from_u64(9));
        DataAttack::type_ii().apply(&mut b, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_flip_target_panics() {
        let mut d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        DataAttack::LabelFlipAll { target: 10 }.apply(&mut d, &mut rng);
    }

    #[test]
    #[should_panic(expected = "exceeds feature dimension")]
    fn bad_trigger_window_panics() {
        let mut d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        DataAttack::BackdoorTrigger {
            offset: 3,
            width: 2,
            value: 1.0,
            target: 0,
            fraction: 1.0,
        }
        .apply(&mut d, &mut rng);
    }
}
