//! Model-update attacks: colluding Byzantine clients craft malicious
//! parameter vectors as a function of the honest updates they can observe
//! (the strongest, omniscient-adversary convention from the Byzantine-ML
//! literature).

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use hfl_tensor::{ops, stats};

/// A model-update attack. Given the honest updates of the current round,
/// produces the vector every colluding Byzantine client submits.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ModelAttack {
    /// Sign flip: submit `−scale · mean(honest)`.
    SignFlip {
        /// Magnitude multiplier (1.0 = pure reflection).
        scale: f32,
    },
    /// Additive Gaussian noise around the honest mean.
    GaussianNoise {
        /// Noise standard deviation per coordinate.
        std: f32,
    },
    /// *A Little Is Enough* (Baruch et al.): shift each coordinate of the
    /// honest mean by `z` honest standard deviations — large enough to
    /// bias, small enough to evade distance-based defenses.
    Alie {
        /// Number of standard deviations to shift by.
        z: f32,
    },
    /// *Inner-Product Manipulation* (Xie et al.): submit
    /// `−epsilon · mean(honest)` so the aggregate's inner product with the
    /// true gradient direction turns negative while staying small.
    Ipm {
        /// Negative-scaling factor, typically in `(0, 1]`.
        epsilon: f32,
    },
    /// *Mimic* (Karimireddy et al.): every colluder submits an exact copy
    /// of one pivotal honest update. Nothing is an outlier, so
    /// distance/rank defenses (Krum family, medians) over-represent the
    /// victim and under-represent everyone else — the attack starves
    /// heterogeneous (non-IID) clients of influence.
    Mimic {
        /// Index of the copied honest update (taken modulo the number of
        /// honest updates visible this round).
        victim: usize,
    },
    /// Scaling / *Fall of Empires* (Xie et al.): submit
    /// `factor · mean(honest)`. A negative factor reflects the honest
    /// direction through the origin (Fall of Empires uses
    /// `factor = −(1 + ε)`, sitting just past the inner-product boundary);
    /// a large positive factor is the classical model-replacement scaling
    /// attack that overwhelms plain averaging.
    Scaling {
        /// Multiplier on the honest mean — any non-zero finite value.
        factor: f32,
    },
    /// AGR-tailored *Min-Max* (Shejwalkar & Houmansadr): perturb the
    /// honest mean opposite to the update direction by the largest γ such
    /// that the crafted vector's distance to every honest update stays
    /// within the maximum honest pairwise distance — maximally harmful
    /// while provably unflaggable by distance tests.
    MinMax,
    /// AGR-tailored *Min-Sum*: like [`ModelAttack::MinMax`] but bounds the
    /// crafted vector's **sum** of squared distances to the honest updates
    /// by the worst honest update's own sum — a tighter budget that evades
    /// score-sum defenses (Krum's neighbourhood sums).
    MinSum,
}

/// Largest perturbation magnitude `γ` (via 1-D bisection) such that
/// `within_budget(mean + γ·dir)` still holds. Deterministic: pure
/// arithmetic, no RNG.
fn max_gamma(mean: &[f32], dir: &[f32], within_budget: impl Fn(&[f32]) -> bool) -> f32 {
    let crafted = |g: f32| -> Vec<f32> {
        let mut v = mean.to_vec();
        ops::axpy(g, dir, &mut v);
        v
    };
    if !within_budget(&crafted(0.0)) {
        // Degenerate budget (single honest update with itself): stay put.
        return 0.0;
    }
    // Grow until the budget breaks, then bisect the boundary.
    let mut hi = 1.0f32;
    let mut doublings = 0;
    while within_budget(&crafted(hi)) {
        hi *= 2.0;
        doublings += 1;
        if doublings >= 40 {
            return hi; // budget never binds at any sane magnitude
        }
    }
    let mut lo = if doublings == 0 { 0.0 } else { hi / 2.0 };
    for _ in 0..30 {
        let mid = 0.5 * (lo + hi);
        if within_budget(&crafted(mid)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Unit perturbation direction for the AGR-tailored attacks: opposite the
/// honest mean (the static "inverse unit vector" choice from Shejwalkar &
/// Houmansadr), falling back to a fixed unit diagonal when the mean is
/// (numerically) zero.
fn agr_direction(mean: &[f32]) -> Vec<f32> {
    let n = ops::norm(mean);
    let mut dir = mean.to_vec();
    if n > 1e-12 {
        ops::scale(-(1.0 / n) as f32, &mut dir);
    } else {
        let u = -1.0 / (dir.len() as f32).sqrt();
        dir.iter_mut().for_each(|x| *x = u);
    }
    dir
}

impl ModelAttack {
    /// [`Self::craft`] that degrades instead of panicking: returns `None`
    /// when `honest` is empty (an all-malicious cluster has nothing to
    /// observe — the caller should fall back to a neutral update, e.g.
    /// the last-round aggregate, and record the anomaly).
    pub fn try_craft(&self, honest: &[&[f32]], rng: &mut StdRng) -> Option<Vec<f32>> {
        if honest.is_empty() {
            return None;
        }
        Some(self.craft(honest, rng))
    }

    /// Crafts the malicious update from the honest updates of this round.
    ///
    /// # Panics
    /// If `honest` is empty (an omniscient attack needs something to
    /// observe) or updates have mismatched lengths. Use
    /// [`Self::try_craft`] where an empty honest set is reachable.
    pub fn craft(&self, honest: &[&[f32]], rng: &mut StdRng) -> Vec<f32> {
        assert!(!honest.is_empty(), "model attack needs honest updates");
        let d = honest[0].len();
        assert!(
            honest.iter().all(|h| h.len() == d),
            "honest update length mismatch"
        );
        let mut mean = vec![0.0f32; d];
        ops::mean_of(honest, &mut mean);
        match self {
            ModelAttack::SignFlip { scale } => {
                assert!(*scale > 0.0, "sign-flip scale must be positive");
                ops::scale(-scale, &mut mean);
                mean
            }
            ModelAttack::GaussianNoise { std } => {
                assert!(*std >= 0.0, "noise std must be non-negative");
                for m in mean.iter_mut() {
                    *m += std * hfl_tensor::init::standard_normal(rng);
                }
                mean
            }
            ModelAttack::Alie { z } => {
                // Per-coordinate honest std; shift mean by -z·std (the
                // direction is arbitrary; -z biases all coordinates the
                // same way, the classical formulation).
                let mut col = vec![0.0f32; honest.len()];
                for j in 0..d {
                    for (c, h) in col.iter_mut().zip(honest) {
                        *c = h[j];
                    }
                    let (_, var) = stats::mean_var(&col);
                    mean[j] -= z * var.sqrt() as f32;
                }
                mean
            }
            ModelAttack::Ipm { epsilon } => {
                assert!(*epsilon > 0.0, "IPM epsilon must be positive");
                ops::scale(-epsilon, &mut mean);
                mean
            }
            ModelAttack::Mimic { victim } => honest[victim % honest.len()].to_vec(),
            ModelAttack::Scaling { factor } => {
                assert!(
                    factor.is_finite() && *factor != 0.0,
                    "scaling factor must be finite and non-zero"
                );
                ops::scale(*factor, &mut mean);
                mean
            }
            ModelAttack::MinMax => {
                let dir = agr_direction(&mean);
                let max_pairwise = honest
                    .iter()
                    .flat_map(|a| honest.iter().map(move |b| ops::dist_sq(a, b)))
                    .fold(0.0f64, f64::max);
                let g = max_gamma(&mean, &dir, |v| {
                    honest.iter().all(|h| ops::dist_sq(v, h) <= max_pairwise)
                });
                ops::axpy(g, &dir, &mut mean);
                mean
            }
            ModelAttack::MinSum => {
                let dir = agr_direction(&mean);
                let max_sum = honest
                    .iter()
                    .map(|a| honest.iter().map(|b| ops::dist_sq(a, b)).sum::<f64>())
                    .fold(0.0f64, f64::max);
                let g = max_gamma(&mean, &dir, |v| {
                    honest.iter().map(|h| ops::dist_sq(v, h)).sum::<f64>() <= max_sum
                });
                ops::axpy(g, &dir, &mut mean);
                mean
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn honest() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 2.0, 3.0],
            vec![1.2, 2.2, 3.2],
            vec![0.8, 1.8, 2.8],
        ]
    }

    fn refs(v: &[Vec<f32>]) -> Vec<&[f32]> {
        v.iter().map(|x| x.as_slice()).collect()
    }

    #[test]
    fn sign_flip_reflects_mean() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::SignFlip { scale: 1.0 }.craft(&refs(&h), &mut rng);
        assert!(ops::approx_eq(&m, &[-1.0, -2.0, -3.0], 1e-6));
    }

    #[test]
    fn sign_flip_scale_amplifies() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::SignFlip { scale: 10.0 }.craft(&refs(&h), &mut rng);
        assert!(ops::approx_eq(&m, &[-10.0, -20.0, -30.0], 1e-5));
    }

    #[test]
    fn ipm_is_small_negative_multiple() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::Ipm { epsilon: 0.5 }.craft(&refs(&h), &mut rng);
        assert!(ops::approx_eq(&m, &[-0.5, -1.0, -1.5], 1e-6));
        // Inner product with the honest mean is negative.
        let mut mean = vec![0.0f32; 3];
        ops::mean_of(&refs(&h), &mut mean);
        assert!(ops::dot(&m, &mean) < 0.0);
    }

    #[test]
    fn alie_stays_within_z_std_of_mean() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::Alie { z: 1.5 }.craft(&refs(&h), &mut rng);
        let mut mean = vec![0.0f32; 3];
        ops::mean_of(&refs(&h), &mut mean);
        for j in 0..3 {
            let shift = (mean[j] - m[j]).abs();
            // honest per-coordinate std here is sqrt(2/75)·... small; just
            // check direction and boundedness.
            assert!(m[j] < mean[j], "ALIE must shift downward");
            assert!(shift < 1.0, "ALIE shift too large: {shift}");
        }
    }

    #[test]
    fn alie_zero_z_returns_mean() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::Alie { z: 0.0 }.craft(&refs(&h), &mut rng);
        assert!(ops::approx_eq(&m, &[1.0, 2.0, 3.0], 1e-6));
    }

    #[test]
    fn gaussian_noise_deterministic_in_seed() {
        let h = honest();
        let a =
            ModelAttack::GaussianNoise { std: 1.0 }.craft(&refs(&h), &mut StdRng::seed_from_u64(7));
        let b =
            ModelAttack::GaussianNoise { std: 1.0 }.craft(&refs(&h), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "needs honest updates")]
    fn empty_honest_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        ModelAttack::SignFlip { scale: 1.0 }.craft(&[], &mut rng);
    }

    #[test]
    fn mimic_copies_the_victim_exactly() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::Mimic { victim: 2 }.craft(&refs(&h), &mut rng);
        assert_eq!(m, h[2]);
        // Out-of-range victims wrap instead of panicking.
        let m = ModelAttack::Mimic { victim: 5 }.craft(&refs(&h), &mut rng);
        assert_eq!(m, h[2]);
    }

    #[test]
    fn scaling_reflects_and_amplifies() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::Scaling { factor: -1.5 }.craft(&refs(&h), &mut rng);
        assert!(ops::approx_eq(&m, &[-1.5, -3.0, -4.5], 1e-5));
        let mut mean = vec![0.0f32; 3];
        ops::mean_of(&refs(&h), &mut mean);
        assert!(ops::dot(&m, &mean) < 0.0, "reflection crosses the boundary");
        let m = ModelAttack::Scaling { factor: 100.0 }.craft(&refs(&h), &mut rng);
        assert!(ops::approx_eq(&m, &[100.0, 200.0, 300.0], 1e-3));
    }

    #[test]
    #[should_panic(expected = "finite and non-zero")]
    fn scaling_rejects_zero_factor() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        ModelAttack::Scaling { factor: 0.0 }.craft(&refs(&h), &mut rng);
    }

    #[test]
    fn min_max_respects_the_pairwise_budget() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::MinMax.craft(&refs(&h), &mut rng);
        let max_pairwise = h
            .iter()
            .flat_map(|a| h.iter().map(move |b| ops::dist_sq(a, b)))
            .fold(0.0f64, f64::max);
        for hu in &h {
            assert!(
                ops::dist_sq(&m, hu) <= max_pairwise * 1.0001,
                "crafted update exceeds the max honest pairwise distance"
            );
        }
        // And it actually moved: strictly below the honest mean in dot
        // product (perturbation is anti-mean).
        let mut mean = vec![0.0f32; 3];
        ops::mean_of(&refs(&h), &mut mean);
        assert!(ops::dot(&m, &mean) < ops::dot(&mean, &mean));
    }

    #[test]
    fn min_sum_budget_is_tighter_than_min_max() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let mm = ModelAttack::MinMax.craft(&refs(&h), &mut rng);
        let ms = ModelAttack::MinSum.craft(&refs(&h), &mut rng);
        let max_sum = h
            .iter()
            .map(|a| h.iter().map(|b| ops::dist_sq(a, b)).sum::<f64>())
            .fold(0.0f64, f64::max);
        let crafted_sum: f64 = h.iter().map(|hu| ops::dist_sq(&ms, hu)).sum();
        assert!(crafted_sum <= max_sum * 1.0001);
        let mut mean = vec![0.0f32; 3];
        ops::mean_of(&refs(&h), &mut mean);
        // Both shift anti-mean; the sum budget binds at least as early.
        assert!(ops::dist(&ms, &mean) <= ops::dist(&mm, &mean) * 1.0001);
    }

    #[test]
    fn agr_attacks_deterministic_without_rng_draws() {
        let h = honest();
        let a = ModelAttack::MinMax.craft(&refs(&h), &mut StdRng::seed_from_u64(1));
        let b = ModelAttack::MinMax.craft(&refs(&h), &mut StdRng::seed_from_u64(999));
        assert_eq!(a, b, "MinMax must not consume RNG");
        let a = ModelAttack::MinSum.craft(&refs(&h), &mut StdRng::seed_from_u64(1));
        let b = ModelAttack::MinSum.craft(&refs(&h), &mut StdRng::seed_from_u64(999));
        assert_eq!(a, b, "MinSum must not consume RNG");
    }

    #[test]
    fn min_max_single_honest_update_stays_put() {
        let h = vec![vec![1.0f32, -2.0, 0.5]];
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::MinMax.craft(&refs(&h), &mut rng);
        assert!(ops::approx_eq(&m, &h[0], 1e-3), "zero budget pins to mean");
    }

    #[test]
    fn try_craft_degrades_on_empty_honest() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            ModelAttack::SignFlip { scale: 1.0 }.try_craft(&[], &mut rng),
            None
        );
        let h = honest();
        let got = ModelAttack::SignFlip { scale: 1.0 }
            .try_craft(&refs(&h), &mut rng)
            .expect("non-empty honest crafts");
        assert!(ops::approx_eq(&got, &[-1.0, -2.0, -3.0], 1e-6));
    }
}
