//! Model-update attacks: colluding Byzantine clients craft malicious
//! parameter vectors as a function of the honest updates they can observe
//! (the strongest, omniscient-adversary convention from the Byzantine-ML
//! literature).

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use hfl_tensor::{ops, stats};

/// A model-update attack. Given the honest updates of the current round,
/// produces the vector every colluding Byzantine client submits.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ModelAttack {
    /// Sign flip: submit `−scale · mean(honest)`.
    SignFlip {
        /// Magnitude multiplier (1.0 = pure reflection).
        scale: f32,
    },
    /// Additive Gaussian noise around the honest mean.
    GaussianNoise {
        /// Noise standard deviation per coordinate.
        std: f32,
    },
    /// *A Little Is Enough* (Baruch et al.): shift each coordinate of the
    /// honest mean by `z` honest standard deviations — large enough to
    /// bias, small enough to evade distance-based defenses.
    Alie {
        /// Number of standard deviations to shift by.
        z: f32,
    },
    /// *Inner-Product Manipulation* (Xie et al.): submit
    /// `−epsilon · mean(honest)` so the aggregate's inner product with the
    /// true gradient direction turns negative while staying small.
    Ipm {
        /// Negative-scaling factor, typically in `(0, 1]`.
        epsilon: f32,
    },
}

impl ModelAttack {
    /// [`Self::craft`] that degrades instead of panicking: returns `None`
    /// when `honest` is empty (an all-malicious cluster has nothing to
    /// observe — the caller should fall back to a neutral update, e.g.
    /// the last-round aggregate, and record the anomaly).
    pub fn try_craft(&self, honest: &[&[f32]], rng: &mut StdRng) -> Option<Vec<f32>> {
        if honest.is_empty() {
            return None;
        }
        Some(self.craft(honest, rng))
    }

    /// Crafts the malicious update from the honest updates of this round.
    ///
    /// # Panics
    /// If `honest` is empty (an omniscient attack needs something to
    /// observe) or updates have mismatched lengths. Use
    /// [`Self::try_craft`] where an empty honest set is reachable.
    pub fn craft(&self, honest: &[&[f32]], rng: &mut StdRng) -> Vec<f32> {
        assert!(!honest.is_empty(), "model attack needs honest updates");
        let d = honest[0].len();
        assert!(
            honest.iter().all(|h| h.len() == d),
            "honest update length mismatch"
        );
        let mut mean = vec![0.0f32; d];
        ops::mean_of(honest, &mut mean);
        match self {
            ModelAttack::SignFlip { scale } => {
                assert!(*scale > 0.0, "sign-flip scale must be positive");
                ops::scale(-scale, &mut mean);
                mean
            }
            ModelAttack::GaussianNoise { std } => {
                assert!(*std >= 0.0, "noise std must be non-negative");
                for m in mean.iter_mut() {
                    *m += std * hfl_tensor::init::standard_normal(rng);
                }
                mean
            }
            ModelAttack::Alie { z } => {
                // Per-coordinate honest std; shift mean by -z·std (the
                // direction is arbitrary; -z biases all coordinates the
                // same way, the classical formulation).
                let mut col = vec![0.0f32; honest.len()];
                for j in 0..d {
                    for (c, h) in col.iter_mut().zip(honest) {
                        *c = h[j];
                    }
                    let (_, var) = stats::mean_var(&col);
                    mean[j] -= z * var.sqrt() as f32;
                }
                mean
            }
            ModelAttack::Ipm { epsilon } => {
                assert!(*epsilon > 0.0, "IPM epsilon must be positive");
                ops::scale(-epsilon, &mut mean);
                mean
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn honest() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 2.0, 3.0],
            vec![1.2, 2.2, 3.2],
            vec![0.8, 1.8, 2.8],
        ]
    }

    fn refs(v: &[Vec<f32>]) -> Vec<&[f32]> {
        v.iter().map(|x| x.as_slice()).collect()
    }

    #[test]
    fn sign_flip_reflects_mean() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::SignFlip { scale: 1.0 }.craft(&refs(&h), &mut rng);
        assert!(ops::approx_eq(&m, &[-1.0, -2.0, -3.0], 1e-6));
    }

    #[test]
    fn sign_flip_scale_amplifies() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::SignFlip { scale: 10.0 }.craft(&refs(&h), &mut rng);
        assert!(ops::approx_eq(&m, &[-10.0, -20.0, -30.0], 1e-5));
    }

    #[test]
    fn ipm_is_small_negative_multiple() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::Ipm { epsilon: 0.5 }.craft(&refs(&h), &mut rng);
        assert!(ops::approx_eq(&m, &[-0.5, -1.0, -1.5], 1e-6));
        // Inner product with the honest mean is negative.
        let mut mean = vec![0.0f32; 3];
        ops::mean_of(&refs(&h), &mut mean);
        assert!(ops::dot(&m, &mean) < 0.0);
    }

    #[test]
    fn alie_stays_within_z_std_of_mean() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::Alie { z: 1.5 }.craft(&refs(&h), &mut rng);
        let mut mean = vec![0.0f32; 3];
        ops::mean_of(&refs(&h), &mut mean);
        for j in 0..3 {
            let shift = (mean[j] - m[j]).abs();
            // honest per-coordinate std here is sqrt(2/75)·... small; just
            // check direction and boundedness.
            assert!(m[j] < mean[j], "ALIE must shift downward");
            assert!(shift < 1.0, "ALIE shift too large: {shift}");
        }
    }

    #[test]
    fn alie_zero_z_returns_mean() {
        let h = honest();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ModelAttack::Alie { z: 0.0 }.craft(&refs(&h), &mut rng);
        assert!(ops::approx_eq(&m, &[1.0, 2.0, 3.0], 1e-6));
    }

    #[test]
    fn gaussian_noise_deterministic_in_seed() {
        let h = honest();
        let a = ModelAttack::GaussianNoise { std: 1.0 }
            .craft(&refs(&h), &mut StdRng::seed_from_u64(7));
        let b = ModelAttack::GaussianNoise { std: 1.0 }
            .craft(&refs(&h), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "needs honest updates")]
    fn empty_honest_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        ModelAttack::SignFlip { scale: 1.0 }.craft(&[], &mut rng);
    }

    #[test]
    fn try_craft_degrades_on_empty_honest() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            ModelAttack::SignFlip { scale: 1.0 }.try_craft(&[], &mut rng),
            None
        );
        let h = honest();
        let got = ModelAttack::SignFlip { scale: 1.0 }
            .try_craft(&refs(&h), &mut rng)
            .expect("non-empty honest crafts");
        assert!(ops::approx_eq(&got, &[-1.0, -2.0, -3.0], 1e-6));
    }
}
