//! Property-based tests for the attack implementations: the attack
//! contracts hold on arbitrary datasets and honest-update sets.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hfl_attacks::{malicious_mask, DataAttack, ModelAttack, Placement};
use hfl_ml::Dataset;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..6, 1usize..40).prop_flat_map(|(dim, n)| {
        (
            Just(dim),
            prop::collection::vec(-10.0f32..10.0, n * dim),
            prop::collection::vec(0u8..10, n),
        )
            .prop_map(|(dim, xs, ys)| Dataset::from_parts(dim, 10, xs, ys))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn type_i_flips_every_label(mut ds in arb_dataset(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        DataAttack::type_i().apply(&mut ds, &mut rng);
        prop_assert!(ds.labels().iter().all(|y| *y == 9));
    }

    #[test]
    fn type_ii_keeps_labels_in_range(mut ds in arb_dataset(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        DataAttack::type_ii().apply(&mut ds, &mut rng);
        prop_assert!(ds.labels().iter().all(|y| (*y as usize) < ds.num_classes()));
    }

    #[test]
    fn data_attacks_preserve_sample_count(mut ds in arb_dataset(), seed in 0u64..100) {
        let n = ds.len();
        let mut rng = StdRng::seed_from_u64(seed);
        DataAttack::FeatureNoise { std: 1.0 }.apply(&mut ds, &mut rng);
        prop_assert_eq!(ds.len(), n);
    }

    #[test]
    fn crafted_updates_have_honest_dimension(
        honest in prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 6), 2..8),
        seed in 0u64..50,
    ) {
        let refs: Vec<&[f32]> = honest.iter().map(|h| h.as_slice()).collect();
        for attack in [
            ModelAttack::SignFlip { scale: 2.0 },
            ModelAttack::GaussianNoise { std: 1.0 },
            ModelAttack::Alie { z: 1.0 },
            ModelAttack::Ipm { epsilon: 0.5 },
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let crafted = attack.craft(&refs, &mut rng);
            prop_assert_eq!(crafted.len(), 6);
            prop_assert!(crafted.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn sign_flip_and_ipm_oppose_the_mean(
        honest in prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 4), 2..8),
        seed in 0u64..50,
    ) {
        let refs: Vec<&[f32]> = honest.iter().map(|h| h.as_slice()).collect();
        let mut mean = vec![0.0f32; 4];
        hfl_tensor::ops::mean_of(&refs, &mut mean);
        prop_assume!(hfl_tensor::ops::norm(&mean) > 1e-3);
        for attack in [
            ModelAttack::SignFlip { scale: 2.0 },
            ModelAttack::Ipm { epsilon: 0.7 },
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let crafted = attack.craft(&refs, &mut rng);
            prop_assert!(hfl_tensor::ops::dot(&crafted, &mean) < 0.0,
                "{attack:?} does not oppose the honest mean");
        }
    }

    #[test]
    fn mask_count_matches_proportion(
        n in 1usize..200,
        numer in 0usize..=100,
        seed in 0u64..100,
    ) {
        let p = numer as f64 / 100.0;
        for placement in [Placement::Prefix, Placement::Random, Placement::Spread] {
            let mask = malicious_mask(n, p, placement, seed);
            let k = mask.iter().filter(|m| **m).count();
            prop_assert_eq!(
                k,
                ((p * n as f64).round() as usize).min(n),
                "{:?} wrong count",
                placement
            );
        }
    }

    #[test]
    fn spread_never_double_marks(n in 1usize..100, numer in 0usize..=100) {
        // Spread computes i*n/k indices; they must be distinct (no lost
        // adversaries to collisions).
        let p = numer as f64 / 100.0;
        let mask = malicious_mask(n, p, Placement::Spread, 0);
        let k = mask.iter().filter(|m| **m).count();
        prop_assert_eq!(k, ((p * n as f64).round() as usize).min(n));
    }

    #[test]
    fn try_craft_matches_craft_on_nonempty_honest(
        honest in prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 5), 1..6),
        seed in 0u64..50,
    ) {
        let refs: Vec<&[f32]> = honest.iter().map(|h| h.as_slice()).collect();
        for attack in [
            ModelAttack::SignFlip { scale: 2.0 },
            ModelAttack::GaussianNoise { std: 1.0 },
            ModelAttack::Alie { z: 1.0 },
            ModelAttack::Ipm { epsilon: 0.5 },
        ] {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let a = attack.try_craft(&refs, &mut rng_a).expect("non-empty honest");
            let b = attack.craft(&refs, &mut rng_b);
            prop_assert_eq!(a, b);
        }
    }
}

/// Deterministic edge cases of the malicious mask: the boundaries
/// sweeps actually hit (empty and saturated coalitions, singleton
/// populations, prefix alignment with cluster boundaries).
mod mask_edges {
    use super::*;

    const PLACEMENTS: [Placement; 3] = [Placement::Prefix, Placement::Random, Placement::Spread];

    #[test]
    fn proportion_zero_marks_nobody() {
        for placement in PLACEMENTS {
            for n in [1, 2, 64] {
                let mask = malicious_mask(n, 0.0, placement, 9);
                assert!(mask.iter().all(|m| !m), "{placement:?} n={n}");
                assert_eq!(mask.len(), n);
            }
        }
    }

    #[test]
    fn proportion_one_marks_everybody() {
        for placement in PLACEMENTS {
            for n in [1, 2, 64] {
                let mask = malicious_mask(n, 1.0, placement, 9);
                assert!(mask.iter().all(|m| *m), "{placement:?} n={n}");
            }
        }
    }

    #[test]
    fn singleton_population_rounds_the_proportion() {
        for placement in PLACEMENTS {
            assert_eq!(malicious_mask(1, 0.4, placement, 3), vec![false]);
            assert_eq!(malicious_mask(1, 0.5, placement, 3), vec![true]);
            assert_eq!(malicious_mask(1, 1.0, placement, 3), vec![true]);
        }
    }

    #[test]
    fn prefix_fills_whole_clusters_first() {
        // 64 clients in contiguous clusters of 4 at 25 %: the prefix
        // coalition is exactly the first 4 clusters, boundary-aligned —
        // no cluster is partially malicious.
        let mask = malicious_mask(64, 0.25, Placement::Prefix, 0);
        for cluster in 0..16 {
            let members = &mask[cluster * 4..(cluster + 1) * 4];
            let k = members.iter().filter(|m| **m).count();
            assert!(
                k == 0 || k == 4,
                "cluster {cluster} is split: {members:?}"
            );
            assert_eq!(k == 4, cluster < 4);
        }
    }

    #[test]
    fn prefix_off_boundary_splits_exactly_one_cluster() {
        // 18 of 64 (28.1 %): four full clusters plus two clients
        // spilling into cluster 4.
        let mask = malicious_mask(64, 18.0 / 64.0, Placement::Prefix, 0);
        assert_eq!(mask.iter().filter(|m| **m).count(), 18);
        let split: Vec<usize> = (0..16)
            .filter(|c| {
                let k = mask[c * 4..(c + 1) * 4].iter().filter(|m| **m).count();
                k > 0 && k < 4
            })
            .collect();
        assert_eq!(split, vec![4], "exactly cluster 4 is partially malicious");
    }

    #[test]
    fn spread_puts_at_most_f_per_cluster_at_quarter_proportion() {
        // Round-robin at 25 % over clusters of 4 lands exactly one
        // adversary per cluster — the f = 1 the paper's Multi-Krum
        // assumes.
        let mask = malicious_mask(64, 0.25, Placement::Spread, 0);
        for cluster in 0..16 {
            let k = mask[cluster * 4..(cluster + 1) * 4]
                .iter()
                .filter(|m| **m)
                .count();
            assert_eq!(k, 1, "cluster {cluster}");
        }
    }

    #[test]
    fn empty_honest_set_degrades_not_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        for attack in [
            ModelAttack::SignFlip { scale: 1.0 },
            ModelAttack::Alie { z: 1.5 },
            ModelAttack::Ipm { epsilon: 0.5 },
        ] {
            assert_eq!(attack.try_craft(&[], &mut rng), None);
        }
    }
}
