//! Property-based tests for the ML substrate: partition conservation,
//! loss/softmax identities, model parameter round-trips.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hfl_ml::loss::{argmax, softmax_in_place};
use hfl_ml::partition::{covers_all_labels, dirichlet_partition, iid_partition, noniid_partition};
use hfl_ml::synth::{SynthConfig, SyntheticDigits};
use hfl_ml::{ClientPopulation, Dataset, LinearSoftmax, Mlp, Model};

fn datasets_equal(a: &Dataset, b: &Dataset) -> bool {
    a.len() == b.len()
        && a.labels() == b.labels()
        && (0..a.len()).all(|i| a.x(i) == b.x(i))
}

fn small_task(train: usize) -> SyntheticDigits {
    SyntheticDigits::generate(&SynthConfig {
        train_samples: train,
        test_samples: 100,
        dim: 16,
        ..SynthConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn softmax_always_a_distribution(logits in prop::collection::vec(-50.0f32..50.0, 1..20)) {
        let mut p = logits;
        softmax_in_place(&mut p);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|x| *x >= 0.0 && x.is_finite()));
    }

    #[test]
    fn softmax_preserves_argmax(logits in prop::collection::vec(-50.0f32..50.0, 2..20)) {
        let before = argmax(&logits);
        let mut p = logits;
        softmax_in_place(&mut p);
        prop_assert_eq!(argmax(&p), before);
    }

    #[test]
    fn iid_partition_conserves_samples(n_clients in 1usize..32, seed in 0u64..100) {
        let task = small_task(1_000);
        let parts = iid_partition(&task.train, n_clients, seed);
        prop_assert_eq!(parts.len(), n_clients);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, task.train.len());
        // near-equal shard sizes
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        prop_assert!(max - min <= n_clients);
    }

    #[test]
    fn noniid_partition_conserves_and_covers(
        bad_count in 0usize..28,
        seed in 0u64..100,
    ) {
        let task = small_task(3_200);
        let n = 32usize;
        let mut malicious = vec![false; n];
        for m in malicious.iter_mut().take(bad_count) {
            *m = true;
        }
        let parts = noniid_partition(&task.train, n, 2, &malicious, seed);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, task.train.len());
        for p in &parts {
            prop_assert!(p.present_labels().len() <= 2);
        }
        let honest: Vec<usize> = (0..n).filter(|c| !malicious[*c]).collect();
        prop_assert!(covers_all_labels(&parts, &honest, 10));
    }

    #[test]
    fn dirichlet_partition_conserves_and_covers(
        alpha_i in 0usize..5,
        bad_count in 0usize..16,
        seed in 0u64..100,
    ) {
        let alpha = [0.1f64, 0.3, 1.0, 10.0, 100.0][alpha_i];
        let task = small_task(3_200);
        let n = 32usize;
        let mut malicious = vec![false; n];
        for m in malicious.iter_mut().take(bad_count) {
            *m = true;
        }
        let parts = dirichlet_partition(&task.train, n, alpha, &malicious, seed);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, task.train.len());
        prop_assert!(parts.iter().all(|p| !p.is_empty()));
        let honest: Vec<usize> = (0..n).filter(|c| !malicious[*c]).collect();
        prop_assert!(covers_all_labels(&parts, &honest, 10));
    }

    #[test]
    fn dirichlet_partition_deterministic_per_seed(
        alpha_i in 0usize..3,
        seed in 0u64..100,
    ) {
        let alpha = [0.1f64, 0.5, 5.0][alpha_i];
        let task = small_task(1_600);
        let malicious = vec![false; 16];
        let a = dirichlet_partition(&task.train, 16, alpha, &malicious, seed);
        let b = dirichlet_partition(&task.train, 16, alpha, &malicious, seed);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.labels(), y.labels());
        }
    }

    #[test]
    fn lazy_iid_shards_match_eager(n_clients in 1usize..=64, seed in 0u64..100) {
        let task = small_task(1_000);
        let eager = iid_partition(&task.train, n_clients, seed);
        let pop = ClientPopulation::iid(&task.train, n_clients, seed);
        for (c, e) in eager.iter().enumerate() {
            prop_assert!(datasets_equal(e, &pop.shard(&task.train, c)), "client {c}");
        }
    }

    #[test]
    fn lazy_noniid_shards_match_eager(bad_count in 0usize..28, seed in 0u64..100) {
        let task = small_task(3_200);
        let n = 32usize;
        let mut malicious = vec![false; n];
        for m in malicious.iter_mut().take(bad_count) {
            *m = true;
        }
        let eager = noniid_partition(&task.train, n, 2, &malicious, seed);
        let pop = ClientPopulation::noniid(&task.train, n, 2, &malicious, seed);
        for (c, e) in eager.iter().enumerate() {
            prop_assert!(datasets_equal(e, &pop.shard(&task.train, c)), "client {c}");
        }
    }

    #[test]
    fn lazy_dirichlet_shards_match_eager(
        alpha_i in 0usize..3,
        bad_count in 0usize..16,
        seed in 0u64..100,
    ) {
        let alpha = [0.1f64, 1.0, 100.0][alpha_i];
        let task = small_task(3_200);
        let n = 32usize;
        let mut malicious = vec![false; n];
        for m in malicious.iter_mut().take(bad_count) {
            *m = true;
        }
        let eager = dirichlet_partition(&task.train, n, alpha, &malicious, seed);
        let pop = ClientPopulation::dirichlet(&task.train, n, alpha, &malicious, seed);
        for (c, e) in eager.iter().enumerate() {
            prop_assert!(datasets_equal(e, &pop.shard(&task.train, c)), "client {c}");
        }
    }

    #[test]
    fn linear_params_roundtrip(vals in prop::collection::vec(-10.0f32..10.0, 5 * 3 + 3)) {
        let mut m = LinearSoftmax::new(5, 3);
        m.set_params(&vals);
        prop_assert_eq!(m.params(), vals.as_slice());
    }

    #[test]
    fn mlp_params_roundtrip(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Mlp::new(4, 3, 2, &mut rng);
        let vals: Vec<f32> = (0..m.param_len()).map(|i| (i as f32).sin()).collect();
        m.set_params(&vals);
        prop_assert_eq!(m.params(), vals.as_slice());
    }

    #[test]
    fn predictions_are_valid_classes(seed in 0u64..50) {
        let task = small_task(200);
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Mlp::new(task.train.dim(), 8, task.train.num_classes(), &mut rng);
        for i in 0..20.min(task.test.len()) {
            let y = m.predict(task.test.x(i));
            prop_assert!((y as usize) < task.test.num_classes());
        }
    }

    #[test]
    fn gradient_descends_loss(seed in 0u64..20) {
        // One exact-gradient step with a small LR must not increase the
        // full-batch loss (convex model, smooth objective).
        let task = small_task(200);
        let mut m = LinearSoftmax::new(task.train.dim(), 10);
        let mut rng = StdRng::seed_from_u64(seed);
        // randomize a starting point
        let p0: Vec<f32> = (0..m.param_len())
            .map(|_| hfl_tensor::init::standard_normal(&mut rng) * 0.1)
            .collect();
        m.set_params(&p0);
        let idx: Vec<usize> = (0..task.train.len()).collect();
        let mut grad = vec![0.0f32; m.param_len()];
        let loss0 = m.loss_grad_batch(&task.train, &idx, &mut grad);
        let mut p1 = p0.clone();
        hfl_tensor::ops::axpy(-0.01, &grad, &mut p1);
        m.set_params(&p1);
        let mut scratch = vec![0.0f32; m.param_len()];
        let loss1 = m.loss_grad_batch(&task.train, &idx, &mut scratch);
        prop_assert!(loss1 <= loss0 + 1e-6, "loss rose: {loss0} -> {loss1}");
    }
}
