//! In-memory labelled datasets with row-major features.

use serde::{Deserialize, Serialize};

/// A labelled classification dataset.
///
/// Features are stored row-major in one contiguous buffer (`n × dim`),
/// labels as `u8` class ids in `0..num_classes`. Client shards produced by
/// the partitioners are owned `Dataset`s, so local training never touches
/// shared memory.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    dim: usize,
    num_classes: usize,
    xs: Vec<f32>,
    ys: Vec<u8>,
}

impl Dataset {
    /// An empty dataset with the given feature dimension and class count.
    pub fn empty(dim: usize, num_classes: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        assert!(
            (1..=256).contains(&num_classes),
            "num_classes must be in 1..=256"
        );
        Self {
            dim,
            num_classes,
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }

    /// Builds a dataset from flat row-major features and labels.
    ///
    /// # Panics
    /// If buffer sizes disagree or any label is out of range.
    pub fn from_parts(dim: usize, num_classes: usize, xs: Vec<f32>, ys: Vec<u8>) -> Self {
        assert_eq!(xs.len(), ys.len() * dim, "feature/label size mismatch");
        assert!(
            ys.iter().all(|y| (*y as usize) < num_classes),
            "label out of range"
        );
        let mut d = Self::empty(dim, num_classes);
        d.xs = xs;
        d.ys = ys;
        d
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// True when the dataset holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// Feature dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature row of sample `i`.
    #[inline]
    pub fn x(&self, i: usize) -> &[f32] {
        &self.xs[i * self.dim..(i + 1) * self.dim]
    }

    /// Label of sample `i`.
    #[inline]
    pub fn y(&self, i: usize) -> u8 {
        self.ys[i]
    }

    /// Overwrites the label of sample `i` (used by data-poisoning attacks).
    pub fn set_y(&mut self, i: usize, y: u8) {
        assert!((y as usize) < self.num_classes, "label out of range");
        self.ys[i] = y;
    }

    /// Mutable feature row of sample `i` (used by feature-noise /
    /// backdoor-trigger attacks).
    pub fn x_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.xs[i * self.dim..(i + 1) * self.dim]
    }

    /// All labels.
    pub fn labels(&self) -> &[u8] {
        &self.ys
    }

    /// Appends one sample.
    pub fn push(&mut self, x: &[f32], y: u8) {
        assert_eq!(x.len(), self.dim, "pushed sample has wrong dimension");
        assert!((y as usize) < self.num_classes, "label out of range");
        self.xs.extend_from_slice(x);
        self.ys.push(y);
    }

    /// A new dataset containing the samples at `indices` (in order).
    pub fn subset(&self, indices: &[usize]) -> Self {
        let mut out = Self::empty(self.dim, self.num_classes);
        out.xs.reserve(indices.len() * self.dim);
        out.ys.reserve(indices.len());
        for &i in indices {
            out.xs.extend_from_slice(self.x(i));
            out.ys.push(self.ys[i]);
        }
        out
    }

    /// Splits into `k` near-equal contiguous shards (sizes differ by at
    /// most 1). Used to give each top-level node a slice of the test set
    /// for validation voting (paper Appendix D.B).
    pub fn split_even(&self, k: usize) -> Vec<Self> {
        assert!(k > 0, "cannot split into zero shards");
        let n = self.len();
        let base = n / k;
        let extra = n % k;
        let mut out = Vec::with_capacity(k);
        let mut start = 0;
        for s in 0..k {
            let size = base + usize::from(s < extra);
            let idx: Vec<usize> = (start..start + size).collect();
            out.push(self.subset(&idx));
            start += size;
        }
        out
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for y in &self.ys {
            counts[*y as usize] += 1;
        }
        counts
    }

    /// The set of labels actually present.
    pub fn present_labels(&self) -> Vec<u8> {
        let counts = self.class_counts();
        counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(l, _)| l as u8)
            .collect()
    }

    /// Indices of samples grouped by label.
    pub fn indices_by_label(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.num_classes];
        for (i, y) in self.ys.iter().enumerate() {
            groups[*y as usize].push(i);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::empty(2, 3);
        d.push(&[0.0, 0.0], 0);
        d.push(&[1.0, 0.0], 1);
        d.push(&[0.0, 1.0], 2);
        d.push(&[1.0, 1.0], 1);
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.x(3), &[1.0, 1.0]);
        assert_eq!(d.y(3), 1);
    }

    #[test]
    fn subset_preserves_order() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y(0), 2);
        assert_eq!(s.y(1), 0);
        assert_eq!(s.x(0), &[0.0, 1.0]);
    }

    #[test]
    fn split_even_sizes() {
        let d = toy();
        let parts = d.split_even(3);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 4);
        assert_eq!(sizes, vec![2, 1, 1]);
    }

    #[test]
    fn class_counts_and_present_labels() {
        let d = toy();
        assert_eq!(d.class_counts(), vec![1, 2, 1]);
        assert_eq!(d.present_labels(), vec![0, 1, 2]);
    }

    #[test]
    fn indices_by_label_groups() {
        let d = toy();
        let g = d.indices_by_label();
        assert_eq!(g[1], vec![1, 3]);
    }

    #[test]
    fn set_y_poisons_label() {
        let mut d = toy();
        d.set_y(0, 2);
        assert_eq!(d.y(0), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        let mut d = toy();
        d.push(&[0.0, 0.0], 3);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn bad_dim_panics() {
        let mut d = toy();
        d.push(&[0.0], 0);
    }
}
