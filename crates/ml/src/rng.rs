//! Deterministic RNG derivation.
//!
//! Experiments must be reproducible from a single master seed while every
//! client / round / role gets an independent stream. We derive sub-seeds
//! with SplitMix64 over a mixed tag, the standard approach for seeding
//! hierarchies of PRNGs.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One SplitMix64 step: a high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a base seed and a stream tag.
///
/// Distinct `(base, tag)` pairs map to (effectively) independent seeds;
/// the mapping is pure, so re-running an experiment regenerates identical
/// randomness.
#[inline]
pub fn derive_seed(base: u64, tag: u64) -> u64 {
    splitmix64(base ^ splitmix64(tag))
}

/// Derives a child seed from a base seed and several stream tags
/// (e.g. `[round, client_id]`).
pub fn derive_seed_n(base: u64, tags: &[u64]) -> u64 {
    let mut s = base;
    for (i, t) in tags.iter().enumerate() {
        s = derive_seed(s, t.wrapping_add((i as u64) << 32));
    }
    s
}

/// A seeded [`StdRng`] for a given base seed and tag.
pub fn rng_for(base: u64, tag: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(base, tag))
}

/// A seeded [`StdRng`] for a base seed and several tags.
pub fn rng_for_n(base: u64, tags: &[u64]) -> StdRng {
    StdRng::seed_from_u64(derive_seed_n(base, tags))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        assert_eq!(derive_seed_n(7, &[1, 2, 3]), derive_seed_n(7, &[1, 2, 3]));
    }

    #[test]
    fn different_tags_differ() {
        assert_ne!(derive_seed(7, 3), derive_seed(7, 4));
        assert_ne!(derive_seed(7, 3), derive_seed(8, 3));
        // order of tags matters
        assert_ne!(derive_seed_n(7, &[1, 2]), derive_seed_n(7, &[2, 1]));
    }

    #[test]
    fn rngs_from_same_seed_agree() {
        let a: u64 = rng_for(9, 1).gen();
        let b: u64 = rng_for(9, 1).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), 1);
    }
}
