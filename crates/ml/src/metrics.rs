//! Evaluation metrics: accuracy and confusion matrices.

use crate::dataset::Dataset;
use crate::model::Model;

/// Fraction of test samples the model classifies correctly.
pub fn accuracy(model: &dyn Model, data: &Dataset) -> f64 {
    assert!(!data.is_empty(), "accuracy over empty dataset");
    let mut hit = 0usize;
    for i in 0..data.len() {
        if model.predict(data.x(i)) == data.y(i) {
            hit += 1;
        }
    }
    hit as f64 / data.len() as f64
}

/// Accuracy computed in parallel over sample chunks; identical result to
/// [`accuracy`] (integer sum, no float reordering).
pub fn accuracy_parallel(model: &dyn Model, data: &Dataset, threads: usize) -> f64 {
    assert!(!data.is_empty(), "accuracy over empty dataset");
    let n = data.len();
    let hits = hfl_parallel::par_reduce(
        n,
        threads,
        || 0usize,
        |i| usize::from(model.predict(data.x(i)) == data.y(i)),
        |a, b| a + b,
    );
    hits as f64 / n as f64
}

/// `num_classes × num_classes` confusion matrix; entry `[t][p]` counts
/// samples of true class `t` predicted as `p`.
pub fn confusion_matrix(model: &dyn Model, data: &Dataset) -> Vec<Vec<usize>> {
    let k = data.num_classes();
    let mut m = vec![vec![0usize; k]; k];
    for i in 0..data.len() {
        let t = data.y(i) as usize;
        let p = model.predict(data.x(i)) as usize;
        m[t][p] += 1;
    }
    m
}

/// Backdoor attack-success rate: the fraction of test samples whose true
/// class is *not* `target` that the model classifies as `target` after
/// the trigger pattern (`value` over `[offset, offset+width)`) is
/// stamped into their features. Clean accuracy alone hides backdoors —
/// this is the metric that exposes them.
pub fn backdoor_success_rate(
    model: &dyn Model,
    data: &Dataset,
    offset: usize,
    width: usize,
    value: f32,
    target: u8,
) -> f64 {
    assert!(offset + width <= data.dim(), "trigger exceeds dimension");
    assert!((target as usize) < data.num_classes(), "target out of range");
    let mut x = vec![0.0f32; data.dim()];
    let mut attacked = 0usize;
    let mut hits = 0usize;
    for i in 0..data.len() {
        if data.y(i) == target {
            continue; // already the target class: not an attack success
        }
        attacked += 1;
        x.copy_from_slice(data.x(i));
        for v in &mut x[offset..offset + width] {
            *v = value;
        }
        if model.predict(&x) == target {
            hits += 1;
        }
    }
    if attacked == 0 {
        0.0
    } else {
        hits as f64 / attacked as f64
    }
}

/// Per-class recall (correct / true count); `None` for absent classes.
pub fn per_class_recall(model: &dyn Model, data: &Dataset) -> Vec<Option<f64>> {
    let cm = confusion_matrix(model, data);
    cm.iter()
        .enumerate()
        .map(|(t, row)| {
            let total: usize = row.iter().sum();
            (total > 0).then(|| row[t] as f64 / total as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearSoftmax;

    /// A model with hand-set weights that classifies by sign of x[0].
    fn sign_model() -> LinearSoftmax {
        let mut m = LinearSoftmax::new(1, 2);
        // class 0 logit = -5x, class 1 logit = +5x  → predicts 1 iff x > 0
        m.set_params(&[-5.0, 5.0, 0.0, 0.0]);
        m
    }

    fn sign_data() -> Dataset {
        let mut d = Dataset::empty(1, 2);
        d.push(&[-1.0], 0);
        d.push(&[-2.0], 0);
        d.push(&[1.0], 1);
        d.push(&[2.0], 0); // deliberately mislabelled
        d
    }

    #[test]
    fn accuracy_counts_hits() {
        let acc = accuracy(&sign_model(), &sign_data());
        assert!((acc - 0.75).abs() < 1e-9);
    }

    #[test]
    fn parallel_accuracy_matches_sequential() {
        let m = sign_model();
        let d = sign_data();
        assert_eq!(accuracy(&m, &d), accuracy_parallel(&m, &d, 4));
    }

    #[test]
    fn confusion_matrix_entries() {
        let cm = confusion_matrix(&sign_model(), &sign_data());
        assert_eq!(cm[0][0], 2); // two true-0 predicted 0
        assert_eq!(cm[0][1], 1); // the mislabelled one
        assert_eq!(cm[1][1], 1);
    }

    #[test]
    fn backdoor_rate_on_trigger_sensitive_model() {
        // 1-dim model predicting class 1 iff x > 0; trigger sets x = 5.
        let m = sign_model();
        let mut d = Dataset::empty(1, 2);
        d.push(&[-1.0], 0);
        d.push(&[-2.0], 0);
        d.push(&[3.0], 1); // true target class: not counted
        let rate = backdoor_success_rate(&m, &d, 0, 1, 5.0, 1);
        assert_eq!(rate, 1.0); // both class-0 samples flip to 1
        // A trigger the model maps away from the target never succeeds.
        let rate = backdoor_success_rate(&m, &d, 0, 1, -5.0, 1);
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn backdoor_rate_empty_attack_set_is_zero() {
        let m = sign_model();
        let mut d = Dataset::empty(1, 2);
        d.push(&[1.0], 1); // only target-class samples
        assert_eq!(backdoor_success_rate(&m, &d, 0, 1, 5.0, 1), 0.0);
    }

    #[test]
    fn per_class_recall_values() {
        let r = per_class_recall(&sign_model(), &sign_data());
        assert!((r[0].unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert!((r[1].unwrap() - 1.0).abs() < 1e-9);
    }
}
