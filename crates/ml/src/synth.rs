//! Synthetic "digits": the MNIST stand-in (DESIGN.md §1).
//!
//! Ten Gaussian class clusters in `dim`-dimensional feature space. Class
//! means are drawn once per seed on the unit sphere and scaled by
//! `separation`; samples add isotropic noise of standard deviation
//! `noise_std`. With the default configuration a multinomial logistic
//! regression trained by SGD plateaus near the paper's ~90 % MNIST
//! accuracy, and a fully poisoned model collapses to ~10 % — the two
//! anchors the evaluation's shape depends on.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use hfl_tensor::init;

use crate::dataset::Dataset;
use crate::rng::derive_seed;

/// Configuration for the synthetic digits generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Feature dimension (MNIST is 784; 64 keeps experiments fast with the
    /// same qualitative behaviour).
    pub dim: usize,
    /// Number of classes (10, matching digits 0–9).
    pub num_classes: usize,
    /// Training samples (paper: 60 000 → ≈937 per client at 64 clients).
    pub train_samples: usize,
    /// Test samples (paper: 10 000, split over 4 top nodes for voting).
    pub test_samples: usize,
    /// Norm of each class mean.
    pub separation: f32,
    /// Isotropic noise standard deviation.
    pub noise_std: f32,
    /// Master seed for the generator.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            num_classes: 10,
            train_samples: 60_000,
            test_samples: 10_000,
            // separation/noise tuned so a linear model plateaus near 90 %
            // clean accuracy — the paper's MNIST operating point. Random
            // unit means in 64-dim are near-orthogonal, so pairwise mean
            // distance ≈ separation·√2 and the per-pair Bayes error is
            // Φ(−separation/√2): 3.2 → ≈ 94 % Bayes, ≈ 90 % trained.
            separation: 3.2,
            noise_std: 1.0,
            seed: 0xD161_7501,
        }
    }
}

impl SynthConfig {
    /// A small configuration for unit tests (fast, still 10 classes).
    pub fn tiny() -> Self {
        Self {
            train_samples: 2_000,
            test_samples: 500,
            ..Self::default()
        }
    }
}

/// The generated task: train set, test set, and the true class means
/// (kept for diagnostics; the learners never see them).
#[derive(Clone, Debug)]
pub struct SyntheticDigits {
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
    /// Ground-truth class means, row `c` = mean of class `c`.
    pub class_means: Vec<Vec<f32>>,
}

impl SyntheticDigits {
    /// Generates the task from a configuration. Deterministic in
    /// `cfg.seed`; train and test use independent derived streams.
    pub fn generate(cfg: &SynthConfig) -> Self {
        assert!(cfg.num_classes >= 2, "need at least two classes");
        assert!(cfg.dim > 0 && cfg.train_samples > 0 && cfg.test_samples > 0);

        let mut mean_rng = StdRng::seed_from_u64(derive_seed(cfg.seed, 0xA11C));
        let class_means: Vec<Vec<f32>> = (0..cfg.num_classes)
            .map(|_| {
                let mut m = vec![0.0f32; cfg.dim];
                init::gaussian(&mut mean_rng, 0.0, 1.0, &mut m);
                let norm = hfl_tensor::ops::norm(&m).max(1e-12);
                for v in m.iter_mut() {
                    *v = *v / norm as f32 * cfg.separation;
                }
                m
            })
            .collect();

        let train = Self::sample_split(
            cfg,
            &class_means,
            cfg.train_samples,
            derive_seed(cfg.seed, 0x7124),
        );
        let test = Self::sample_split(
            cfg,
            &class_means,
            cfg.test_samples,
            derive_seed(cfg.seed, 0x7E57),
        );
        Self {
            train,
            test,
            class_means,
        }
    }

    /// Samples `n` points with a balanced label distribution, then
    /// shuffles sample order (the paper shuffles before distributing to
    /// clients).
    fn sample_split(
        cfg: &SynthConfig,
        means: &[Vec<f32>],
        n: usize,
        seed: u64,
    ) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = cfg.num_classes;
        // Balanced labels: n/k each, remainder spread over the first n%k.
        let mut labels: Vec<u8> = (0..n).map(|i| (i % k) as u8).collect();
        labels.shuffle(&mut rng);

        let mut ds = Dataset::empty(cfg.dim, k);
        let mut x = vec![0.0f32; cfg.dim];
        for y in labels {
            let m = &means[y as usize];
            for (xi, mi) in x.iter_mut().zip(m) {
                xi.clone_from(mi);
            }
            // add noise
            for xi in x.iter_mut() {
                *xi += cfg.noise_std * init::standard_normal(&mut rng);
            }
            ds.push(&x, y);
        }
        ds
    }

    /// Bayes-optimal prediction (nearest class mean) — an upper bound on
    /// achievable accuracy, used in tests to sanity-check the task.
    pub fn bayes_predict(&self, x: &[f32]) -> u8 {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, m) in self.class_means.iter().enumerate() {
            let d = hfl_tensor::ops::dist_sq(x, m);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best as u8
    }

    /// Accuracy of the Bayes-optimal classifier on the test split.
    pub fn bayes_test_accuracy(&self) -> f64 {
        let mut hit = 0usize;
        for i in 0..self.test.len() {
            if self.bayes_predict(self.test.x(i)) == self.test.y(i) {
                hit += 1;
            }
        }
        hit as f64 / self.test.len() as f64
    }
}

/// Non-deterministic convenience: generate the default paper-scale task.
pub fn paper_task(seed: u64) -> SyntheticDigits {
    SyntheticDigits::generate(&SynthConfig {
        seed,
        ..SynthConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let t = SyntheticDigits::generate(&SynthConfig::tiny());
        assert_eq!(t.train.len(), 2_000);
        assert_eq!(t.test.len(), 500);
        assert_eq!(t.train.dim(), 64);
    }

    #[test]
    fn labels_are_balanced() {
        let t = SyntheticDigits::generate(&SynthConfig::tiny());
        let counts = t.train.class_counts();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "unbalanced counts: {counts:?}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = SyntheticDigits::generate(&SynthConfig::tiny());
        let b = SyntheticDigits::generate(&SynthConfig::tiny());
        assert_eq!(a.train.x(0), b.train.x(0));
        assert_eq!(a.train.labels(), b.train.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticDigits::generate(&SynthConfig::tiny());
        let b = SyntheticDigits::generate(&SynthConfig {
            seed: 99,
            ..SynthConfig::tiny()
        });
        assert_ne!(a.train.x(0), b.train.x(0));
    }

    #[test]
    fn task_is_learnable_but_not_trivial() {
        let t = SyntheticDigits::generate(&SynthConfig::tiny());
        let acc = t.bayes_test_accuracy();
        // The operating point: hard enough to be interesting, easy enough
        // that a linear model reaches the paper's ~90 % plateau.
        assert!(acc > 0.80, "Bayes accuracy too low: {acc}");
        assert!(acc < 1.0, "task degenerately easy: {acc}");
    }

    #[test]
    fn class_means_have_requested_norm() {
        let cfg = SynthConfig::tiny();
        let t = SyntheticDigits::generate(&cfg);
        for m in &t.class_means {
            let n = hfl_tensor::ops::norm(m);
            assert!((n - cfg.separation as f64).abs() < 1e-3);
        }
    }
}
