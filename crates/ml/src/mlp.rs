//! One-hidden-layer perceptron with ReLU — the "DNN model" of the paper's
//! evaluation, sized for a synthetic-digits workload.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use hfl_tensor::init;

use crate::dataset::Dataset;
use crate::loss::{argmax, ce_grad_in_place, cross_entropy, softmax_in_place};
use crate::model::{BatchScratch, Model};

/// MLP `dim → hidden (ReLU) → classes (softmax)`.
///
/// Flat parameter layout: `[W1 (h×d) | b1 (h) | W2 (k×h) | b2 (k)]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    dim: usize,
    hidden: usize,
    classes: usize,
    theta: Vec<f32>,
}

impl Mlp {
    /// A new MLP with Xavier-initialized weights and zero biases.
    pub fn new(dim: usize, hidden: usize, classes: usize, rng: &mut StdRng) -> Self {
        assert!(dim > 0 && hidden > 0 && classes >= 2);
        let mut m = Self {
            dim,
            hidden,
            classes,
            theta: vec![0.0; hidden * dim + hidden + classes * hidden + classes],
        };
        m.reinit(rng);
        m
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    // --- flat layout offsets -------------------------------------------
    #[inline]
    fn off_b1(&self) -> usize {
        self.hidden * self.dim
    }
    #[inline]
    fn off_w2(&self) -> usize {
        self.off_b1() + self.hidden
    }
    #[inline]
    fn off_b2(&self) -> usize {
        self.off_w2() + self.classes * self.hidden
    }

    /// Forward pass. Writes hidden activations (post-ReLU) and class
    /// probabilities into the provided buffers.
    fn forward_into(&self, x: &[f32], h: &mut [f32], probs: &mut [f32]) {
        debug_assert_eq!(x.len(), self.dim);
        debug_assert_eq!(h.len(), self.hidden);
        debug_assert_eq!(probs.len(), self.classes);
        let t = &self.theta;
        // h = relu(W1 x + b1)
        for j in 0..self.hidden {
            let row = &t[j * self.dim..(j + 1) * self.dim];
            let z = hfl_tensor::ops::dot(row, x) as f32 + t[self.off_b1() + j];
            h[j] = z.max(0.0);
        }
        // logits = W2 h + b2
        let w2 = self.off_w2();
        for c in 0..self.classes {
            let row = &t[w2 + c * self.hidden..w2 + (c + 1) * self.hidden];
            probs[c] = hfl_tensor::ops::dot(row, h) as f32 + t[self.off_b2() + c];
        }
        softmax_in_place(probs);
    }
}

impl Model for Mlp {
    fn param_len(&self) -> usize {
        self.theta.len()
    }

    fn params(&self) -> &[f32] {
        &self.theta
    }

    fn set_params(&mut self, p: &[f32]) {
        assert_eq!(p.len(), self.theta.len(), "parameter length mismatch");
        self.theta.copy_from_slice(p);
    }

    fn predict(&self, x: &[f32]) -> u8 {
        let mut h = vec![0.0f32; self.hidden];
        let mut probs = vec![0.0f32; self.classes];
        self.forward_into(x, &mut h, &mut probs);
        argmax(&probs) as u8
    }

    fn loss_grad_batch(&self, data: &Dataset, indices: &[usize], grad: &mut [f32]) -> f64 {
        self.loss_grad_batch_with(data, indices, grad, &mut BatchScratch::default())
    }

    fn loss_grad_batch_with(
        &self,
        data: &Dataset,
        indices: &[usize],
        grad: &mut [f32],
        scratch: &mut BatchScratch,
    ) -> f64 {
        assert_eq!(grad.len(), self.theta.len(), "gradient buffer mismatch");
        assert!(!indices.is_empty(), "empty batch");
        assert_eq!(data.dim(), self.dim, "dataset dimension mismatch");
        let inv_n = 1.0 / indices.len() as f32;
        let (off_b1, off_w2, off_b2) = (self.off_b1(), self.off_w2(), self.off_b2());
        let BatchScratch { probs, hidden, dhidden } = scratch;
        let (h, dh) = (hidden, dhidden);
        h.clear();
        h.resize(self.hidden, 0.0);
        probs.clear();
        probs.resize(self.classes, 0.0);
        dh.clear();
        dh.resize(self.hidden, 0.0);
        let mut loss = 0.0f64;
        for &i in indices {
            let x = data.x(i);
            let y = data.y(i);
            self.forward_into(x, h, probs);
            loss += cross_entropy(probs, y);
            ce_grad_in_place(probs, y); // probs now holds dL/dlogits

            // dL/dW2_c = err_c ⊗ h ; dL/db2_c = err_c
            for (c, err) in probs.iter().enumerate() {
                let coeff = inv_n * *err;
                hfl_tensor::ops::axpy(
                    coeff,
                    h,
                    &mut grad[off_w2 + c * self.hidden..off_w2 + (c + 1) * self.hidden],
                );
                grad[off_b2 + c] += coeff;
            }
            // dh = W2ᵀ err, gated by ReLU
            hfl_tensor::ops::zero(dh);
            for (c, err) in probs.iter().enumerate() {
                let row =
                    &self.theta[off_w2 + c * self.hidden..off_w2 + (c + 1) * self.hidden];
                hfl_tensor::ops::axpy(*err, row, dh);
            }
            for (dj, hj) in dh.iter_mut().zip(h.iter()) {
                if *hj <= 0.0 {
                    *dj = 0.0;
                }
            }
            // dL/dW1_j = dh_j ⊗ x ; dL/db1_j = dh_j
            for (j, dj) in dh.iter().enumerate() {
                let coeff = inv_n * *dj;
                if coeff != 0.0 {
                    hfl_tensor::ops::axpy(
                        coeff,
                        x,
                        &mut grad[j * self.dim..(j + 1) * self.dim],
                    );
                }
                grad[off_b1 + j] += coeff;
            }
        }
        loss / indices.len() as f64
    }

    fn reinit(&mut self, rng: &mut StdRng) {
        let (dim, hidden, classes) = (self.dim, self.hidden, self.classes);
        let (off_b1, off_w2, off_b2) = (self.off_b1(), self.off_w2(), self.off_b2());
        init::xavier_uniform(rng, dim, hidden, &mut self.theta[..off_b1]);
        self.theta[off_b1..off_w2].iter_mut().for_each(|t| *t = 0.0);
        let end_w2 = off_b2;
        init::xavier_uniform(rng, hidden, classes, &mut self.theta[off_w2..end_w2]);
        self.theta[off_b2..].iter_mut().for_each(|t| *t = 0.0);
    }

    fn clone_box(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd::{train_local, SgdConfig};
    use crate::synth::{SynthConfig, SyntheticDigits};
    use rand::SeedableRng;

    fn small_mlp(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(3, 4, 3, &mut rng)
    }

    #[test]
    fn param_len_layout() {
        let m = small_mlp(1);
        assert_eq!(m.param_len(), 4 * 3 + 4 + 3 * 4 + 3);
    }

    #[test]
    fn param_roundtrip() {
        let mut m = small_mlp(1);
        let p: Vec<f32> = (0..m.param_len()).map(|i| i as f32 * 0.01).collect();
        m.set_params(&p);
        assert_eq!(m.params(), p.as_slice());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = small_mlp(2);
        let mut ds = Dataset::empty(3, 3);
        ds.push(&[0.8, -0.3, 0.1], 1);
        ds.push(&[-0.5, 0.9, 0.4], 0);
        ds.push(&[0.2, 0.2, -0.9], 2);
        let idx = [0usize, 1, 2];
        let p0 = m.params().to_vec();
        let mut grad = vec![0.0f32; m.param_len()];
        let loss0 = m.loss_grad_batch(&ds, &idx, &mut grad);

        let eps = 1e-3f32;
        // Sample coordinates across all four parameter blocks.
        for j in [0usize, 5, 12, 13, 16, 20, m.param_len() - 1] {
            let mut p = p0.clone();
            p[j] += eps;
            let mut mp = small_mlp(2);
            mp.set_params(&p);
            let mut scratch = vec![0.0f32; m.param_len()];
            let loss1 = mp.loss_grad_batch(&ds, &idx, &mut scratch);
            let fd = (loss1 - loss0) / eps as f64;
            assert!(
                (fd - grad[j] as f64).abs() < 5e-3,
                "coord {j}: fd {fd} vs analytic {}",
                grad[j]
            );
        }
    }

    #[test]
    fn reinit_is_deterministic_and_nonzero() {
        let a = small_mlp(3);
        let b = small_mlp(3);
        assert_eq!(a.params(), b.params());
        assert!(a.params().iter().any(|p| *p != 0.0));
        let c = small_mlp(4);
        assert_ne!(a.params(), c.params());
    }

    #[test]
    fn learns_the_synthetic_task() {
        let task = SyntheticDigits::generate(&SynthConfig::tiny());
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = Mlp::new(task.train.dim(), 32, task.train.num_classes(), &mut rng);
        let cfg = SgdConfig {
            lr: 0.3,
            batch_size: 32,
            ..SgdConfig::default()
        };
        for _ in 0..200 {
            train_local(&mut m, &task.train, &cfg, 5, &mut rng);
        }
        let acc = crate::metrics::accuracy(&m, &task.test);
        assert!(acc > 0.8, "accuracy only {acc}");
    }
}
