//! # hfl-ml
//!
//! The machine-learning substrate of the ABD-HFL reproduction: datasets,
//! client partitioners, models with flat parameter vectors, SGD, and
//! evaluation metrics.
//!
//! ## Substitution note (see DESIGN.md §1)
//!
//! The paper evaluates on MNIST with a small DNN. Neither MNIST nor a deep
//! learning framework is available offline, and neither is needed to
//! reproduce the *shape* of the results: the evaluation compares the
//! robustness of aggregation topologies under label poisoning, which only
//! requires a 10-class task where (a) honest SGD converges to a stable
//! accuracy plateau and (b) poisoned updates pull the model toward ~10 %
//! (random-guess) accuracy. [`synth::SyntheticDigits`] provides exactly
//! that: Gaussian class clusters with the same sample counts as MNIST
//! (60 000 train / 10 000 test, ≈937 train samples per client at 64
//! clients).
//!
//! ## Flat parameters
//!
//! Every model implements [`model::Model`], which exposes its parameters
//! as one contiguous `&[f32]`. Federated aggregation, Byzantine attacks
//! and consensus all operate on these flat vectors — the same abstraction
//! level as the paper's algorithms.

pub mod dataset;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod partition;
pub mod population;
pub mod rng;
pub mod sgd;
pub mod synth;

pub use dataset::Dataset;
pub use linear::LinearSoftmax;
pub use population::{ClientPopulation, ShardPlan};
pub use mlp::Mlp;
pub use model::Model;
pub use sgd::SgdConfig;
