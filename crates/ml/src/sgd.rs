//! Mini-batch SGD — the local training loop of Algorithm 2.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::model::{BatchScratch, Model};

/// Reusable buffers for the local training loop. One per worker lane is
/// enough: capacity grows to the largest model trained through it and is
/// then reused, so steady-state rounds allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct TrainScratch {
    grad: Vec<f32>,
    indices: Vec<usize>,
    theta: Vec<f32>,
    batch: BatchScratch,
}

/// Learning-rate schedule across global rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// η constant across rounds (the paper's setting).
    #[default]
    Constant,
    /// η multiplied by `factor` every `every` global rounds.
    Step {
        /// Rounds between decays (≥ 1).
        every: usize,
        /// Multiplicative decay factor in `(0, 1]`.
        factor: f32,
    },
    /// η / √(1 + round) — the classical SGD schedule.
    InvSqrt,
}

/// SGD hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Base learning rate η.
    pub lr: f32,
    /// Mini-batch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Round-indexed decay of η.
    #[serde(default)]
    pub schedule: LrSchedule,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            lr: 0.5,
            batch_size: 32,
            schedule: LrSchedule::Constant,
        }
    }
}

impl SgdConfig {
    /// The effective learning rate at a global round.
    pub fn lr_at(&self, round: usize) -> f32 {
        match self.schedule {
            LrSchedule::Constant => self.lr,
            LrSchedule::Step { every, factor } => {
                assert!(every >= 1, "step schedule needs every >= 1");
                assert!(
                    factor > 0.0 && factor <= 1.0,
                    "step factor must be in (0, 1]"
                );
                self.lr * factor.powi((round / every) as i32)
            }
            LrSchedule::InvSqrt => self.lr / ((1 + round) as f32).sqrt(),
        }
    }

    /// A copy with the effective rate for `round` substituted in — what
    /// the per-round training loop hands to [`train_local`].
    pub fn at_round(&self, round: usize) -> Self {
        Self {
            lr: self.lr_at(round),
            ..*self
        }
    }
}

/// Performs `iters` SGD steps on `model` over `data` (Algorithm 2's inner
/// `while t < T` loop): sample a batch, compute the mean gradient, take a
/// step `θ ← θ − η∇ℓ`. Returns the mean loss across the performed steps.
///
/// # Panics
/// If the dataset is empty — a client with no data cannot train.
pub fn train_local(
    model: &mut dyn Model,
    data: &Dataset,
    cfg: &SgdConfig,
    iters: usize,
    rng: &mut StdRng,
) -> f64 {
    train_local_scratch(model, data, cfg, iters, rng, &mut TrainScratch::default())
}

/// [`train_local`] with caller-owned scratch — the allocation-free entry
/// point the round runner uses. Numerically identical to `train_local`
/// (same RNG draws, same arithmetic); the scratch only recycles the
/// gradient, index, staging, and forward/backward buffers.
pub fn train_local_scratch(
    model: &mut dyn Model,
    data: &Dataset,
    cfg: &SgdConfig,
    iters: usize,
    rng: &mut StdRng,
    scratch: &mut TrainScratch,
) -> f64 {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert!(cfg.lr > 0.0, "learning rate must be positive");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    let batch = cfg.batch_size.min(data.len());
    let TrainScratch {
        grad,
        indices,
        theta,
        batch: batch_scratch,
    } = scratch;
    grad.clear();
    grad.resize(model.param_len(), 0.0);
    indices.clear();
    indices.resize(batch, 0);
    let mut total_loss = 0.0;
    for _ in 0..iters {
        for slot in indices.iter_mut() {
            *slot = rng.gen_range(0..data.len());
        }
        hfl_tensor::ops::zero(grad);
        total_loss += model.loss_grad_batch_with(data, indices, grad, batch_scratch);
        // θ ← θ − η ∇ℓ. Models expose params only as slices, so stage the
        // update through a reusable copy; this keeps the Model trait
        // minimal and safe while staying allocation-free in steady state.
        theta.clear();
        theta.extend_from_slice(model.params());
        hfl_tensor::ops::axpy(-cfg.lr, grad, theta);
        model.set_params(theta);
    }
    if iters == 0 {
        0.0
    } else {
        total_loss / iters as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearSoftmax;
    use crate::model::mean_loss;
    use rand::SeedableRng;

    fn two_blob_data() -> Dataset {
        let mut d = Dataset::empty(2, 2);
        for i in 0..50 {
            let t = i as f32 * 0.01;
            d.push(&[1.0 + t, 1.0 - t], 0);
            d.push(&[-1.0 - t, -1.0 + t], 1);
        }
        d
    }

    #[test]
    fn schedules_compute_expected_rates() {
        let base = SgdConfig {
            lr: 1.0,
            ..SgdConfig::default()
        };
        assert_eq!(base.lr_at(0), 1.0);
        assert_eq!(base.lr_at(100), 1.0);

        let step = SgdConfig {
            lr: 1.0,
            schedule: LrSchedule::Step {
                every: 10,
                factor: 0.5,
            },
            ..SgdConfig::default()
        };
        assert_eq!(step.lr_at(0), 1.0);
        assert_eq!(step.lr_at(9), 1.0);
        assert_eq!(step.lr_at(10), 0.5);
        assert_eq!(step.lr_at(25), 0.25);

        let inv = SgdConfig {
            lr: 1.0,
            schedule: LrSchedule::InvSqrt,
            ..SgdConfig::default()
        };
        assert_eq!(inv.lr_at(0), 1.0);
        assert!((inv.lr_at(3) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn at_round_substitutes_rate() {
        let step = SgdConfig {
            lr: 0.8,
            schedule: LrSchedule::Step {
                every: 5,
                factor: 0.1,
            },
            ..SgdConfig::default()
        };
        let r5 = step.at_round(5);
        assert!((r5.lr - 0.08).abs() < 1e-6);
        assert_eq!(r5.batch_size, step.batch_size);
    }

    #[test]
    #[should_panic(expected = "every >= 1")]
    fn zero_step_interval_panics() {
        SgdConfig {
            lr: 1.0,
            schedule: LrSchedule::Step {
                every: 0,
                factor: 0.5,
            },
            ..SgdConfig::default()
        }
        .lr_at(1);
    }

    #[test]
    fn loss_decreases() {
        let data = two_blob_data();
        let mut m = LinearSoftmax::new(2, 2);
        let before = mean_loss(&m, &data);
        let mut rng = StdRng::seed_from_u64(5);
        train_local(&mut m, &data, &SgdConfig::default(), 50, &mut rng);
        let after = mean_loss(&m, &data);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn zero_iters_changes_nothing() {
        let data = two_blob_data();
        let mut m = LinearSoftmax::new(2, 2);
        let p0 = m.params().to_vec();
        let mut rng = StdRng::seed_from_u64(5);
        let loss = train_local(&mut m, &data, &SgdConfig::default(), 0, &mut rng);
        assert_eq!(loss, 0.0);
        assert_eq!(m.params(), p0.as_slice());
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let data = two_blob_data();
        let run = |seed| {
            let mut m = LinearSoftmax::new(2, 2);
            let mut rng = StdRng::seed_from_u64(seed);
            train_local(&mut m, &data, &SgdConfig::default(), 20, &mut rng);
            m.params().to_vec()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn batch_larger_than_dataset_is_clamped() {
        let data = two_blob_data();
        let mut m = LinearSoftmax::new(2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SgdConfig {
            lr: 0.1,
            batch_size: 10_000,
            ..SgdConfig::default()
        };
        // must not panic
        train_local(&mut m, &data, &cfg, 3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let data = Dataset::empty(2, 2);
        let mut m = LinearSoftmax::new(2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        train_local(&mut m, &data, &SgdConfig::default(), 1, &mut rng);
    }
}
